//! Adversarial robustness of the hash-chained ledger at the *system*
//! level: histories exported from real `System` runs, then tampered with
//! — bit flips, truncations, entry reorders, and splices of two distinct
//! histories — must fail with a typed error ([`SnapshotError`] at decode
//! or [`LedgerError`] at [`Ledger::verify_chain`]), never a panic, and
//! never verify as clean.
//!
//! The sim crate unit-tests the chain on synthetic entries; this suite
//! feeds the tampering corpora through ledgers produced by recorded
//! machine runs — the artifact the fleet harness actually ships.

use std::panic::{self, AssertUnwindSafe};

use overhaul_core::{Event, OverhaulConfig, Recorder, System};
use overhaul_kernel::device::DeviceClass;
use overhaul_sim::{Ledger, LedgerError, SimDuration, SimRng};
use overhaul_xserver::geometry::Rect;

/// Records a faulted, device-churning run and returns the machine with
/// its sealed kernel ledger. `flavor` perturbs the run so two calls
/// produce histories that diverge from the very first entry.
fn recorded_machine(flavor: u64) -> System {
    let mut rec = Recorder::new(OverhaulConfig::protected());
    let gui = rec
        .apply(Event::LaunchGuiApp {
            exe: format!("/usr/bin/editor{flavor}"),
            rect: Rect::new(5 + flavor as i32, 5, 320, 240),
        })
        .gui()
        .expect("launch");
    rec.apply(Event::Settle);
    rec.apply(Event::ClickWindow { window: gui.window });
    rec.apply(Event::OpenDevice {
        pid: gui.pid,
        path: "/dev/video0".into(),
    });
    rec.apply(Event::AttachDevice {
        class: DeviceClass::Camera,
        label: format!("usb camera {flavor}"),
        path: "/dev/video9".into(),
    });
    rec.apply(Event::UdevRename {
        old: "/dev/video9".into(),
        new: "/dev/video10".into(),
    });
    rec.apply(Event::Advance(SimDuration::from_secs(7)));
    rec.apply(Event::CrashX);
    rec.apply(Event::RestartX);
    rec.apply(Event::ClickWindow { window: gui.window });
    rec.apply(Event::OpenDevice {
        pid: gui.pid,
        path: "/dev/snd/mic0".into(),
    });
    let (system, _log) = rec.finish();
    system.verify_ledgers().expect("live history verifies");
    system
}

/// Decode must be panic-free; returns the parsed ledger if the bytes
/// held together at the container/codec layer.
fn decode_never_panics(bytes: &[u8]) -> Option<Ledger> {
    match panic::catch_unwind(AssertUnwindSafe(|| Ledger::from_bytes(bytes))) {
        Ok(result) => result.ok(),
        Err(_) => panic!("Ledger::from_bytes panicked on corrupt input"),
    }
}

#[test]
fn every_single_bit_flip_is_rejected_or_fails_verification() {
    let system = recorded_machine(0);
    let clean = system.kernel_ledger();
    let bytes = clean.to_bytes();
    let decoded = Ledger::from_bytes(&bytes).expect("clean decode");
    decoded.verify_chain().expect("clean verify");
    assert_eq!(decoded.head(), clean.head());

    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut fuzzed = bytes.clone();
            fuzzed[byte] ^= 1 << bit;
            if let Some(ledger) = decode_never_panics(&fuzzed) {
                assert!(
                    ledger.verify_chain().is_err(),
                    "bit {bit} of byte {byte}/{} flipped, ledger still verified",
                    bytes.len()
                );
            }
        }
    }
}

#[test]
fn truncation_at_every_cut_errors_cleanly() {
    let system = recorded_machine(0);
    let bytes = system.kernel_ledger().to_bytes();
    let n = bytes.len();
    for cut in 0..n {
        assert!(
            decode_never_panics(&bytes[..cut]).is_none(),
            "truncation at {cut}/{n} still decoded a ledger"
        );
    }
    assert!(decode_never_panics(&bytes).is_some());
}

#[test]
fn reordered_entries_fail_verification_with_typed_errors() {
    let system = recorded_machine(0);
    let clean = system.kernel_ledger();
    let n = clean.entries().len();
    assert!(n >= 8, "run too short to reorder meaningfully: {n} entries");

    let mut rng = SimRng::stream(0x1ed9, 1);
    for _ in 0..40 {
        let i = rng.range(0, n as u64) as usize;
        let j = rng.range(0, n as u64) as usize;
        if i == j {
            continue;
        }
        // A plain swap leaves the stored sequence numbers out of order.
        let mut entries = clean.entries().to_vec();
        entries.swap(i, j);
        let tampered = Ledger::from_parts(clean.base_seq(), clean.base_head(), entries);
        assert!(
            matches!(tampered.verify_chain(), Err(LedgerError::SeqGap { .. })),
            "swap({i},{j}) not caught as a sequence gap"
        );

        // A craftier adversary renumbers the swapped entries so the
        // sequence column looks clean; the seals still betray the order.
        let mut entries = clean.entries().to_vec();
        entries.swap(i, j);
        let (si, sj) = (entries[i].seq, entries[j].seq);
        entries[i].seq = sj;
        entries[j].seq = si;
        let tampered = Ledger::from_parts(clean.base_seq(), clean.base_head(), entries);
        assert!(
            matches!(
                tampered.verify_chain(),
                Err(LedgerError::ChainMismatch { .. })
            ),
            "renumbered swap({i},{j}) not caught as a chain mismatch"
        );
    }
}

#[test]
fn splicing_two_real_histories_fails_verification() {
    let a = recorded_machine(0);
    let b = recorded_machine(1);
    let a_ledger = a.kernel_ledger();
    let b_ledger = b.kernel_ledger();
    assert_ne!(
        a_ledger.head(),
        b_ledger.head(),
        "flavored runs were supposed to diverge"
    );

    let max = a_ledger.entries().len().min(b_ledger.entries().len());
    assert!(max >= 4);
    // The boot prefix is identical on both machines; a splice inside it
    // just reproduces machine B's own valid history. The graft is only
    // detectable (and only *wrong*) once A's prefix contains an entry B
    // never recorded.
    let first_diff = (0..max)
        .find(|&i| a_ledger.entries()[i] != b_ledger.entries()[i])
        .expect("flavored runs share every common-length entry");
    // Graft machine B's suffix onto machine A's prefix at every interior
    // point past the divergence. Sequence numbers line up (both histories
    // start at boot), so only the chain seals can expose the graft.
    for k in first_diff + 1..max {
        let mut entries = a_ledger.entries()[..k].to_vec();
        entries.extend_from_slice(&b_ledger.entries()[k..]);
        let spliced = Ledger::from_parts(a_ledger.base_seq(), a_ledger.base_head(), entries);
        let verdict = spliced.verify_chain();
        assert!(
            verdict.is_err(),
            "splice at {k}/{max} verified clean: {verdict:?}"
        );
    }
}

#[test]
fn random_multi_bit_corruption_never_panics_or_verifies() {
    let system = recorded_machine(0);
    let bytes = system.kernel_ledger().to_bytes();
    let mut rng = SimRng::stream(0x1ed9, 2);
    let mut decoded_anyway = 0usize;
    for _ in 0..400 {
        let mut fuzzed = bytes.clone();
        let flips = 1 + rng.range(0, 12) as usize;
        for _ in 0..flips {
            let i = rng.range(0, fuzzed.len() as u64) as usize;
            fuzzed[i] ^= 1 << rng.range(0, 8);
        }
        if fuzzed == bytes {
            continue; // flips cancelled out
        }
        if let Some(ledger) = decode_never_panics(&fuzzed) {
            decoded_anyway += 1;
            assert!(
                ledger.verify_chain().is_err(),
                "multi-bit corruption decoded and verified clean"
            );
        }
    }
    // The corpus should exercise both rejection layers or the container
    // is doing all the work and verify_chain is untested here.
    assert!(
        decoded_anyway < 400,
        "every corruption decoded — fuzz is broken"
    );
}
