//! Dynamic device management end-to-end (§IV-B, *Device mediation*):
//! udev renames, the trusted helper, hot-plug, and the helper-lag window.

use overhaul_core::System;
use overhaul_kernel::device::DeviceClass;
use overhaul_kernel::error::Errno;
use overhaul_sim::SimDuration;
use overhaul_xserver::geometry::Rect;

#[test]
fn hotplugged_device_is_mediated_immediately() {
    let mut machine = System::protected();
    // A USB webcam appears at runtime.
    machine
        .kernel_mut()
        .attach_device(DeviceClass::Camera, "usb webcam", "/dev/video9");
    let spy = machine.spawn_process(None, "/usr/bin/.spy").unwrap();
    assert_eq!(
        machine.open_device(spy, "/dev/video9"),
        Err(Errno::Eacces),
        "hot-plugged devices are protected from the first instant"
    );
}

#[test]
fn rename_with_helper_keeps_protection() {
    let mut machine = System::protected();
    machine
        .kernel_mut()
        .udev_rename_device("/dev/video0", "/dev/video-front")
        .unwrap();
    let spy = machine.spawn_process(None, "/usr/bin/.spy").unwrap();
    // Old path is gone; new path is mediated.
    assert_eq!(machine.open_device(spy, "/dev/video0"), Err(Errno::Enoent));
    assert_eq!(
        machine.open_device(spy, "/dev/video-front"),
        Err(Errno::Eacces)
    );

    // And a legitimate interactive app still works at the new path.
    let app = machine
        .launch_gui_app("/usr/bin/cheese", Rect::new(0, 0, 100, 100))
        .unwrap();
    machine.settle();
    machine.click_window(app.window);
    machine.advance(SimDuration::from_millis(100));
    assert!(machine.open_device(app.pid, "/dev/video-front").is_ok());
}

#[test]
fn helper_lag_window_is_the_documented_gap() {
    let mut machine = System::protected();
    machine
        .kernel_mut()
        .udev_rename_device_without_helper("/dev/video0", "/dev/video-renamed")
        .unwrap();
    let spy = machine.spawn_process(None, "/usr/bin/.spy").unwrap();
    // While the helper lags, the node exists but is unknown to the
    // mediation map: the open proceeds under plain UNIX semantics.
    assert!(
        machine.open_device(spy, "/dev/video-renamed").is_ok(),
        "the lag window is a real (documented) exposure"
    );
    // Once the helper catches up, protection resumes.
    machine
        .kernel_mut()
        .device_map_catch_up("/dev/video0", "/dev/video-renamed");
    let spy2 = machine.spawn_process(None, "/usr/bin/.spy2").unwrap();
    assert_eq!(
        machine.open_device(spy2, "/dev/video-renamed"),
        Err(Errno::Eacces)
    );
}

#[test]
fn sensor_class_devices_are_protected_too() {
    // "These devices could include arbitrary sensors attached to the
    // system" (§III-C).
    let mut machine = System::protected();
    machine
        .kernel_mut()
        .attach_device(DeviceClass::Sensor, "gps", "/dev/gps0");
    let tracker = machine.spawn_process(None, "/usr/bin/.tracker").unwrap();
    assert_eq!(
        machine.open_device(tracker, "/dev/gps0"),
        Err(Errno::Eacces)
    );

    let maps = machine
        .launch_gui_app("/usr/bin/maps", Rect::new(0, 0, 100, 100))
        .unwrap();
    machine.settle();
    machine.click_window(maps.window);
    let fd = machine.open_device(maps.pid, "/dev/gps0").unwrap();
    let reading = machine.kernel_mut().sys_read(maps.pid, fd, 64).unwrap();
    assert!(reading.starts_with(b"reading:gps"));
    assert_eq!(machine.alert_history().last().unwrap().op, "sensor");
}

#[test]
fn unplugged_device_path_stops_existing() {
    let mut machine = System::protected();
    machine
        .kernel_mut()
        .sys_unlink(overhaul_sim::Pid::INIT, "/dev/video0")
        .unwrap();
    let app = machine
        .launch_gui_app("/usr/bin/cheese", Rect::new(0, 0, 100, 100))
        .unwrap();
    machine.settle();
    machine.click_window(app.window);
    assert_eq!(
        machine.open_device(app.pid, "/dev/video0"),
        Err(Errno::Enoent)
    );
}
