//! Dynamic device management end-to-end (§IV-B, *Device mediation*):
//! udev renames, the trusted helper, hot-plug, and the helper-lag window.

use overhaul_core::System;
use overhaul_kernel::device::DeviceClass;
use overhaul_kernel::error::Errno;
use overhaul_kernel::netlink::NetlinkMessage;
use overhaul_kernel::UDEV_HELPER_PATH;
use overhaul_sim::{FaultPlan, FaultSpec, SimDuration};
use overhaul_xserver::geometry::Rect;

#[test]
fn hotplugged_device_is_mediated_immediately() {
    let mut machine = System::protected();
    // A USB webcam appears at runtime.
    machine
        .kernel_mut()
        .attach_device(DeviceClass::Camera, "usb webcam", "/dev/video9");
    let spy = machine.spawn_process(None, "/usr/bin/.spy").unwrap();
    assert_eq!(
        machine.open_device(spy, "/dev/video9"),
        Err(Errno::Eacces),
        "hot-plugged devices are protected from the first instant"
    );
}

#[test]
fn rename_with_helper_keeps_protection() {
    let mut machine = System::protected();
    machine
        .kernel_mut()
        .udev_rename_device("/dev/video0", "/dev/video-front")
        .unwrap();
    let spy = machine.spawn_process(None, "/usr/bin/.spy").unwrap();
    // Old path is gone; new path is mediated.
    assert_eq!(machine.open_device(spy, "/dev/video0"), Err(Errno::Enoent));
    assert_eq!(
        machine.open_device(spy, "/dev/video-front"),
        Err(Errno::Eacces)
    );

    // And a legitimate interactive app still works at the new path.
    let app = machine
        .launch_gui_app("/usr/bin/cheese", Rect::new(0, 0, 100, 100))
        .unwrap();
    machine.settle();
    machine.click_window(app.window);
    machine.advance(SimDuration::from_millis(100));
    assert!(machine.open_device(app.pid, "/dev/video-front").is_ok());
}

#[test]
fn helper_lag_window_is_the_documented_gap() {
    let mut machine = System::protected();
    machine
        .kernel_mut()
        .udev_rename_device_without_helper("/dev/video0", "/dev/video-renamed")
        .unwrap();
    let spy = machine.spawn_process(None, "/usr/bin/.spy").unwrap();
    // While the helper lags, the node exists but is unknown to the
    // mediation map: the open proceeds under plain UNIX semantics.
    assert!(
        machine.open_device(spy, "/dev/video-renamed").is_ok(),
        "the lag window is a real (documented) exposure"
    );
    // Once the helper catches up, protection resumes.
    machine
        .kernel_mut()
        .device_map_catch_up("/dev/video0", "/dev/video-renamed");
    let spy2 = machine.spawn_process(None, "/usr/bin/.spy2").unwrap();
    assert_eq!(
        machine.open_device(spy2, "/dev/video-renamed"),
        Err(Errno::Eacces)
    );
}

#[test]
fn sensor_class_devices_are_protected_too() {
    // "These devices could include arbitrary sensors attached to the
    // system" (§III-C).
    let mut machine = System::protected();
    machine
        .kernel_mut()
        .attach_device(DeviceClass::Sensor, "gps", "/dev/gps0");
    let tracker = machine.spawn_process(None, "/usr/bin/.tracker").unwrap();
    assert_eq!(
        machine.open_device(tracker, "/dev/gps0"),
        Err(Errno::Eacces)
    );

    let maps = machine
        .launch_gui_app("/usr/bin/maps", Rect::new(0, 0, 100, 100))
        .unwrap();
    machine.settle();
    machine.click_window(maps.window);
    let fd = machine.open_device(maps.pid, "/dev/gps0").unwrap();
    let reading = machine.kernel_mut().sys_read(maps.pid, fd, 64).unwrap();
    assert!(reading.starts_with(b"reading:gps"));
    assert_eq!(machine.alert_history().last().unwrap().op, "sensor");
}

#[test]
fn dropped_helper_update_keeps_device_quarantined() {
    let mut machine = System::protected();
    let helper = machine.spawn_process(None, UDEV_HELPER_PATH).unwrap();
    let conn = machine.kernel_mut().netlink_connect(helper).unwrap();

    // A legitimate app earns interaction credit before the fault storm.
    let app = machine
        .launch_gui_app("/usr/bin/cheese", Rect::new(0, 0, 100, 100))
        .unwrap();
    machine.settle();
    machine.click_window(app.window);

    // From here on, every channel message is dropped: the helper's
    // DeviceMapUpdate for the rename never arrives.
    let plan = FaultPlan::new(FaultSpec::quiet(11).with_drop_p(1.0));
    machine.kernel_mut().install_fault_plan(plan.clone());
    machine
        .kernel_mut()
        .udev_rename_device_via_channel(conn, "/dev/video0", "/dev/video-front")
        .expect_err("the update must be lost");

    // Old path is gone from the VFS; new path exists but the device is
    // quarantined — denied even with fresh interaction credit.
    assert_eq!(
        machine.open_device(app.pid, "/dev/video0"),
        Err(Errno::Enoent)
    );
    assert_eq!(
        machine.open_device(app.pid, "/dev/video-front"),
        Err(Errno::Eacces),
        "a lost helper update must fail closed, not fall into the lag gap"
    );
    assert!(
        machine.kernel_audit().matching("quarantined").count() >= 1,
        "the quarantine denial is audited"
    );

    // The helper retransmits once the channel heals: protection resumes
    // at the new path and the quarantine lifts.
    plan.set_armed(false);
    machine
        .kernel_mut()
        .netlink_send(
            conn,
            NetlinkMessage::DeviceMapUpdate {
                old_path: "/dev/video0".into(),
                new_path: "/dev/video-front".into(),
            },
        )
        .expect("retransmission delivers");
    assert!(
        machine.open_device(app.pid, "/dev/video-front").is_ok(),
        "fresh credit grants once the map converges"
    );
}

#[test]
fn delayed_helper_update_converges_without_a_gap() {
    let mut machine = System::protected();
    let helper = machine.spawn_process(None, UDEV_HELPER_PATH).unwrap();
    let conn = machine.kernel_mut().netlink_connect(helper).unwrap();

    let plan = FaultPlan::new(FaultSpec::quiet(12).with_delay_p(1.0));
    machine.kernel_mut().install_fault_plan(plan);
    machine
        .kernel_mut()
        .udev_rename_device_via_channel(conn, "/dev/video0", "/dev/video-front")
        .expect("a delayed update still arrives");

    // The mapping converged after the in-flight delay: the new path is
    // mediated, and at no point was the device reachable unmediated.
    let spy = machine.spawn_process(None, "/usr/bin/.spy").unwrap();
    assert_eq!(machine.open_device(spy, "/dev/video0"), Err(Errno::Enoent));
    assert_eq!(
        machine.open_device(spy, "/dev/video-front"),
        Err(Errno::Eacces)
    );
}

#[test]
fn unplugged_device_path_stops_existing() {
    let mut machine = System::protected();
    machine
        .kernel_mut()
        .sys_unlink(overhaul_sim::Pid::INIT, "/dev/video0")
        .unwrap();
    let app = machine
        .launch_gui_app("/usr/bin/cheese", Rect::new(0, 0, 100, 100))
        .unwrap();
    machine.settle();
    machine.click_window(app.window);
    assert_eq!(
        machine.open_device(app.pid, "/dev/video0"),
        Err(Errno::Enoent)
    );
}
