//! Differential tests for the unified policy engine.
//!
//! The engine replaced a nest of duplicated δ-comparison branches spread
//! over the kernel monitor, the device-open path, and the channel gate.
//! These tests reconstruct that legacy decision shape from kernel
//! observables (read *before* the engine runs) and diff it against the
//! engine's verdicts over randomized timelines — interactions, forks, IPC
//! propagation, ptrace freezes, display-manager crashes and restarts,
//! config flips — plus deterministic fault-plan machines. They also pin the
//! epoch-keyed verdict cache: every invalidation source must force a fresh
//! evaluation, and a cache hit must be indistinguishable from one.

use overhaul_core::{OverhaulConfig, System};
use overhaul_kernel::device::DeviceClass;
use overhaul_kernel::error::Errno;
use overhaul_kernel::monitor::{MonitorConfig, ResourceOp, Verdict};
use overhaul_kernel::netlink::{ChannelState, ConnId, NetlinkMessage};
use overhaul_kernel::policy::DecisionTrace;
use overhaul_kernel::{Kernel, KernelConfig, XORG_PATH};
use overhaul_sim::{Clock, FaultSpec, Pid, SimDuration, Timestamp};
use overhaul_xserver::geometry::Rect;
use proptest::prelude::*;

/// The pre-refactor decision shape, reconstructed from kernel observables:
/// channel gate first, then per-task freeze, then temporal proximity, then
/// grant-all. This is the oracle the engine is diffed against.
fn legacy_verdict(kernel: &Kernel, pid: Pid, at: Timestamp) -> Verdict {
    if kernel.channel_required() && kernel.channel_state() == ChannelState::Down {
        return Verdict::Deny;
    }
    let Ok(task) = kernel.tasks().get(pid) else {
        return Verdict::Deny;
    };
    if task.permissions_frozen() {
        return Verdict::Deny;
    }
    let config = kernel.config().monitor;
    if let Some(t) = task.interaction() {
        if at.saturating_since(t) < config.delta {
            return Verdict::Grant;
        }
    }
    if config.grant_all {
        Verdict::Grant
    } else {
        Verdict::Deny
    }
}

// ------------------------------------------------------------------
// Randomized timelines
// ------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Action {
    Advance(u64),
    Interact(usize),
    Fork(usize),
    MsgSend(usize, usize),
    Freeze(usize),
    Unfreeze(usize),
    CrashX,
    RestartX,
    SetGrantAll(bool),
    SetDelta(u64),
    Query(usize, usize),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (1u64..3500).prop_map(Action::Advance),
        (0usize..16).prop_map(Action::Interact),
        (0usize..16).prop_map(Action::Fork),
        (0usize..16, 0usize..16).prop_map(|(a, b)| Action::MsgSend(a, b)),
        (0usize..16).prop_map(Action::Freeze),
        (0usize..16).prop_map(Action::Unfreeze),
        Just(Action::CrashX),
        Just(Action::RestartX),
        any::<bool>().prop_map(Action::SetGrantAll),
        (500u64..4000).prop_map(Action::SetDelta),
        (0usize..16, 0usize..6).prop_map(|(p, o)| Action::Query(p, o)),
    ]
}

const OPS: [ResourceOp; 6] = [
    ResourceOp::Mic,
    ResourceOp::Cam,
    ResourceOp::Sensor,
    ResourceOp::Screen,
    ResourceOp::Copy,
    ResourceOp::Paste,
];

struct Harness {
    clock: Clock,
    kernel: Kernel,
    conn: Option<ConnId>,
    x_pid: Pid,
    pids: Vec<Pid>,
}

fn harness() -> Harness {
    let clock = Clock::new();
    let mut kernel = Kernel::new(clock.clone(), KernelConfig::default());
    kernel.attach_device(DeviceClass::Microphone, "mic", "/dev/snd/mic0");
    let x_pid = kernel.sys_spawn(Pid::INIT, XORG_PATH).unwrap();
    let conn = kernel.netlink_connect(x_pid).unwrap();
    kernel.set_channel_required(true);
    let pids = (0..4)
        .map(|i| {
            kernel
                .sys_spawn(Pid::INIT, &format!("/usr/bin/app{i}"))
                .unwrap()
        })
        .collect();
    Harness {
        clock,
        kernel,
        conn: Some(conn),
        x_pid,
        pids,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Every verdict the engine produces over a random timeline must match
    /// the legacy decision shape, and re-querying the same instant (a cache
    /// hit) must return a byte-identical outcome.
    #[test]
    fn engine_matches_the_legacy_decision_shape(
        actions in prop::collection::vec(action_strategy(), 1..60)
    ) {
        let mut h = harness();
        for action in actions {
            let now = h.clock.now();
            match action {
                Action::Advance(ms) => {
                    h.clock.advance(SimDuration::from_millis(ms));
                    h.kernel.tick();
                }
                Action::Interact(i) => {
                    let pid = h.pids[i % h.pids.len()];
                    if let Some(conn) = h.conn {
                        let _ = h.kernel.netlink_send(
                            conn,
                            NetlinkMessage::InteractionNotification { pid, at: now },
                        );
                    }
                }
                Action::Fork(i) => {
                    if h.pids.len() < 16 {
                        let parent = h.pids[i % h.pids.len()];
                        if let Ok(child) = h.kernel.sys_fork(parent) {
                            h.pids.push(child);
                        }
                    }
                }
                Action::MsgSend(a, b) => {
                    let from = h.pids[a % h.pids.len()];
                    let to = h.pids[b % h.pids.len()];
                    if let Ok(q) = h.kernel.sys_msgget(from, 0x51) {
                        let _ = h.kernel.sys_msgsnd(from, q, 1, b"m");
                        let _ = h.kernel.sys_msgrcv(to, q, 1);
                    }
                }
                Action::Freeze(i) => {
                    let pid = h.pids[i % h.pids.len()];
                    let _ = h.kernel.sys_ptrace_attach(Pid::INIT, pid);
                }
                Action::Unfreeze(i) => {
                    let pid = h.pids[i % h.pids.len()];
                    let _ = h.kernel.sys_ptrace_detach(Pid::INIT, pid);
                }
                Action::CrashX => {
                    if h.kernel.tasks().is_running(h.x_pid) {
                        let _ = h.kernel.sys_exit(h.x_pid, 139);
                        h.conn = None;
                    }
                }
                Action::RestartX => {
                    if !h.kernel.tasks().is_running(h.x_pid) {
                        if let Ok(x) = h.kernel.sys_spawn(Pid::INIT, XORG_PATH) {
                            h.x_pid = x;
                            h.conn = h.kernel.netlink_connect(x).ok();
                        }
                    }
                }
                Action::SetGrantAll(on) => {
                    let delta = h.kernel.config().monitor.delta;
                    h.kernel.set_monitor_config(MonitorConfig {
                        delta,
                        grant_all: on,
                    });
                }
                Action::SetDelta(ms) => {
                    let grant_all = h.kernel.config().monitor.grant_all;
                    h.kernel.set_monitor_config(MonitorConfig {
                        delta: SimDuration::from_millis(ms),
                        grant_all,
                    });
                }
                Action::Query(i, o) => {
                    let pid = h.pids[i % h.pids.len()];
                    let op = OPS[o % OPS.len()];
                    let expected = legacy_verdict(&h.kernel, pid, now);
                    let first = h.kernel.decide_direct(pid, now, op);
                    prop_assert_eq!(first.verdict, expected);
                    let first_outcome = h.kernel.explain_last(pid, op).copied();
                    // Same instant again: served from the cache, and must be
                    // indistinguishable from a fresh evaluation.
                    let second = h.kernel.decide_direct(pid, now, op);
                    prop_assert_eq!(second, first);
                    let second_outcome = h.kernel.explain_last(pid, op).copied();
                    prop_assert_eq!(second_outcome, first_outcome);
                }
            }
        }
    }
}

// ------------------------------------------------------------------
// Snapshot/restore differential: a restored machine (cold caches) must
// decide and trace exactly like the uninterrupted one
// ------------------------------------------------------------------

/// A system-boundary action for the snapshot differential timelines.
#[derive(Debug, Clone)]
enum SysAction {
    Advance(u64),
    Click,
    Key(char),
    CrashX,
    RestartX,
}

fn sys_action_strategy() -> impl Strategy<Value = SysAction> {
    prop_oneof![
        (1u64..3500).prop_map(SysAction::Advance),
        Just(SysAction::Click),
        (0u32..26).prop_map(|i| SysAction::Key(char::from(b'a' + i as u8))),
        Just(SysAction::CrashX),
        Just(SysAction::RestartX),
    ]
}

/// Applies one action, then queries the engine once and returns everything
/// observable about the decision: the device-open outcome and the engine's
/// full explanation (verdict + [`DecisionTrace`]).
fn step_and_decide(
    system: &mut System,
    app: &overhaul_core::Gui,
    action: &SysAction,
) -> (
    Result<(), Errno>,
    Option<overhaul_kernel::policy::DecisionOutcome>,
) {
    match action {
        SysAction::Advance(ms) => {
            system.advance(SimDuration::from_millis(*ms));
        }
        SysAction::Click => {
            system.click_window(app.window);
        }
        SysAction::Key(ch) => {
            system.key(*ch);
        }
        SysAction::CrashX => {
            if system.x_alive() {
                system.crash_x();
            }
        }
        SysAction::RestartX => {
            if !system.x_alive() {
                let _ = system.restart_x();
            }
        }
    }
    let opened = system.open_device(app.pid, "/dev/snd/mic0").map(|_| ());
    let outcome = system
        .kernel()
        .explain_last(app.pid, ResourceOp::Mic)
        .copied();
    (opened, outcome)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Checkpoint a machine mid-timeline, restore it (which rebuilds the
    /// verdict cache and dup-suppression sets empty), and diff every
    /// subsequent engine decision — verdict, [`DecisionTrace`], and the
    /// resulting syscall outcome — against the uninterrupted run. Any
    /// decision a cold cache could change shows up here.
    #[test]
    fn restored_machine_decides_identically_to_uninterrupted_run(
        prefix in prop::collection::vec(sys_action_strategy(), 1..25),
        suffix in prop::collection::vec(sys_action_strategy(), 1..25),
    ) {
        let mut original = System::new(OverhaulConfig::protected());
        let app = original
            .launch_gui_app("/usr/bin/recorder", Rect::new(0, 0, 100, 100))
            .expect("launch");
        original.settle();
        for action in &prefix {
            let _ = step_and_decide(&mut original, &app, action);
        }

        let snap = original.snapshot();
        let mut restored = System::from_snapshot(&snap).expect("restore");
        prop_assert_eq!(restored.state_hash(), original.state_hash());

        for action in &suffix {
            let uninterrupted = step_and_decide(&mut original, &app, action);
            let resumed = step_and_decide(&mut restored, &app, action);
            prop_assert_eq!(resumed, uninterrupted);
        }
        prop_assert_eq!(restored.state_hash(), original.state_hash());
    }
}

// ------------------------------------------------------------------
// Deterministic fault-plan machines
// ------------------------------------------------------------------

/// Drives whole machines under seeded channel-fault plans and checks that
/// every device-open outcome matches the legacy decision shape computed
/// from the kernel state just before the open.
#[test]
fn faulted_machine_decisions_match_the_legacy_shape() {
    for seed in [1u64, 7, 23] {
        let spec = FaultSpec::quiet(seed).with_drop_p(0.3).with_delay_p(0.2);
        let mut system = System::new(OverhaulConfig::protected().with_fault(spec));
        let app = system
            .launch_gui_app("/usr/bin/recorder", Rect::new(0, 0, 100, 100))
            .expect("launch");
        system.settle();
        for step in 0..40u32 {
            if step % 3 == 0 {
                system.click_window(app.window);
            }
            system.advance(SimDuration::from_millis(400));
            let now = system.now();
            let expected = legacy_verdict(system.kernel(), app.pid, now);
            let result = system.open_device(app.pid, "/dev/snd/mic0");
            match expected {
                Verdict::Grant => {
                    assert!(
                        result.is_ok(),
                        "seed {seed} step {step}: engine denied where the legacy shape grants"
                    );
                }
                Verdict::Deny => {
                    assert_eq!(
                        result,
                        Err(Errno::Eacces),
                        "seed {seed} step {step}: engine granted where the legacy shape denies"
                    );
                }
            }
        }
    }
}

// ------------------------------------------------------------------
// Epoch invalidation, one test per bump source
// ------------------------------------------------------------------

fn kernel_fixture() -> (Clock, Kernel, Pid) {
    let clock = Clock::new();
    let mut kernel = Kernel::new(clock.clone(), KernelConfig::default());
    kernel.attach_device(DeviceClass::Camera, "cam", "/dev/video0");
    let app = kernel.sys_spawn(Pid::INIT, "/usr/bin/app").unwrap();
    (clock, kernel, app)
}

#[test]
fn interaction_bumps_invalidate_cached_denies() {
    let (_clock, mut kernel, app) = kernel_fixture();
    let t = Timestamp::from_millis(100);
    assert!(!kernel
        .decide_direct(app, t, ResourceOp::Cam)
        .verdict
        .is_grant());
    let misses = kernel.verdict_cache_stats().misses;
    kernel.record_interaction_direct(app, t).unwrap();
    let after = kernel.decide_direct(app, Timestamp::from_millis(150), ResourceOp::Cam);
    assert!(after.verdict.is_grant());
    assert_eq!(
        kernel.verdict_cache_stats().misses,
        misses + 1,
        "the interaction epoch bump must force a fresh evaluation"
    );
}

#[test]
fn config_changes_invalidate_cached_grants() {
    let (_clock, mut kernel, app) = kernel_fixture();
    kernel
        .record_interaction_direct(app, Timestamp::ZERO)
        .unwrap();
    let at = Timestamp::from_millis(1_500);
    assert!(kernel
        .decide_direct(app, at, ResourceOp::Cam)
        .verdict
        .is_grant());
    // Shrink δ below the already-cached gap: the global policy epoch moves,
    // so the cached grant must not survive.
    kernel.set_monitor_config(MonitorConfig {
        delta: SimDuration::from_secs(1),
        grant_all: false,
    });
    assert!(!kernel
        .decide_direct(app, at, ResourceOp::Cam)
        .verdict
        .is_grant());
}

#[test]
fn channel_transitions_invalidate_cached_outcomes() {
    let (_clock, mut kernel, app) = kernel_fixture();
    kernel
        .record_interaction_direct(app, Timestamp::from_millis(100))
        .unwrap();
    let at = Timestamp::from_millis(200);
    assert!(kernel
        .decide_direct(app, at, ResourceOp::Cam)
        .verdict
        .is_grant());
    // Requiring a (nonexistent) channel flips the decision to a fail-closed
    // deny at the same instant.
    kernel.set_channel_required(true);
    let denied = kernel.decide_direct(app, at, ResourceOp::Cam);
    assert!(!denied.verdict.is_grant());
    assert!(matches!(
        kernel.explain_last(app, ResourceOp::Cam).unwrap().trace,
        DecisionTrace::ChannelDown
    ));
    // Bringing the channel up bumps the netlink state generation and
    // restores the grant.
    let x = kernel.sys_spawn(Pid::INIT, XORG_PATH).unwrap();
    kernel.netlink_connect(x).unwrap();
    assert_eq!(kernel.channel_state(), ChannelState::Up);
    assert!(kernel
        .decide_direct(app, at, ResourceOp::Cam)
        .verdict
        .is_grant());
}

#[test]
fn device_map_mutations_bump_the_global_epoch() {
    let (_clock, mut kernel, app) = kernel_fixture();
    kernel
        .record_interaction_direct(app, Timestamp::from_millis(100))
        .unwrap();
    let at = Timestamp::from_millis(200);
    assert!(kernel
        .decide_direct(app, at, ResourceOp::Cam)
        .verdict
        .is_grant());
    let epoch = kernel.policy_epoch();
    let hits = kernel.verdict_cache_stats().hits;
    kernel
        .udev_rename_device("/dev/video0", "/dev/video1")
        .unwrap();
    assert!(
        kernel.policy_epoch() > epoch,
        "map mutations must move the global policy epoch"
    );
    // Same query re-evaluates instead of hitting the stale entry.
    assert!(kernel
        .decide_direct(app, at, ResourceOp::Cam)
        .verdict
        .is_grant());
    assert_eq!(
        kernel.verdict_cache_stats().hits,
        hits,
        "the post-mutation query must not be served from the cache"
    );
}

#[test]
fn fork_children_start_at_epoch_zero_and_decide_fresh() {
    let (_clock, mut kernel, app) = kernel_fixture();
    kernel
        .record_interaction_direct(app, Timestamp::from_millis(100))
        .unwrap();
    let child = kernel.sys_fork(app).unwrap();
    assert_eq!(kernel.tasks().get(child).unwrap().interaction_epoch(), 0);
    let at = Timestamp::from_millis(200);
    let misses = kernel.verdict_cache_stats().misses;
    // The child inherits the timestamp (P1) but not the parent's cache
    // entries: its first query is a miss with its own justification.
    assert!(kernel
        .decide_direct(child, at, ResourceOp::Cam)
        .verdict
        .is_grant());
    assert_eq!(kernel.verdict_cache_stats().misses, misses + 1);
}

#[test]
fn freeze_flips_invalidate_cached_grants() {
    let (_clock, mut kernel, app) = kernel_fixture();
    kernel
        .record_interaction_direct(app, Timestamp::from_millis(100))
        .unwrap();
    let child = kernel.sys_fork(app).unwrap();
    let at = Timestamp::from_millis(200);
    assert!(kernel
        .decide_direct(child, at, ResourceOp::Cam)
        .verdict
        .is_grant());
    kernel.sys_ptrace_attach(app, child).unwrap();
    let frozen = kernel.decide_direct(child, at, ResourceOp::Cam);
    assert!(!frozen.verdict.is_grant());
    assert!(matches!(
        kernel.explain_last(child, ResourceOp::Cam).unwrap().trace,
        DecisionTrace::PermissionsFrozen
    ));
    kernel.sys_ptrace_detach(app, child).unwrap();
    assert!(kernel
        .decide_direct(child, at, ResourceOp::Cam)
        .verdict
        .is_grant());
}

// ------------------------------------------------------------------
// Cache behavior visible through the public counters
// ------------------------------------------------------------------

#[test]
fn stable_timelines_are_served_from_the_cache() {
    let (_clock, mut kernel, app) = kernel_fixture();
    kernel
        .record_interaction_direct(app, Timestamp::from_millis(100))
        .unwrap();
    kernel.decide_direct(app, Timestamp::from_millis(200), ResourceOp::Cam);
    let hits = kernel.verdict_cache_stats().hits;
    for ms in [300u64, 400, 500, 600] {
        let out = kernel.decide_direct(app, Timestamp::from_millis(ms), ResourceOp::Cam);
        assert!(out.verdict.is_grant());
    }
    assert_eq!(
        kernel.verdict_cache_stats().hits,
        hits + 4,
        "nothing changed between queries, so every one is a hit"
    );
    // A hit still reports the gap for *its* instant, not the cached one.
    match kernel.explain_last(app, ResourceOp::Cam).unwrap().trace {
        DecisionTrace::WithinThreshold { elapsed, .. } => {
            assert_eq!(elapsed, SimDuration::from_millis(500));
        }
        other => panic!("expected WithinThreshold, got {other:?}"),
    }
}

#[test]
fn cached_grants_expire_exactly_at_delta() {
    let (_clock, mut kernel, app) = kernel_fixture();
    kernel
        .record_interaction_direct(app, Timestamp::ZERO)
        .unwrap();
    assert!(kernel
        .decide_direct(app, Timestamp::from_millis(1_999), ResourceOp::Cam)
        .verdict
        .is_grant());
    // n == δ must deny even though a within-δ grant sits in the cache.
    assert!(!kernel
        .decide_direct(app, Timestamp::from_millis(2_000), ResourceOp::Cam)
        .verdict
        .is_grant());
}

// ------------------------------------------------------------------
// Audit/overlay reason consistency (channel down, quarantine)
// ------------------------------------------------------------------

#[test]
fn channel_down_cause_agrees_between_audit_and_overlay() {
    let mut system = System::protected();
    let app = system
        .launch_gui_app("/usr/bin/recorder", Rect::new(0, 0, 100, 100))
        .expect("launch");
    system.settle();
    system.crash_x();
    assert_eq!(
        system.open_device(app.pid, "/dev/snd/mic0"),
        Err(Errno::Eacces)
    );
    assert!(
        system
            .kernel_audit()
            .matching("op=mic denied (channel down)")
            .count()
            >= 1
    );
    system.restart_x().expect("restart succeeds");
    let alert = system.alert_history().last().expect("replayed alert");
    assert_eq!(alert.reason.as_deref(), Some("channel down"));
    let rendered = alert.render();
    assert!(rendered.contains("(channel down)"));
    assert!(rendered.ends_with("(delayed)"));
}

#[test]
fn quarantine_cause_agrees_between_audit_and_overlay() {
    let mut system = System::protected();
    let app = system
        .launch_gui_app("/usr/bin/recorder", Rect::new(0, 0, 100, 100))
        .expect("launch");
    system.settle();
    system.click_window(app.window);
    // The helper revokes the camera's path; its update for the new path
    // never arrives, so the device is quarantined.
    system
        .kernel_mut()
        .apply_device_map_update("/dev/video0", "/dev/video-not-yet-there");
    assert_eq!(
        system.open_device(app.pid, "/dev/video0"),
        Err(Errno::Eacces),
        "quarantined even with fresh interaction credit"
    );
    let needle = "quarantined pending helper update";
    assert!(
        system
            .kernel_audit()
            .matching(&format!("op=cam denied ({needle})"))
            .count()
            >= 1
    );
    let alert = system.alert_history().last().expect("alert displayed");
    assert_eq!(alert.reason.as_deref(), Some(needle));
    assert!(alert.render().contains(&format!("({needle})")));
}

// ------------------------------------------------------------------
// Batched ingestion differential
// ------------------------------------------------------------------

/// One step of a batched-ingestion timeline: advance virtual time, or
/// ingest a mixed batch described as (is_interaction, gui index, op
/// index) triples stamped at the current virtual time.
#[derive(Debug, Clone)]
enum IngestAction {
    Advance(u64),
    Click(usize),
    Batch(Vec<(bool, usize, usize)>),
}

fn ingest_action_strategy() -> impl Strategy<Value = IngestAction> {
    prop_oneof![
        (1u64..3500).prop_map(IngestAction::Advance),
        (0usize..2).prop_map(IngestAction::Click),
        prop::collection::vec((any::<bool>(), 0usize..3, 0usize..6), 1..24)
            .prop_map(IngestAction::Batch),
    ]
}

/// Builds the concrete event batch for a [`IngestAction::Batch`] against
/// the live system: gui index 2 maps to a dead pid (notifications for it
/// must be dropped, requests must deny as unknown-process).
fn build_ingest_events(
    system: &overhaul_core::System,
    guis: &[overhaul_core::Gui],
    batch: &[(bool, usize, usize)],
) -> Vec<overhaul_kernel::policy::IngestEvent> {
    use overhaul_kernel::policy::{IngestEvent, OpRequest};
    const OPS: [ResourceOp; 6] = [
        ResourceOp::Mic,
        ResourceOp::Cam,
        ResourceOp::Sensor,
        ResourceOp::Screen,
        ResourceOp::Copy,
        ResourceOp::Paste,
    ];
    let at = system.now();
    batch
        .iter()
        .map(|&(interact, who, op)| {
            let pid = guis
                .get(who)
                .map(|g| g.pid)
                .unwrap_or(Pid::from_raw(60_000));
            if interact {
                overhaul_kernel::policy::IngestEvent::Interaction { pid, at }
            } else {
                IngestEvent::Request(OpRequest {
                    pid,
                    op: OPS[op],
                    at,
                })
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Drives two identically-booted machines through the same random
    /// timeline — one ingesting each batch through [`System::ingest_batch`]
    /// in a single call, the other issuing every event individually
    /// through the kernel — and requires byte-identical `state_hash`,
    /// trace dump, and sealed ledger head at the end. Any divergence in
    /// monitor counters, cache state, ledger entries, or span sampling
    /// between the batched and per-event paths shows up here.
    #[test]
    fn ingest_batch_matches_per_event_path(
        actions in prop::collection::vec(ingest_action_strategy(), 1..30),
    ) {
        let boot = || {
            let mut system = System::new(OverhaulConfig::protected());
            let a = system
                .launch_gui_app("/usr/bin/a", Rect::new(0, 0, 100, 100))
                .expect("launch a");
            let b = system
                .launch_gui_app("/usr/bin/b", Rect::new(200, 0, 100, 100))
                .expect("launch b");
            system.settle();
            (system, vec![a, b])
        };
        let (mut batched, guis) = boot();
        let (mut serial, serial_guis) = boot();
        prop_assert_eq!(&guis, &serial_guis, "boot is deterministic");

        for action in &actions {
            match action {
                IngestAction::Advance(ms) => {
                    batched.advance(SimDuration::from_millis(*ms));
                    serial.advance(SimDuration::from_millis(*ms));
                }
                IngestAction::Click(who) => {
                    batched.click_window(guis[*who].window);
                    serial.click_window(guis[*who].window);
                }
                IngestAction::Batch(batch) => {
                    let events = build_ingest_events(&batched, &guis, batch);
                    let outcomes = batched.ingest_batch(&events);
                    prop_assert_eq!(outcomes.len(), events.len());
                    for event in &events {
                        match event {
                            overhaul_kernel::policy::IngestEvent::Request(r) => {
                                serial.kernel_mut().decide_direct(r.pid, r.at, r.op);
                            }
                            overhaul_kernel::policy::IngestEvent::Interaction { pid, at } => {
                                let _ = serial
                                    .kernel_mut()
                                    .record_interaction_direct(*pid, *at);
                            }
                        }
                    }
                    serial.pump_alerts();
                }
            }
        }
        prop_assert_eq!(batched.state_hash(), serial.state_hash());
        prop_assert_eq!(batched.ledger_head(), serial.ledger_head());
        prop_assert_eq!(batched.trace_dump(), serial.trace_dump());
    }

    /// Records a timeline whose batches land in the event log as single
    /// [`Event::IngestBatch`] entries, round-trips the log through bytes
    /// (exercising the batch codec), replays it from boot, and replays the
    /// suffix from a mid-run snapshot. Both replays must re-land on the
    /// recorded state hash and sealed ledger head.
    #[test]
    fn recorded_ingest_batches_replay_from_boot_and_snapshot(
        prefix in prop::collection::vec(ingest_action_strategy(), 1..15),
        suffix in prop::collection::vec(ingest_action_strategy(), 1..15),
    ) {
        use overhaul_core::{replay, replay_from, Event, Recorder};

        let mut rec = Recorder::new(OverhaulConfig::protected());
        let a = rec
            .apply(Event::LaunchGuiApp {
                exe: "/usr/bin/a".into(),
                rect: Rect::new(0, 0, 100, 100),
            })
            .gui()
            .expect("launch a");
        let b = rec
            .apply(Event::LaunchGuiApp {
                exe: "/usr/bin/b".into(),
                rect: Rect::new(200, 0, 100, 100),
            })
            .gui()
            .expect("launch b");
        rec.apply(Event::Settle);
        let guis = vec![a, b];

        let record = |rec: &mut Recorder, actions: &[IngestAction]| {
            for action in actions {
                let event = match action {
                    IngestAction::Advance(ms) => Event::Advance(SimDuration::from_millis(*ms)),
                    IngestAction::Click(who) => Event::ClickWindow {
                        window: guis[*who].window,
                    },
                    IngestAction::Batch(batch) => Event::IngestBatch {
                        events: build_ingest_events(rec.system(), &guis, batch),
                    },
                };
                rec.apply(event);
            }
        };
        record(&mut rec, &prefix);
        let snap = rec.snapshot();
        let taken_at = rec.events_recorded();
        record(&mut rec, &suffix);
        let (recorded, log) = rec.finish();

        let bytes = log.to_bytes();
        let log = overhaul_core::EventLog::from_bytes(&bytes).expect("codec round-trip");

        let replayed = replay(&log).expect("replay from boot");
        prop_assert_eq!(replayed.state_hash(), recorded.state_hash());
        prop_assert_eq!(replayed.ledger_head(), recorded.ledger_head());

        let resumed = replay_from(&snap, log.suffix(taken_at), log.final_state_hash)
            .expect("replay from snapshot");
        prop_assert_eq!(resumed.state_hash(), recorded.state_hash());
        prop_assert_eq!(resumed.ledger_head(), recorded.ledger_head());
    }
}
