//! Adversarial decode robustness at the *system* level: corrupt real
//! `System` snapshots, sealed `EventLog`s, and `FailureTriple`s must
//! produce `SnapshotError`s (or, at worst, a parse that decodes to
//! different-but-valid data) — never a panic, never an abort.
//!
//! The sim crate unit-tests the codec on synthetic nested structures;
//! this suite feeds the fuzzed bytes to the full restore paths the fleet
//! harness depends on for bisection.

use std::panic::{self, AssertUnwindSafe};

use overhaul_core::{Event, EventLog, OverhaulConfig, Recorder, System};
use overhaul_fleet::FailureTriple;
use overhaul_fleet::{run_shard, FleetWorkload, ShardBeat, ShardOutcome, ShardPlan};
use overhaul_sim::{SimDuration, SimRng, Snapshot};

fn recorded_machine() -> (System, EventLog, Snapshot) {
    let mut rec = Recorder::new(OverhaulConfig::protected());
    let gui = rec
        .apply(Event::LaunchGuiApp {
            exe: "/usr/bin/editor".into(),
            rect: overhaul_xserver::geometry::Rect::new(5, 5, 320, 240),
        })
        .gui()
        .expect("launch");
    rec.apply(Event::Settle);
    rec.apply(Event::ClickWindow { window: gui.window });
    rec.apply(Event::OpenDevice {
        pid: gui.pid,
        path: "/dev/video0".into(),
    });
    rec.apply(Event::Advance(SimDuration::from_secs(7)));
    let snap = rec.snapshot();
    let (system, log) = rec.finish();
    (system, log, snap)
}

/// Decoding must be panic-free: returns whether it parsed at all.
fn restore_never_panics(bytes: &[u8]) -> bool {
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        Snapshot::from_bytes(bytes).and_then(|s| System::from_snapshot(&s).map(|_| ()))
    }));
    match outcome {
        Ok(result) => result.is_ok(),
        Err(_) => panic!("System restore panicked on corrupt input"),
    }
}

#[test]
fn truncated_system_snapshots_error_cleanly_at_every_sampled_point() {
    let (_, _, snap) = recorded_machine();
    let bytes = snap.to_bytes();
    // Every point near the ends (headers, section table, trailer) plus a
    // stride through the interior.
    let n = bytes.len();
    let points: Vec<usize> = (0..n.min(256))
        .chain((256..n.saturating_sub(256)).step_by(97))
        .chain(n.saturating_sub(256)..n)
        .collect();
    for cut in points {
        let parsed = restore_never_panics(&bytes[..cut]);
        assert!(!parsed, "truncation at {cut}/{n} still restored a machine");
    }
    // The untruncated bytes do restore.
    assert!(restore_never_panics(&bytes));
}

#[test]
fn random_multi_bit_corruption_of_system_snapshots_never_panics() {
    let (system, _, snap) = recorded_machine();
    let clean_hash = system.state_hash();
    let bytes = snap.to_bytes();
    let mut rng = SimRng::stream(0xfa11, 7);
    let mut parsed_anyway = 0usize;
    for _ in 0..300 {
        let mut fuzzed = bytes.clone();
        let flips = 1 + rng.range(0, 12) as usize;
        for _ in 0..flips {
            let i = rng.range(0, fuzzed.len() as u64) as usize;
            let bit = rng.range(0, 8) as u8;
            fuzzed[i] ^= 1 << bit;
        }
        if restore_never_panics(&fuzzed) {
            parsed_anyway += 1;
        }
    }
    // Some corruptions (e.g. inside ignored padding or flipped back)
    // may still parse; that's fine — the property is no panic and no
    // silent wrong machine *with the clean hash* from different state.
    let reparsed = Snapshot::from_bytes(&bytes).expect("clean parse");
    assert_eq!(
        System::from_snapshot(&reparsed)
            .expect("clean restore")
            .state_hash(),
        clean_hash
    );
    assert!(
        parsed_anyway < 300,
        "every corruption parsed — fuzz is broken"
    );
}

#[test]
fn corrupt_event_logs_error_cleanly() {
    let (_, log, _) = recorded_machine();
    let bytes = log.to_bytes();
    let n = bytes.len();
    for cut in 0..n {
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            EventLog::from_bytes(&bytes[..cut]).map(|_| ())
        }));
        match outcome {
            Ok(result) => assert!(result.is_err(), "truncated log at {cut}/{n} still parsed"),
            Err(_) => panic!("EventLog::from_bytes panicked at truncation {cut}"),
        }
    }
    let mut rng = SimRng::stream(0x106, 1);
    for _ in 0..500 {
        let mut fuzzed = bytes.clone();
        for _ in 0..=rng.range(0, 8) {
            let i = rng.range(0, fuzzed.len() as u64) as usize;
            fuzzed[i] ^= 1 << rng.range(0, 8);
        }
        panic::catch_unwind(AssertUnwindSafe(|| {
            let _ = EventLog::from_bytes(&fuzzed);
        }))
        .expect("EventLog::from_bytes panicked on corrupt input");
    }
}

#[test]
fn corrupt_failure_triples_error_cleanly_and_clean_ones_survive() {
    // Produce a real failure triple via a forced-panic shard.
    overhaul_fleet::quiet_injected_panics();
    let mut plan = ShardPlan::derive(0x7419, 0, &FleetWorkload::default());
    plan.chaos.panic_at = Some(20);
    let report = std::thread::Builder::new()
        .name("overhaul-shard-adv".into())
        .spawn(move || run_shard(&plan, &ShardBeat::new()))
        .unwrap()
        .join()
        .unwrap();
    let triple = match report.outcome {
        ShardOutcome::Failed(t) => *t,
        ShardOutcome::Ok { .. } => panic!("forced panic shard completed"),
    };
    let bytes = triple.to_bytes();
    assert!(FailureTriple::from_bytes(&bytes).is_ok());

    let n = bytes.len();
    let points: Vec<usize> = (0..n.min(128))
        .chain((128..n.saturating_sub(128)).step_by(131))
        .chain(n.saturating_sub(128)..n)
        .collect();
    for cut in points {
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            FailureTriple::from_bytes(&bytes[..cut]).map(|_| ())
        }));
        match outcome {
            Ok(result) => assert!(result.is_err(), "truncated triple at {cut}/{n} parsed"),
            Err(_) => panic!("FailureTriple::from_bytes panicked at truncation {cut}"),
        }
    }
    let mut rng = SimRng::stream(0xadfe, 3);
    for _ in 0..300 {
        let mut fuzzed = bytes.clone();
        for _ in 0..=rng.range(0, 10) {
            let i = rng.range(0, fuzzed.len() as u64) as usize;
            fuzzed[i] ^= 1 << rng.range(0, 8);
        }
        panic::catch_unwind(AssertUnwindSafe(|| {
            let _ = FailureTriple::from_bytes(&fuzzed);
        }))
        .expect("FailureTriple::from_bytes panicked on corrupt input");
    }
}
