//! End-to-end smoke tests over every experiment harness: each paper claim
//! is regenerated at reduced scale and its headline direction asserted.

use overhaul_apps::campaign::{outcome_granted, CampaignDriver, CampaignKind};
use overhaul_apps::workload::{run_empirical_experiment, WorkloadConfig};
use overhaul_bench::ablation::{sweep_delta, sweep_propagation, sweep_shm_wait, sweep_visibility};
use overhaul_bench::applicability;
use overhaul_bench::table1::{self, Scale};
use overhaul_bench::usability::{self, StudyConfig};
use overhaul_core::{replay, replay_from, Event, EventLog, OverhaulConfig, Recorder, System};
use overhaul_kernel::device::DeviceClass;
use overhaul_sim::SimDuration;
use overhaul_xserver::geometry::Rect;
use overhaul_xserver::protocol::{Atom, Reply, Request, XEvent};

fn small_screen(mut config: OverhaulConfig) -> OverhaulConfig {
    config.x.screen = Rect::new(0, 0, 160, 100);
    config
}

#[test]
fn table1_smoke_all_rows_measurable() {
    let rows = table1::run_all(Scale {
        device_opens: 500,
        pastes: 30,
        captures: 3,
        shm_writes: 5_000,
        files: 200,
    });
    assert_eq!(rows.len(), 5);
    for row in &rows {
        assert!(row.baseline.as_nanos() > 0);
        // At tiny scales jitter dominates; the assertion is only that the
        // measurement machinery produces finite overheads.
        assert!(row.overhead_pct().is_finite(), "{}", row.name);
    }
}

#[test]
fn usability_smoke_transparency_and_blocking() {
    let report = usability::run_study(StudyConfig {
        participants: 8,
        ..StudyConfig::default()
    });
    assert_eq!(report.calls_succeeded, 8);
    assert_eq!(report.probes_blocked, 8);
    assert_eq!(report.likert[0], 8, "task 1: everyone rates it identical");
}

#[test]
fn applicability_smoke_no_false_positives() {
    // A slice of each corpus keeps the smoke test fast; the full corpora
    // run in the bench-crate unit tests and the binary.
    let device_pool = overhaul_apps::corpus::device_corpus();
    let (report, _) =
        applicability::run_corpus("device-slice", &device_pool[..12], System::protected);
    assert_eq!(
        report.false_positives, 0,
        "broken: {:?}",
        report.broken_apps
    );
    let clip_pool = overhaul_apps::corpus::clipboard_corpus();
    let (report, _) = applicability::run_corpus("clip-slice", &clip_pool[..10], System::protected);
    assert_eq!(report.false_positives, 0);
}

#[test]
fn empirical_smoke_protected_vs_baseline() {
    let config = WorkloadConfig {
        days: 1,
        actions_per_day: 30,
        spy_interval: SimDuration::from_secs(1200),
        seed: 99,
    };
    let mut protected = System::new(small_screen(OverhaulConfig::protected()));
    let p = run_empirical_experiment(&mut protected, config);
    assert_eq!(p.items_stolen, 0);
    assert_eq!(p.legit_denied, 0);

    let mut baseline = System::new(small_screen(OverhaulConfig::baseline()));
    let b = run_empirical_experiment(&mut baseline, config);
    assert!(b.items_stolen > 0, "{b:?}");
}

// ------------------------------------------------------------------
// Record/replay goldens: each example program's workload, scripted
// through the Recorder, must replay to a byte-identical state hash —
// including from the serialized event log.
// ------------------------------------------------------------------

/// Replays a sealed recording twice — from the in-memory log and from its
/// serialized bytes — and asserts both land on the recorded hash.
fn assert_replay_golden(recorded: &System, log: &EventLog) {
    let recorded_hash = recorded.state_hash();
    assert_eq!(log.final_state_hash, Some(recorded_hash));
    let replayed = replay(log).expect("replay boots");
    assert_eq!(replayed.state_hash(), recorded_hash, "replay diverged");
    assert_eq!(replayed.kernel().snapshot_stats().replay_divergence, 0);

    let decoded = EventLog::from_bytes(&log.to_bytes()).expect("log round-trip");
    let replayed = replay(&decoded).expect("replay boots");
    assert_eq!(
        replayed.state_hash(),
        recorded_hash,
        "replay from serialized log diverged"
    );
}

fn launch(rec: &mut Recorder, exe: &str, rect: Rect) -> overhaul_core::Gui {
    rec.apply(Event::LaunchGuiApp {
        exe: exe.into(),
        rect,
    })
    .gui()
    .expect("launch")
}

fn open(
    rec: &mut Recorder,
    pid: overhaul_sim::Pid,
    path: &str,
) -> overhaul_core::replay::ApplyOutcome {
    rec.apply(Event::OpenDevice {
        pid,
        path: path.into(),
    })
}

#[test]
fn replay_golden_quickstart() {
    let mut rec = Recorder::new(OverhaulConfig::protected());
    let app = launch(&mut rec, "/usr/bin/recorder", Rect::new(0, 0, 640, 480));
    rec.apply(Event::Settle);
    assert!(open(&mut rec, app.pid, "/dev/snd/mic0").fd().is_err());
    rec.apply(Event::ClickWindow { window: app.window });
    rec.apply(Event::Advance(SimDuration::from_millis(300)));
    let fd = open(&mut rec, app.pid, "/dev/snd/mic0").fd().expect("open");
    rec.apply(Event::SysRead {
        pid: app.pid,
        fd,
        max: 64,
    });
    rec.apply(Event::Advance(SimDuration::from_secs(3)));
    assert!(open(&mut rec, app.pid, "/dev/snd/mic0").fd().is_err());
    let (recorded, log) = rec.finish();
    assert_replay_golden(&recorded, &log);
}

#[test]
fn replay_golden_audit_timeline() {
    let mut rec = Recorder::new(OverhaulConfig::protected());
    let app = launch(&mut rec, "/usr/bin/recorder", Rect::new(0, 0, 300, 200));
    rec.apply(Event::Settle);
    rec.apply(Event::ClickWindow { window: app.window });
    rec.apply(Event::Advance(SimDuration::from_millis(120)));
    let fd = open(&mut rec, app.pid, "/dev/snd/mic0").fd().expect("open");
    rec.apply(Event::SysClose { pid: app.pid, fd });
    rec.apply(Event::XRequest {
        client: app.client,
        request: Request::SetSelectionOwner {
            selection: Atom::clipboard(),
            window: app.window,
        },
    });
    rec.apply(Event::Advance(SimDuration::from_secs(30)));
    let spy = rec
        .apply(Event::SpawnProcess {
            parent: None,
            exe: "/usr/bin/.spy".into(),
        })
        .pid()
        .expect("spawn");
    assert!(open(&mut rec, spy, "/dev/video0").fd().is_err());
    let spy_client = rec.apply(Event::ConnectX { pid: spy }).client();
    rec.apply(Event::XRequest {
        client: spy_client,
        request: Request::GetImage { window: None },
    });
    let (recorded, log) = rec.finish();
    assert_replay_golden(&recorded, &log);
}

#[test]
fn replay_golden_malware_blocked() {
    let mut rec = Recorder::new(OverhaulConfig::protected());
    let mail = launch(&mut rec, "/usr/bin/thunderbird", Rect::new(0, 0, 320, 200));
    rec.apply(Event::Settle);
    let spy = rec
        .apply(Event::SpawnProcess {
            parent: None,
            exe: "/usr/bin/.spy".into(),
        })
        .pid()
        .expect("spawn");
    let spy_client = rec.apply(Event::ConnectX { pid: spy }).client();
    for _ in 0..3 {
        rec.apply(Event::Advance(SimDuration::from_secs(60)));
        assert!(open(&mut rec, spy, "/dev/snd/mic0").fd().is_err());
        assert!(open(&mut rec, spy, "/dev/video0").fd().is_err());
        assert!(rec
            .apply(Event::XRequest {
                client: spy_client,
                request: Request::GetImage { window: None },
            })
            .x()
            .is_err());
    }
    // The user's own app still works right after a click.
    rec.apply(Event::ClickWindow {
        window: mail.window,
    });
    assert!(open(&mut rec, mail.pid, "/dev/snd/mic0").fd().is_ok());
    let (recorded, log) = rec.finish();
    assert_replay_golden(&recorded, &log);
}

#[test]
fn replay_golden_multiprocess_browser() {
    let mut rec = Recorder::new(OverhaulConfig::protected());
    let browser = launch(&mut rec, "/usr/bin/chromium", Rect::new(0, 0, 1024, 700));
    let shm = rec
        .apply(Event::SysShmGet {
            pid: browser.pid,
            key: 0xbeef,
            pages: 16,
        })
        .shm()
        .expect("shmget");
    let main_vma = rec
        .apply(Event::SysShmAt {
            pid: browser.pid,
            shm,
        })
        .vma()
        .expect("shmat");
    let tab = rec
        .apply(Event::SysFork { pid: browser.pid })
        .pid()
        .expect("fork");
    rec.apply(Event::SysExecve {
        pid: tab,
        exe: "/usr/bin/chromium-tab".into(),
    });
    let tab_vma = rec
        .apply(Event::SysShmAt { pid: tab, shm })
        .vma()
        .expect("shmat");
    rec.apply(Event::Advance(SimDuration::from_secs(30)));
    rec.apply(Event::Settle);
    assert!(open(&mut rec, tab, "/dev/video0").fd().is_err());
    rec.apply(Event::ClickWindow {
        window: browser.window,
    });
    rec.apply(Event::SysShmWrite {
        pid: browser.pid,
        vma: main_vma,
        offset: 0,
        data: b"start-video".to_vec(),
    });
    rec.apply(Event::SysShmRead {
        pid: tab,
        vma: tab_vma,
        offset: 0,
        len: 11,
    });
    let fd = open(&mut rec, tab, "/dev/video0").fd().expect("P2 carries");
    rec.apply(Event::SysRead {
        pid: tab,
        fd,
        max: 64,
    });
    let (recorded, log) = rec.finish();
    assert_replay_golden(&recorded, &log);
}

#[test]
fn replay_golden_sensor_gps() {
    let mut rec = Recorder::new(OverhaulConfig::protected());
    rec.apply(Event::AttachDevice {
        class: DeviceClass::Sensor,
        label: "usb gps".into(),
        path: "/dev/gps0".into(),
    });
    let tracker = rec
        .apply(Event::SpawnProcess {
            parent: None,
            exe: "/usr/bin/.tracker".into(),
        })
        .pid()
        .expect("spawn");
    for _ in 0..3 {
        rec.apply(Event::Advance(SimDuration::from_secs(60)));
        assert!(open(&mut rec, tracker, "/dev/gps0").fd().is_err());
    }
    let maps = launch(&mut rec, "/usr/bin/maps", Rect::new(0, 0, 800, 600));
    rec.apply(Event::Settle);
    rec.apply(Event::ClickWindow {
        window: maps.window,
    });
    rec.apply(Event::Advance(SimDuration::from_millis(150)));
    let fd = open(&mut rec, maps.pid, "/dev/gps0").fd().expect("open");
    rec.apply(Event::SysRead {
        pid: maps.pid,
        fd,
        max: 64,
    });
    rec.apply(Event::UdevRename {
        old: "/dev/gps0".into(),
        new: "/dev/gps1".into(),
    });
    rec.apply(Event::Advance(SimDuration::from_secs(5)));
    assert!(open(&mut rec, tracker, "/dev/gps1").fd().is_err());
    let (recorded, log) = rec.finish();
    assert_replay_golden(&recorded, &log);
}

#[test]
fn replay_golden_terminal_workflow() {
    let mut rec = Recorder::new(OverhaulConfig::protected());
    let xterm = launch(&mut rec, "/usr/bin/xterm", Rect::new(0, 0, 640, 400));
    let (master, slave) = rec
        .apply(Event::SysOpenPty { pid: xterm.pid })
        .fds()
        .expect("openpty");
    let bash = rec
        .apply(Event::SysFork { pid: xterm.pid })
        .pid()
        .expect("fork");
    rec.apply(Event::SysExecve {
        pid: bash,
        exe: "/bin/bash".into(),
    });
    rec.apply(Event::Advance(SimDuration::from_secs(20)));
    rec.apply(Event::Settle);
    let stale = rec
        .apply(Event::SysSpawn {
            parent: bash,
            exe: "/usr/bin/scrot".into(),
        })
        .pid()
        .expect("spawn");
    let stale_client = rec.apply(Event::ConnectX { pid: stale }).client();
    assert!(rec
        .apply(Event::XRequest {
            client: stale_client,
            request: Request::GetImage { window: None },
        })
        .x()
        .is_err());
    rec.apply(Event::ClickWindow {
        window: xterm.window,
    });
    rec.apply(Event::SysWrite {
        pid: xterm.pid,
        fd: master,
        data: b"scrot\n".to_vec(),
    });
    rec.apply(Event::SysRead {
        pid: bash,
        fd: slave,
        max: 64,
    });
    let scrot = rec
        .apply(Event::SysSpawn {
            parent: bash,
            exe: "/usr/bin/scrot".into(),
        })
        .pid()
        .expect("spawn");
    let scrot_client = rec.apply(Event::ConnectX { pid: scrot }).client();
    assert!(matches!(
        rec.apply(Event::XRequest {
            client: scrot_client,
            request: Request::GetImage { window: None },
        })
        .x(),
        Ok(Reply::Image(_))
    ));
    let (recorded, log) = rec.finish();
    assert_replay_golden(&recorded, &log);
}

#[test]
fn replay_golden_video_conference() {
    let mut rec = Recorder::new(OverhaulConfig::protected());
    let skype = launch(&mut rec, "/usr/bin/skype", Rect::new(100, 100, 800, 600));
    assert!(open(&mut rec, skype.pid, "/dev/video0").fd().is_err());
    rec.apply(Event::Settle);
    rec.apply(Event::ClickWindow {
        window: skype.window,
    });
    rec.apply(Event::Advance(SimDuration::from_millis(400)));
    let cam = open(&mut rec, skype.pid, "/dev/video0").fd().expect("cam");
    let mic = open(&mut rec, skype.pid, "/dev/snd/mic0")
        .fd()
        .expect("mic");
    for _ in 0..3 {
        rec.apply(Event::SysRead {
            pid: skype.pid,
            fd: cam,
            max: 64,
        });
        rec.apply(Event::SysRead {
            pid: skype.pid,
            fd: mic,
            max: 64,
        });
        rec.apply(Event::Advance(SimDuration::from_millis(33)));
    }
    rec.apply(Event::Advance(SimDuration::from_secs(60)));
    rec.apply(Event::SysRead {
        pid: skype.pid,
        fd: cam,
        max: 64,
    });
    let (recorded, log) = rec.finish();
    assert_replay_golden(&recorded, &log);
}

#[test]
fn replay_golden_clipboard_protection() {
    const SECRET: &[u8] = b"correct-horse-battery-staple";
    let mut rec = Recorder::new(OverhaulConfig::protected());
    let manager = launch(&mut rec, "/usr/bin/keepassx", Rect::new(0, 0, 300, 200));
    let browser = launch(&mut rec, "/usr/bin/firefox", Rect::new(400, 0, 600, 400));
    rec.apply(Event::Settle);

    // Copy after a real click...
    rec.apply(Event::ClickWindow {
        window: manager.window,
    });
    rec.apply(Event::XRequest {
        client: manager.client,
        request: Request::SetSelectionOwner {
            selection: Atom::clipboard(),
            window: manager.window,
        },
    });
    // ...then paste into the browser, running the full selection protocol
    // (owner answers the SelectionRequest, browser fetches the property).
    rec.apply(Event::Advance(SimDuration::from_millis(500)));
    rec.apply(Event::ClickWindow {
        window: browser.window,
    });
    rec.apply(Event::XRequest {
        client: browser.client,
        request: Request::ConvertSelection {
            selection: Atom::clipboard(),
            requestor: browser.window,
            property: Atom::new("XSEL_DATA"),
        },
    })
    .x()
    .expect("paste allowed after click");
    let requests = rec
        .apply(Event::DrainEvents {
            client: manager.client,
        })
        .events()
        .expect("owner queue");
    for event in requests {
        if let XEvent::SelectionRequest {
            selection,
            requestor,
            property,
        } = event
        {
            rec.apply(Event::XRequest {
                client: manager.client,
                request: Request::ChangeProperty {
                    window: requestor,
                    property: property.clone(),
                    data: SECRET.to_vec(),
                },
            });
            rec.apply(Event::XRequest {
                client: manager.client,
                request: Request::SendEvent {
                    target: requestor,
                    event: Box::new(XEvent::SelectionNotify {
                        selection,
                        property,
                    }),
                },
            });
        }
    }
    let notify = rec
        .apply(Event::DrainEvents {
            client: browser.client,
        })
        .events()
        .expect("browser queue")
        .into_iter()
        .find_map(|e| match e {
            XEvent::SelectionNotify { property, .. } => Some(property),
            _ => None,
        })
        .expect("notify delivered");
    let pasted = rec
        .apply(Event::XRequest {
            client: browser.client,
            request: Request::GetProperty {
                window: browser.window,
                property: notify,
                delete: true,
            },
        })
        .x()
        .expect("fetch");
    assert!(matches!(pasted, Reply::Property(Some(ref d)) if d == SECRET));

    // A fresh copy, then the background sniffer strikes — and is blocked.
    rec.apply(Event::ClickWindow {
        window: manager.window,
    });
    rec.apply(Event::XRequest {
        client: manager.client,
        request: Request::SetSelectionOwner {
            selection: Atom::clipboard(),
            window: manager.window,
        },
    });
    rec.apply(Event::Advance(SimDuration::from_secs(30)));
    let sniffer = rec
        .apply(Event::SpawnProcess {
            parent: None,
            exe: "/usr/bin/.sniffer".into(),
        })
        .pid()
        .expect("spawn");
    let sniffer_client = rec.apply(Event::ConnectX { pid: sniffer }).client();
    let sniffer_window = match rec
        .apply(Event::XRequest {
            client: sniffer_client,
            request: Request::CreateWindow {
                rect: Rect::new(0, 0, 1, 1),
            },
        })
        .x()
        .expect("create")
    {
        Reply::Window(w) => w,
        other => panic!("expected a window, got {other:?}"),
    };
    assert!(rec
        .apply(Event::XRequest {
            client: sniffer_client,
            request: Request::ConvertSelection {
                selection: Atom::clipboard(),
                requestor: sniffer_window,
                property: Atom::new("LOOT"),
            },
        })
        .x()
        .is_err());
    let (recorded, log) = rec.finish();
    assert_replay_golden(&recorded, &log);
}

// ------------------------------------------------------------------
// Campaign goldens: the multi-stage attack-campaign scripts must replay
// to byte-identical state hashes, trace dumps, and ledger heads — from
// boot AND from a snapshot taken mid-campaign, with the driver's actor
// handles re-derived purely from the replayed outcomes.
// ------------------------------------------------------------------

/// Drives one catalog campaign stage by stage over a tracing recorder,
/// checkpointing halfway, then asserts all three replay paths (boot,
/// serialized bytes, mid-campaign snapshot) land on the recorded
/// `state_hash`, `trace_dump`, and ledger head. Returns each stage's
/// observed grant/deny for the caller's semantic assertions.
fn assert_campaign_golden(kind: CampaignKind) -> Vec<(&'static str, Option<bool>)> {
    let campaign = kind.build();
    let mut rec = Recorder::new(OverhaulConfig::protected().with_tracing());
    let mut driver = CampaignDriver::new();
    let mid = campaign.stages.len() / 2;
    let mut checkpoint = None;
    let mut outcomes = Vec::new();
    for (i, stage) in campaign.stages.iter().enumerate() {
        if i == mid {
            checkpoint = Some((rec.snapshot(), rec.events_recorded()));
        }
        let event = driver.resolve(rec.system(), &stage.action);
        let outcome = rec.apply(event.clone());
        driver.absorb(&stage.action, &outcome);
        outcomes.push((stage.label, outcome_granted(&event, &outcome)));
    }
    let (recorded, log) = rec.finish();
    assert_replay_golden(&recorded, &log);

    let from_boot = replay(&log).expect("replay boots");
    assert_eq!(
        from_boot.trace_dump(),
        recorded.trace_dump(),
        "trace dump diverged on boot replay"
    );
    assert_eq!(from_boot.ledger_head(), recorded.ledger_head());

    let (snapshot, at) = checkpoint.expect("campaign has stages");
    let restored =
        replay_from(&snapshot, log.suffix(at), log.final_state_hash).expect("snapshot replay");
    assert_eq!(
        restored.state_hash(),
        recorded.state_hash(),
        "state hash diverged from the mid-campaign snapshot"
    );
    assert_eq!(
        restored.trace_dump(),
        recorded.trace_dump(),
        "trace dump diverged from the mid-campaign snapshot"
    );
    assert_eq!(restored.ledger_head(), recorded.ledger_head());
    outcomes
}

#[test]
fn replay_golden_hover_theft_campaign() {
    let outcomes = assert_campaign_golden(CampaignKind::HoverTheft);
    let granted = |label: &str| outcomes.iter().find(|(l, _)| *l == label).expect(label).1;
    assert_eq!(granted("mic after suppressed click"), Some(false));
    assert_eq!(granted("cam after forged input"), Some(false));
    assert_eq!(granted("mic within delta of the stolen click"), Some(true));
}

#[test]
fn replay_golden_delegation_abuse_campaign() {
    let outcomes = assert_campaign_golden(CampaignKind::DelegationAbuse);
    let granted = |label: &str| outcomes.iter().find(|(l, _)| *l == label).expect(label).1;
    assert_eq!(granted("cam before any hop"), Some(false));
    assert_eq!(granted("cam via fresh delegation hop"), Some(true));
    assert_eq!(granted("cam via stale hop"), Some(false));
}

#[test]
fn ablation_smoke_directions_hold() {
    let delta = sweep_delta(&[500, 2000], 20, 5);
    assert!(delta[0].false_deny_rate >= delta[1].false_deny_rate);

    let shm = sweep_shm_wait(&[100, 1000], 10, 5);
    assert!(shm[0].faults_per_10k >= shm[1].faults_per_10k);

    let vis = sweep_visibility(&[0, 500], 20, 5);
    assert!(vis[0].popup_attack_succeeds);
    assert!(!vis[1].popup_attack_succeeds);

    let prop = sweep_propagation();
    assert_eq!(prop.functional_without_p2, 0);
}
