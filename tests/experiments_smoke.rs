//! End-to-end smoke tests over every experiment harness: each paper claim
//! is regenerated at reduced scale and its headline direction asserted.

use overhaul_apps::workload::{run_empirical_experiment, WorkloadConfig};
use overhaul_bench::ablation::{sweep_delta, sweep_propagation, sweep_shm_wait, sweep_visibility};
use overhaul_bench::applicability;
use overhaul_bench::table1::{self, Scale};
use overhaul_bench::usability::{self, StudyConfig};
use overhaul_core::{OverhaulConfig, System};
use overhaul_sim::SimDuration;
use overhaul_xserver::geometry::Rect;

fn small_screen(mut config: OverhaulConfig) -> OverhaulConfig {
    config.x.screen = Rect::new(0, 0, 160, 100);
    config
}

#[test]
fn table1_smoke_all_rows_measurable() {
    let rows = table1::run_all(Scale {
        device_opens: 500,
        pastes: 30,
        captures: 3,
        shm_writes: 5_000,
        files: 200,
    });
    assert_eq!(rows.len(), 5);
    for row in &rows {
        assert!(row.baseline.as_nanos() > 0);
        // At tiny scales jitter dominates; the assertion is only that the
        // measurement machinery produces finite overheads.
        assert!(row.overhead_pct().is_finite(), "{}", row.name);
    }
}

#[test]
fn usability_smoke_transparency_and_blocking() {
    let report = usability::run_study(StudyConfig {
        participants: 8,
        ..StudyConfig::default()
    });
    assert_eq!(report.calls_succeeded, 8);
    assert_eq!(report.probes_blocked, 8);
    assert_eq!(report.likert[0], 8, "task 1: everyone rates it identical");
}

#[test]
fn applicability_smoke_no_false_positives() {
    // A slice of each corpus keeps the smoke test fast; the full corpora
    // run in the bench-crate unit tests and the binary.
    let device_pool = overhaul_apps::corpus::device_corpus();
    let (report, _) =
        applicability::run_corpus("device-slice", &device_pool[..12], System::protected);
    assert_eq!(
        report.false_positives, 0,
        "broken: {:?}",
        report.broken_apps
    );
    let clip_pool = overhaul_apps::corpus::clipboard_corpus();
    let (report, _) = applicability::run_corpus("clip-slice", &clip_pool[..10], System::protected);
    assert_eq!(report.false_positives, 0);
}

#[test]
fn empirical_smoke_protected_vs_baseline() {
    let config = WorkloadConfig {
        days: 1,
        actions_per_day: 30,
        spy_interval: SimDuration::from_secs(1200),
        seed: 99,
    };
    let mut protected = System::new(small_screen(OverhaulConfig::protected()));
    let p = run_empirical_experiment(&mut protected, config);
    assert_eq!(p.items_stolen, 0);
    assert_eq!(p.legit_denied, 0);

    let mut baseline = System::new(small_screen(OverhaulConfig::baseline()));
    let b = run_empirical_experiment(&mut baseline, config);
    assert!(b.items_stolen > 0, "{b:?}");
}

#[test]
fn ablation_smoke_directions_hold() {
    let delta = sweep_delta(&[500, 2000], 20, 5);
    assert!(delta[0].false_deny_rate >= delta[1].false_deny_rate);

    let shm = sweep_shm_wait(&[100, 1000], 10, 5);
    assert!(shm[0].faults_per_10k >= shm[1].faults_per_10k);

    let vis = sweep_visibility(&[0, 500], 20, 5);
    assert!(vis[0].popup_attack_succeeds);
    assert!(!vis[1].popup_attack_succeeds);

    let prop = sweep_propagation();
    assert_eq!(prop.functional_without_p2, 0);
}
