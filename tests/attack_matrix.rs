//! The full attack suite crossed with machine configurations: every
//! attack must fail on the protected machines (userspace-DM and the §III
//! kernel-integrated variant) and succeed on the stock baseline — the
//! asymmetry that *is* the paper's security contribution.
//!
//! The matrix itself lives in `overhaul_bench::attacks` (shared with the
//! `attack_matrix` binary, which prints it).

use overhaul_bench::attacks::{attack_names, run_matrix, MachineKind};

#[test]
fn every_attack_blocked_on_protected_and_open_on_baseline() {
    let cells = run_matrix();
    assert_eq!(cells.len(), attack_names().len() * MachineKind::ALL.len());
    for cell in cells {
        if cell.machine.protected() {
            assert!(
                !cell.succeeded,
                "{} must fail on the {} machine",
                cell.attack,
                cell.machine.label()
            );
        } else {
            assert!(
                cell.succeeded,
                "{} should demonstrate the gap on the baseline",
                cell.attack
            );
        }
    }
}
