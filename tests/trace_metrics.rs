//! Virtual-time tracing and the unified metrics layer.
//!
//! Three guarantees from the tracing/metrics work are pinned here, end to
//! end over whole machines:
//!
//! 1. **Determinism** — tracing is driven purely by virtual time and the
//!    seeded fault plan, so two machines booted with the same
//!    configuration and workload produce byte-identical trace dumps and
//!    metrics pages (the golden-trace property CI relies on).
//! 2. **Parity** — `/proc/overhaul/metrics` is rendered from the legacy
//!    stats structs at read time, so every exported counter must equal the
//!    struct field it mirrors, exactly, at any point in a run.
//! 3. **Boundaries** — the temporal-proximity threshold δ and the
//!    shared-memory wait window are strict: an access at *exactly* the
//!    boundary falls on the deny/re-fault side, for arbitrary window
//!    sizes.

use overhaul_core::{OverhaulConfig, System};
use overhaul_kernel::error::Errno;
use overhaul_kernel::procfs;
use overhaul_sim::{FaultSpec, SimDuration};
use overhaul_xserver::geometry::Rect;
use proptest::prelude::*;

/// A tracing-enabled machine under a seeded fault plan that exercises the
/// delay, duplicate, and reorder paths (but never drops: the workload
/// below asserts grants that need a live channel).
fn traced_config() -> OverhaulConfig {
    OverhaulConfig::protected().with_tracing().with_fault(
        FaultSpec::quiet(0x7ace)
            .with_delay_p(0.3)
            .with_duplicate_p(0.3),
    )
}

/// Drives every traced mediation path once: channel exchanges (with
/// faults), cached and uncached decisions, grants and denies, IPC credit
/// propagation, shm interposition with a wait-list re-arm, and X input
/// authentication.
fn run_workload(system: &mut System) {
    let app = system
        .launch_gui_app("/usr/bin/recorder", Rect::new(0, 0, 100, 100))
        .expect("launch");
    system.settle();
    assert!(system.click_window(app.window), "click lands");
    system.advance(SimDuration::from_millis(100));
    assert!(
        system.open_device(app.pid, "/dev/snd/mic0").is_ok(),
        "within-δ grant"
    );
    // Same (pid, op, instant): served by the verdict cache.
    assert!(system.open_device(app.pid, "/dev/snd/mic0").is_ok());

    // Credit propagation over a SysV message queue to a background helper.
    let spy = system.spawn_process(None, "/usr/bin/.spy").expect("spawn");
    let q = system
        .kernel_mut()
        .sys_msgget(app.pid, 0x51)
        .expect("msgget");
    system
        .kernel_mut()
        .sys_msgsnd(app.pid, q, 1, b"m")
        .expect("msgsnd");
    system.kernel_mut().sys_msgrcv(spy, q, 1).expect("msgrcv");
    let _ = system.open_device(spy, "/dev/video0");

    // Shared-memory interposition: first access faults, the wait window
    // expires across an advance (housekeeping tick re-arms), next access
    // faults again.
    let shm = system
        .kernel_mut()
        .sys_shm_open(app.pid, "/seg", 1)
        .expect("shm_open");
    let vma = system.kernel_mut().sys_shmat(app.pid, shm).expect("shmat");
    system
        .kernel_mut()
        .sys_shm_write(app.pid, vma, 0, b"x")
        .expect("write");
    system.advance(SimDuration::from_millis(600));
    system
        .kernel_mut()
        .sys_shm_write(app.pid, vma, 0, b"y")
        .expect("write");

    // Let the interaction go stale: a deny through the full traced path.
    system.advance(SimDuration::from_secs(3));
    assert_eq!(
        system.open_device(app.pid, "/dev/snd/mic0"),
        Err(Errno::Eacces),
        "stale interaction denies"
    );
}

/// Reads one counter/gauge value from a rendered metrics page.
fn metric(page: &str, name: &str) -> u64 {
    page.lines()
        .find_map(|line| line.strip_prefix(name)?.strip_prefix(' '))
        .unwrap_or_else(|| panic!("metric {name} missing from page:\n{page}"))
        .parse()
        .unwrap_or_else(|err| panic!("metric {name} is not numeric: {err}"))
}

#[test]
fn golden_trace_same_seed_runs_are_byte_identical() {
    let run = || {
        let mut system = System::new(traced_config());
        run_workload(&mut system);
        (system.trace_dump(), system.metrics())
    };
    let (trace_a, metrics_a) = run();
    let (trace_b, metrics_b) = run();
    assert_eq!(trace_a, trace_b, "same seed must replay the same trace");
    assert_eq!(metrics_a, metrics_b, "same seed, same metrics page");

    // The dump is a real span tree, not a trivially equal empty one.
    for name in [
        "kernel.decide",
        "kernel.channel.exchange",
        "x.input",
        "ipc.hop",
        "mm.rearm",
    ] {
        assert!(trace_a.contains(name), "trace must contain {name}");
    }
}

#[test]
fn disabled_tracing_renders_the_empty_tree() {
    let mut system = System::protected();
    assert!(!system.tracer().is_enabled());
    run_workload(&mut system);
    assert_eq!(
        system.trace_dump(),
        "{\"spans\":0,\"dropped\":0,\"trace\":[]}"
    );
}

#[test]
fn metrics_page_matches_the_legacy_stats_structs() {
    let mut system = System::new(traced_config());
    run_workload(&mut system);

    let page = system
        .kernel()
        .sys_procfs_read(procfs::METRICS)
        .expect("metrics node readable");
    assert_eq!(
        page,
        system.metrics(),
        "System::metrics must be the procfs page verbatim"
    );

    let s = system.kernel().monitor_stats();
    assert_eq!(
        metric(&page, "overhaul_monitor_notifications_total"),
        s.notifications
    );
    assert_eq!(metric(&page, "overhaul_monitor_grants_total"), s.grants);
    assert_eq!(metric(&page, "overhaul_monitor_denies_total"), s.denies);
    assert_eq!(
        metric(&page, "overhaul_monitor_fail_closed_denies_total"),
        s.fail_closed_denies
    );
    assert_eq!(
        metric(&page, "overhaul_monitor_alerts_queued_total"),
        s.alerts_queued
    );
    assert_eq!(
        metric(&page, "overhaul_channel_retries_total"),
        s.channel_retries
    );
    assert_eq!(
        metric(&page, "overhaul_channel_drops_total"),
        s.channel_drops
    );
    assert_eq!(
        metric(&page, "overhaul_channel_reconnects_total"),
        s.channel_reconnects
    );
    assert_eq!(
        metric(&page, "overhaul_channel_dup_suppressed_total"),
        s.channel_dup_suppressed
    );

    let m = system.kernel().mm_stats();
    assert_eq!(metric(&page, "overhaul_mm_faults_total"), m.faults);
    assert_eq!(metric(&page, "overhaul_mm_direct_total"), m.direct);
    assert_eq!(metric(&page, "overhaul_mm_rearms_total"), m.rearms);
    assert!(m.rearms >= 1, "workload crossed the shm wait window");

    let c = system.kernel().verdict_cache_stats();
    assert_eq!(metric(&page, "overhaul_verdict_cache_hits_total"), c.hits);
    assert_eq!(
        metric(&page, "overhaul_verdict_cache_misses_total"),
        c.misses
    );
    assert_eq!(
        metric(&page, "overhaul_verdict_cache_entries"),
        c.entries as u64
    );
    assert!(c.hits >= 1, "workload repeated a decision");

    let f = system.fault_plan().expect("plan installed").stats();
    assert_eq!(metric(&page, "overhaul_fault_channel_draws_total"), f.drawn);
    assert_eq!(metric(&page, "overhaul_fault_delays_total"), f.delays);
    assert_eq!(
        metric(&page, "overhaul_fault_duplicates_total"),
        f.duplicates
    );

    // Tracing-native series only the registry knows about.
    assert_eq!(
        metric(
            &page,
            "overhaul_propagation_hops_total{mechanism=\"sysv-msgq\"}"
        ),
        1,
        "the msgq hop must be counted per mechanism"
    );
    assert_eq!(metric(&page, "overhaul_mm_rearm_events_total"), m.rearms);
    assert!(
        page.contains("# TYPE overhaul_channel_exchange_ms histogram"),
        "virtual-time histogram exported"
    );
}

#[test]
fn snapshot_counters_reach_the_metrics_page() {
    let mut system = System::new(traced_config());
    run_workload(&mut system);

    // Before any checkpoint, every snapshot series renders as zero.
    let page = system.metrics();
    assert_eq!(metric(&page, "overhaul_snapshot_bytes_total"), 0);
    assert_eq!(
        metric(&page, "overhaul_restore_rebuild_verdict_cache_total"),
        0
    );
    assert_eq!(
        metric(&page, "overhaul_restore_rebuild_dup_suppress_total"),
        0
    );
    assert_eq!(metric(&page, "overhaul_replay_divergence_total"), 0);

    // Checkpoint, diverge, roll back: the page must account for the bytes
    // exported and for every derived structure the restore rebuilt.
    let snap = system.snapshot();
    system.advance(SimDuration::from_secs(1));
    system.restore(&snap).expect("restore");
    system.kernel_mut().note_replay_divergence();

    let page = system.metrics();
    let stats = system.kernel().snapshot_stats();
    assert_eq!(
        metric(&page, "overhaul_snapshot_bytes_total"),
        stats.snapshot_bytes
    );
    assert_eq!(stats.snapshot_bytes, snap.state().len() as u64);
    assert_eq!(
        metric(&page, "overhaul_restore_rebuild_verdict_cache_total"),
        stats.restore_rebuild_verdict_cache
    );
    assert_eq!(stats.restore_rebuild_verdict_cache, 1);
    assert_eq!(
        metric(&page, "overhaul_restore_rebuild_dup_suppress_total"),
        stats.restore_rebuild_dup_suppress
    );
    assert!(
        stats.restore_rebuild_dup_suppress >= 1,
        "the live channel connection's suppression set was rebuilt"
    );
    assert_eq!(metric(&page, "overhaul_replay_divergence_total"), 1);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// δ is a strict bound: an open at *exactly* `interaction + δ` is
    /// stale and must deny; one virtual millisecond inside, it grants —
    /// for arbitrary δ.
    #[test]
    fn open_at_exactly_delta_is_denied(delta_ms in 50u64..2_000) {
        let config = OverhaulConfig::protected()
            .with_delta(SimDuration::from_millis(delta_ms));
        let mut system = System::new(config);
        let app = system
            .launch_gui_app("/usr/bin/recorder", Rect::new(0, 0, 100, 100))
            .expect("launch");
        system.settle();

        prop_assert!(system.click_window(app.window));
        system.advance(SimDuration::from_millis(delta_ms));
        prop_assert_eq!(
            system.open_device(app.pid, "/dev/snd/mic0"),
            Err(Errno::Eacces),
            "elapsed == δ is outside the window"
        );

        prop_assert!(system.click_window(app.window));
        system.advance(SimDuration::from_millis(delta_ms - 1));
        prop_assert!(
            system.open_device(app.pid, "/dev/snd/mic0").is_ok(),
            "elapsed == δ − 1ms is inside the window"
        );
    }

    /// The shm wait window is strict even without a housekeeping tick: an
    /// access at *exactly* `fault + wait` re-faults (lazy wait-list
    /// expiry), one millisecond earlier it is direct — for arbitrary
    /// window sizes.
    #[test]
    fn shm_access_at_exactly_the_wait_window_refaults(wait_ms in 20u64..1_500) {
        let config = OverhaulConfig::protected()
            .with_shm_wait(SimDuration::from_millis(wait_ms));
        let mut system = System::new(config);
        let a = system.spawn_process(None, "/usr/bin/a").expect("spawn");
        let shm = system.kernel_mut().sys_shm_open(a, "/seg", 1).expect("open");
        let vma = system.kernel_mut().sys_shmat(a, shm).expect("attach");

        system.kernel_mut().sys_shm_write(a, vma, 0, b"x").expect("write");
        let base = system.kernel().mm_stats();
        prop_assert!(base.faults >= 1, "first access faults");

        // One millisecond inside the window: direct access. The clock is
        // advanced without System::advance so no tick runs — expiry must
        // happen lazily on the access path itself.
        system.clock().advance(SimDuration::from_millis(wait_ms - 1));
        system.kernel_mut().sys_shm_write(a, vma, 0, b"y").expect("write");
        let inside = system.kernel().mm_stats();
        prop_assert_eq!(inside.faults, base.faults, "still within the wait window");
        prop_assert_eq!(inside.direct, base.direct + 1);

        // Exactly at the deadline: the wait entry has expired and the
        // access must take the re-armed fault.
        system.clock().advance(SimDuration::from_millis(1));
        system.kernel_mut().sys_shm_write(a, vma, 0, b"z").expect("write");
        let at = system.kernel().mm_stats();
        prop_assert_eq!(at.faults, base.faults + 1, "re-fault at exactly the deadline");
        prop_assert_eq!(at.rearms, base.rearms + 1);
    }
}
