//! Fleet-harness integration suite: Send-ability of whole machines,
//! panic containment with bisectable reproducers, watchdogs, graceful
//! degradation, and fleet-level metric aggregation.

use std::sync::Arc;
use std::time::Duration;

use overhaul_core::{assert_send, OverhaulConfig, System};
use overhaul_fleet::{
    quiet_injected_panics, replay_triple, replay_triple_from_snapshot, run_fleet, run_shard,
    shrink_triple, ChaosSpec, FailureKind, FailureTriple, FleetConfig, FleetWorkload, Reproduction,
    ShardBeat, ShardOutcome, ShardPlan,
};
use overhaul_sim::SimDuration;

/// The compile-time audit, exercised at runtime too: build a machine on
/// one thread, drive it on another, hash on a third.
#[test]
fn system_is_send_across_real_threads() {
    assert_send::<System>();
    let mut system = System::new(OverhaulConfig::protected());
    system.advance(SimDuration::from_secs(1));
    let handle = std::thread::spawn(move || {
        system.advance(SimDuration::from_secs(1));
        let hash = system.state_hash();
        (system, hash)
    });
    let (system, hash) = handle.join().expect("cross-thread system");
    assert_eq!(system.state_hash(), hash);
    let final_hash = std::thread::spawn(move || system.state_hash())
        .join()
        .expect("second hop");
    assert_eq!(final_hash, hash);
}

fn chaos_plan(master: u64, panic_at: Option<usize>, stall_at: Option<usize>) -> ShardPlan {
    let mut plan = ShardPlan::derive(master, 0, &FleetWorkload::default());
    plan.chaos.panic_at = panic_at;
    plan.chaos.stall_at = stall_at;
    plan
}

fn run_contained(plan: ShardPlan) -> overhaul_fleet::ShardReport {
    quiet_injected_panics();
    std::thread::Builder::new()
        .name("overhaul-shard-it".into())
        .spawn(move || run_shard(&plan, &ShardBeat::new()))
        .expect("spawn")
        .join()
        .expect("shard thread must not die: panics are contained inside run_shard")
}

/// Satellite regression: a deliberately panicking shard is contained, and
/// the *shrunk* reproducer replays to the same failure.
#[test]
fn panicking_shard_is_contained_and_shrunk_reproducer_replays_same_failure() {
    let report = run_contained(chaos_plan(0xabc, Some(35), None));
    let triple = match report.outcome {
        ShardOutcome::Failed(t) => *t,
        ShardOutcome::Ok { .. } => panic!("panic shard completed"),
    };
    let recorded_message = match &triple.kind {
        FailureKind::Panic { message } => message.clone(),
        other => panic!("expected a panic failure, got {other:?}"),
    };

    let shrunk = shrink_triple(&triple, 200);
    assert!(
        shrunk.shrunk_events < shrunk.original_events,
        "shrinker removed nothing: {shrunk:?}"
    );
    match &shrunk.triple.kind {
        FailureKind::Panic { message } => assert_eq!(message, &recorded_message),
        other => panic!("shrinking changed the failure kind: {other:?}"),
    }

    // The shrunk triple must reproduce the same failure — from boot, from
    // its snapshot, and after a serialization round-trip.
    let boot = replay_triple(&shrunk.triple);
    assert!(boot.is_reproduced(), "from boot: {boot:?}");
    assert_eq!(boot, replay_triple_from_snapshot(&shrunk.triple));
    let decoded = FailureTriple::from_bytes(&shrunk.triple.to_bytes()).expect("round-trip");
    assert_eq!(boot, replay_triple(&decoded));

    // Byte-identical pre-failure state: both the original and shrunk
    // replays land exactly on their sealed hashes.
    match boot {
        Reproduction::Reproduced { state_hash } => {
            assert_eq!(Some(state_hash), shrunk.triple.log.final_state_hash);
        }
        other => panic!("{other:?}"),
    }
}

/// The virtual-time watchdog: a stalled shard is declared hung and its
/// triple replays to a machine past the deadline.
#[test]
fn virtual_stall_yields_replayable_hang_triple() {
    let report = run_contained(chaos_plan(0xddd, None, Some(50)));
    let triple = match report.outcome {
        ShardOutcome::Failed(t) => *t,
        ShardOutcome::Ok { .. } => panic!("stalled shard completed"),
    };
    match &triple.kind {
        FailureKind::HungVirtual { now, deadline } => assert!(now > deadline),
        other => panic!("expected HungVirtual, got {other:?}"),
    }
    assert!(replay_triple(&triple).is_reproduced());
    assert!(replay_triple_from_snapshot(&triple).is_reproduced());
}

/// The wall-clock supervisor inside `run_fleet` cancels a spinning shard;
/// the fleet completes and reports it as a wall hang.
#[test]
fn fleet_supervisor_cancels_spinning_shards() {
    // One shard, forced to spin: the fleet supervisor must cancel it.
    let workload = FleetWorkload {
        steps: 30,
        chaos: ChaosSpec {
            panic_p: 0.0,
            stall_p: 0.0,
            spin_p: 1.0,
            fault_intensity: 0.0,
        },
        ..FleetWorkload::default()
    };
    let config = FleetConfig {
        master_seed: 0x5119,
        shards: 2,
        workers: 2,
        workload,
        shrink: false,
        stall_poll: Duration::from_millis(10),
        stall_timeout: Duration::from_millis(80),
        ..FleetConfig::default()
    };
    let report = run_fleet(&config);
    assert_eq!(report.failed, 2, "both spin shards must be cancelled");
    for f in &report.failures {
        assert_eq!(f.triple.kind, FailureKind::HungWall);
        assert!(replay_triple(&f.triple).is_reproduced());
    }
    assert!(
        report.wall < Duration::from_secs(10),
        "supervisor must cancel spins well before the backstop"
    );
}

/// Graceful degradation: a hostile fleet exhausts its failure budget,
/// stops claiming shards, and still reports coherently.
#[test]
fn failure_budget_degrades_instead_of_aborting() {
    let config = FleetConfig {
        master_seed: 3,
        shards: 12,
        workers: 2,
        failure_budget: 3,
        shrink: false,
        workload: FleetWorkload {
            steps: 25,
            chaos: ChaosSpec {
                panic_p: 1.0,
                stall_p: 0.0,
                spin_p: 0.0,
                fault_intensity: 0.0,
            },
            ..FleetWorkload::default()
        },
        ..FleetConfig::default()
    };
    let report = run_fleet(&config);
    assert!(report.degraded);
    assert!(report.failed >= 3);
    assert!(report.skipped > 0);
    assert_eq!(report.ok + report.failed + report.skipped, 12);
    assert_eq!(report.metrics.gauge("overhaul_fleet_degraded"), 1);
    assert_eq!(
        report
            .metrics
            .counter("overhaul_fleet_shards_skipped_total"),
        report.skipped as u64
    );
}

/// The expectation-aware oracle end to end: under a deliberately
/// permissive grant-all policy with the *strict* oracle, the spy's
/// device open is granted against a `Blocked` expectation, the shard
/// reports a defense regression, and the triple replays (the wrongful
/// grant repeats deterministically). Without strict mode the same grant
/// is a documented bypass and produces no triple at all.
#[test]
fn grant_all_fleet_surfaces_defense_regressions_as_triples() {
    let config = FleetConfig {
        master_seed: 0x9e0,
        shards: 6,
        workload: FleetWorkload {
            steps: 80,
            grant_all: true,
            oracle_strict: true,
            chaos: ChaosSpec {
                panic_p: 0.0,
                stall_p: 0.0,
                spin_p: 0.0,
                fault_intensity: 0.2,
            },
            ..FleetWorkload::default()
        },
        shrink_replays: 60,
        ..FleetConfig::default()
    };
    let report = run_fleet(&config);
    let regressions: Vec<_> = report
        .failures
        .iter()
        .filter(|f| matches!(f.triple.kind, FailureKind::DefenseRegression { .. }))
        .collect();
    assert!(
        !regressions.is_empty(),
        "no shard drew a spy-open op in 6 grant-all shards: {:?}",
        report
            .failures
            .iter()
            .map(|f| f.triple.kind.clone())
            .collect::<Vec<_>>()
    );
    for v in &regressions {
        assert!(replay_triple(&v.triple).is_reproduced());
        assert!(
            report
                .metrics
                .counter("overhaul_fleet_failures_total{kind=\"defense_regression\"}")
                >= 1
        );
    }

    // Lenient oracle on the same fleet: the grant-all grants are
    // documented bypasses, not failures.
    let mut lenient = config;
    lenient.workload.oracle_strict = false;
    let report = run_fleet(&lenient);
    assert!(
        report
            .failures
            .iter()
            .all(|f| !matches!(f.triple.kind, FailureKind::DefenseRegression { .. })),
        "lenient grant-all fleet should treat spy grants as documented bypasses: {:?}",
        report
            .failures
            .iter()
            .map(|f| f.triple.kind.clone())
            .collect::<Vec<_>>()
    );
}

/// A healthy fleet: zero failures, zero divergences (every shard
/// self-replays to its live hash), and per-shard kernel metrics merged
/// into one coherent fleet page.
#[test]
fn clean_fleet_has_zero_divergences_and_merged_metrics() {
    let config = FleetConfig {
        master_seed: 0xc1ea4,
        shards: 10,
        workload: FleetWorkload {
            steps: 50,
            ..FleetWorkload::default()
        },
        ..FleetConfig::default()
    };
    let report = run_fleet(&config);
    assert_eq!(report.ok, 10, "failures: {:?}", report.failures);
    assert_eq!(
        report
            .metrics
            .counter("overhaul_fleet_failures_total{kind=\"divergence\"}"),
        0
    );
    // Fleet counters are coherent with the shard reports.
    assert_eq!(report.metrics.counter("overhaul_fleet_shards_total"), 10);
    assert_eq!(report.metrics.counter("overhaul_fleet_shards_ok_total"), 10);
    assert_eq!(
        report.metrics.counter("overhaul_fleet_events_total"),
        report.events_total
    );
    // Kernel counters accumulated across shards (10 machines' worth of
    // monitor notifications is strictly more than one machine's).
    let single = run_shard(
        &ShardPlan::derive(0xc1ea4, 0, &config.workload),
        &ShardBeat::new(),
    );
    assert!(
        report
            .metrics
            .counter("overhaul_monitor_notifications_total")
            > single
                .metrics
                .counter("overhaul_monitor_notifications_total")
    );
    // The rendered page carries both layers.
    let page = report.render_metrics();
    assert!(page.contains("overhaul_fleet_shards_total 10"));
    assert!(page.contains("overhaul_monitor_notifications_total"));
}

/// Same master seed -> byte-identical fleet outcome (ignoring wall time):
/// decorrelated doesn't mean nondeterministic.
#[test]
fn fleet_runs_are_deterministic_in_outcome() {
    let config = FleetConfig {
        master_seed: 0xd57,
        shards: 6,
        workload: FleetWorkload {
            steps: 40,
            chaos: ChaosSpec {
                panic_p: 0.3,
                stall_p: 0.0,
                spin_p: 0.0,
                fault_intensity: 0.5,
            },
            ..FleetWorkload::default()
        },
        shrink: false,
        ..FleetConfig::default()
    };
    let a = run_fleet(&config);
    let b = run_fleet(&config);
    assert_eq!(a.ok, b.ok);
    assert_eq!(a.failed, b.failed);
    assert_eq!(a.events_total, b.events_total);
    assert_eq!(a.sim_ms_total, b.sim_ms_total);
    let hashes = |r: &overhaul_fleet::FleetReport| {
        r.failures
            .iter()
            .map(|f| (f.triple.index, f.triple.log.final_state_hash))
            .collect::<Vec<_>>()
    };
    assert_eq!(hashes(&a), hashes(&b));
}

/// Shared beats survive Arc-sharing with a supervisor thread (the
/// cancel/progress protocol has no ordering hazards in practice).
#[test]
fn shard_beat_protocol_is_thread_safe() {
    let beat = Arc::new(ShardBeat::new());
    let watcher = {
        let beat = beat.clone();
        std::thread::spawn(move || {
            while !beat.is_cancelled() {
                std::thread::yield_now();
            }
            beat.progress()
        })
    };
    let plan = ShardPlan::derive(0xbea7, 0, &FleetWorkload::default());
    let report = run_shard(&plan, &beat);
    assert!(report.outcome.is_ok());
    beat.request_cancel();
    let seen = watcher.join().expect("watcher");
    assert_eq!(seen, beat.progress());
}
