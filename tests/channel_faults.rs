//! Deterministic fault injection on the kernel↔display-manager channel.
//!
//! Drives whole machines under seeded [`FaultSpec`] plans — dropped,
//! delayed, duplicated, and reordered netlink messages, scheduled
//! display-manager crashes, transient VFS stat failures during channel
//! authentication — and checks the fail-closed invariant end to end: no
//! fault schedule, crash timing, or message interleaving may ever produce
//! a grant without a fresh (< δ) authentic interaction, and after a
//! restart the channel re-authenticates and replays buffered alerts
//! exactly once.

use overhaul_core::{BootError, OverhaulConfig, System};
use overhaul_kernel::error::Errno;
use overhaul_kernel::netlink::{ChannelState, NetlinkError, NetlinkMessage};
use overhaul_sim::{AuditCategory, FaultSpec, SimDuration, Timestamp};
use overhaul_xserver::geometry::Rect;
use proptest::prelude::*;

/// Boots a protected machine under `spec` with one GUI app and one
/// background spy process.
fn machine_under(spec: FaultSpec) -> (System, overhaul_core::Gui, overhaul_sim::Pid) {
    let mut system = System::new(OverhaulConfig::protected().with_fault(spec));
    let app = system
        .launch_gui_app("/usr/bin/recorder", Rect::new(0, 0, 100, 100))
        .expect("launch");
    system.settle();
    let spy = system.spawn_process(None, "/usr/bin/.spy").expect("spawn");
    (system, app, spy)
}

#[test]
fn quiet_plan_changes_nothing() {
    let (mut system, app, _) = machine_under(FaultSpec::quiet(1));
    assert!(system.click_window(app.window));
    system.advance(SimDuration::from_millis(100));
    assert!(system.open_device(app.pid, "/dev/snd/mic0").is_ok());
    assert_eq!(system.channel_state(), ChannelState::Up);
    assert_eq!(system.alert_history().len(), 1);
    let stats = system.kernel().monitor_stats();
    assert_eq!(stats.channel_retries, 0);
    assert_eq!(stats.channel_drops, 0);
    assert_eq!(stats.fail_closed_denies, 0);
}

#[test]
fn drop_storm_takes_channel_down_and_fails_closed() {
    let (mut system, app, _) = machine_under(FaultSpec::quiet(2).with_drop_p(1.0));
    // The click's notification is lost after every retry: the channel
    // goes down and the kernel never learns of the interaction.
    system.click_window(app.window);
    assert_eq!(system.channel_state(), ChannelState::Down);
    system.advance(SimDuration::from_millis(50));
    assert_eq!(
        system.open_device(app.pid, "/dev/snd/mic0"),
        Err(Errno::Eacces)
    );
    assert!(system.kernel().monitor_stats().fail_closed_denies >= 1);
    assert!(system.kernel_audit().matching("(channel down)").count() >= 1);

    // The fault clears: the next exchange restores the channel and a
    // fresh click grants again.
    system
        .fault_plan()
        .expect("plan installed")
        .set_armed(false);
    system.click_window(app.window);
    assert_eq!(system.channel_state(), ChannelState::Up);
    system.advance(SimDuration::from_millis(50));
    assert!(system.open_device(app.pid, "/dev/snd/mic0").is_ok());
}

#[test]
fn delay_storm_degrades_but_still_grants() {
    let (mut system, app, _) = machine_under(FaultSpec::quiet(3).with_delay_p(1.0));
    system.click_window(app.window);
    system.advance(SimDuration::from_millis(100));
    assert!(
        system.open_device(app.pid, "/dev/snd/mic0").is_ok(),
        "delays cost virtual time, not correctness"
    );
    assert_eq!(system.channel_state(), ChannelState::Degraded);
    assert!(system.kernel_audit().matching("delayed in flight").count() >= 1);
}

#[test]
fn duplicate_storm_is_suppressed_by_dedup() {
    let (mut system, app, _) = machine_under(FaultSpec::quiet(4).with_duplicate_p(1.0));
    for _ in 0..3 {
        system.click_window(app.window);
        system.advance(SimDuration::from_millis(30));
    }
    let stats = system.kernel().monitor_stats();
    assert_eq!(
        stats.notifications, 3,
        "each duplicated notification must be recorded exactly once"
    );
    assert!(stats.channel_dup_suppressed >= 3);
}

/// Regression for the duplicate-suppression eviction bug: the bounded
/// per-connection delivery record used to evict sequence numbers in an
/// order that could readmit a late duplicate of an already-applied
/// notification. Eviction now only forgets *below* the contiguous-delivery
/// watermark, so a long seeded storm of duplicated and reordered
/// notifications — far more traffic than the record holds — must still
/// apply every interaction exactly once, in both directions: no replayed
/// copy is re-applied, and no genuinely fresh notification is wrongly
/// suppressed.
#[test]
fn long_duplicate_storm_never_reapplies_after_eviction() {
    let (mut system, app, _) = machine_under(
        FaultSpec::quiet(0xded0)
            .with_duplicate_p(0.6)
            .with_reorder_p(0.3)
            .with_delay_p(0.2),
    );
    // Well past the 64-entry delivery record.
    const CLICKS: u64 = 100;
    for _ in 0..CLICKS {
        assert!(system.click_window(app.window));
        system.advance(SimDuration::from_millis(10));
    }
    // A reordered notification is stashed until the next exchange; disarm
    // the plan and send one clean click to drain any stashed tail.
    system
        .fault_plan()
        .expect("plan installed")
        .set_armed(false);
    assert!(system.click_window(app.window));

    let stats = system.kernel().monitor_stats();
    assert_eq!(
        stats.notifications,
        CLICKS + 1,
        "every click must be recorded exactly once, duplicates and \
         reorders notwithstanding"
    );
    assert!(
        stats.channel_dup_suppressed >= CLICKS / 3,
        "the seeded storm must actually have exercised the dedup path \
         (suppressed only {})",
        stats.channel_dup_suppressed
    );
}

#[test]
fn crash_restart_cycle_replays_every_buffered_alert_once() {
    let (mut system, _, spy) = machine_under(FaultSpec::quiet(5));
    // One alert delivered normally while the channel is up.
    assert_eq!(system.open_device(spy, "/dev/video0"), Err(Errno::Eacces));
    assert_eq!(system.alert_history().len(), 1);

    system.crash_x();
    // Two denials while down: their alerts stay buffered kernel-side.
    assert_eq!(system.open_device(spy, "/dev/video0"), Err(Errno::Eacces));
    assert_eq!(system.open_device(spy, "/dev/snd/mic0"), Err(Errno::Eacces));
    assert_eq!(system.alert_history().len(), 1, "no overlay while down");
    assert_eq!(system.kernel().pending_push_count(), 2);

    let replayed = system.restart_x().expect("restart succeeds");
    assert_eq!(replayed, 2);
    assert_eq!(system.alert_history().len(), 3);
    assert!(system.alert_history()[1].replayed);
    assert!(system.alert_history()[2].replayed);
    assert_eq!(system.kernel().pending_push_count(), 0);

    // Nothing replays twice.
    system.pump_alerts();
    assert_eq!(system.alert_history().len(), 3);
}

#[test]
fn exited_display_manager_is_invalidated_eagerly() {
    let mut system = System::protected();
    let conn = system.x_conn().expect("protected machine has a channel");
    let x_pid = system.x_pid();
    system.kernel_mut().sys_exit(x_pid, 0).expect("exit");

    // The exit path itself severs the connection — no sweep, no window
    // for a recycled pid to inherit the old authenticated channel.
    assert_eq!(system.channel_state(), ChannelState::Down);
    assert_eq!(
        system.kernel_mut().netlink_send(
            conn,
            NetlinkMessage::InteractionNotification {
                pid: x_pid,
                at: Timestamp::ZERO,
            },
        ),
        Err(NetlinkError::UnknownConnection)
    );
    assert!(
        system
            .kernel_audit()
            .matching("invalidated on process exit")
            .count()
            >= 1
    );
}

#[test]
fn boot_fails_cleanly_when_authentication_cannot_complete() {
    let config =
        OverhaulConfig::protected().with_fault(FaultSpec::quiet(6).with_vfs_stat_fail_p(1.0));
    assert_eq!(
        System::try_new(config).expect_err("boot must fail"),
        BootError::ChannelAuth(NetlinkError::AuthTransient)
    );
}

/// A scripted workload mixing legitimate clicks, device opens, spy
/// attempts, and restarts, returning a determinism fingerprint.
fn scripted_run(spec: FaultSpec) -> (usize, usize, u64, u64, u64) {
    let (mut system, app, spy) = machine_under(spec);
    for round in 0..30u64 {
        system.click_window(app.window);
        system.advance(SimDuration::from_millis(100 + (round * 137) % 800));
        let _ = system.open_device(app.pid, "/dev/snd/mic0");
        let _ = system.open_device(spy, "/dev/video0");
        system.advance(SimDuration::from_millis(400));
        if !system.x_alive() && round % 3 == 0 {
            let _ = system.restart_x();
        }
    }
    let stats = system.kernel().monitor_stats();
    (
        system.kernel_audit().len(),
        system.alert_history().len(),
        stats.grants,
        stats.denies,
        stats.channel_retries,
    )
}

#[test]
fn identical_fault_plans_produce_identical_runs() {
    let spec = || {
        FaultSpec::quiet(99)
            .with_drop_p(0.2)
            .with_delay_p(0.2)
            .with_duplicate_p(0.1)
            .with_reorder_p(0.1)
            .with_x_crashes(vec![
                Timestamp::from_millis(3_000),
                Timestamp::from_millis(9_000),
            ])
    };
    assert_eq!(scripted_run(spec()), scripted_run(spec()));
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        .. ProptestConfig::default()
    })]

    /// The fail-closed invariant under arbitrary seeded fault plans: no
    /// grant without a fresh (< δ) interaction notification for the same
    /// pid, no grant at all while the channel is down, and the spy gets
    /// nothing — regardless of drop/delay/duplicate/reorder schedules and
    /// crash/restart timing.
    #[test]
    fn fail_closed_invariant_holds_under_arbitrary_faults(
        seed in 0u64..1_000_000,
        drop_p in 0.0f64..0.5,
        delay_p in 0.0f64..0.3,
        dup_p in 0.0f64..0.3,
        reorder_p in 0.0f64..0.2,
        crash_at in prop::collection::vec(500u64..30_000, 0..3),
    ) {
        let spec = FaultSpec::quiet(seed)
            .with_drop_p(drop_p)
            .with_delay_p(delay_p)
            .with_duplicate_p(dup_p)
            .with_reorder_p(reorder_p)
            .with_x_crashes(crash_at.iter().copied().map(Timestamp::from_millis).collect());
        let (mut system, app, spy) = machine_under(spec);

        for round in 0..40u64 {
            system.click_window(app.window);
            system.advance(SimDuration::from_millis(100 + (seed + round * 61) % 900));
            let _ = system.open_device(app.pid, "/dev/snd/mic0");
            let _ = system.open_device(spy, "/dev/video0");
            system.advance(SimDuration::from_millis(400));
            if !system.x_alive() && round % 3 == 0 {
                let _ = system.restart_x();
            }
        }
        if !system.x_alive() {
            let _ = system.restart_x();
        }

        // The spy never gets a grant, under any schedule.
        prop_assert_eq!(
            system
                .kernel_audit()
                .count_for(AuditCategory::PermissionGranted, spy),
            0
        );

        // Every grant follows an interaction notification for the same
        // pid within δ.
        let delta = SimDuration::from_secs(2);
        let events = system.kernel_audit().events();
        for (i, e) in events.iter().enumerate() {
            if e.category == AuditCategory::PermissionGranted {
                let justified = events[..i].iter().any(|p| {
                    p.category == AuditCategory::InteractionNotification
                        && p.pid == e.pid
                        && e.at.saturating_since(p.at) < delta
                });
                prop_assert!(justified, "grant without fresh interaction: {:?}", e);
            }
        }

        // No grant while the channel was down (state reconstructed from
        // the audited transitions).
        let mut down = false;
        for e in events {
            match e.category {
                AuditCategory::ChannelEvent => {
                    if e.detail.contains("-> down") {
                        down = true;
                    } else if e.detail.contains("-> up") || e.detail.contains("-> degraded") {
                        // Degraded is a functioning channel (faults observed,
                        // exchanges still completing), so a `down -> degraded`
                        // transition is a recovery.
                        down = false;
                    }
                }
                AuditCategory::PermissionGranted => {
                    prop_assert!(!down, "grant while channel down: {:?}", e.detail);
                }
                _ => {}
            }
        }

        // Exactly-once alert delivery: queued == shown + still-buffered.
        let stats = system.kernel().monitor_stats();
        let shown = system.alert_history().len() as u64;
        let pending = system.kernel().pending_push_count() as u64;
        prop_assert_eq!(stats.alerts_queued, shown + pending);
    }
}
