//! Replay determinism under fire: a seeded, faulted soak — mixed
//! legitimate use, spyware traffic, synthetic-input floods, scheduled
//! display-manager crashes and restarts — recorded at the [`System`]
//! boundary, then replayed two ways:
//!
//! 1. **from boot** — a fresh machine built from the log's configuration
//!    re-applies every event;
//! 2. **from a mid-run checkpoint** — a machine restored from a snapshot
//!    taken halfway (with its verdict cache and dup-suppression sets
//!    rebuilt cold) re-applies only the suffix.
//!
//! Both must land on a byte-identical [`System::state_hash`] *and* a
//! byte-identical [`System::trace_dump`]. This is the acceptance gate for
//! the checkpoint/restore subsystem: any state the snapshot codec missed,
//! any derived cache that leaks into decisions, or any hidden
//! nondeterminism in the fault plan's RNG stream shows up here as a hash
//! or trace mismatch. CI runs this suite as its `replay-determinism` step.

use overhaul_core::{replay, replay_from, Event, EventLog, Gui, OverhaulConfig, Recorder, System};
use overhaul_sim::snapshot::Snapshot;
use overhaul_sim::{FaultSpec, Pid, SimDuration, SimRng};
use overhaul_xserver::geometry::Rect;
use overhaul_xserver::protocol::{Atom, ClientId, InputPayload, Request, XEvent};

fn faulted_config(seed: u64) -> OverhaulConfig {
    OverhaulConfig::protected().with_tracing().with_fault(
        FaultSpec::quiet(seed)
            .with_drop_p(0.10)
            .with_delay_p(0.15)
            .with_duplicate_p(0.10)
            .with_reorder_p(0.05),
    )
}

/// The system_soak workload shape, expressed purely in recordable
/// [`Event`]s: every input the soak would issue crosses the recorder.
struct RecordedSoak {
    rec: Recorder,
    rng: SimRng,
    apps: Vec<Gui>,
    spy: Pid,
    spy_client: ClientId,
}

impl RecordedSoak {
    fn new(seed: u64) -> Self {
        let mut rec = Recorder::new(faulted_config(seed));
        let apps = (0..4)
            .map(|i| {
                rec.apply(Event::LaunchGuiApp {
                    exe: format!("/usr/bin/app{i}"),
                    rect: Rect::new(i * 220, 0, 200, 200),
                })
                .gui()
                .expect("launch")
            })
            .collect::<Vec<_>>();
        rec.apply(Event::Settle);
        let spy = rec
            .apply(Event::SpawnProcess {
                parent: None,
                exe: "/usr/bin/.spy".into(),
            })
            .pid()
            .expect("spawn spy");
        let spy_client = rec.apply(Event::ConnectX { pid: spy }).client();
        RecordedSoak {
            rec,
            rng: SimRng::seeded(seed),
            apps,
            spy,
            spy_client,
        }
    }

    fn step(&mut self) {
        let app = self.apps[self.rng.range(0, self.apps.len() as u64) as usize];
        match self.rng.range(0, 10) {
            // Legit: raise, click, then open a device quickly.
            0..=2 => {
                let _ = self.rec.apply(Event::XRequest {
                    client: app.client,
                    request: Request::RaiseWindow { window: app.window },
                });
                self.rec.apply(Event::Settle);
                self.rec.apply(Event::ClickWindow { window: app.window });
                self.rec.apply(Event::Advance(SimDuration::from_millis(
                    self.rng.range(10, 1_500),
                )));
                let path = if self.rng.chance(0.5) {
                    "/dev/snd/mic0"
                } else {
                    "/dev/video0"
                };
                if let Ok(fd) = self
                    .rec
                    .apply(Event::OpenDevice {
                        pid: app.pid,
                        path: path.into(),
                    })
                    .fd()
                {
                    self.rec.apply(Event::SysClose { pid: app.pid, fd });
                }
            }
            // Legit: clipboard copy after a click.
            3..=4 => {
                let _ = self.rec.apply(Event::XRequest {
                    client: app.client,
                    request: Request::RaiseWindow { window: app.window },
                });
                self.rec.apply(Event::Settle);
                self.rec.apply(Event::ClickWindow { window: app.window });
                let _ = self.rec.apply(Event::XRequest {
                    client: app.client,
                    request: Request::SetSelectionOwner {
                        selection: Atom::clipboard(),
                        window: app.window,
                    },
                });
            }
            // Attack: spyware cycle — device grabs and a screen capture.
            5..=6 => {
                let _ = self.rec.apply(Event::OpenDevice {
                    pid: self.spy,
                    path: "/dev/snd/mic0".into(),
                });
                let _ = self.rec.apply(Event::OpenDevice {
                    pid: self.spy,
                    path: "/dev/video0".into(),
                });
                let _ = self.rec.apply(Event::XRequest {
                    client: self.spy_client,
                    request: Request::GetImage { window: None },
                });
            }
            // Attack: synthetic input flood at a random app.
            7 => {
                for _ in 0..4 {
                    let _ = self.rec.apply(Event::XRequest {
                        client: self.spy_client,
                        request: Request::SendEvent {
                            target: app.window,
                            event: Box::new(XEvent::Input {
                                window: app.window,
                                payload: InputPayload::Button { x: 1, y: 1 },
                                synthetic: false,
                            }),
                        },
                    });
                    let _ = self.rec.apply(Event::XRequest {
                        client: self.spy_client,
                        request: Request::XTestFakeInput {
                            payload: InputPayload::Key { ch: 'x' },
                            target: app.window,
                        },
                    });
                }
            }
            // Time passes.
            _ => {
                self.rec.apply(Event::Advance(SimDuration::from_millis(
                    self.rng.range(100, 10_000),
                )));
            }
        }
        // Apps drain their event queues, as real clients would.
        for gui in &self.apps {
            let _ = self.rec.apply(Event::DrainEvents { client: gui.client });
        }
    }
}

/// Records a faulted soak with scheduled display-manager crashes, taking a
/// checkpoint at the halfway point. Returns the recorded machine, the
/// sealed log, the mid-run snapshot, and the event index it was taken at.
fn record_soak(seed: u64, steps: usize) -> (System, EventLog, Snapshot, usize) {
    let mut soak = RecordedSoak::new(seed);
    let mut checkpoint = None;
    for i in 0..steps {
        if i == steps / 2 {
            let snap = soak.rec.snapshot();
            checkpoint = Some((snap, soak.rec.events_recorded()));
        }
        // A crash roughly every 90 steps, restarted ~10 steps later.
        if i % 90 == 40 && soak.rec.system().x_alive() {
            soak.rec.apply(Event::CrashX);
        }
        if i % 90 == 50 && !soak.rec.system().x_alive() {
            let _ = soak.rec.apply(Event::RestartX);
        }
        soak.step();
    }
    if !soak.rec.system().x_alive() {
        let _ = soak.rec.apply(Event::RestartX);
    }
    let (snap, at) = checkpoint.expect("steps / 2 reached");
    let (recorded, log) = soak.rec.finish();
    (recorded, log, snap, at)
}

#[test]
fn faulted_soak_replays_byte_identically_from_boot() {
    let (recorded, log, _, _) = record_soak(42, 220);
    let replayed = replay(&log).expect("replay boots");
    assert_eq!(
        replayed.state_hash(),
        recorded.state_hash(),
        "state hash diverged on replay from boot"
    );
    assert_eq!(
        replayed.trace_dump(),
        recorded.trace_dump(),
        "trace diverged on replay from boot"
    );
    assert_eq!(replayed.kernel().snapshot_stats().replay_divergence, 0);

    // The serialized log replays identically too — what CI ships around.
    let decoded = EventLog::from_bytes(&log.to_bytes()).expect("log round-trip");
    let replayed = replay(&decoded).expect("replay boots");
    assert_eq!(replayed.state_hash(), recorded.state_hash());
}

#[test]
fn faulted_soak_replays_byte_identically_from_mid_run_snapshot() {
    let (recorded, log, snap, at) = record_soak(42, 220);
    let resumed = replay_from(&snap, log.suffix(at), log.final_state_hash).expect("restore");
    assert_eq!(
        resumed.state_hash(),
        recorded.state_hash(),
        "state hash diverged on replay from the snapshot"
    );
    assert_eq!(
        resumed.trace_dump(),
        recorded.trace_dump(),
        "trace diverged on replay from the snapshot"
    );
    assert_eq!(resumed.kernel().snapshot_stats().replay_divergence, 0);

    // The snapshot survives its own serialization.
    let decoded = Snapshot::from_bytes(&snap.to_bytes()).expect("snapshot round-trip");
    let resumed = replay_from(&decoded, log.suffix(at), log.final_state_hash).expect("restore");
    assert_eq!(resumed.state_hash(), recorded.state_hash());
}

#[test]
fn second_seed_replays_byte_identically_both_ways() {
    let (recorded, log, snap, at) = record_soak(20_260_805, 180);
    let replayed = replay(&log).expect("replay boots");
    assert_eq!(replayed.state_hash(), recorded.state_hash());
    assert_eq!(replayed.trace_dump(), recorded.trace_dump());
    let resumed = replay_from(&snap, log.suffix(at), log.final_state_hash).expect("restore");
    assert_eq!(resumed.state_hash(), recorded.state_hash());
    assert_eq!(resumed.trace_dump(), recorded.trace_dump());
}

#[test]
fn divergence_is_detected_not_masked() {
    // Tamper with the recorded hash: the replay machinery must notice and
    // count it on the kernel gauge rather than silently passing.
    let (_, mut log, snap, at) = record_soak(7, 60);
    let truth = log.final_state_hash.unwrap();
    log.final_state_hash = Some(truth ^ 0xdead_beef);
    let replayed = replay(&log).expect("replay boots");
    assert_eq!(replayed.kernel().snapshot_stats().replay_divergence, 1);
    let resumed = replay_from(&snap, log.suffix(at), log.final_state_hash).expect("restore");
    assert_eq!(resumed.kernel().snapshot_stats().replay_divergence, 1);
}
