//! Figure 6: the 13-step ICCCM copy & paste protocol with Overhaul's
//! modifications (bold steps), plus the bypass attacks §IV-A describes.

use overhaul_core::{Gui, System};
use overhaul_sim::{AuditCategory, SimDuration};
use overhaul_xserver::geometry::Rect;
use overhaul_xserver::protocol::{Atom, Reply, Request, XError, XEvent};

fn two_apps(machine: &mut System) -> (Gui, Gui) {
    let source = machine
        .launch_gui_app("/usr/bin/source-editor", Rect::new(0, 0, 100, 100))
        .unwrap();
    let target = machine
        .launch_gui_app("/usr/bin/target-editor", Rect::new(200, 0, 100, 100))
        .unwrap();
    machine.settle();
    (source, target)
}

#[test]
fn figure6_full_protocol_trace() {
    let mut machine = System::protected();
    let (source, target) = two_apps(&mut machine);
    let selection = Atom::clipboard();
    let property = Atom::new("XSEL_DATA");

    // Step (1): copy initiated by hardware input. [bold]
    machine.click_window(source.window);
    // Steps (2)-(4): SetSelection, checked against the monitor. [bold]
    machine
        .x_request(
            source.client,
            Request::SetSelectionOwner {
                selection: selection.clone(),
                window: source.window,
            },
        )
        .expect("step 2 granted");
    match machine
        .x_request(
            source.client,
            Request::GetSelectionOwner {
                selection: selection.clone(),
            },
        )
        .unwrap()
    {
        Reply::SelectionOwner(owner) => assert_eq!(owner, Some(source.client), "steps 3-4"),
        other => panic!("{other:?}"),
    }

    // Step (5): paste initiated by hardware input. [bold]
    machine.click_window(target.window);
    // Step (6): ConvertSelection, checked against the monitor. [bold]
    machine
        .x_request(
            target.client,
            Request::ConvertSelection {
                selection: selection.clone(),
                requestor: target.window,
                property: property.clone(),
            },
        )
        .expect("step 6 granted");

    // Step (7): the server relays SelectionRequest to the source.
    let relayed = machine
        .xserver_mut()
        .drain_events(source.client)
        .unwrap()
        .into_iter()
        .find_map(|e| match e {
            XEvent::SelectionRequest {
                requestor,
                property,
                ..
            } => Some((requestor, property)),
            _ => None,
        })
        .expect("step 7");
    assert_eq!(relayed.0, target.window);

    // Step (8): the source stores the data with ChangeProperty.
    machine
        .x_request(
            target.client,
            Request::GetProperty {
                window: target.window,
                property: property.clone(),
                delete: false,
            },
        )
        .map(|r| assert_eq!(r, Reply::Property(None), "no data before step 8"))
        .unwrap();
    machine
        .x_request(
            source.client,
            Request::ChangeProperty {
                window: relayed.0,
                property: relayed.1.clone(),
                data: b"copied!".to_vec(),
            },
        )
        .expect("step 8");

    // Steps (9)-(10): SelectionNotify via SendEvent reaches the target.
    machine
        .x_request(
            source.client,
            Request::SendEvent {
                target: relayed.0,
                event: Box::new(XEvent::SelectionNotify {
                    selection: selection.clone(),
                    property: relayed.1.clone(),
                }),
            },
        )
        .expect("step 9");
    let notified = machine
        .xserver_mut()
        .drain_events(target.client)
        .unwrap()
        .into_iter()
        .any(|e| matches!(e, XEvent::SelectionNotify { .. }));
    assert!(notified, "step 10");

    // Steps (11)-(13): the target retrieves and deletes the property.
    match machine
        .x_request(
            target.client,
            Request::GetProperty {
                window: target.window,
                property: property.clone(),
                delete: true,
            },
        )
        .unwrap()
    {
        Reply::Property(Some(data)) => assert_eq!(data, b"copied!"),
        other => panic!("steps 11-12 failed: {other:?}"),
    }
    match machine
        .x_request(
            target.client,
            Request::GetProperty {
                window: target.window,
                property,
                delete: false,
            },
        )
        .unwrap()
    {
        Reply::Property(None) => {} // step 13: data removed
        other => panic!("step 13 failed: {other:?}"),
    }
}

#[test]
fn copy_without_input_gets_bad_access() {
    let mut machine = System::protected();
    let (source, _) = two_apps(&mut machine);
    // No click: step 2 is rejected with the X error an unmodified client
    // already understands.
    assert_eq!(
        machine.x_request(
            source.client,
            Request::SetSelectionOwner {
                selection: Atom::clipboard(),
                window: source.window
            },
        ),
        Err(XError::BadAccess)
    );
}

#[test]
fn stale_input_expires_for_paste() {
    let mut machine = System::protected();
    let (source, target) = two_apps(&mut machine);
    machine.click_window(source.window);
    machine
        .x_request(
            source.client,
            Request::SetSelectionOwner {
                selection: Atom::clipboard(),
                window: source.window,
            },
        )
        .unwrap();
    machine.click_window(target.window);
    machine.advance(SimDuration::from_secs(5));
    assert_eq!(
        machine.x_request(
            target.client,
            Request::ConvertSelection {
                selection: Atom::clipboard(),
                requestor: target.window,
                property: Atom::new("P"),
            },
        ),
        Err(XError::BadAccess)
    );
}

#[test]
fn forged_selection_request_attack_blocked_end_to_end() {
    let mut machine = System::protected();
    let (source, _) = two_apps(&mut machine);
    machine.click_window(source.window);
    machine
        .x_request(
            source.client,
            Request::SetSelectionOwner {
                selection: Atom::clipboard(),
                window: source.window,
            },
        )
        .unwrap();

    let spy = machine.spawn_process(None, "/usr/bin/.spy").unwrap();
    let spy_client = machine.connect_x(spy);
    let spy_window = match machine
        .x_request(
            spy_client,
            Request::CreateWindow {
                rect: Rect::new(0, 0, 1, 1),
            },
        )
        .unwrap()
    {
        Reply::Window(w) => w,
        _ => unreachable!(),
    };
    assert_eq!(
        machine.x_request(
            spy_client,
            Request::SendEvent {
                target: source.window,
                event: Box::new(XEvent::SelectionRequest {
                    selection: Atom::clipboard(),
                    requestor: spy_window,
                    property: Atom::new("LOOT"),
                }),
            },
        ),
        Err(XError::BadAccess)
    );
    assert!(
        machine
            .x_audit()
            .count(AuditCategory::ProtocolAttackBlocked)
            >= 1
    );
}

#[test]
fn in_flight_property_is_target_only() {
    let mut machine = System::protected();
    let (source, target) = two_apps(&mut machine);
    let spy = machine.spawn_process(None, "/usr/bin/.spy").unwrap();
    let spy_client = machine.connect_x(spy);

    machine.click_window(source.window);
    machine
        .x_request(
            source.client,
            Request::SetSelectionOwner {
                selection: Atom::clipboard(),
                window: source.window,
            },
        )
        .unwrap();
    machine.click_window(target.window);
    machine
        .x_request(
            target.client,
            Request::ConvertSelection {
                selection: Atom::clipboard(),
                requestor: target.window,
                property: Atom::new("XSEL_DATA"),
            },
        )
        .unwrap();
    machine
        .x_request(
            source.client,
            Request::ChangeProperty {
                window: target.window,
                property: Atom::new("XSEL_DATA"),
                data: b"pw".to_vec(),
            },
        )
        .unwrap();
    // The spy cannot read the in-flight data.
    assert_eq!(
        machine.x_request(
            spy_client,
            Request::GetProperty {
                window: target.window,
                property: Atom::new("XSEL_DATA"),
                delete: false
            },
        ),
        Err(XError::BadAccess)
    );
    // After the target consumes it, the property is gone anyway.
    machine
        .x_request(
            target.client,
            Request::GetProperty {
                window: target.window,
                property: Atom::new("XSEL_DATA"),
                delete: true,
            },
        )
        .unwrap();
    assert_eq!(
        machine.x_request(
            spy_client,
            Request::GetProperty {
                window: target.window,
                property: Atom::new("XSEL_DATA"),
                delete: false
            },
        ),
        Ok(Reply::Property(None))
    );
}

#[test]
fn copy_between_own_windows_still_requires_input_only_once_per_op() {
    // Two copies in a row need two interactions: each SetSelection is an
    // independently mediated operation.
    let mut machine = System::protected();
    let (source, _) = two_apps(&mut machine);
    machine.click_window(source.window);
    machine
        .x_request(
            source.client,
            Request::SetSelectionOwner {
                selection: Atom::clipboard(),
                window: source.window,
            },
        )
        .unwrap();
    machine.advance(SimDuration::from_secs(5));
    assert!(machine
        .x_request(
            source.client,
            Request::SetSelectionOwner {
                selection: Atom::primary(),
                window: source.window
            },
        )
        .is_err());
}
