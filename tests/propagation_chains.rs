//! Policies P1/P2 (§III-D) over arbitrary process topologies: spawn chains
//! and IPC relay chains "of arbitrary length and complexity", including
//! property-based tests over random chain compositions.

use overhaul_core::System;
use overhaul_kernel::Kernel;
use overhaul_sim::{Pid, SimDuration, Timestamp};
use overhaul_xserver::geometry::Rect;
use proptest::prelude::*;

/// Every IPC mechanism that can form a link in a relay chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Link {
    Pipe,
    Socket,
    SysvQueue,
    PosixQueue,
    SharedMemory,
    Pty,
}

impl Link {
    const ALL: [Link; 6] = [
        Link::Pipe,
        Link::Socket,
        Link::SysvQueue,
        Link::PosixQueue,
        Link::SharedMemory,
        Link::Pty,
    ];
}

/// Sends one message from `from` to `to` over `link`, exercising the
/// embed/adopt protocol. Unique `tag` keeps keyed namespaces distinct.
fn relay(kernel: &mut Kernel, link: Link, from: Pid, to: Pid, tag: i32) {
    match link {
        Link::Pipe => {
            // Unrelated processes rendezvous over a named pipe.
            let path = format!("/tmp/relay-fifo-{tag}");
            kernel.sys_mkfifo(from, &path, 0o666).unwrap();
            let wfd = kernel
                .sys_open(from, &path, overhaul_kernel::OpenMode::WriteOnly)
                .unwrap();
            let rfd = kernel
                .sys_open(to, &path, overhaul_kernel::OpenMode::ReadOnly)
                .unwrap();
            kernel.sys_write(from, wfd, b"m").unwrap();
            kernel.sys_read(to, rfd, 8).unwrap();
        }
        Link::Socket => {
            // Socket ends cannot rendezvous by name here, so a helper child
            // of `from` holds end B (the usual fork hand-off). Its
            // fork-inherited credit is cleared so only the *message*
            // carries the timestamp; a fresh queue bridges helper -> to.
            let (a, b) = kernel.sys_socketpair(from).unwrap();
            let helper = kernel.sys_fork(from).unwrap();
            kernel.reset_interaction(helper).unwrap();
            kernel.sys_write(from, a, b"m").unwrap();
            kernel.sys_read(helper, b, 8).unwrap();
            let q = kernel.sys_msgget(helper, 1_000_000 + tag).unwrap();
            kernel.sys_msgsnd(helper, q, 1, b"m").unwrap();
            kernel.sys_msgrcv(to, q, 1).unwrap();
        }
        Link::SysvQueue => {
            let q = kernel.sys_msgget(from, 2_000_000 + tag).unwrap();
            kernel.sys_msgsnd(from, q, 1, b"m").unwrap();
            kernel.sys_msgrcv(to, q, 1).unwrap();
        }
        Link::PosixQueue => {
            let name = format!("/relay-{tag}");
            let qa = kernel.sys_mq_open(from, &name).unwrap();
            let qb = kernel.sys_mq_open(to, &name).unwrap();
            kernel.sys_write(from, qa, b"m").unwrap();
            kernel.sys_read(to, qb, 8).unwrap();
        }
        Link::SharedMemory => {
            let shm = kernel.sys_shmget(from, 3_000_000 + tag, 1).unwrap();
            let va = kernel.sys_shmat(from, shm).unwrap();
            let vb = kernel.sys_shmat(to, shm).unwrap();
            kernel.sys_shm_write(from, va, 0, b"m").unwrap();
            kernel.sys_shm_read(to, vb, 0, 1).unwrap();
            kernel.sys_shmdt(from, va).unwrap();
            kernel.sys_shmdt(to, vb).unwrap();
        }
        Link::Pty => {
            // Terminal-emulator pattern: `from` holds the master, a shell
            // forked from it holds the slave. The shell's fork-inherited
            // credit is cleared so the pty write is what carries the
            // timestamp; a fresh queue bridges shell -> to.
            let (master, slave) = kernel.sys_openpty(from).unwrap();
            let shell = kernel.sys_fork(from).unwrap();
            kernel.reset_interaction(shell).unwrap();
            kernel.sys_write(from, master, b"m").unwrap();
            kernel.sys_read(shell, slave, 8).unwrap();
            let q = kernel.sys_msgget(shell, 4_000_000 + tag).unwrap();
            kernel.sys_msgsnd(shell, q, 1, b"m").unwrap();
            kernel.sys_msgrcv(to, q, 1).unwrap();
        }
    }
}

fn machine_with_processes(n: usize) -> (System, Vec<Pid>) {
    let mut machine = System::protected();
    let pids: Vec<Pid> = (0..n)
        .map(|i| {
            machine
                .spawn_process(None, &format!("/usr/bin/proc{i}"))
                .unwrap()
        })
        .collect();
    (machine, pids)
}

fn give_interaction(machine: &mut System, pid: Pid) {
    // Route an authentic interaction through the display manager.
    let client = machine.connect_x(pid);
    let window = match machine
        .x_request(
            client,
            overhaul_xserver::protocol::Request::CreateWindow {
                rect: Rect::new(0, 0, 50, 50),
            },
        )
        .unwrap()
    {
        overhaul_xserver::protocol::Reply::Window(w) => w,
        _ => unreachable!(),
    };
    machine
        .x_request(
            client,
            overhaul_xserver::protocol::Request::MapWindow { window },
        )
        .unwrap();
    machine.settle();
    assert!(machine.click_window(window));
}

#[test]
fn chain_of_every_link_kind_propagates() {
    for (index, link) in Link::ALL.iter().enumerate() {
        let (mut machine, pids) = machine_with_processes(2);
        give_interaction(&mut machine, pids[0]);
        relay(machine.kernel_mut(), *link, pids[0], pids[1], index as i32);
        assert!(
            machine.open_device(pids[1], "/dev/snd/mic0").is_ok(),
            "{link:?} must carry the interaction"
        );
    }
}

#[test]
fn five_hop_mixed_chain_propagates() {
    let (mut machine, pids) = machine_with_processes(6);
    give_interaction(&mut machine, pids[0]);
    let chain = [
        Link::Pipe,
        Link::SharedMemory,
        Link::SysvQueue,
        Link::PosixQueue,
        Link::Pty,
    ];
    for (hop, link) in chain.iter().enumerate() {
        relay(
            machine.kernel_mut(),
            *link,
            pids[hop],
            pids[hop + 1],
            100 + hop as i32,
        );
    }
    assert!(machine.open_device(pids[5], "/dev/video0").is_ok());
}

#[test]
fn chain_without_interaction_grants_nothing() {
    let (mut machine, pids) = machine_with_processes(4);
    for (hop, link) in [Link::Pipe, Link::SysvQueue, Link::SharedMemory]
        .iter()
        .enumerate()
    {
        relay(
            machine.kernel_mut(),
            *link,
            pids[hop],
            pids[hop + 1],
            200 + hop as i32,
        );
    }
    assert!(machine.open_device(pids[3], "/dev/snd/mic0").is_err());
}

#[test]
fn stale_timestamp_does_not_resurrect_through_relays() {
    let (mut machine, pids) = machine_with_processes(3);
    give_interaction(&mut machine, pids[0]);
    relay(machine.kernel_mut(), Link::SysvQueue, pids[0], pids[1], 300);
    // Let the propagated stamp expire before the second hop.
    machine.advance(SimDuration::from_secs(10));
    relay(machine.kernel_mut(), Link::SysvQueue, pids[1], pids[2], 301);
    assert!(
        machine.open_device(pids[2], "/dev/snd/mic0").is_err(),
        "the stamp is a timestamp, not a capability: it expires everywhere"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random chain of 1..=4 links propagates a fresh interaction from
    /// head to tail.
    #[test]
    fn any_chain_propagates(indices in prop::collection::vec(0usize..Link::ALL.len(), 1..=4)) {
        let (mut machine, pids) = machine_with_processes(indices.len() + 1);
        give_interaction(&mut machine, pids[0]);
        for (hop, link_index) in indices.iter().enumerate() {
            relay(
                machine.kernel_mut(),
                Link::ALL[*link_index],
                pids[hop],
                pids[hop + 1],
                1_000 + hop as i32,
            );
        }
        prop_assert!(machine.open_device(*pids.last().unwrap(), "/dev/snd/mic0").is_ok());
    }

    /// Relaying never grants a *sender* anything: only receivers adopt.
    #[test]
    fn senders_gain_nothing(link_index in 0usize..Link::ALL.len()) {
        let (mut machine, pids) = machine_with_processes(2);
        give_interaction(&mut machine, pids[0]);
        // pids[1] (no interaction) sends TO pids[0].
        relay(machine.kernel_mut(), Link::ALL[link_index], pids[1], pids[0], 2_000 + link_index as i32);
        prop_assert!(machine.open_device(pids[1], "/dev/video0").is_err());
    }

    /// Timestamps are monotone: a relay can never make a receiver's stored
    /// interaction *older*.
    #[test]
    fn adoption_is_monotone(link_index in 0usize..Link::ALL.len()) {
        let (mut machine, pids) = machine_with_processes(2);
        // Receiver has a fresh interaction; sender an old one.
        give_interaction(&mut machine, pids[1]);
        let fresh = machine
            .kernel()
            .tasks()
            .get(pids[1])
            .unwrap()
            .interaction()
            .unwrap();
        relay(machine.kernel_mut(), Link::ALL[link_index], pids[0], pids[1], 3_000 + link_index as i32);
        let after: Option<Timestamp> = machine.kernel().tasks().get(pids[1]).unwrap().interaction();
        prop_assert!(after >= Some(fresh));
    }
}
