//! Randomized system-level soak: hours of mixed legitimate use and attack
//! traffic on one machine, with global security invariants checked
//! throughout. This is the "nothing weird happens when everything happens
//! at once" test.

use overhaul_apps::malware::Spyware;
use overhaul_core::{Gui, System};
use overhaul_sim::{AuditCategory, SimDuration, SimRng};
use overhaul_xserver::geometry::Rect;
use overhaul_xserver::protocol::{Atom, InputPayload, Request, XEvent};

struct Soak {
    machine: System,
    rng: SimRng,
    apps: Vec<Gui>,
    spyware: Spyware,
    /// Device grants observed for the spyware (must stay 0).
    spy_grants: usize,
    /// Legit denials observed right after a click (must stay 0).
    legit_denials_after_click: usize,
}

impl Soak {
    fn new(seed: u64) -> Self {
        Soak::on_machine(System::protected(), seed)
    }

    fn new_integrated(seed: u64) -> Self {
        Soak::on_machine(System::integrated(), seed)
    }

    fn on_machine(machine: System, seed: u64) -> Self {
        let mut machine = machine;
        let apps = (0..4)
            .map(|i| {
                machine
                    .launch_gui_app(&format!("/usr/bin/app{i}"), Rect::new(i * 220, 0, 200, 200))
                    .unwrap()
            })
            .collect::<Vec<_>>();
        machine.settle();
        let spyware = Spyware::install(&mut machine);
        Soak {
            machine,
            rng: SimRng::seeded(seed),
            apps,
            spyware,
            spy_grants: 0,
            legit_denials_after_click: 0,
        }
    }

    fn step(&mut self) {
        let app_index = self.rng.range(0, self.apps.len() as u64) as usize;
        let app = self.apps[app_index];
        match self.rng.range(0, 10) {
            // Legit: click then open a device quickly — must always grant.
            0..=2 => {
                // Raise first so the click actually lands on this app.
                let _ = self
                    .machine
                    .x_request(app.client, Request::RaiseWindow { window: app.window });
                self.machine.settle();
                if self.machine.click_window(app.window) {
                    self.machine
                        .advance(SimDuration::from_millis(self.rng.range(10, 1_500)));
                    let path = if self.rng.chance(0.5) {
                        "/dev/snd/mic0"
                    } else {
                        "/dev/video0"
                    };
                    match self.machine.open_device(app.pid, path) {
                        Ok(fd) => {
                            let _ = self.machine.kernel_mut().sys_close(app.pid, fd);
                        }
                        Err(_) => self.legit_denials_after_click += 1,
                    }
                }
            }
            // Legit: clipboard copy after a click.
            3..=4 => {
                let _ = self
                    .machine
                    .x_request(app.client, Request::RaiseWindow { window: app.window });
                self.machine.settle();
                if self.machine.click_window(app.window) {
                    let _ = self.machine.x_request(
                        app.client,
                        Request::SetSelectionOwner {
                            selection: Atom::clipboard(),
                            window: app.window,
                        },
                    );
                }
            }
            // Attack: spyware cycle.
            5..=6 => {
                let loot = self.spyware.run_cycle(&mut self.machine);
                self.spy_grants += loot.count();
            }
            // Attack: synthetic input flood at a random app.
            7 => {
                let spy_client = self
                    .machine
                    .xserver()
                    .client_of_pid(self.spyware.pid())
                    .unwrap();
                for _ in 0..4 {
                    let _ = self.machine.x_request(
                        spy_client,
                        Request::SendEvent {
                            target: app.window,
                            event: Box::new(XEvent::Input {
                                window: app.window,
                                payload: InputPayload::Button { x: 1, y: 1 },
                                synthetic: false,
                            }),
                        },
                    );
                    let _ = self.machine.x_request(
                        spy_client,
                        Request::XTestFakeInput {
                            payload: InputPayload::Key { ch: 'x' },
                            target: app.window,
                        },
                    );
                }
            }
            // Time passes.
            _ => {
                self.machine
                    .advance(SimDuration::from_millis(self.rng.range(100, 10_000)));
            }
        }
        // Drain app event queues as real apps would.
        for gui in &self.apps {
            let _ = self.machine.xserver_mut().drain_events(gui.client);
        }
    }

    fn check_invariants(&self) {
        assert_eq!(self.spy_grants, 0, "spyware must never be granted anything");
        assert_eq!(
            self.legit_denials_after_click, 0,
            "a device open right after a click must never be denied"
        );
        // The spyware never received an interaction notification.
        assert_eq!(
            self.machine
                .kernel_audit()
                .count_for(AuditCategory::InteractionNotification, self.spyware.pid()),
            0
        );
        // No timestamps from the future anywhere.
        let now = self.machine.now();
        for task in self.machine.kernel().tasks().iter() {
            if let Some(ts) = task.raw_interaction() {
                assert!(ts <= now);
            }
        }
    }
}

#[test]
fn soak_seed_1() {
    let mut soak = Soak::new(1);
    for _ in 0..400 {
        soak.step();
    }
    soak.check_invariants();
}

#[test]
fn soak_seed_2() {
    let mut soak = Soak::new(20_260_705);
    for _ in 0..400 {
        soak.step();
    }
    soak.check_invariants();
}

#[test]
fn soak_integrated_dm() {
    let mut soak = Soak::new_integrated(3);
    for _ in 0..400 {
        soak.step();
    }
    soak.check_invariants();
}

#[test]
fn soak_is_deterministic() {
    let run = |seed| {
        let mut soak = Soak::new(seed);
        for _ in 0..150 {
            soak.step();
        }
        (
            soak.machine.kernel_audit().len(),
            soak.machine.x_audit().len(),
            soak.machine.alert_history().len(),
            soak.machine.now(),
        )
    };
    assert_eq!(run(7), run(7));
}
