//! Randomized system-level soak: hours of mixed legitimate use and attack
//! traffic on one machine, with global security invariants checked
//! throughout. This is the "nothing weird happens when everything happens
//! at once" test.

use overhaul_apps::malware::Spyware;
use overhaul_core::{Gui, OverhaulConfig, System};
use overhaul_sim::{AuditCategory, FaultSpec, SimDuration, SimRng};
use overhaul_xserver::geometry::Rect;
use overhaul_xserver::protocol::{Atom, InputPayload, Request, XEvent};

struct Soak {
    machine: System,
    rng: SimRng,
    apps: Vec<Gui>,
    spyware: Spyware,
    /// Device grants observed for the spyware (must stay 0).
    spy_grants: usize,
    /// Legit denials observed right after a click (must stay 0).
    legit_denials_after_click: usize,
}

impl Soak {
    fn new(seed: u64) -> Self {
        Soak::on_machine(System::protected(), seed)
    }

    fn new_integrated(seed: u64) -> Self {
        Soak::on_machine(System::integrated(), seed)
    }

    /// A protected machine whose channel runs under a seeded fault plan:
    /// moderate drop/delay/duplicate/reorder probabilities on every
    /// netlink message and alert push.
    fn new_faulted(seed: u64) -> Self {
        let config = OverhaulConfig::protected().with_fault(
            FaultSpec::quiet(seed)
                .with_drop_p(0.10)
                .with_delay_p(0.15)
                .with_duplicate_p(0.10)
                .with_reorder_p(0.05),
        );
        Soak::on_machine(System::new(config), seed)
    }

    fn on_machine(machine: System, seed: u64) -> Self {
        let mut machine = machine;
        let apps = (0..4)
            .map(|i| {
                machine
                    .launch_gui_app(&format!("/usr/bin/app{i}"), Rect::new(i * 220, 0, 200, 200))
                    .unwrap()
            })
            .collect::<Vec<_>>();
        machine.settle();
        let spyware = Spyware::install(&mut machine);
        Soak {
            machine,
            rng: SimRng::seeded(seed),
            apps,
            spyware,
            spy_grants: 0,
            legit_denials_after_click: 0,
        }
    }

    fn step(&mut self) {
        let app_index = self.rng.range(0, self.apps.len() as u64) as usize;
        let app = self.apps[app_index];
        match self.rng.range(0, 10) {
            // Legit: click then open a device quickly — must always grant.
            0..=2 => {
                // Raise first so the click actually lands on this app.
                let _ = self
                    .machine
                    .x_request(app.client, Request::RaiseWindow { window: app.window });
                self.machine.settle();
                if self.machine.click_window(app.window) {
                    self.machine
                        .advance(SimDuration::from_millis(self.rng.range(10, 1_500)));
                    let path = if self.rng.chance(0.5) {
                        "/dev/snd/mic0"
                    } else {
                        "/dev/video0"
                    };
                    match self.machine.open_device(app.pid, path) {
                        Ok(fd) => {
                            let _ = self.machine.kernel_mut().sys_close(app.pid, fd);
                        }
                        Err(_) => self.legit_denials_after_click += 1,
                    }
                }
            }
            // Legit: clipboard copy after a click.
            3..=4 => {
                let _ = self
                    .machine
                    .x_request(app.client, Request::RaiseWindow { window: app.window });
                self.machine.settle();
                if self.machine.click_window(app.window) {
                    let _ = self.machine.x_request(
                        app.client,
                        Request::SetSelectionOwner {
                            selection: Atom::clipboard(),
                            window: app.window,
                        },
                    );
                }
            }
            // Attack: spyware cycle.
            5..=6 => {
                let loot = self.spyware.run_cycle(&mut self.machine);
                self.spy_grants += loot.count();
            }
            // Attack: synthetic input flood at a random app.
            7 => {
                let spy_client = self
                    .machine
                    .xserver()
                    .client_of_pid(self.spyware.pid())
                    .unwrap();
                for _ in 0..4 {
                    let _ = self.machine.x_request(
                        spy_client,
                        Request::SendEvent {
                            target: app.window,
                            event: Box::new(XEvent::Input {
                                window: app.window,
                                payload: InputPayload::Button { x: 1, y: 1 },
                                synthetic: false,
                            }),
                        },
                    );
                    let _ = self.machine.x_request(
                        spy_client,
                        Request::XTestFakeInput {
                            payload: InputPayload::Key { ch: 'x' },
                            target: app.window,
                        },
                    );
                }
            }
            // Time passes.
            _ => {
                self.machine
                    .advance(SimDuration::from_millis(self.rng.range(100, 10_000)));
            }
        }
        // Drain app event queues as real apps would.
        for gui in &self.apps {
            let _ = self.machine.xserver_mut().drain_events(gui.client);
        }
    }

    fn check_invariants(&self) {
        self.check_security_invariants();
        assert_eq!(
            self.legit_denials_after_click, 0,
            "a device open right after a click must never be denied"
        );
    }

    /// The invariants that must hold even under channel faults and
    /// display-manager crashes (where legitimate opens *may* be denied,
    /// but only ever in the fail-closed direction).
    fn check_security_invariants(&self) {
        assert_eq!(self.spy_grants, 0, "spyware must never be granted anything");
        // The spyware never received an interaction notification.
        assert_eq!(
            self.machine
                .kernel_audit()
                .count_for(AuditCategory::InteractionNotification, self.spyware.pid()),
            0
        );
        // No timestamps from the future anywhere.
        let now = self.machine.now();
        for task in self.machine.kernel().tasks().iter() {
            if let Some(ts) = task.raw_interaction() {
                assert!(ts <= now);
            }
        }
    }

    /// Every fail-closed denial counted by the monitor has a matching
    /// audit record, and no permission was ever granted while the channel
    /// was down (state reconstructed from the audited transitions).
    fn check_fail_closed_audit(&self) {
        let stats = self.machine.kernel().monitor_stats();
        let audited = self
            .machine
            .kernel_audit()
            .matching("(channel down)")
            .count() as u64
            + self
                .machine
                .kernel_audit()
                .matching("denied (quarantined")
                .count() as u64;
        assert_eq!(
            stats.fail_closed_denies, audited,
            "every fail-closed denial must be audited"
        );

        // Exactly-once alert delivery: every kernel-queued alert is either
        // on the overlay (device alerts; "scr" alerts are shown X-side and
        // never queued) or still buffered kernel-side awaiting replay.
        let shown_from_kernel = self
            .machine
            .alert_history()
            .iter()
            .filter(|a| a.op != "scr")
            .count() as u64;
        let pending = self.machine.kernel().pending_push_count() as u64;
        assert_eq!(
            stats.alerts_queued,
            shown_from_kernel + pending,
            "kernel alerts must reach the overlay exactly once"
        );

        let mut down = false;
        for event in self.machine.kernel_audit().events() {
            match event.category {
                AuditCategory::ChannelEvent => {
                    if event.detail.contains("-> down") {
                        down = true;
                    } else if event.detail.contains("-> up") {
                        down = false;
                    }
                }
                AuditCategory::PermissionGranted => {
                    assert!(
                        !down,
                        "grant while the channel was down: {:?}",
                        event.detail
                    );
                }
                _ => {}
            }
        }
    }
}

#[test]
fn soak_seed_1() {
    let mut soak = Soak::new(1);
    for _ in 0..400 {
        soak.step();
    }
    soak.check_invariants();
}

#[test]
fn soak_seed_2() {
    let mut soak = Soak::new(20_260_705);
    for _ in 0..400 {
        soak.step();
    }
    soak.check_invariants();
}

#[test]
fn soak_integrated_dm() {
    let mut soak = Soak::new_integrated(3);
    for _ in 0..400 {
        soak.step();
    }
    soak.check_invariants();
}

#[test]
fn soak_is_deterministic() {
    let run = |seed| {
        let mut soak = Soak::new(seed);
        for _ in 0..150 {
            soak.step();
        }
        (
            soak.machine.kernel_audit().len(),
            soak.machine.x_audit().len(),
            soak.machine.alert_history().len(),
            soak.machine.now(),
        )
    };
    assert_eq!(run(7), run(7));
}

/// Drives a faulted soak with periodic display-manager crashes and
/// restarts. Legitimate opens may fail (lost notifications, channel down)
/// but only ever in the fail-closed direction.
fn run_faulted_soak(seed: u64, steps: usize) -> Soak {
    let mut soak = Soak::new_faulted(seed);
    for i in 0..steps {
        // A crash roughly every 90 steps, restarted ~10 steps later.
        if i % 90 == 40 {
            soak.machine.crash_x();
        }
        if i % 90 == 50 && !soak.machine.x_alive() {
            let _ = soak.machine.restart_x();
        }
        soak.step();
    }
    if !soak.machine.x_alive() {
        let _ = soak.machine.restart_x();
    }
    soak
}

#[test]
fn soak_faulted_channel_with_crashes() {
    let soak = run_faulted_soak(42, 400);
    soak.check_security_invariants();
    soak.check_fail_closed_audit();
    // The fault plan actually bit: the channel took damage and recovered.
    let stats = soak.machine.kernel().monitor_stats();
    assert!(
        stats.channel_retries > 0,
        "drops should have forced retries"
    );
    assert!(
        stats.channel_reconnects > 0,
        "restarts should have reconnected"
    );
    assert!(
        stats.fail_closed_denies > 0,
        "crash windows should have produced fail-closed denials"
    );
}

#[test]
fn soak_faulted_second_seed() {
    let soak = run_faulted_soak(20_260_805, 400);
    soak.check_security_invariants();
    soak.check_fail_closed_audit();
}

#[test]
fn faulted_soak_is_deterministic() {
    let run = |seed| {
        let soak = run_faulted_soak(seed, 150);
        (
            soak.machine.kernel_audit().len(),
            soak.machine.x_audit().len(),
            soak.machine.alert_history().len(),
            soak.machine.now(),
            soak.machine.kernel().monitor_stats(),
        )
    };
    assert_eq!(run(9), run(9));
}
