//! Campaign suite: catalog-level invariants plus boundary proptests for
//! overlay/clickjacking timing.
//!
//! The visibility threshold is an exact boundary: an overlay that has
//! been mapped for *exactly* the threshold is stable (and steals the
//! click); one millisecond less and the click is suppressed. A raise at
//! the interaction instant restarts the clock, so the same overlay goes
//! back to unstable. The proptests drive those edges across random
//! thresholds and assert the decision resolves identically three ways —
//! live, replayed from boot, and replayed from a mid-run snapshot — with
//! byte-identical state hashes, ledger heads, and audit counts.

use overhaul_bench::attacks::{format_bypass_rationales, run_campaign_matrix};
use overhaul_core::{replay, replay_from, Event, OverhaulConfig, Recorder, System};
use overhaul_sim::{AuditCategory, SimDuration};
use overhaul_xserver::geometry::Rect;
use overhaul_xserver::protocol::{Reply, Request};
use proptest::prelude::*;

/// What one timing-boundary run resolved to, with its replay evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BoundaryOutcome {
    /// Whether the spy's post-click mic open was granted.
    granted: bool,
    /// ClickjackingSuppressed audit entries at the end of the run.
    suppressed: usize,
}

/// Records the boundary script (overlay mapped over a victim, optional
/// ripen+raise, an advance of `threshold + offset_ms`, a real click, a
/// spy mic probe), then replays it from boot and from a mid-run snapshot
/// and demands all three agree byte-for-byte.
fn boundary_run(threshold_ms: u64, offset_ms: i64, raise_at: bool) -> BoundaryOutcome {
    let mut config = OverhaulConfig::protected();
    config.x.visibility_threshold = SimDuration::from_millis(threshold_ms);
    let mut rec = Recorder::new(config);

    let victim = rec
        .apply(Event::LaunchGuiApp {
            exe: "/usr/bin/bank".into(),
            rect: Rect::new(100, 100, 200, 150),
        })
        .gui()
        .expect("launch victim");
    rec.apply(Event::Settle);
    let spy = rec
        .apply(Event::SpawnProcess {
            parent: None,
            exe: "/usr/bin/.hoverspy".into(),
        })
        .pid()
        .expect("spawn spy");
    let spy_client = rec.apply(Event::ConnectX { pid: spy }).client();
    let overlay = match rec
        .apply(Event::XRequest {
            client: spy_client,
            request: Request::CreateWindow {
                rect: Rect::new(150, 140, 120, 80),
            },
        })
        .x()
        .expect("create overlay")
    {
        Reply::Window(w) => w,
        other => panic!("expected a window, got {other:?}"),
    };
    rec.apply(Event::XRequest {
        client: spy_client,
        request: Request::MapWindow { window: overlay },
    })
    .x()
    .expect("map overlay");

    // Mid-run checkpoint right before the timing-sensitive tail: the
    // restored machine must re-derive the exact same boundary decision.
    let snapshot = rec.snapshot();
    let snapshot_at = rec.events_recorded();

    if raise_at {
        // The victim raises its own window over the overlay: fully
        // occluded, the overlay's visibility clock stops. It then
        // "ripens" face-down — no stability accrues — and the spy raises
        // it back at the interaction instant, newly visible with a fresh
        // clock.
        rec.apply(Event::XRequest {
            client: victim.client,
            request: Request::RaiseWindow {
                window: victim.window,
            },
        })
        .x()
        .expect("victim raises");
        rec.apply(Event::Advance(SimDuration::from_millis(
            threshold_ms + 1_000,
        )));
        rec.apply(Event::XRequest {
            client: spy_client,
            request: Request::RaiseWindow { window: overlay },
        })
        .x()
        .expect("raise overlay");
    }
    let advance_ms = (threshold_ms as i64 + offset_ms).max(0) as u64;
    rec.apply(Event::Advance(SimDuration::from_millis(advance_ms)));
    rec.apply(Event::ClickWindow {
        window: victim.window,
    });
    let granted = rec
        .apply(Event::OpenDevice {
            pid: spy,
            path: "/dev/snd/mic0".into(),
        })
        .fd()
        .is_ok();

    let live = BoundaryOutcome {
        granted,
        suppressed: suppressed_count(rec.system()),
    };
    let (recorded, log) = rec.finish();

    // From boot.
    let from_boot = replay(&log).expect("replay boots");
    assert_eq!(
        from_boot.state_hash(),
        recorded.state_hash(),
        "boot replay diverged"
    );
    assert_eq!(from_boot.ledger_head(), recorded.ledger_head());
    assert_eq!(suppressed_count(&from_boot), live.suppressed);

    // From the mid-run snapshot.
    let restored = replay_from(&snapshot, log.suffix(snapshot_at), log.final_state_hash)
        .expect("snapshot replay");
    assert_eq!(
        restored.state_hash(),
        recorded.state_hash(),
        "snapshot-restore replay diverged"
    );
    assert_eq!(restored.ledger_head(), recorded.ledger_head());
    assert_eq!(suppressed_count(&restored), live.suppressed);

    live
}

fn suppressed_count(system: &System) -> usize {
    system
        .x_audit()
        .count(AuditCategory::ClickjackingSuppressed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// An overlay visible for exactly the threshold is stable and steals
    /// the click (the documented bypass); one millisecond short and the
    /// click is suppressed — at every threshold, identically across live,
    /// snapshot-restore, and replay execution.
    #[test]
    fn overlay_at_exact_threshold_is_the_boundary(
        threshold_ms in 100u64..2_000,
        offset_ms in -1i64..=1,
    ) {
        let outcome = boundary_run(threshold_ms, offset_ms, false);
        prop_assert_eq!(
            outcome.granted,
            offset_ms >= 0,
            "threshold {}ms offset {}ms", threshold_ms, offset_ms
        );
        prop_assert_eq!(outcome.suppressed > 0, offset_ms < 0);
    }

    /// An occluded overlay accrues no stability: raised back at the
    /// interaction instant its clock starts fresh, and only re-ripening
    /// past the exact threshold restores the steal.
    #[test]
    fn raise_at_interaction_instant_restarts_the_clock(
        threshold_ms in 100u64..2_000,
        offset_ms in -1i64..=1,
    ) {
        let outcome = boundary_run(threshold_ms, offset_ms, true);
        prop_assert_eq!(
            outcome.granted,
            offset_ms >= 0,
            "threshold {}ms offset {}ms after raise", threshold_ms, offset_ms
        );
    }
}

#[test]
fn raise_then_immediate_click_is_always_suppressed() {
    for threshold_ms in [100, 750, 1_999] {
        let outcome = boundary_run(threshold_ms, -(threshold_ms as i64), true);
        assert!(!outcome.granted, "threshold {threshold_ms}ms");
        assert!(outcome.suppressed > 0);
    }
}

#[test]
fn catalog_covers_every_class_with_documented_bypasses() {
    let (matrix, reports) = run_campaign_matrix(&OverhaulConfig::protected());
    assert_eq!(matrix.classes_covered(), 3);
    assert_eq!(matrix.regressions(), 0, "\n{}", matrix.render());
    assert!(matrix.bypasses() >= 3, "\n{}", matrix.render());
    for class in overhaul_apps::campaign::AttackClass::ALL {
        assert_eq!(
            matrix.block_rate_pct(class),
            Some(100.0),
            "{}",
            class.label()
        );
    }
    let rationales = format_bypass_rationales(&reports);
    for name in ["hover-theft", "delegation-abuse", "operation-binding"] {
        assert!(rationales.contains(name), "missing rationale for {name}");
    }
}

#[test]
fn grant_all_machine_regresses_and_the_matrix_says_where() {
    let (matrix, reports) = run_campaign_matrix(&OverhaulConfig::grant_all());
    assert!(matrix.regressions() > 0, "\n{}", matrix.render());
    // Every regression on a grant-all machine is a wrongful grant.
    for report in &reports {
        for stage in report.regressions() {
            assert_eq!(stage.granted, Some(true), "{stage:?}");
        }
    }
}
