//! The fleet observability plane, pinned end to end.
//!
//! Four guarantees from the latency-sketch / exemplar / ledger-view work:
//!
//! 1. **Determinism** — two fleets run from the same master seed merge
//!    byte-identical deterministic sketch planes
//!    ([`SketchBook::canonical_bytes`]) and identical per-shard ledger
//!    digests, even though shards run on a racing worker pool and the
//!    wall-clock plane differs run to run.
//! 2. **Exemplar forensics** — a sketch exemplar is a *replayable
//!    coordinate*: re-executing its shard up to the recorded event index
//!    (from boot, and from a mid-run snapshot) reproduces the exact
//!    `(span id, ledger seq)` pair the exemplar carries. Property-tested
//!    across seeds and workload shapes on a traced machine, so span ids
//!    are non-trivial.
//! 3. **Span-drop hygiene** — overflowing the tracer's span buffer bumps
//!    `overhaul_trace_spans_dropped_total` but never perturbs decide
//!    head-sampling or trace/metrics determinism.
//! 4. **Prometheus conformance** — every exported metrics page parses
//!    under the text exposition format: `# HELP`/`# TYPE` precede every
//!    family, types are legal, label values are escaped, histogram
//!    series agree with their declared family.

use std::collections::{BTreeSet, HashMap};

use overhaul_core::{Event, OverhaulConfig, Recorder, System};
use overhaul_fleet::{resolve_exemplar_via, run_fleet, FleetConfig, FleetWorkload, ShardArchive};
use overhaul_sim::{label_metric, Mechanism, MetricsRegistry, SimDuration, Tracer};
use overhaul_xserver::geometry::Rect;
use proptest::prelude::*;

fn decide_mechs() -> Vec<Mechanism> {
    Mechanism::parse("decide").expect("decide parses")
}

// ---------------------------------------------------------------------
// 1. Fleet-level determinism of the merged sketch plane.
// ---------------------------------------------------------------------

fn small_fleet(master_seed: u64) -> FleetConfig {
    FleetConfig {
        master_seed,
        shards: 6,
        workers: 3,
        workload: FleetWorkload::default(),
        shrink: false,
        ..FleetConfig::default()
    }
}

#[test]
fn merged_sketches_byte_identical_across_same_seed_runs() {
    let a = run_fleet(&small_fleet(0x0b5e7));
    let b = run_fleet(&small_fleet(0x0b5e7));
    assert_eq!(
        a.sketches.canonical_bytes(),
        b.sketches.canonical_bytes(),
        "same master seed must merge a byte-identical deterministic plane"
    );
    assert!(
        a.sketches.wall_merged(&decide_mechs()).count() > 0,
        "the fleet must sample decides"
    );
    let heads = |r: &overhaul_fleet::FleetReport| -> Vec<(usize, u64)> {
        r.ledgers.iter().map(|(i, l)| (*i, l.head)).collect()
    };
    assert_eq!(heads(&a), heads(&b), "per-shard chain heads must agree");
    // A different master seed must move the deterministic plane (the
    // exemplar coordinates alone differ).
    let c = run_fleet(&small_fleet(0x0b5e8));
    assert_ne!(a.sketches.canonical_bytes(), c.sketches.canonical_bytes());
}

// ---------------------------------------------------------------------
// 2. Exemplar -> replay round trip on a traced machine.
// ---------------------------------------------------------------------

/// Records a traced machine: launch + settle, mid-run checkpoint, then
/// `opens` device decisions spaced `gap_ms` apart. Returns the archive
/// `ovq` would query.
fn traced_archive(seed: u64, opens: usize, gap_ms: u64) -> ShardArchive {
    let mut rec = Recorder::new(OverhaulConfig::protected().with_tracing());
    rec.system().set_sketch_seed(seed);
    let gui = rec
        .apply(Event::LaunchGuiApp {
            exe: "/usr/bin/recorder".into(),
            rect: Rect::new(0, 0, 200, 150),
        })
        .gui()
        .expect("launch");
    rec.apply(Event::Settle);
    let snap_idx = rec.events_recorded();
    let snapshot = rec.snapshot();
    let device = if seed.is_multiple_of(2) {
        "/dev/snd/mic0"
    } else {
        "/dev/video0"
    };
    for _ in 0..opens {
        rec.apply(Event::Advance(SimDuration::from_millis(gap_ms)));
        rec.apply(Event::OpenDevice {
            pid: gui.pid,
            path: device.into(),
        });
    }
    let (system, log) = rec.finish();
    ShardArchive {
        index: 0,
        seed,
        sketches: system.sketch_book(),
        ledger: system.ledger_summary(),
        log,
        snap_idx,
        snapshot,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        ..ProptestConfig::default()
    })]

    #[test]
    fn exemplar_replay_round_trip(
        seed in any::<u64>(),
        opens in 66usize..96,
        gap_ms in 20u64..400,
    ) {
        let archive = traced_archive(seed, opens, gap_ms);
        let mechs = decide_mechs();
        let sketch = archive.sketches.wall_merged(&mechs);
        prop_assert!(sketch.count() >= 2, "want >=2 sampled decides, got {}", sketch.count());
        let mut seen = BTreeSet::new();
        for q in [0.01, 0.50, 0.90, 0.99, 0.999] {
            let Some(exemplar) = sketch.exemplar_at(q) else { continue };
            if !seen.insert((exemplar.event_idx, exemplar.span, exemplar.ledger_seq)) {
                continue;
            }
            prop_assert_eq!(exemplar.seed, seed, "exemplar stamped with the shard seed");
            // Every decide here happens past the checkpoint, so both
            // replay paths apply and must confirm the same coordinate.
            prop_assert!(exemplar.event_idx as usize > archive.snap_idx);
            for from_snapshot in [false, true] {
                let res = resolve_exemplar_via(&archive, &mechs, &exemplar, from_snapshot)
                    .unwrap_or_else(|e| panic!("resolve (from_snapshot={from_snapshot}): {e}"));
                prop_assert!(
                    res.confirmed,
                    "path from_snapshot={} must reproduce (span {}, seq {}) at event {}, \
                     watched {:?}",
                    from_snapshot, exemplar.span, exemplar.ledger_seq, exemplar.event_idx,
                    res.watched
                );
            }
        }
        prop_assert!(!seen.is_empty(), "at least one exemplar must resolve");
        // Span ids are recording indices, so 0 is a legitimate id for the
        // very first span — but a traced machine with several sampled
        // decides must stamp a non-zero id on at least one exemplar.
        prop_assert!(
            seen.len() < 2 || seen.iter().any(|(_, span, _)| *span != 0),
            "traced machines stamp real span ids: {:?}",
            seen
        );
    }
}

// ---------------------------------------------------------------------
// 3. Span drops: counted, deterministic, sampling-neutral.
// ---------------------------------------------------------------------

fn drop_workload(system: &mut System) {
    let gui = system
        .launch_gui_app("/usr/bin/recorder", Rect::new(0, 0, 100, 100))
        .expect("launch");
    system.settle();
    for _ in 0..12 {
        // Past the proximity window every round re-interacts (a traced
        // channel exchange) and decides uncached (a head-sampled span).
        system.advance(SimDuration::from_millis(5_000));
        let _ = system.click_window(gui.window);
        let _ = system.open_device(gui.pid, "/dev/snd/mic0");
    }
}

#[test]
fn span_drops_counted_without_perturbing_sampling_or_dumps() {
    let run = |limit: Option<usize>| {
        let mut system = System::new(OverhaulConfig::protected().with_tracing());
        if let Some(limit) = limit {
            system
                .kernel_mut()
                .install_tracer(Tracer::with_limit(limit));
        }
        drop_workload(&mut system);
        (
            system.kernel().metrics_registry().render(),
            system
                .kernel()
                .metrics_registry()
                .counter("overhaul_trace_spans_dropped_total"),
            system.sketch_book(),
            system.trace_dump(),
        )
    };
    let (page1, dropped1, book1, dump1) = run(Some(3));
    let (page2, dropped2, book2, dump2) = run(Some(3));
    assert!(
        dropped1 > 0,
        "a 3-span buffer must overflow under this workload"
    );
    assert_eq!(dropped1, dropped2, "drop counts are deterministic");
    assert_eq!(page1, page2, "metrics pages identical across dropping runs");
    assert_eq!(dump1, dump2, "trace dumps identical across dropping runs");
    assert_eq!(
        book1.canonical_bytes(),
        book2.canonical_bytes(),
        "sketch planes identical across dropping runs"
    );

    let (_, dropped0, book0, _) = run(None);
    assert_eq!(dropped0, 0, "the default buffer must not drop here");
    let mechs = decide_mechs();
    assert!(book0.wall_merged(&mechs).count() > 0, "decides are sampled");
    assert_eq!(
        book0.wall_merged(&mechs).count(),
        book1.wall_merged(&mechs).count(),
        "span drops must not perturb decide head-sampling"
    );
}

// ---------------------------------------------------------------------
// 4. Prometheus text-format conformance.
// ---------------------------------------------------------------------

/// Minimal exposition-format checker: families announced before samples,
/// legal types, well-formed names, escaped label values, histogram
/// series tied to a declared histogram family.
fn check_prometheus_page(page: &str) {
    fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && name
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    /// Parses `k="v",...` with `\\`, `\"`, and `\n` escapes.
    fn check_labels(s: &str) {
        let mut chars = s.chars().peekable();
        loop {
            let mut name = String::new();
            while chars.peek().is_some_and(|c| *c != '=') {
                name.push(chars.next().unwrap());
            }
            assert!(valid_name(&name), "bad label name {name:?} in {s:?}");
            assert_eq!(chars.next(), Some('='), "label {name} missing '=' in {s:?}");
            assert_eq!(
                chars.next(),
                Some('"'),
                "label {name} missing '\"' in {s:?}"
            );
            loop {
                match chars.next() {
                    Some('\\') => {
                        let esc = chars.next();
                        assert!(
                            matches!(esc, Some('\\' | '"' | 'n')),
                            "bad escape \\{esc:?} in {s:?}"
                        );
                    }
                    Some('"') => break,
                    Some('\n') | None => panic!("unterminated label value in {s:?}"),
                    Some(_) => {}
                }
            }
            match chars.next() {
                None => return,
                Some(',') => {}
                Some(c) => panic!("unexpected {c:?} after label value in {s:?}"),
            }
        }
    }

    let mut helps: BTreeSet<String> = BTreeSet::new();
    let mut types: HashMap<String, String> = HashMap::new();
    let mut samples = 0usize;
    for line in page.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, text) = rest.split_once(' ').expect("HELP carries text");
            assert!(valid_name(name), "bad HELP name {name:?}");
            assert!(!text.trim().is_empty(), "empty HELP for {name}");
            helps.insert(name.to_string());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE carries a kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "illegal type {kind:?} for {name}"
            );
            assert!(
                helps.contains(name),
                "# TYPE {name} not preceded by its # HELP"
            );
            assert!(
                types.insert(name.to_string(), kind.to_string()).is_none(),
                "family {name} announced twice"
            );
        } else if line.starts_with('#') {
            panic!("unknown comment line {line:?}");
        } else {
            let (series, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable value {value:?} in {line:?}"
            );
            let base = match series.split_once('{') {
                Some((base, labels)) => {
                    let labels = labels.strip_suffix('}').expect("labels close");
                    check_labels(labels);
                    base
                }
                None => series,
            };
            assert!(valid_name(base), "bad metric name {base:?}");
            // A histogram exports base_bucket/base_sum/base_count under
            // the family name announced as `histogram`.
            let family = if types.contains_key(base) {
                base.to_string()
            } else {
                let stripped = base
                    .strip_suffix("_bucket")
                    .or_else(|| base.strip_suffix("_sum"))
                    .or_else(|| base.strip_suffix("_count"))
                    .unwrap_or(base);
                assert_eq!(
                    types.get(stripped).map(String::as_str),
                    Some("histogram"),
                    "sample {base} has no announced family"
                );
                stripped.to_string()
            };
            assert!(
                helps.contains(&family),
                "sample {base} missing HELP for {family}"
            );
            samples += 1;
        }
    }
    assert!(samples > 0, "page exported no samples");
}

#[test]
fn machine_metrics_page_conforms() {
    let mut system = System::new(OverhaulConfig::protected().with_tracing());
    drop_workload(&mut system);
    check_prometheus_page(&system.metrics_registry().render());
}

#[test]
fn fleet_metrics_page_conforms() {
    let report = run_fleet(&small_fleet(0x0b5e7));
    let page = report.render_metrics();
    check_prometheus_page(&page);
    assert!(
        page.contains("overhaul_fleet_latency_ns{mech=\"decide_uncached\",q=\"p99\"}"),
        "fleet page exports merged latency quantiles"
    );
    assert!(
        page.contains("overhaul_fleet_ledger_head{shard=\"0\"}"),
        "fleet page exports per-shard chain heads"
    );
}

#[test]
fn hostile_label_values_are_escaped_and_still_parse() {
    let mut reg = MetricsRegistry::new();
    let name = label_metric(
        "overhaul_test_hostile",
        "path",
        "quote\" backslash\\ newline\n end",
    );
    reg.set_counter(&name, 7);
    let page = reg.render();
    assert!(
        page.contains(r#"path="quote\" backslash\\ newline\n end""#),
        "escapes must be literal in the page: {page}"
    );
    check_prometheus_page(&page);
}
