//! Figures 1–4: the paper's four protocol walkthroughs, asserted step by
//! step across the whole stack (kernel + X server + core wiring).

use overhaul_core::System;
use overhaul_sim::{AuditCategory, SimDuration};
use overhaul_xserver::geometry::Rect;
use overhaul_xserver::protocol::{InputPayload, XEvent};

/// Figure 1: dynamic access control over a privacy-sensitive hardware
/// device (the microphone).
#[test]
fn figure1_microphone_access() {
    let mut machine = System::protected();
    let app = machine
        .launch_gui_app("/usr/bin/app", Rect::new(0, 0, 200, 200))
        .unwrap();
    machine.settle();

    // (1) The user clicks the mic button; the display manager receives the
    // event and verifies it came from hardware.
    assert!(machine.click_window(app.window));
    // (2) The display manager sent N_{A,t} to the permission monitor.
    assert_eq!(
        machine
            .x_audit()
            .count(AuditCategory::InteractionNotification),
        1
    );
    assert_eq!(
        machine
            .kernel_audit()
            .count(AuditCategory::InteractionNotification),
        1
    );
    // (3) The event was forwarded to A.
    let events = machine.xserver_mut().drain_events(app.client).unwrap();
    assert!(matches!(
        events.as_slice(),
        [XEvent::Input {
            synthetic: false,
            payload: InputPayload::Button { .. },
            ..
        }]
    ));
    // (4)–(5) A's mic request within δ is correlated and granted.
    machine.advance(SimDuration::from_millis(800));
    let fd = machine
        .open_device(app.pid, "/dev/snd/mic0")
        .expect("n < delta");
    assert!(machine.kernel_mut().sys_read(app.pid, fd, 16).is_ok());
    // (6) The kernel requested a visual alert; the display manager showed it.
    assert_eq!(machine.alert_history().len(), 1);
    assert!(machine.alert_history()[0].granted);
    assert_eq!(machine.alert_history()[0].op, "mic");
    assert_eq!(machine.x_audit().count(AuditCategory::AlertDisplayed), 1);
}

/// Figure 2: clipboard paste mediated by a permission query from the
/// display manager to the kernel monitor.
#[test]
fn figure2_clipboard_paste_query() {
    use overhaul_xserver::protocol::{Atom, Request};
    let mut machine = System::protected();
    let source = machine
        .launch_gui_app("/usr/bin/source", Rect::new(0, 0, 100, 100))
        .unwrap();
    let target = machine
        .launch_gui_app("/usr/bin/target", Rect::new(200, 0, 100, 100))
        .unwrap();
    machine.settle();

    // Copy: user input then SetSelection.
    machine.click_window(source.window);
    machine
        .x_request(
            source.client,
            Request::SetSelectionOwner {
                selection: Atom::clipboard(),
                window: source.window,
            },
        )
        .expect("copy granted");

    // (1) User inputs the paste keystroke on the target...
    machine.click_window(target.window);
    let grants_before = machine.kernel().monitor_stats().grants;
    // (4)–(7) ...the paste request triggers Q_{A,t+n} and is granted.
    machine
        .x_request(
            target.client,
            Request::ConvertSelection {
                selection: Atom::clipboard(),
                requestor: target.window,
                property: Atom::new("P"),
            },
        )
        .expect("paste granted");
    assert!(
        machine.kernel().monitor_stats().grants > grants_before,
        "the monitor was queried"
    );

    // A paste *without* input is answered with a deny and BadAccess.
    machine.advance(SimDuration::from_secs(10));
    let denies_before = machine.kernel().monitor_stats().denies;
    assert!(machine
        .x_request(
            target.client,
            Request::ConvertSelection {
                selection: Atom::clipboard(),
                requestor: target.window,
                property: Atom::new("P"),
            },
        )
        .is_err());
    assert!(machine.kernel().monitor_stats().denies > denies_before);
    // No alert for clipboard operations (usability decision, §V-C).
    assert!(machine.alert_history().is_empty());
}

/// Figure 3: a program launcher spawns a screen-capture tool; the child
/// inherits the launcher's interaction record (P1).
#[test]
fn figure3_launcher_spawns_screenshot_tool() {
    use overhaul_xserver::protocol::{Reply, Request};
    let mut machine = System::protected();
    let run = machine
        .launch_gui_app("/usr/bin/run", Rect::new(0, 0, 300, 40))
        .unwrap();
    machine.settle();

    // (1)–(3) The user types the program name into the launcher.
    machine.click_window(run.window);
    // (4) Run creates the Shot process.
    let shot = machine
        .kernel_mut()
        .sys_spawn(run.pid, "/usr/bin/shot")
        .unwrap();
    let shot_client = machine.connect_x(shot);
    // (5) Shot's screen-capture request is granted: the interaction
    // notification was duplicated at fork time.
    machine.advance(SimDuration::from_millis(200));
    match machine.x_request(shot_client, Request::GetImage { window: None }) {
        Ok(Reply::Image(pixels)) => assert!(!pixels.is_empty()),
        other => panic!("screen capture should be granted: {other:?}"),
    }
    // The alert names the capture operation.
    assert_eq!(machine.alert_history().last().unwrap().op, "scr");
}

/// Figure 4: a multi-process browser where the tab gets its command over
/// shared-memory IPC (P2 via page-fault interposition).
#[test]
fn figure4_browser_tab_shared_memory() {
    let mut machine = System::protected();
    let browser = machine
        .launch_gui_app("/usr/bin/browser", Rect::new(0, 0, 800, 600))
        .unwrap();
    let kernel = machine.kernel_mut();
    let shm = kernel.sys_shmget(browser.pid, 1, 4).unwrap();
    let browser_vma = kernel.sys_shmat(browser.pid, shm).unwrap();
    let tab = kernel.sys_fork(browser.pid).unwrap();
    kernel.sys_execve(tab, "/usr/bin/browser-tab").unwrap();
    let tab_vma = kernel.sys_shmat(tab, shm).unwrap();

    // Fork-inherited interaction state expires; only IPC can help now.
    machine.advance(SimDuration::from_secs(60));
    machine.settle();
    assert!(
        machine.open_device(tab, "/dev/video0").is_err(),
        "no interaction yet"
    );

    // (1)–(3) The user commands the browser.
    machine.click_window(browser.window);
    // (4) Main -> tab over shared memory.
    machine
        .kernel_mut()
        .sys_shm_write(browser.pid, browser_vma, 0, b"camera on")
        .unwrap();
    machine
        .kernel_mut()
        .sys_shm_read(tab, tab_vma, 0, 9)
        .unwrap();
    // (5) cam_{t+n} now has a corresponding interaction record.
    assert!(machine.open_device(tab, "/dev/video0").is_ok());
    assert!(
        machine
            .kernel_audit()
            .count(AuditCategory::InteractionPropagated)
            >= 2
    );
}
