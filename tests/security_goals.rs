//! The paper's security goals S1–S4 (§II), asserted end-to-end on the
//! assembled system, plus the threat-model scenarios of §II.

use overhaul_apps::malware::{input_forgery_attack, ptrace_injection_attack, Spyware};
use overhaul_core::System;
use overhaul_sim::{AuditCategory, SimDuration};
use overhaul_xserver::geometry::Rect;
use overhaul_xserver::overlay::Alert;
use overhaul_xserver::protocol::{InputPayload, Request, XEvent};

/// S1: access to privacy-sensitive resources only with explicit physical
/// interaction immediately before the request — across all resource kinds.
#[test]
fn s1_every_resource_requires_recent_physical_input() {
    let mut machine = System::protected();
    let app = machine
        .launch_gui_app("/usr/bin/app", Rect::new(0, 0, 300, 300))
        .unwrap();
    machine.settle();

    // Hardware devices.
    assert!(machine.open_device(app.pid, "/dev/snd/mic0").is_err());
    assert!(machine.open_device(app.pid, "/dev/video0").is_err());
    // Screen contents.
    assert!(machine
        .x_request(app.client, Request::GetImage { window: None })
        .is_err());
    // Clipboard.
    assert!(machine
        .x_request(
            app.client,
            Request::SetSelectionOwner {
                selection: overhaul_xserver::protocol::Atom::clipboard(),
                window: app.window,
            },
        )
        .is_err());

    // One click unlocks each of them within δ.
    machine.click_window(app.window);
    machine.advance(SimDuration::from_millis(100));
    assert!(machine.open_device(app.pid, "/dev/snd/mic0").is_ok());
    assert!(machine
        .x_request(app.client, Request::GetImage { window: None })
        .is_ok());
    assert!(machine
        .x_request(
            app.client,
            Request::SetSelectionOwner {
                selection: overhaul_xserver::protocol::Atom::clipboard(),
                window: app.window,
            },
        )
        .is_ok());
}

/// S2: programs cannot forge input events to escalate their privileges —
/// via SendEvent, XTest, or events aimed at other applications.
#[test]
fn s2_synthetic_input_grants_nothing() {
    let mut machine = System::protected();
    let spy = machine.spawn_process(None, "/usr/bin/.spy").unwrap();
    assert!(!input_forgery_attack(&mut machine, spy));
    assert!(
        machine
            .x_audit()
            .count(AuditCategory::SyntheticInputFiltered)
            >= 1
    );
}

/// S2 (cross-application variant): forging input at a *victim* window
/// must not grant the victim's process anything either — synthetic events
/// never become interaction notifications, no matter the target.
#[test]
fn s2_synthetic_input_at_victim_grants_victim_nothing() {
    let mut machine = System::protected();
    let victim = machine
        .launch_gui_app("/usr/bin/recorder", Rect::new(0, 0, 100, 100))
        .unwrap();
    machine.settle();
    let spy = machine.spawn_process(None, "/usr/bin/.spy").unwrap();
    let spy_client = machine.connect_x(spy);
    machine
        .x_request(
            spy_client,
            Request::SendEvent {
                target: victim.window,
                event: Box::new(XEvent::Input {
                    window: victim.window,
                    payload: InputPayload::Button { x: 5, y: 5 },
                    synthetic: false,
                }),
            },
        )
        .unwrap();
    machine.advance(SimDuration::from_millis(50));
    assert!(
        machine.open_device(victim.pid, "/dev/snd/mic0").is_err(),
        "a forged click at the victim must not arm the victim's permissions"
    );
}

/// S3: legitimate user interactions cannot be hijacked — the clickjacking
/// window-stability gate and the per-process binding of notifications.
#[test]
fn s3_interactions_bound_to_the_right_process() {
    let mut machine = System::protected();
    let legit = machine
        .launch_gui_app("/usr/bin/recorder", Rect::new(0, 0, 100, 100))
        .unwrap();
    let bystander = machine
        .launch_gui_app("/usr/bin/editor", Rect::new(300, 0, 100, 100))
        .unwrap();
    machine.settle();
    machine.click_window(legit.window);
    machine.advance(SimDuration::from_millis(50));
    assert!(machine.open_device(legit.pid, "/dev/snd/mic0").is_ok());
    assert!(
        machine.open_device(bystander.pid, "/dev/snd/mic0").is_err(),
        "another process must not inherit the click"
    );
}

/// S3 (clickjacking): a window popped over the user's click target steals
/// the click but gains no interaction credit.
#[test]
fn s3_popup_clickjack_gains_nothing() {
    let mut machine = System::protected();
    let victim = machine
        .launch_gui_app("/usr/bin/bank", Rect::new(0, 0, 200, 200))
        .unwrap();
    machine.settle();
    // Attacker pops a transparent-looking trap over the victim right
    // before the click.
    let trap = machine
        .launch_gui_app("/usr/bin/.trap", Rect::new(0, 0, 200, 200))
        .unwrap();
    machine.advance(SimDuration::from_millis(20));
    machine.click_window(trap.window); // the click lands on the trap
    machine.advance(SimDuration::from_millis(20));
    assert!(machine.open_device(trap.pid, "/dev/video0").is_err());
    assert!(
        machine
            .x_audit()
            .count(AuditCategory::ClickjackingSuppressed)
            >= 1
    );
    let _ = victim;
}

/// S4: successful accesses are reported on a trusted output path that
/// other applications cannot forge.
#[test]
fn s4_alerts_are_shown_and_unforgeable() {
    let mut machine = System::protected();
    let app = machine
        .launch_gui_app("/usr/bin/recorder", Rect::new(0, 0, 100, 100))
        .unwrap();
    machine.settle();
    machine.click_window(app.window);
    machine.open_device(app.pid, "/dev/snd/mic0").unwrap();
    let alert = machine.alert_history().last().unwrap().clone();
    let secret = machine.xserver().alerts().secret().to_string();
    assert!(Alert::looks_authentic(&alert.render(), &secret));
    // An application cannot reproduce the rendering without the secret.
    assert!(!Alert::looks_authentic(
        "recorder is using the mic",
        &secret
    ));
    assert!(!Alert::looks_authentic(
        "[guess] recorder is using the mic",
        &secret
    ));
}

/// Threat scenario 1 (§II): stealthy background malware is blocked
/// automatically.
#[test]
fn threat_scenario_background_malware_blocked() {
    let mut machine = System::protected();
    let mut spyware = Spyware::install(&mut machine);
    for _ in 0..10 {
        machine.advance(SimDuration::from_secs(120));
        spyware.run_cycle(&mut machine);
    }
    assert_eq!(spyware.total_stolen(), 0);
    assert_eq!(spyware.blocked_cycles, 10);
}

/// Threat scenario 2 (§II): a benign-but-misbehaving app (launch-time
/// camera probe) is blocked *and the user is alerted*.
#[test]
fn threat_scenario_misbehaving_app_alerts_user() {
    let mut machine = System::protected();
    let app = machine
        .launch_gui_app("/usr/bin/skype", Rect::new(0, 0, 100, 100))
        .unwrap();
    // Probe before any interaction.
    assert!(machine.open_device(app.pid, "/dev/video0").is_err());
    let alert = machine.alert_history().last().unwrap();
    assert!(!alert.granted);
    assert_eq!(alert.op, "cam");
}

/// ptrace hardening: injecting into a legitimately-privileged child is
/// useless because tracing freezes its permissions.
#[test]
fn ptrace_injection_is_useless() {
    let mut machine = System::protected();
    let spy = machine.spawn_process(None, "/usr/bin/.spy").unwrap();
    assert!(!ptrace_injection_attack(&mut machine, spy));
    assert!(machine.kernel_audit().count(AuditCategory::PtraceHardening) >= 1);
}

/// The superuser can toggle the hardening through procfs — and only the
/// superuser.
#[test]
fn ptrace_hardening_toggle_is_root_only() {
    use overhaul_kernel::procfs;
    use overhaul_sim::{Pid, Uid};
    let mut machine = System::protected();
    let user_proc = machine
        .kernel_mut()
        .sys_spawn_as(Pid::INIT, "/usr/bin/shell", Uid::from_raw(1000))
        .unwrap();
    assert!(machine
        .kernel_mut()
        .sys_procfs_write(user_proc, procfs::PTRACE_HARDENING, "0")
        .is_err());
    assert!(machine
        .kernel_mut()
        .sys_procfs_write(Pid::INIT, procfs::PTRACE_HARDENING, "0")
        .is_ok());
    // With hardening off, tracing no longer freezes the child...
    let spy = machine.spawn_process(None, "/usr/bin/.spy").unwrap();
    assert!(
        ptrace_injection_attack(&mut machine, spy),
        "hardening disabled: the legacy-debugging escape hatch is open"
    );
}
