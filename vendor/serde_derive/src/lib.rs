//! No-op derive macros for the workspace-local `serde` stub.
//!
//! `#[derive(Serialize, Deserialize)]` in this repo documents that a type's
//! shape is persistence-stable; real encoding uses the in-tree `Pack`
//! codec. These derives therefore expand to nothing — they exist so the
//! attribute positions compile without the external serde_derive crate.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
