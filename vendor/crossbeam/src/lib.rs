//! Workspace-local placeholder for `crossbeam`.
//!
//! Declared as a dependency for future scalability work but not yet used by
//! any workspace code; the fleet harness uses `std::thread::scope` and
//! atomics. This empty crate satisfies the dependency offline.
