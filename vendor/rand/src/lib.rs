//! Workspace-local stand-in for the `rand` crate.
//!
//! The workspace builds offline and hermetic: this crate provides the tiny
//! slice of the `rand 0.8` API the repo actually uses, with a fixed,
//! documented algorithm instead of an external dependency. `StdRng` here is
//! a counter-mode SplitMix64 — draw *n* of seed *s* is `mix(mix(s) + n·γ)` —
//! which is the reference stream `overhaul_sim::SimRng` is pinned against
//! (see `crates/sim/src/rng.rs::stream_matches_std_rng`). Determinism is the
//! point: the same seed produces the same stream on every platform, forever.

/// SplitMix64 increment (the golden-ratio gamma).
const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// SplitMix64 finalizer.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A random source yielding raw 64-bit draws.
pub trait RngCore {
    /// The next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Conversion of raw draws into a typed sample; backs [`Rng::gen`].
pub trait Sample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Sample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform integer in `range` (half-open).
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u128;
        range.start + (u128::from(self.next_u64()) % span) as u64
    }

    /// A typed uniform sample (`f64` in `[0, 1)`, raw `u64`, fair `bool`).
    fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{mix, RngCore, SeedableRng, GAMMA};

    /// Counter-mode SplitMix64 generator.
    ///
    /// State is just `(seed, pos)`: draw *n* is `mix(mix(seed) + n·γ)`, so
    /// the stream can be checkpointed and resumed in O(1).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        seed: u64,
        pos: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { seed: state, pos: 0 }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.pos = self.pos.wrapping_add(1);
            mix(mix(self.seed).wrapping_add(self.pos.wrapping_mul(GAMMA)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0..1_000_000), b.gen_range(0..1_000_000));
        }
    }

    #[test]
    fn unit_samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..64 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
