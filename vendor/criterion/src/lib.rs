//! Workspace-local stand-in for the `criterion` crate.
//!
//! Provides the `criterion_group!`/`criterion_main!`/`benchmark_group`
//! surface the repo's benches use, with a simple timed loop instead of
//! criterion's statistical machinery. Each benchmark runs a short warmup
//! plus a fixed measured batch and prints mean ns/iter — enough for the
//! relative baseline-vs-overhaul comparisons the benches exist for, and
//! fast enough that `cargo bench -- --test` stays cheap in CI.

use std::time::Instant;

/// Re-export so benches can opaque-guard values exactly like criterion.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: std::marker::PhantomData,
            name: name.into(),
            sample_size: 50,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many measured iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints mean ns/iter under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // Warmup: one small batch so lazy init does not pollute timing.
        let mut bencher = Bencher {
            iters: 3,
            nanos: 0,
        };
        f(&mut bencher);
        // Measured batch.
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            nanos: 0,
        };
        f(&mut bencher);
        let per_iter = bencher.nanos / bencher.iters.max(1);
        println!("bench {}/{}: {} ns/iter ({} iters)", self.name, id, per_iter, bencher.iters);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; owns the timed loop.
pub struct Bencher {
    iters: u64,
    nanos: u64,
}

impl Bencher {
    /// Runs `f` for the configured number of iterations, timing the batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.nanos = start.elapsed().as_nanos() as u64;
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("stub");
        group.sample_size(10);
        let mut count = 0u64;
        group.bench_function("count", |b| b.iter(|| count += 1));
        group.finish();
        // warmup (3) + measured (10)
        assert_eq!(count, 13);
    }
}
