//! Workspace-local stand-in for the `serde` crate.
//!
//! The repo annotates public data types with `#[derive(Serialize,
//! Deserialize)]` to document intent (these types are wire/disk-stable),
//! but all actual persistence goes through the in-tree `Pack` codec in
//! `overhaul_sim::snapshot`. This stub keeps the annotations compiling
//! offline: the traits are markers and the re-exported derives expand to
//! nothing. No code in the workspace relies on serde-generated impls.

pub use serde_derive::{Deserialize, Serialize};

/// Marker: the type's shape is considered serialization-stable.
pub trait Serialize {}

/// Marker: the type's shape is considered deserialization-stable.
pub trait Deserialize<'de>: Sized {}

/// Marker: owned variant of [`Deserialize`].
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
