//! Workspace-local placeholder for `bytes`.
//!
//! Declared as a dependency by the kernel and xserver crates but not used
//! by any workspace code; wire encoding goes through the in-tree `Pack`
//! codec. This empty crate satisfies the dependency offline.
