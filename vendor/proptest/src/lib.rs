//! Workspace-local stand-in for the `proptest` crate.
//!
//! Implements the slice of the proptest API this repo's property tests use
//! — `proptest!`, `prop_oneof!`, `prop_assert*!`, `Strategy`/`prop_map`,
//! `Just`, `any`, integer/float range strategies, tuple strategies, and
//! `prop::collection::vec` — on top of a deterministic SplitMix64 stream
//! keyed by test name and case index. Determinism is deliberate: the same
//! test binary produces the same inputs on every run and platform, which is
//! the property the rest of this simulation stack is built around.
//!
//! Differences from real proptest, by design: inputs are uniform rather
//! than edge-biased, and failing cases are reported but not shrunk (the
//! repo's own fleet harness owns reproducer shrinking at a higher level).

pub mod test_runner {
    /// SplitMix64 increment (the golden-ratio gamma).
    const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

    /// SplitMix64 finalizer.
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// FNV-1a over a byte string; seeds a test's stream from its name.
    fn fnv1a64(bytes: &[u8]) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Deterministic per-case random source (counter-mode SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        seed: u64,
        pos: u64,
    }

    impl TestRng {
        /// The stream for case number `case` of the test named `test`.
        /// Different tests and different cases get decorrelated streams.
        pub fn for_case(test: &str, case: u64) -> Self {
            let seed = mix(fnv1a64(test.as_bytes()) ^ case.wrapping_mul(GAMMA));
            TestRng { seed, pos: 0 }
        }

        /// The next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.pos = self.pos.wrapping_add(1);
            mix(mix(self.seed).wrapping_add(self.pos.wrapping_mul(GAMMA)))
        }

        /// A uniform integer in `[0, n)`.
        ///
        /// # Panics
        ///
        /// Panics if `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            (u128::from(self.next_u64()) % u128::from(n)) as u64
        }

        /// A uniform float in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Runner configuration; only `cases` is meaningful in this stub, the
    /// other fields exist so struct-update syntax against real-proptest
    /// configs keeps compiling.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated input cases per property.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not performed here.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; rejection sampling is not used here.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 1024,
                max_global_rejects: 65536,
            }
        }
    }

    impl ProptestConfig {
        /// A default config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        /// Generates one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy producing `f` applied to this strategy's values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy (used by `prop_oneof!` to mix arms of
        /// different concrete types).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among several strategies with a common value type;
    /// backs `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (lo as i128 + off) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($name:ident . $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy; backs [`any`].
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;

        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Full-domain strategy for a primitive type.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl Strategy for Any<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = Any<bool>;

        fn arbitrary() -> Self::Strategy {
            Any(std::marker::PhantomData)
        }
    }

    macro_rules! arbitrary_uints {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }

            impl Arbitrary for $t {
                type Strategy = Any<$t>;

                fn arbitrary() -> Self::Strategy {
                    Any(std::marker::PhantomData)
                }
            }
        )*};
    }

    arbitrary_uints!(u8, u16, u32, u64, usize);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for `Vec`s whose length is uniform in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test that runs `body` against `config.cases` deterministic
/// generated inputs. The case's inputs are printed on failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..u64::from(config.cases) {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($tt:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($tt)*
        }
    };
}

/// Uniform choice among strategy arms sharing a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Property-test assertion (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($arg:tt)+) => { assert!($cond, $($arg)+) };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($arg:tt)+) => { assert_eq!($a, $b, $($arg)+) };
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($arg:tt)+) => { assert_ne!($a, $b, $($arg)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_streams_per_test_name() {
        let mut a = crate::test_runner::TestRng::for_case("t", 0);
        let mut b = crate::test_runner::TestRng::for_case("t", 0);
        let mut c = crate::test_runner::TestRng::for_case("t", 1);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_and_vec_strategies_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("bounds", 0);
        for _ in 0..256 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let v = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&v));
            let items = crate::collection::vec(0usize..3, 1..=4).generate(&mut rng);
            assert!((1..=4).contains(&items.len()));
            assert!(items.iter().all(|&x| x < 3));
        }
    }

    #[test]
    fn oneof_mixes_arms() {
        let strat = prop_oneof![Just(1u8), Just(2u8), (3u8..5)];
        let mut rng = crate::test_runner::TestRng::for_case("oneof", 0);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..128 {
            seen.insert(strat.generate(&mut rng));
        }
        assert!(seen.len() >= 3, "union should exercise multiple arms");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: args bind, tuples map, asserts fire.
        #[test]
        fn macro_end_to_end(pair in (0u32..10, 0u32..10).prop_map(|(a, b)| (a, b)),
                            flip in any::<bool>()) {
            prop_assert!(pair.0 < 10 && pair.1 < 10);
            let _ = flip;
        }
    }
}
