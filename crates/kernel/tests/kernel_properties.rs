//! Property-based tests over the kernel simulator: random syscall
//! sequences must preserve the structural invariants Overhaul's security
//! argument rests on.

use overhaul_kernel::device::DeviceClass;
use overhaul_kernel::{Kernel, KernelConfig, OpenMode};
use overhaul_sim::{Clock, Pid, SimDuration, Timestamp};
use proptest::prelude::*;

/// The operations the fuzzer may perform.
#[derive(Debug, Clone)]
enum Op {
    Fork(usize),
    Exit(usize),
    Pipe(usize),
    WritePipe(usize),
    ReadPipe(usize),
    Msg(usize, usize),
    Shm(usize, usize),
    Interact(usize, u64),
    OpenMic(usize),
    Advance(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..6).prop_map(Op::Fork),
        (0usize..6).prop_map(Op::Exit),
        (0usize..6).prop_map(Op::Pipe),
        (0usize..6).prop_map(Op::WritePipe),
        (0usize..6).prop_map(Op::ReadPipe),
        (0usize..6, 0usize..6).prop_map(|(a, b)| Op::Msg(a, b)),
        (0usize..6, 0usize..6).prop_map(|(a, b)| Op::Shm(a, b)),
        (0usize..6, 1u64..5_000).prop_map(|(a, t)| Op::Interact(a, t)),
        (0usize..6).prop_map(Op::OpenMic),
        (1u64..3_000).prop_map(Op::Advance),
    ]
}

struct Fuzz {
    kernel: Kernel,
    clock: Clock,
    pids: Vec<Pid>,
    pipes: Vec<(Pid, overhaul_sim::Fd, overhaul_sim::Fd)>,
}

impl Fuzz {
    fn new() -> Self {
        let clock = Clock::new();
        let mut kernel = Kernel::new(clock.clone(), KernelConfig::default());
        kernel.attach_device(DeviceClass::Microphone, "mic", "/dev/snd/mic0");
        let pids: Vec<Pid> = (0..6)
            .map(|i| {
                kernel
                    .sys_spawn(Pid::INIT, &format!("/usr/bin/p{i}"))
                    .unwrap()
            })
            .collect();
        Fuzz {
            kernel,
            clock,
            pids,
            pipes: Vec::new(),
        }
    }

    fn pid(&self, index: usize) -> Pid {
        self.pids[index % self.pids.len()]
    }

    fn apply(&mut self, op: &Op) {
        match op {
            Op::Fork(i) => {
                if let Ok(child) = self.kernel.sys_fork(self.pid(*i)) {
                    self.pids.push(child);
                }
            }
            Op::Exit(i) => {
                let _ = self.kernel.sys_exit(self.pid(*i), 0);
            }
            Op::Pipe(i) => {
                let pid = self.pid(*i);
                if let Ok((r, w)) = self.kernel.sys_pipe(pid) {
                    self.pipes.push((pid, r, w));
                }
            }
            Op::WritePipe(i) => {
                if let Some((pid, _, w)) = self.pipes.get(*i % self.pipes.len().max(1)).copied() {
                    let _ = self.kernel.sys_write(pid, w, b"x");
                }
            }
            Op::ReadPipe(i) => {
                if let Some((pid, r, _)) = self.pipes.get(*i % self.pipes.len().max(1)).copied() {
                    let _ = self.kernel.sys_read(pid, r, 8);
                }
            }
            Op::Msg(a, b) => {
                let from = self.pid(*a);
                let to = self.pid(*b);
                if let Ok(q) = self.kernel.sys_msgget(from, 42) {
                    let _ = self.kernel.sys_msgsnd(from, q, 1, b"m");
                    let _ = self.kernel.sys_msgrcv(to, q, 0);
                }
            }
            Op::Shm(a, b) => {
                let from = self.pid(*a);
                let to = self.pid(*b);
                if let Ok(shm) = self.kernel.sys_shmget(from, 7, 1) {
                    if let (Ok(va), Ok(vb)) = (
                        self.kernel.sys_shmat(from, shm),
                        self.kernel.sys_shmat(to, shm),
                    ) {
                        let _ = self.kernel.sys_shm_write(from, va, 0, b"y");
                        let _ = self.kernel.sys_shm_read(to, vb, 0, 1);
                        let _ = self.kernel.sys_shmdt(from, va);
                        let _ = self.kernel.sys_shmdt(to, vb);
                    }
                }
            }
            Op::Interact(i, _at) => {
                // Interactions arrive through the monitor in real flows; the
                // fuzz uses the harness reset + re-observe path.
                let pid = self.pid(*i);
                let now = self.clock.now();
                // Observing through the netlink channel requires the X
                // process; fuzz directly at the task level instead.
                let _ = self.kernel.reset_interaction(pid);
                let _ = self.kernel.netlink_connect(pid).err(); // untrusted: must never authenticate
                let _ = now;
            }
            Op::OpenMic(i) => {
                let pid = self.pid(*i);
                if let Ok(fd) = self
                    .kernel
                    .sys_open(pid, "/dev/snd/mic0", OpenMode::ReadOnly)
                {
                    let _ = self.kernel.sys_close(pid, fd);
                }
            }
            Op::Advance(ms) => {
                self.clock.advance(SimDuration::from_millis(*ms));
                self.kernel.tick();
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No syscall sequence panics, and structural invariants hold
    /// afterwards: init lives, zombie-free fd bookkeeping, and no task
    /// carries an interaction timestamp from the future.
    #[test]
    fn random_syscall_sequences_preserve_invariants(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut fuzz = Fuzz::new();
        for op in &ops {
            fuzz.apply(op);
        }
        let kernel = &fuzz.kernel;
        // Init is immortal.
        prop_assert!(kernel.tasks().is_running(Pid::INIT));
        let now = kernel.now();
        for task in kernel.tasks().iter() {
            // No timestamps from the future.
            if let Some(ts) = task.raw_interaction() {
                prop_assert!(ts <= now, "{}: {ts} > {now}", task.pid());
            }
            // Zombies hold no descriptors.
            if !task.is_running() {
                prop_assert_eq!(task.fd_count(), 0, "{} is a zombie with fds", task.pid());
            }
        }
    }

    /// Untrusted processes can never authenticate on the netlink channel,
    /// no matter what else happened before.
    #[test]
    fn netlink_never_authenticates_untrusted(ops in prop::collection::vec(op_strategy(), 0..30)) {
        let mut fuzz = Fuzz::new();
        for op in &ops {
            fuzz.apply(op);
        }
        for pid in fuzz.pids.clone() {
            prop_assert!(fuzz.kernel.netlink_connect(pid).is_err());
        }
    }

    /// Device opens without interactions are always denied under the
    /// protected configuration, regardless of history.
    #[test]
    fn no_interaction_no_device(ops in prop::collection::vec(op_strategy(), 0..40)) {
        let mut fuzz = Fuzz::new();
        for op in &ops {
            // Skip ops that could create interactions (none of the fuzz ops
            // record any — Interact only resets — so all opens must fail).
            fuzz.apply(op);
        }
        let fresh = fuzz.kernel.sys_spawn(Pid::INIT, "/usr/bin/fresh").unwrap();
        prop_assert!(fuzz.kernel.sys_open(fresh, "/dev/snd/mic0", OpenMode::ReadOnly).is_err());
    }
}

/// δ is exact: an op at `interaction + delta - 1` grants, at
/// `interaction + delta` denies — for arbitrary interaction times.
#[test]
fn delta_boundary_is_exact_for_many_offsets() {
    for base in [0u64, 1, 999, 12_345, 86_400_000] {
        let clock = Clock::starting_at(Timestamp::from_millis(base));
        let mut kernel = Kernel::new(clock.clone(), KernelConfig::default());
        kernel.attach_device(DeviceClass::Microphone, "mic", "/dev/snd/mic0");
        let x = kernel
            .sys_spawn(Pid::INIT, overhaul_kernel::XORG_PATH)
            .unwrap();
        let conn = kernel.netlink_connect(x).unwrap();
        let app = kernel.sys_spawn(Pid::INIT, "/usr/bin/app").unwrap();
        kernel
            .netlink_send(
                conn,
                overhaul_kernel::netlink::NetlinkMessage::InteractionNotification {
                    pid: app,
                    at: Timestamp::from_millis(base),
                },
            )
            .unwrap();
        clock.advance(SimDuration::from_millis(1999));
        assert!(
            kernel
                .sys_open(app, "/dev/snd/mic0", OpenMode::ReadOnly)
                .is_ok(),
            "base {base}"
        );
        clock.advance(SimDuration::from_millis(1));
        assert!(
            kernel
                .sys_open(app, "/dev/snd/mic0", OpenMode::ReadOnly)
                .is_err(),
            "base {base}"
        );
    }
}
