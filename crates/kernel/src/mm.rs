//! Virtual-memory subsystem: shared-mapping interposition via page faults.
//!
//! Shared-memory reads and writes "are regular memory operations that cannot
//! be intercepted above the hardware level" (§IV-B). The paper's solution,
//! reproduced here:
//!
//! 1. when a shared mapping is created, its read/write permissions are
//!    revoked ([`MemoryManager::map_shared`]);
//! 2. the next access takes a page fault ([`MemoryManager::begin_access`]
//!    returns [`AccessPath::Faulted`]), giving the kernel a hook to run the
//!    timestamp-propagation protocol;
//! 3. permissions are then restored and the mapping goes on a *wait list*;
//!    accesses inside the wait window proceed uninterposed (this is the
//!    performance/usability trade-off: the window must be "sufficiently
//!    shorter than the 2 second interaction expiration time");
//! 4. when the wait expires ([`MemoryManager::tick`]), permissions are
//!    revoked again. The paper configured the window to 500 ms.

use std::collections::BTreeMap;
use std::fmt;

use overhaul_sim::{Pid, SimDuration, Timestamp};
use serde::{Deserialize, Serialize};

use crate::error::{Errno, SysResult};
use crate::ipc::shm::ShmId;

/// Identifier of a virtual memory area (a shared mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VmaId(u64);

impl VmaId {
    /// Creates a `VmaId` from its raw value.
    pub const fn from_raw(raw: u64) -> Self {
        VmaId(raw)
    }

    /// The raw value.
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for VmaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vma:{}", self.0)
    }
}

/// Read or write access to a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessKind {
    /// Load from the mapping.
    Read,
    /// Store to the mapping.
    Write,
}

/// How an access proceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessPath {
    /// Permissions were revoked: the access faulted, the kernel runs the
    /// propagation protocol, permissions are restored, and the mapping is
    /// placed on the wait list.
    Faulted,
    /// Permissions were live (inside the wait window, or interposition is
    /// disabled): the access proceeds as a plain memory operation.
    Direct,
}

/// A shared mapping (the relevant slice of `vm_area_struct`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vma {
    id: VmaId,
    /// Owning process.
    pid: Pid,
    /// Backing shared segment.
    shm: ShmId,
    /// `true` while accesses will fault (the `VM_SHARED`-flagged area has
    /// its permissions revoked).
    perms_revoked: bool,
}

impl Vma {
    /// Owning process.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Backing segment.
    pub fn shm(&self) -> ShmId {
        self.shm
    }

    /// Whether the next access will fault.
    pub fn perms_revoked(&self) -> bool {
        self.perms_revoked
    }
}

#[derive(Debug, Clone, Copy)]
struct WaitEntry {
    vma: VmaId,
    expires: Timestamp,
}

/// Counters for the interposition machinery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MmStats {
    /// Accesses that took the fault path (propagation ran).
    pub faults: u64,
    /// Accesses that proceeded directly (wait window open or disabled).
    pub direct: u64,
    /// Wait-list expirations that re-revoked permissions.
    pub rearms: u64,
}

/// ```
/// use overhaul_kernel::ipc::shm::ShmId;
/// use overhaul_kernel::mm::{AccessKind, AccessPath, MemoryManager};
/// use overhaul_sim::{Pid, SimDuration, Timestamp};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut mm = MemoryManager::new(true, SimDuration::from_millis(500));
/// let vma = mm.map_shared(Pid::from_raw(9), ShmId::from_raw(1));
/// // First access faults (the propagation hook)...
/// assert_eq!(mm.begin_access(vma, Pid::from_raw(9), AccessKind::Write, Timestamp::ZERO)?,
///            AccessPath::Faulted);
/// // ...later accesses inside the 500 ms window run uninterposed.
/// assert_eq!(mm.begin_access(vma, Pid::from_raw(9), AccessKind::Write, Timestamp::from_millis(10))?,
///            AccessPath::Direct);
/// # Ok(())
/// # }
/// ```
/// The memory manager.
#[derive(Debug, Clone)]
pub struct MemoryManager {
    vmas: BTreeMap<VmaId, Vma>,
    wait_list: Vec<WaitEntry>,
    interpose: bool,
    wait_duration: SimDuration,
    next: u64,
    stats: MmStats,
}

impl Default for MemoryManager {
    fn default() -> Self {
        Self::new(true, SimDuration::from_millis(500))
    }
}

impl MemoryManager {
    /// Creates a manager. `interpose` enables the Overhaul fault machinery;
    /// `wait_duration` is the paper's 500 ms re-arm window.
    pub fn new(interpose: bool, wait_duration: SimDuration) -> Self {
        MemoryManager {
            vmas: BTreeMap::new(),
            wait_list: Vec::new(),
            interpose,
            wait_duration,
            next: 0,
            stats: MmStats::default(),
        }
    }

    /// Whether interposition is active.
    pub fn interpose(&self) -> bool {
        self.interpose
    }

    /// Enables/disables interposition (baseline benchmarking).
    pub fn set_interpose(&mut self, interpose: bool) {
        self.interpose = interpose;
    }

    /// The wait-list duration.
    pub fn wait_duration(&self) -> SimDuration {
        self.wait_duration
    }

    /// Reconfigures the wait-list duration (ablation sweeps).
    pub fn set_wait_duration(&mut self, wait: SimDuration) {
        self.wait_duration = wait;
    }

    /// Counters.
    pub fn stats(&self) -> MmStats {
        self.stats
    }

    /// Maps `shm` into `pid`'s address space. Under interposition the
    /// mapping starts with permissions revoked, so the very first access
    /// faults and propagates.
    pub fn map_shared(&mut self, pid: Pid, shm: ShmId) -> VmaId {
        self.next += 1;
        let id = VmaId(self.next);
        self.vmas.insert(
            id,
            Vma {
                id,
                pid,
                shm,
                perms_revoked: self.interpose,
            },
        );
        id
    }

    /// Looks up a mapping.
    pub fn vma(&self, id: VmaId) -> SysResult<Vma> {
        self.vmas.get(&id).copied().ok_or(Errno::Efault)
    }

    /// Begins an access to `vma` at `now`, returning which path it takes.
    /// On [`AccessPath::Faulted`] the caller (the kernel) must run the
    /// propagation protocol for the backing segment; this method has
    /// already restored permissions and scheduled the re-arm.
    ///
    /// # Errors
    ///
    /// [`Errno::Efault`] for an unknown mapping, [`Errno::Eperm`] if the
    /// access comes from a process other than the mapper.
    pub fn begin_access(
        &mut self,
        id: VmaId,
        pid: Pid,
        _kind: AccessKind,
        now: Timestamp,
    ) -> SysResult<AccessPath> {
        if self.vmas.get(&id).ok_or(Errno::Efault)?.pid != pid {
            return Err(Errno::Eperm);
        }
        // Lazily expire this mapping's wait entry: the window is open
        // strictly for `now < expires` (mirroring the monitor's strict-δ
        // comparison), so an access at exactly the re-arm deadline — or
        // later, if no tick ran in between — must take the re-armed fault
        // path rather than sneak through uninterposed.
        if self.interpose {
            if let Some(pos) = self
                .wait_list
                .iter()
                .position(|e| e.vma == id && e.expires <= now)
            {
                self.wait_list.swap_remove(pos);
                self.vmas
                    .get_mut(&id)
                    .expect("looked up above")
                    .perms_revoked = true;
                self.stats.rearms += 1;
            }
        }
        let vma = self.vmas.get_mut(&id).ok_or(Errno::Efault)?;
        if self.interpose && vma.perms_revoked {
            vma.perms_revoked = false;
            self.wait_list.push(WaitEntry {
                vma: id,
                expires: now + self.wait_duration,
            });
            self.stats.faults += 1;
            Ok(AccessPath::Faulted)
        } else {
            self.stats.direct += 1;
            Ok(AccessPath::Direct)
        }
    }

    /// Processes the wait list at `now`: mappings whose window expired have
    /// their permissions revoked again. Returns how many were re-armed.
    pub fn tick(&mut self, now: Timestamp) -> usize {
        let mut rearmed = 0;
        let mut index = 0;
        while index < self.wait_list.len() {
            if self.wait_list[index].expires <= now {
                let entry = self.wait_list.swap_remove(index);
                if let Some(vma) = self.vmas.get_mut(&entry.vma) {
                    vma.perms_revoked = true;
                    rearmed += 1;
                    self.stats.rearms += 1;
                }
            } else {
                index += 1;
            }
        }
        rearmed
    }

    /// Unmaps a mapping (`shmdt` / `munmap`).
    pub fn unmap(&mut self, id: VmaId) -> SysResult<Vma> {
        let vma = self.vmas.remove(&id).ok_or(Errno::Efault)?;
        self.wait_list.retain(|e| e.vma != id);
        Ok(vma)
    }

    /// Unmaps every mapping owned by `pid` (process exit), returning them.
    pub fn unmap_all_for(&mut self, pid: Pid) -> Vec<Vma> {
        let ids: Vec<VmaId> = self
            .vmas
            .values()
            .filter(|v| v.pid == pid)
            .map(|v| v.id)
            .collect();
        ids.into_iter()
            .filter_map(|id| self.unmap(id).ok())
            .collect()
    }

    /// Number of live mappings.
    pub fn len(&self) -> usize {
        self.vmas.len()
    }

    /// Whether no mappings exist.
    pub fn is_empty(&self) -> bool {
        self.vmas.is_empty()
    }

    /// Mappings currently inside their wait window.
    pub fn wait_list_len(&self) -> usize {
        self.wait_list.len()
    }
}

mod pack {
    //! Snapshot codec for the memory manager, including the wait list:
    //! pending re-arm deadlines are real kernel state a replay must see.

    use overhaul_sim::{impl_pack, impl_pack_newtype};

    use super::{MemoryManager, MmStats, Vma, VmaId, WaitEntry};

    impl_pack_newtype!(VmaId, u64);
    impl_pack!(Vma {
        id,
        pid,
        shm,
        perms_revoked
    });
    impl_pack!(WaitEntry { vma, expires });
    impl_pack!(MmStats {
        faults,
        direct,
        rearms
    });
    impl_pack!(MemoryManager {
        vmas,
        wait_list,
        interpose,
        wait_duration,
        next,
        stats
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    const WAIT: SimDuration = SimDuration::from_millis(500);

    fn mm() -> MemoryManager {
        MemoryManager::new(true, WAIT)
    }

    fn pid() -> Pid {
        Pid::from_raw(50)
    }

    #[test]
    fn first_access_faults_then_direct_within_window() {
        let mut mm = mm();
        let vma = mm.map_shared(pid(), ShmId::from_raw(1));
        let t0 = Timestamp::from_millis(0);
        assert_eq!(
            mm.begin_access(vma, pid(), AccessKind::Write, t0).unwrap(),
            AccessPath::Faulted
        );
        assert_eq!(
            mm.begin_access(
                vma,
                pid(),
                AccessKind::Write,
                t0 + SimDuration::from_millis(10)
            )
            .unwrap(),
            AccessPath::Direct,
            "accesses immediately after the fault proceed uninterrupted"
        );
        assert_eq!(mm.stats().faults, 1);
        assert_eq!(mm.stats().direct, 1);
    }

    #[test]
    fn wait_expiry_rearms_fault() {
        let mut mm = mm();
        let vma = mm.map_shared(pid(), ShmId::from_raw(1));
        mm.begin_access(vma, pid(), AccessKind::Write, Timestamp::from_millis(0))
            .unwrap();
        assert_eq!(mm.tick(Timestamp::from_millis(499)), 0, "window still open");
        assert_eq!(mm.tick(Timestamp::from_millis(500)), 1, "window closed");
        assert_eq!(
            mm.begin_access(vma, pid(), AccessKind::Read, Timestamp::from_millis(600))
                .unwrap(),
            AccessPath::Faulted
        );
        assert_eq!(mm.stats().rearms, 1);
    }

    #[test]
    fn access_at_exact_rearm_deadline_refaults_without_tick() {
        // Regression: revoke-then-fault at exactly `t + wait` must hold
        // even when no tick ran between the fault and the boundary access.
        let mut mm = mm();
        let vma = mm.map_shared(pid(), ShmId::from_raw(1));
        let t0 = Timestamp::from_millis(0);
        assert_eq!(
            mm.begin_access(vma, pid(), AccessKind::Write, t0).unwrap(),
            AccessPath::Faulted
        );
        // Strictly inside the window: uninterposed.
        assert_eq!(
            mm.begin_access(
                vma,
                pid(),
                AccessKind::Read,
                t0 + SimDuration::from_millis(499)
            )
            .unwrap(),
            AccessPath::Direct
        );
        // Exactly at the 500 ms deadline, no tick in between: the wait
        // entry expires lazily and the access refaults.
        assert_eq!(
            mm.begin_access(vma, pid(), AccessKind::Read, t0 + WAIT)
                .unwrap(),
            AccessPath::Faulted,
            "boundary access must take the re-armed fault path"
        );
        assert_eq!(mm.stats().rearms, 1, "lazy expiry counts as a re-arm");
        assert_eq!(mm.stats().faults, 2);
        // The refault reopened the window: the next in-window access is
        // direct again.
        assert_eq!(
            mm.begin_access(
                vma,
                pid(),
                AccessKind::Read,
                t0 + WAIT + SimDuration::from_millis(1)
            )
            .unwrap(),
            AccessPath::Direct
        );
    }

    #[test]
    fn interposition_disabled_never_faults() {
        let mut mm = MemoryManager::new(false, WAIT);
        let vma = mm.map_shared(pid(), ShmId::from_raw(1));
        for i in 0..10 {
            assert_eq!(
                mm.begin_access(vma, pid(), AccessKind::Write, Timestamp::from_millis(i))
                    .unwrap(),
                AccessPath::Direct
            );
        }
        assert_eq!(mm.stats().faults, 0);
    }

    #[test]
    fn foreign_process_access_is_eperm() {
        let mut mm = mm();
        let vma = mm.map_shared(pid(), ShmId::from_raw(1));
        assert_eq!(
            mm.begin_access(vma, Pid::from_raw(99), AccessKind::Read, Timestamp::ZERO),
            Err(Errno::Eperm)
        );
    }

    #[test]
    fn unmap_removes_mapping_and_wait_entries() {
        let mut mm = mm();
        let vma = mm.map_shared(pid(), ShmId::from_raw(1));
        mm.begin_access(vma, pid(), AccessKind::Write, Timestamp::ZERO)
            .unwrap();
        assert_eq!(mm.wait_list_len(), 1);
        mm.unmap(vma).unwrap();
        assert_eq!(mm.wait_list_len(), 0);
        assert_eq!(
            mm.begin_access(vma, pid(), AccessKind::Write, Timestamp::ZERO),
            Err(Errno::Efault)
        );
    }

    #[test]
    fn unmap_all_for_process_exit() {
        let mut mm = mm();
        mm.map_shared(pid(), ShmId::from_raw(1));
        mm.map_shared(pid(), ShmId::from_raw(2));
        mm.map_shared(Pid::from_raw(99), ShmId::from_raw(3));
        let removed = mm.unmap_all_for(pid());
        assert_eq!(removed.len(), 2);
        assert_eq!(mm.len(), 1);
    }

    #[test]
    fn two_mappings_fault_independently() {
        let mut mm = mm();
        let a = mm.map_shared(pid(), ShmId::from_raw(1));
        let b = mm.map_shared(pid(), ShmId::from_raw(1));
        assert_eq!(
            mm.begin_access(a, pid(), AccessKind::Write, Timestamp::ZERO)
                .unwrap(),
            AccessPath::Faulted
        );
        assert_eq!(
            mm.begin_access(b, pid(), AccessKind::Write, Timestamp::ZERO)
                .unwrap(),
            AccessPath::Faulted
        );
    }

    #[test]
    fn ablation_wait_zero_faults_every_tick() {
        let mut mm = MemoryManager::new(true, SimDuration::ZERO);
        let vma = mm.map_shared(pid(), ShmId::from_raw(1));
        for i in 0..5 {
            let now = Timestamp::from_millis(i * 10);
            mm.tick(now);
            assert_eq!(
                mm.begin_access(vma, pid(), AccessKind::Write, now).unwrap(),
                AccessPath::Faulted
            );
        }
        assert_eq!(mm.stats().faults, 5);
    }
}
