//! The syscall surface of the simulated kernel.
//!
//! Three families live here:
//!
//! * **process** — `fork`, `execve`, `exit`, `waitpid`, `spawn`
//!   (fork+exec), `ptrace`;
//! * **file** — `open` (with Overhaul's device mediation, Figure 1),
//!   `creat`, `read`, `write`, `close`, `stat`, `unlink`, `mkdir`;
//! * **IPC** — pipes, FIFOs, UNIX socket pairs, SysV/POSIX message queues,
//!   SysV/POSIX shared memory (page-fault interposed), pseudo-terminals.
//!
//! Every IPC send embeds the sender's interaction timestamp into the
//! resource and every receive adopts a newer embedded timestamp into the
//! receiver's `task_struct` — policy **P2** — when Overhaul is enabled.
//!
//! Simplifications relative to real Linux, none of which affect the
//! security mechanism: regular-file reads return the whole contents
//! (no offsets), writes append, and the open mode is not re-checked on
//! subsequent reads/writes.

use overhaul_sim::{
    AuditCategory, ChannelTag, Effect, Fd, LedgerEntry, Pid, Timestamp, TraceValue, Uid,
};
use serde::{Deserialize, Serialize};

use crate::device::DeviceClass;
use crate::error::{Errno, SysResult};
use crate::ipc::msgqueue::{Message, MsgqId};
use crate::ipc::pty::{PtyId, PtySide};
use crate::ipc::shm::ShmId;
use crate::ipc::unix_socket::SocketEnd;
use crate::ipc::{adopt_on_receive, embed_on_send};
use crate::mm::{AccessKind, AccessPath, VmaId};
use crate::monitor::ResourceOp;
use crate::netlink::ChannelState;
use crate::policy::IpcMechanism;
use crate::task::FileDescription;
use crate::vfs::{InodeKind, Stat};
use crate::Kernel;

/// Access mode requested by `open(2)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpenMode {
    /// `O_RDONLY`.
    ReadOnly,
    /// `O_WRONLY`.
    WriteOnly,
    /// `O_RDWR`.
    ReadWrite,
}

impl OpenMode {
    fn wants_write(self) -> bool {
        !matches!(self, OpenMode::ReadOnly)
    }
}

impl Kernel {
    /// Validates that `pid` is a live process able to make syscalls
    /// (zombies cannot), returning its task.
    fn caller(&self, pid: Pid) -> SysResult<&crate::task::Task> {
        let task = self.tasks.get(pid)?;
        if !task.is_running() {
            return Err(Errno::Esrch);
        }
        Ok(task)
    }

    /// Mutable variant of [`Kernel::caller`].
    fn caller_mut(&mut self, pid: Pid) -> SysResult<&mut crate::task::Task> {
        let task = self.tasks.get_mut(pid)?;
        if !task.is_running() {
            return Err(Errno::Esrch);
        }
        Ok(task)
    }

    // ===============================================================
    // Process syscalls
    // ===============================================================

    /// `fork(2)`: duplicates `parent`, bumping IPC reference counts for the
    /// inherited descriptors and copying the interaction timestamp (**P1**).
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] if the parent is dead.
    pub fn sys_fork(&mut self, parent: Pid) -> SysResult<Pid> {
        let child = self.tasks.fork(parent)?;
        let inherited: Vec<FileDescription> = self
            .tasks
            .get(child)
            .expect("just created")
            .open_fds()
            .map(|(_, d)| d)
            .collect();
        for desc in inherited {
            match desc {
                FileDescription::PipeRead { pipe } => {
                    let _ = self.pipes.add_reader(pipe);
                }
                FileDescription::PipeWrite { pipe } => {
                    let _ = self.pipes.add_writer(pipe);
                }
                FileDescription::Socket { socket, end } => {
                    let _ = self.sockets.add_ref(socket, end);
                }
                // Ptys use liveness scans, queues/devices/files are
                // not reference counted.
                _ => {}
            }
        }
        Ok(child)
    }

    /// `execve(2)`: replaces the image of `pid`; the interaction timestamp
    /// survives because the `task_struct` is reused.
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] if the process is dead.
    pub fn sys_execve(&mut self, pid: Pid, exe_path: &str) -> SysResult<()> {
        self.tasks.exec(pid, exe_path)
    }

    /// `fork` + `execve` in one step.
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] if the parent is dead.
    pub fn sys_spawn(&mut self, parent: Pid, exe_path: &str) -> SysResult<Pid> {
        let child = self.sys_fork(parent)?;
        self.sys_execve(child, exe_path)?;
        Ok(child)
    }

    /// [`Kernel::sys_spawn`] that also switches the child to `uid`
    /// (harness convenience for setting up unprivileged processes).
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] if the parent is dead.
    pub fn sys_spawn_as(&mut self, parent: Pid, exe_path: &str, uid: Uid) -> SysResult<Pid> {
        let child = self.sys_spawn(parent, exe_path)?;
        self.tasks.get_mut(child)?.set_uid(uid);
        Ok(child)
    }

    /// `exit(2)`: releases every kernel object the process held.
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] if already dead, [`Errno::Eperm`] for init.
    pub fn sys_exit(&mut self, pid: Pid, code: i32) -> SysResult<()> {
        let drained = self.tasks.exit(pid, code)?;
        // Drop the exiting task's cached verdicts and explain-last state:
        // a zombie can never act again, and eager eviction is what keeps
        // the per-task derived state bounded by the live task count under
        // unbounded churn.
        if let Some(slot) = self.tasks.slot_of(pid) {
            self.verdict_cache.evict(slot);
        }
        for desc in drained {
            self.release_description(pid, desc);
        }
        for vma in self.mm.unmap_all_for(pid) {
            self.shm.detach(vma.shm());
        }
        // Eager netlink invalidation: the exiting process's channels die
        // with it, here and now, so a later process recycling this pid can
        // never inherit an authenticated connection.
        let state_before = self.netlink.state();
        let (dropped, display_lost) = self.netlink.invalidate_peer(pid);
        if dropped > 0 {
            self.ledger.append(LedgerEntry::event(
                self.clock.now(),
                AuditCategory::ChannelEvent,
                Some(pid),
                "netlink: connections invalidated on process exit",
            ));
        }
        if display_lost && state_before != ChannelState::Down {
            self.ledger.append(
                LedgerEntry::event(
                    self.clock.now(),
                    AuditCategory::ChannelEvent,
                    Some(pid),
                    match state_before {
                        ChannelState::Up => "channel state: up -> down (display manager exited)",
                        _ => "channel state: degraded -> down (display manager exited)",
                    },
                )
                .with_effect(Effect::Channel {
                    to: ChannelTag::Down,
                }),
            );
        }
        Ok(())
    }

    /// `dup(2)`: duplicates a descriptor, bumping the backing object's
    /// reference count where one exists.
    ///
    /// # Errors
    ///
    /// [`Errno::Ebadf`] for unknown descriptors.
    pub fn sys_dup(&mut self, pid: Pid, fd: Fd) -> SysResult<Fd> {
        let desc = self.caller(pid)?.fd(fd).ok_or(Errno::Ebadf)?;
        match desc {
            FileDescription::PipeRead { pipe } => self.pipes.add_reader(pipe)?,
            FileDescription::PipeWrite { pipe } => self.pipes.add_writer(pipe)?,
            FileDescription::Socket { socket, end } => self.sockets.add_ref(socket, end)?,
            _ => {}
        }
        Ok(self.caller_mut(pid)?.install_fd(desc))
    }

    /// `kill(2)` with `SIGKILL` semantics: `killer` terminates `target`.
    /// Permitted for root or a process of the same uid.
    ///
    /// # Errors
    ///
    /// [`Errno::Eperm`] across uid boundaries (and for init),
    /// [`Errno::Esrch`] for dead targets.
    pub fn sys_kill(&mut self, killer: Pid, target: Pid) -> SysResult<()> {
        let killer_uid = self.caller(killer)?.uid();
        let target_uid = self.caller(target)?.uid();
        if !killer_uid.is_root() && killer_uid != target_uid {
            return Err(Errno::Eperm);
        }
        self.sys_exit(target, 137)
    }

    /// `waitpid(2)`: reaps a zombie child.
    ///
    /// # Errors
    ///
    /// [`Errno::Eagain`] while the child runs, [`Errno::Esrch`] for
    /// non-children.
    pub fn sys_waitpid(&mut self, parent: Pid, child: Pid) -> SysResult<i32> {
        let slot = self.tasks.slot_of(child);
        let code = self.tasks.wait(parent, child)?;
        // Reaping frees the arena slot for reuse; evict any cells decided
        // about the zombie after its exit-time eviction.
        if let Some(slot) = slot {
            self.verdict_cache.evict(slot);
        }
        Ok(code)
    }

    /// `PTRACE_ATTACH` with Overhaul's hardening (freezes the tracee's
    /// permissions while attached).
    ///
    /// # Errors
    ///
    /// See [`crate::ptrace::PtracePolicy::attach`].
    pub fn sys_ptrace_attach(&mut self, tracer: Pid, tracee: Pid) -> SysResult<()> {
        let policy = self.ptrace;
        policy.attach(&mut self.tasks, tracer, tracee)?;
        if policy.hardening_enabled {
            self.ledger.append(LedgerEntry::event(
                self.clock.now(),
                AuditCategory::PtraceHardening,
                Some(tracee),
                format!("permissions frozen while traced by {tracer}"),
            ));
        }
        Ok(())
    }

    /// `PTRACE_DETACH`.
    ///
    /// # Errors
    ///
    /// See [`crate::ptrace::PtracePolicy::detach`].
    pub fn sys_ptrace_detach(&mut self, tracer: Pid, tracee: Pid) -> SysResult<()> {
        let policy = self.ptrace;
        policy.detach(&mut self.tasks, tracer, tracee)
    }

    // ===============================================================
    // File syscalls
    // ===============================================================

    /// `open(2)`. For sensitive device nodes this is Overhaul's mediation
    /// point (Figure 1): the permission monitor correlates the open with
    /// the caller's latest authentic interaction; on a deny the caller sees
    /// a plain `EACCES`, and a visual-alert request is queued either way.
    ///
    /// # Errors
    ///
    /// Standard path/permission errors, plus [`Errno::Eacces`] when
    /// Overhaul blocks a device open.
    pub fn sys_open(&mut self, pid: Pid, path: &str, mode: OpenMode) -> SysResult<Fd> {
        let uid = self.caller(pid)?.uid();
        let inode_id = self.vfs.resolve(path)?;
        let inode = self.vfs.inode(inode_id)?;
        if !inode.permits(uid, mode.wants_write()) {
            return Err(Errno::Eacces);
        }
        let kind = inode.kind().clone();
        match kind {
            InodeKind::Directory { .. } => Err(Errno::Eisdir),
            InodeKind::Regular { .. } => Ok(self
                .caller_mut(pid)?
                .install_fd(FileDescription::Regular { inode: inode_id })),
            InodeKind::DeviceNode { device } => {
                if self.config.overhaul_enabled {
                    let mapped = self.device_map.lookup(path);
                    // A quarantined device is one whose old path the helper
                    // revoked while its update for the new path is still in
                    // flight: unreachable until the map converges (fail
                    // closed), audited/alerted like any other deny.
                    let quarantined = mapped.is_none() && self.device_map.is_quarantined(device);
                    if let Some(mapped) = mapped {
                        debug_assert_eq!(mapped, device, "helper map out of sync with vfs");
                    }
                    if mapped.is_some() || quarantined {
                        let now = self.clock.now();
                        let op = match self.devices.get(device)?.class() {
                            DeviceClass::Microphone => ResourceOp::Mic,
                            DeviceClass::Camera => ResourceOp::Cam,
                            DeviceClass::Sensor => ResourceOp::Sensor,
                        };
                        let outcome = self.decide_traced(pid, now, op, quarantined);
                        self.queue_device_alert(pid, op, &outcome, now);
                        if !outcome.decision.verdict.is_grant() {
                            return Err(Errno::Eacces);
                        }
                    }
                    // Device node unknown to the helper map (and not
                    // quarantined): mediation is skipped — the documented
                    // helper-lag gap.
                }
                self.devices.record_open(device)?;
                Ok(self
                    .caller_mut(pid)?
                    .install_fd(FileDescription::Device { device }))
            }
            InodeKind::Fifo { pipe } => {
                let desc = match mode {
                    OpenMode::ReadOnly => {
                        self.pipes.add_reader(pipe)?;
                        FileDescription::PipeRead { pipe }
                    }
                    OpenMode::WriteOnly => {
                        self.pipes.add_writer(pipe)?;
                        FileDescription::PipeWrite { pipe }
                    }
                    OpenMode::ReadWrite => return Err(Errno::Einval),
                };
                Ok(self.caller_mut(pid)?.install_fd(desc))
            }
        }
    }

    /// `creat(2)`: creates a regular file owned by the caller and opens it.
    ///
    /// # Errors
    ///
    /// [`Errno::Eexist`] if the path exists.
    pub fn sys_creat(&mut self, pid: Pid, path: &str, mode: u16) -> SysResult<Fd> {
        let uid = self.caller(pid)?.uid();
        let inode = self.vfs.create_file(path, uid, mode)?;
        Ok(self
            .caller_mut(pid)?
            .install_fd(FileDescription::Regular { inode }))
    }

    /// `close(2)`.
    ///
    /// # Errors
    ///
    /// [`Errno::Ebadf`] for unknown descriptors.
    pub fn sys_close(&mut self, pid: Pid, fd: Fd) -> SysResult<()> {
        let desc = self.caller_mut(pid)?.remove_fd(fd).ok_or(Errno::Ebadf)?;
        self.release_description(pid, desc);
        Ok(())
    }

    /// `read(2)`: dispatches on the descriptor type. IPC reads run the
    /// timestamp-adoption half of the propagation protocol.
    ///
    /// # Errors
    ///
    /// [`Errno::Ebadf`], or the backing object's error ([`Errno::Eagain`]
    /// on empty channels, ...).
    pub fn sys_read(&mut self, pid: Pid, fd: Fd, max: usize) -> SysResult<Vec<u8>> {
        let desc = self.caller(pid)?.fd(fd).ok_or(Errno::Ebadf)?;
        match desc {
            FileDescription::Regular { inode } => Ok(self.vfs.read_all(inode)?.to_vec()),
            FileDescription::Device { device } => self.devices.read_sample(device),
            FileDescription::PipeRead { pipe } => {
                let data = self.pipes.read(pipe, max)?;
                if !data.is_empty() {
                    let slot = self.pipes.get(pipe)?.embedded_ts();
                    self.adopt_into(pid, slot, IpcMechanism::Pipe);
                }
                Ok(data)
            }
            FileDescription::PipeWrite { .. } => Err(Errno::Ebadf),
            FileDescription::Socket { socket, end } => {
                let data = self.sockets.recv(socket, end)?;
                let slot = self.sockets.get(socket)?.embedded_ts_from(end.peer());
                self.adopt_into(pid, slot, IpcMechanism::UnixSocket);
                Ok(data)
            }
            FileDescription::MessageQueue { queue } => {
                let msg = self.msgqueues.receive(queue, 0)?;
                let slot = self.msgqueues.get(queue)?.embedded_ts();
                self.adopt_into(pid, slot, IpcMechanism::PosixMq);
                Ok(msg.data)
            }
            FileDescription::PtyMaster { pty } => self.pty_read(pid, pty, PtySide::Master, max),
            FileDescription::PtySlave { pty } => self.pty_read(pid, pty, PtySide::Slave, max),
        }
    }

    /// `write(2)`: dispatches on the descriptor type. IPC writes run the
    /// timestamp-embedding half of the propagation protocol.
    ///
    /// # Errors
    ///
    /// [`Errno::Ebadf`], or the backing object's error ([`Errno::Epipe`]
    /// on reader-less pipes, ...).
    pub fn sys_write(&mut self, pid: Pid, fd: Fd, bytes: &[u8]) -> SysResult<usize> {
        let desc = self.caller(pid)?.fd(fd).ok_or(Errno::Ebadf)?;
        match desc {
            FileDescription::Regular { inode } => self.vfs.append(inode, bytes),
            FileDescription::Device { .. } => Err(Errno::Einval),
            FileDescription::PipeWrite { pipe } => {
                let sender = self.sender_ts(pid);
                let written = self.pipes.write(pipe, bytes)?;
                self.embed_into_pipe(pid, pipe, sender);
                Ok(written)
            }
            FileDescription::PipeRead { .. } => Err(Errno::Ebadf),
            FileDescription::Socket { socket, end } => {
                let sender = self.sender_ts(pid);
                self.sockets.send(socket, end, bytes.to_vec())?;
                if self.config.overhaul_enabled {
                    let slot = self.sockets.embedded_ts_mut(socket, end)?;
                    if embed_on_send(slot, sender) {
                        self.audit_propagation_embed(pid, "unix-socket");
                    }
                }
                Ok(bytes.len())
            }
            FileDescription::MessageQueue { queue } => {
                let sender = self.sender_ts(pid);
                self.msgqueues.send(
                    queue,
                    Message {
                        mtype: 0,
                        data: bytes.to_vec(),
                    },
                )?;
                if self.config.overhaul_enabled {
                    let slot = self.msgqueues.embedded_ts_mut(queue)?;
                    if embed_on_send(slot, sender) {
                        self.audit_propagation_embed(pid, "posix-mq");
                    }
                }
                Ok(bytes.len())
            }
            FileDescription::PtyMaster { pty } => self.pty_write(pid, pty, PtySide::Master, bytes),
            FileDescription::PtySlave { pty } => self.pty_write(pid, pty, PtySide::Slave, bytes),
        }
    }

    /// `stat(2)`.
    ///
    /// # Errors
    ///
    /// Path resolution errors.
    pub fn sys_stat(&self, _pid: Pid, path: &str) -> SysResult<Stat> {
        self.vfs.stat(path)
    }

    /// `unlink(2)`: caller must own the node or be root. Unlinking a FIFO
    /// releases the name's pipe references.
    ///
    /// # Errors
    ///
    /// [`Errno::Eacces`] for foreign files, path errors otherwise.
    pub fn sys_unlink(&mut self, pid: Pid, path: &str) -> SysResult<()> {
        let uid = self.caller(pid)?.uid();
        let inode = self.vfs.inode(self.vfs.resolve(path)?)?;
        if !uid.is_root() && inode.owner() != uid {
            return Err(Errno::Eacces);
        }
        let fifo_pipe = match inode.kind() {
            InodeKind::Fifo { pipe } => Some(*pipe),
            _ => None,
        };
        self.vfs.unlink(path)?;
        if let Some(pipe) = fifo_pipe {
            self.pipes.release_reader(pipe);
            self.pipes.release_writer(pipe);
        }
        if self.device_map.remove(path).is_some() {
            // Historically unaudited: record the unmap silently so the
            // ledger reduction tracks the device map exactly.
            self.ledger.append(LedgerEntry::silent(
                self.clock.now(),
                Effect::DeviceRemoved {
                    path: path.to_string(),
                },
            ));
        }
        Ok(())
    }

    /// `mkdir(2)`.
    ///
    /// # Errors
    ///
    /// Path errors ([`Errno::Eexist`], ...).
    pub fn sys_mkdir(&mut self, pid: Pid, path: &str, mode: u16) -> SysResult<()> {
        let uid = self.caller(pid)?.uid();
        self.vfs.mkdir(path, uid, mode)?;
        Ok(())
    }

    // ===============================================================
    // IPC syscalls
    // ===============================================================

    /// `pipe(2)`: returns `(read_fd, write_fd)`.
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] for dead callers.
    pub fn sys_pipe(&mut self, pid: Pid) -> SysResult<(Fd, Fd)> {
        self.caller(pid)?;
        let pipe = self.pipes.create();
        let task = self.tasks.get_mut(pid)?;
        let r = task.install_fd(FileDescription::PipeRead { pipe });
        let w = task.install_fd(FileDescription::PipeWrite { pipe });
        Ok((r, w))
    }

    /// `mkfifo(3)`: creates a named pipe. The name itself keeps the backing
    /// pipe alive until `unlink`.
    ///
    /// # Errors
    ///
    /// [`Errno::Eexist`] if the path exists.
    pub fn sys_mkfifo(&mut self, pid: Pid, path: &str, mode: u16) -> SysResult<()> {
        let uid = self.caller(pid)?.uid();
        let pipe = self.pipes.create();
        match self.vfs.mkfifo(path, pipe, uid, mode) {
            Ok(_) => Ok(()),
            Err(e) => {
                self.pipes.release_reader(pipe);
                self.pipes.release_writer(pipe);
                Err(e)
            }
        }
    }

    /// `socketpair(2)`: both end descriptors are installed in `pid`; pass
    /// one to a child via `fork`.
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] for dead callers.
    pub fn sys_socketpair(&mut self, pid: Pid) -> SysResult<(Fd, Fd)> {
        self.caller(pid)?;
        let socket = self.sockets.create_pair();
        let task = self.tasks.get_mut(pid)?;
        let a = task.install_fd(FileDescription::Socket {
            socket,
            end: SocketEnd::A,
        });
        let b = task.install_fd(FileDescription::Socket {
            socket,
            end: SocketEnd::B,
        });
        Ok((a, b))
    }

    /// `msgget(2)` (SysV).
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] for dead callers.
    pub fn sys_msgget(&mut self, pid: Pid, key: i32) -> SysResult<MsgqId> {
        self.caller(pid)?;
        Ok(self.msgqueues.sysv_get(key))
    }

    /// `msgsnd(2)` (SysV): embeds the sender's interaction timestamp.
    ///
    /// # Errors
    ///
    /// [`Errno::Einval`] for unknown queues.
    pub fn sys_msgsnd(
        &mut self,
        pid: Pid,
        queue: MsgqId,
        mtype: i64,
        data: &[u8],
    ) -> SysResult<()> {
        self.caller(pid)?;
        let sender = self.sender_ts(pid);
        self.msgqueues.send(
            queue,
            Message {
                mtype,
                data: data.to_vec(),
            },
        )?;
        if self.config.overhaul_enabled {
            let slot = self.msgqueues.embedded_ts_mut(queue)?;
            if embed_on_send(slot, sender) {
                self.audit_propagation_embed(pid, "sysv-msgq");
            }
        }
        Ok(())
    }

    /// `msgrcv(2)` (SysV): adopts the queue's embedded timestamp.
    ///
    /// # Errors
    ///
    /// [`Errno::Enomsg`] when no matching message is queued.
    pub fn sys_msgrcv(&mut self, pid: Pid, queue: MsgqId, mtype: i64) -> SysResult<Message> {
        self.caller(pid)?;
        let msg = self.msgqueues.receive(queue, mtype)?;
        let slot = self.msgqueues.get(queue)?.embedded_ts();
        self.adopt_into(pid, slot, IpcMechanism::SysvMsgq);
        Ok(msg)
    }

    /// `mq_open(3)` (POSIX): returns a descriptor usable with
    /// [`Kernel::sys_read`] / [`Kernel::sys_write`].
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] for dead callers.
    pub fn sys_mq_open(&mut self, pid: Pid, name: &str) -> SysResult<Fd> {
        self.caller(pid)?;
        let queue = self.msgqueues.posix_open(name);
        Ok(self
            .caller_mut(pid)?
            .install_fd(FileDescription::MessageQueue { queue }))
    }

    /// `shmget(2)` (SysV).
    ///
    /// # Errors
    ///
    /// [`Errno::Einval`] for zero pages or an undersized existing segment.
    pub fn sys_shmget(&mut self, pid: Pid, key: i32, pages: usize) -> SysResult<ShmId> {
        self.caller(pid)?;
        self.shm.sysv_get(key, pages)
    }

    /// `shm_open(3)` + `ftruncate` (POSIX).
    ///
    /// # Errors
    ///
    /// [`Errno::Einval`] for zero pages or an undersized existing segment.
    pub fn sys_shm_open(&mut self, pid: Pid, name: &str, pages: usize) -> SysResult<ShmId> {
        self.caller(pid)?;
        self.shm.posix_open(name, pages)
    }

    /// `shmat(2)` / `mmap(MAP_SHARED)`: maps the segment. Under Overhaul
    /// the new mapping starts with permissions revoked so its first access
    /// faults into the propagation protocol.
    ///
    /// # Errors
    ///
    /// [`Errno::Einval`] for unknown segments.
    pub fn sys_shmat(&mut self, pid: Pid, shm: ShmId) -> SysResult<VmaId> {
        self.caller(pid)?;
        self.shm.attach(shm)?;
        Ok(self.mm.map_shared(pid, shm))
    }

    /// `shmdt(2)` / `munmap`.
    ///
    /// # Errors
    ///
    /// [`Errno::Efault`] for unknown mappings.
    pub fn sys_shmdt(&mut self, pid: Pid, vma: VmaId) -> SysResult<()> {
        let mapping = self.mm.vma(vma)?;
        if mapping.pid() != pid {
            return Err(Errno::Eperm);
        }
        self.mm.unmap(vma)?;
        self.shm.detach(mapping.shm());
        Ok(())
    }

    /// A store to a shared mapping. Under Overhaul the first access after
    /// (re-)revocation takes a simulated page fault, where the sender's
    /// timestamp is embedded into the segment; the mapping then stays
    /// fault-free for the wait window (paper: 500 ms).
    ///
    /// # Errors
    ///
    /// [`Errno::Efault`] for out-of-bounds or unknown mappings,
    /// [`Errno::Eperm`] for foreign mappings.
    pub fn sys_shm_write(
        &mut self,
        pid: Pid,
        vma: VmaId,
        offset: usize,
        bytes: &[u8],
    ) -> SysResult<()> {
        self.caller(pid)?;
        let mapping = self.mm.vma(vma)?;
        let now = self.clock.now();
        let fault_t0 = std::time::Instant::now();
        let path = self.mm.begin_access(vma, pid, AccessKind::Write, now)?;
        if path == AccessPath::Faulted {
            let span = self.tracer.event(
                "mm.fault",
                now,
                &[
                    ("pid", TraceValue::U64(u64::from(pid.as_raw()))),
                    ("vma", TraceValue::U64(vma.as_raw())),
                    ("kind", TraceValue::Static("write")),
                ],
            );
            let sender = self.sender_ts(pid);
            let slot = self.shm.embedded_ts_mut(mapping.shm())?;
            if embed_on_send(slot, sender) {
                self.audit_propagation_embed(pid, "shm");
            }
            self.record_mm_fault_sketch(fault_t0, span);
        }
        self.shm.write(mapping.shm(), offset, bytes)
    }

    /// A load from a shared mapping; the fault path adopts the segment's
    /// embedded timestamp into the reader.
    ///
    /// # Errors
    ///
    /// [`Errno::Efault`] for out-of-bounds or unknown mappings,
    /// [`Errno::Eperm`] for foreign mappings.
    pub fn sys_shm_read(
        &mut self,
        pid: Pid,
        vma: VmaId,
        offset: usize,
        len: usize,
    ) -> SysResult<Vec<u8>> {
        self.caller(pid)?;
        let mapping = self.mm.vma(vma)?;
        let now = self.clock.now();
        let fault_t0 = std::time::Instant::now();
        let path = self.mm.begin_access(vma, pid, AccessKind::Read, now)?;
        if path == AccessPath::Faulted {
            let span = self.tracer.event(
                "mm.fault",
                now,
                &[
                    ("pid", TraceValue::U64(u64::from(pid.as_raw()))),
                    ("vma", TraceValue::U64(vma.as_raw())),
                    ("kind", TraceValue::Static("read")),
                ],
            );
            let slot = self.shm.get(mapping.shm())?.embedded_ts();
            self.adopt_into(pid, slot, IpcMechanism::Shm);
            self.record_mm_fault_sketch(fault_t0, span);
        }
        self.shm.read(mapping.shm(), offset, len)
    }

    /// `openpty(3)`: allocates a pseudo-terminal pair, returning
    /// `(master_fd, slave_fd)`. Hand the slave to the shell via `fork`.
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] for dead callers.
    pub fn sys_openpty(&mut self, pid: Pid) -> SysResult<(Fd, Fd)> {
        self.caller(pid)?;
        let pty = self.ptys.open_pair();
        let task = self.tasks.get_mut(pid)?;
        let master = task.install_fd(FileDescription::PtyMaster { pty });
        let slave = task.install_fd(FileDescription::PtySlave { pty });
        Ok((master, slave))
    }

    /// Lands one interposition fault in the [`Mechanism::MmFault`] sketch:
    /// faults are rare enough to record at full rate, and the exemplar
    /// carries the `mm.fault` trace event as its span coordinate.
    fn record_mm_fault_sketch(
        &mut self,
        t0: std::time::Instant,
        span: Option<overhaul_sim::SpanId>,
    ) {
        let seq = self.ledger.next_seq().saturating_sub(1);
        self.sketch.record(
            overhaul_sim::Mechanism::MmFault,
            0,
            t0.elapsed().as_nanos() as u64,
            span.map_or(0, |s| s.as_raw()),
            seq,
        );
    }

    // ===============================================================
    // Propagation plumbing
    // ===============================================================

    /// The timestamp a sending process contributes to the propagation
    /// protocol: its *decision-visible* interaction timestamp. A frozen
    /// (ptrace-hardened) process contributes nothing — a debugger must not
    /// be able to launder permissions out of its tracee.
    fn sender_ts(&self, pid: Pid) -> Option<Timestamp> {
        if !self.config.overhaul_enabled || !self.config.ipc_propagation {
            return None;
        }
        self.tasks.get(pid).ok().and_then(|t| t.interaction())
    }

    fn embed_into_pipe(
        &mut self,
        pid: Pid,
        pipe: crate::ipc::pipe::PipeId,
        sender: Option<Timestamp>,
    ) {
        if !self.config.overhaul_enabled {
            return;
        }
        if let Ok(p) = self.pipes.get_mut(pipe) {
            if embed_on_send(p.embedded_ts_mut(), sender) {
                self.audit_propagation_embed(pid, "pipe");
            }
        }
    }

    fn pty_read(&mut self, pid: Pid, pty: PtyId, side: PtySide, max: usize) -> SysResult<Vec<u8>> {
        let data = self.ptys.read(pty, side, max)?;
        if !data.is_empty() {
            let slot = self.ptys.get(pty)?.embedded_ts();
            self.adopt_into(pid, slot, IpcMechanism::Pty);
        }
        Ok(data)
    }

    fn pty_write(&mut self, pid: Pid, pty: PtyId, side: PtySide, bytes: &[u8]) -> SysResult<usize> {
        let sender = self.sender_ts(pid);
        let written = self.ptys.write(pty, side, bytes)?;
        if self.config.overhaul_enabled {
            let slot = self.ptys.embedded_ts_mut(pty)?;
            if embed_on_send(slot, sender) {
                self.audit_propagation_embed(pid, "pty");
            }
        }
        Ok(written)
    }

    /// The adoption half of the protocol: `pid` takes a newer embedded
    /// timestamp from an IPC resource into its `task_struct`, recording the
    /// mechanism in the task's credit chain for decision traces.
    fn adopt_into(&mut self, pid: Pid, slot: Option<Timestamp>, mechanism: IpcMechanism) {
        if !self.config.overhaul_enabled || !self.config.ipc_propagation {
            return;
        }
        let Ok(task) = self.tasks.get_mut(pid) else {
            return;
        };
        if let Some(adopted) = adopt_on_receive(task.raw_interaction(), slot) {
            task.adopt_interaction(adopted, mechanism);
            let now = self.clock.now();
            self.metrics.inc_counter(&format!(
                "overhaul_propagation_hops_total{{mechanism=\"{}\"}}",
                mechanism.as_str()
            ));
            self.tracer.event(
                "ipc.hop",
                now,
                &[
                    ("pid", TraceValue::U64(u64::from(pid.as_raw()))),
                    ("mechanism", TraceValue::Static(mechanism.as_str())),
                    ("adopted_ms", TraceValue::U64(adopted.as_millis())),
                ],
            );
            self.ledger.append(LedgerEntry::event(
                now,
                AuditCategory::InteractionPropagated,
                Some(pid),
                format!("adopted {adopted} via {}", mechanism.as_str()),
            ));
        }
    }

    fn audit_propagation_embed(&mut self, pid: Pid, mechanism: &'static str) {
        let now = self.clock.now();
        self.metrics.inc_counter(&format!(
            "overhaul_propagation_embeds_total{{mechanism=\"{mechanism}\"}}"
        ));
        self.tracer.event(
            "ipc.embed",
            now,
            &[
                ("pid", TraceValue::U64(u64::from(pid.as_raw()))),
                ("mechanism", TraceValue::Static(mechanism)),
            ],
        );
        self.ledger.append(LedgerEntry::event(
            now,
            AuditCategory::InteractionPropagated,
            Some(pid),
            format!("embedded into {mechanism}"),
        ));
    }

    /// Releases the kernel object behind a closed/drained descriptor.
    pub(crate) fn release_description(&mut self, owner: Pid, desc: FileDescription) {
        match desc {
            FileDescription::Regular { .. }
            | FileDescription::Device { .. }
            | FileDescription::MessageQueue { .. } => {}
            FileDescription::PipeRead { pipe } => self.pipes.release_reader(pipe),
            FileDescription::PipeWrite { pipe } => self.pipes.release_writer(pipe),
            FileDescription::Socket { socket, end } => self.sockets.release(socket, end),
            FileDescription::PtyMaster { pty } => {
                self.maybe_hangup_pty(owner, pty, PtySide::Master)
            }
            FileDescription::PtySlave { pty } => self.maybe_hangup_pty(owner, pty, PtySide::Slave),
        }
    }

    fn maybe_hangup_pty(&mut self, _closer: Pid, pty: PtyId, side: PtySide) {
        let still_held = self.tasks.iter().any(|task| {
            task.is_running()
                && task.open_fds().any(|(_, d)| match (d, side) {
                    (FileDescription::PtyMaster { pty: p }, PtySide::Master) => p == pty,
                    (FileDescription::PtySlave { pty: p }, PtySide::Slave) => p == pty,
                    _ => false,
                })
        });
        if !still_held {
            self.ptys.close_side(pty, side);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlink::NetlinkMessage;
    use crate::{KernelConfig, XORG_PATH};
    use overhaul_sim::{Clock, SimDuration};

    /// A kernel with a mic + cam attached and an authenticated X server
    /// connection, the standard fixture for mediation tests.
    struct Fixture {
        kernel: Kernel,
        clock: Clock,
        conn: crate::netlink::ConnId,
        app: Pid,
    }

    fn fixture() -> Fixture {
        let clock = Clock::new();
        let mut kernel = Kernel::new(clock.clone(), KernelConfig::default());
        kernel.attach_device(DeviceClass::Microphone, "mic", "/dev/snd/mic0");
        kernel.attach_device(DeviceClass::Camera, "cam", "/dev/video0");
        let x = kernel.sys_spawn(Pid::INIT, XORG_PATH).unwrap();
        let conn = kernel.netlink_connect(x).unwrap();
        let app = kernel.sys_spawn(Pid::INIT, "/usr/bin/app").unwrap();
        Fixture {
            kernel,
            clock,
            conn,
            app,
        }
    }

    impl Fixture {
        /// Simulates the display manager notifying an authentic click on `pid`.
        fn interact(&mut self, pid: Pid) {
            let at = self.clock.now();
            self.kernel
                .netlink_send(
                    self.conn,
                    NetlinkMessage::InteractionNotification { pid, at },
                )
                .unwrap();
        }
    }

    // -------------------------------------------------- Figure 1 flow

    #[test]
    fn device_open_granted_right_after_interaction() {
        let mut f = fixture();
        f.interact(f.app);
        f.clock.advance(SimDuration::from_millis(300));
        let fd = f
            .kernel
            .sys_open(f.app, "/dev/snd/mic0", OpenMode::ReadOnly)
            .unwrap();
        let sample = f.kernel.sys_read(f.app, fd, 64).unwrap();
        assert!(sample.starts_with(b"pcm:"));
    }

    #[test]
    fn device_open_denied_without_interaction() {
        let mut f = fixture();
        assert_eq!(
            f.kernel.sys_open(f.app, "/dev/video0", OpenMode::ReadOnly),
            Err(Errno::Eacces)
        );
    }

    #[test]
    fn device_open_denied_after_delta_expires() {
        let mut f = fixture();
        f.interact(f.app);
        f.clock.advance(SimDuration::from_millis(2500));
        assert_eq!(
            f.kernel
                .sys_open(f.app, "/dev/snd/mic0", OpenMode::ReadOnly),
            Err(Errno::Eacces)
        );
    }

    #[test]
    fn denied_device_open_queues_alert() {
        let mut f = fixture();
        let _ = f.kernel.sys_open(f.app, "/dev/video0", OpenMode::ReadOnly);
        let pushes = f.kernel.netlink_take_pushes(f.conn).unwrap();
        assert_eq!(pushes.len(), 1);
        match &pushes[0] {
            crate::netlink::KernelPush::DisplayAlert(alert) => {
                assert_eq!(alert.op, ResourceOp::Cam);
                assert!(!alert.granted);
                assert_eq!(alert.process_name, "app");
            }
        }
    }

    #[test]
    fn granted_device_open_queues_alert_too() {
        let mut f = fixture();
        f.interact(f.app);
        f.kernel
            .sys_open(f.app, "/dev/snd/mic0", OpenMode::ReadOnly)
            .unwrap();
        let pushes = f.kernel.netlink_take_pushes(f.conn).unwrap();
        assert_eq!(pushes.len(), 1);
        match &pushes[0] {
            crate::netlink::KernelPush::DisplayAlert(alert) => {
                assert!(alert.granted);
                assert_eq!(alert.op, ResourceOp::Mic);
            }
        }
    }

    #[test]
    fn baseline_kernel_does_not_mediate() {
        let clock = Clock::new();
        let mut kernel = Kernel::new(clock, KernelConfig::baseline());
        kernel.attach_device(DeviceClass::Microphone, "mic", "/dev/snd/mic0");
        let app = kernel.sys_spawn(Pid::INIT, "/usr/bin/app").unwrap();
        // No interaction, yet the open succeeds: classic UNIX semantics.
        assert!(kernel
            .sys_open(app, "/dev/snd/mic0", OpenMode::ReadOnly)
            .is_ok());
    }

    #[test]
    fn unmapped_device_node_bypasses_mediation() {
        // The helper-lag gap: a renamed node whose map entry is stale is
        // a plain device to the mediation layer.
        let mut f = fixture();
        f.kernel
            .udev_rename_device_without_helper("/dev/video0", "/dev/video9")
            .unwrap();
        assert!(
            f.kernel
                .sys_open(f.app, "/dev/video9", OpenMode::ReadOnly)
                .is_ok(),
            "stale helper map leaves the device unmediated"
        );
    }

    // -------------------------------------------------- P1: fork/exec

    #[test]
    fn figure3_launcher_spawning_screenshot_tool() {
        let mut f = fixture();
        let run = f.kernel.sys_spawn(Pid::INIT, "/usr/bin/run").unwrap();
        f.interact(run);
        f.clock.advance(SimDuration::from_millis(100));
        let shot = f.kernel.sys_spawn(run, "/usr/bin/shot").unwrap();
        // The child inherits run's interaction, so a device open correlates.
        f.clock.advance(SimDuration::from_millis(100));
        assert!(f
            .kernel
            .sys_open(shot, "/dev/video0", OpenMode::ReadOnly)
            .is_ok());
    }

    #[test]
    fn grandchild_inherits_through_two_forks() {
        let mut f = fixture();
        f.interact(f.app);
        let child = f.kernel.sys_fork(f.app).unwrap();
        let grandchild = f.kernel.sys_fork(child).unwrap();
        assert!(f
            .kernel
            .sys_open(grandchild, "/dev/snd/mic0", OpenMode::ReadOnly)
            .is_ok());
    }

    // -------------------------------------------------- P2: pipes

    #[test]
    fn pipe_propagates_interaction_to_reader() {
        let mut f = fixture();
        let writer = f.kernel.sys_spawn(Pid::INIT, "/usr/bin/writer").unwrap();
        let (r, w) = f.kernel.sys_pipe(writer).unwrap();
        let reader = f.kernel.sys_fork(writer).unwrap();
        f.interact(writer);
        f.kernel.sys_write(writer, w, b"turn on cam").unwrap();
        f.kernel.sys_read(reader, r, 64).unwrap();
        assert!(
            f.kernel
                .sys_open(reader, "/dev/video0", OpenMode::ReadOnly)
                .is_ok(),
            "reader adopted writer's interaction via the pipe"
        );
    }

    #[test]
    fn pipe_does_not_propagate_without_messages() {
        let mut f = fixture();
        let writer = f.kernel.sys_spawn(Pid::INIT, "/usr/bin/writer").unwrap();
        let (r, _w) = f.kernel.sys_pipe(writer).unwrap();
        let reader = f.kernel.sys_fork(writer).unwrap();
        f.interact(writer);
        // Reader never receives data (pipe empty): no propagation.
        assert_eq!(f.kernel.sys_read(reader, r, 64), Err(Errno::Eagain));
        assert_eq!(
            f.kernel.sys_open(reader, "/dev/video0", OpenMode::ReadOnly),
            Err(Errno::Eacces),
            "fork happened before the interaction; no message, no timestamp"
        );
    }

    #[test]
    fn fifo_propagates_between_unrelated_processes() {
        let mut f = fixture();
        f.kernel.sys_mkfifo(Pid::INIT, "/tmp/fifo", 0o666).unwrap();
        let a = f.kernel.sys_spawn(Pid::INIT, "/usr/bin/a").unwrap();
        let b = f.kernel.sys_spawn(Pid::INIT, "/usr/bin/b").unwrap();
        let wfd = f
            .kernel
            .sys_open(a, "/tmp/fifo", OpenMode::WriteOnly)
            .unwrap();
        let rfd = f
            .kernel
            .sys_open(b, "/tmp/fifo", OpenMode::ReadOnly)
            .unwrap();
        f.interact(a);
        f.kernel.sys_write(a, wfd, b"msg").unwrap();
        f.kernel.sys_read(b, rfd, 64).unwrap();
        assert!(f
            .kernel
            .sys_open(b, "/dev/snd/mic0", OpenMode::ReadOnly)
            .is_ok());
    }

    // -------------------------------------------------- P2: sockets

    #[test]
    fn socketpair_propagates_sender_to_receiver() {
        let mut f = fixture();
        let parent = f.kernel.sys_spawn(Pid::INIT, "/usr/bin/browser").unwrap();
        let (a, b) = f.kernel.sys_socketpair(parent).unwrap();
        let child = f.kernel.sys_fork(parent).unwrap();
        f.interact(parent);
        f.kernel.sys_write(parent, a, b"open camera").unwrap();
        f.kernel.sys_read(child, b, 64).unwrap();
        assert!(f
            .kernel
            .sys_open(child, "/dev/video0", OpenMode::ReadOnly)
            .is_ok());
    }

    #[test]
    fn socket_direction_slots_do_not_launder_backwards() {
        let mut f = fixture();
        let parent = f.kernel.sys_spawn(Pid::INIT, "/usr/bin/p").unwrap();
        let (a, b) = f.kernel.sys_socketpair(parent).unwrap();
        let child = f.kernel.sys_fork(parent).unwrap();
        f.interact(parent);
        // Child (no interaction) sends to parent; parent reads. The B->A
        // slot must not carry the parent's own timestamp back to... itself;
        // more importantly the *child* gains nothing by sending.
        f.kernel.sys_write(child, b, b"gimme").unwrap();
        f.kernel.sys_read(parent, a, 64).unwrap();
        assert_eq!(
            f.kernel.sys_open(child, "/dev/video0", OpenMode::ReadOnly),
            Err(Errno::Eacces),
            "sending a message grants the sender nothing"
        );
    }

    // -------------------------------------------------- P2: queues

    #[test]
    fn sysv_msgq_propagates() {
        let mut f = fixture();
        let a = f.kernel.sys_spawn(Pid::INIT, "/usr/bin/a").unwrap();
        let b = f.kernel.sys_spawn(Pid::INIT, "/usr/bin/b").unwrap();
        let q = f.kernel.sys_msgget(a, 0x42).unwrap();
        f.interact(a);
        f.kernel.sys_msgsnd(a, q, 1, b"work").unwrap();
        f.kernel.sys_msgrcv(b, q, 1).unwrap();
        assert!(f
            .kernel
            .sys_open(b, "/dev/snd/mic0", OpenMode::ReadOnly)
            .is_ok());
    }

    #[test]
    fn posix_mq_propagates_via_fd_interface() {
        let mut f = fixture();
        let a = f.kernel.sys_spawn(Pid::INIT, "/usr/bin/a").unwrap();
        let b = f.kernel.sys_spawn(Pid::INIT, "/usr/bin/b").unwrap();
        let qa = f.kernel.sys_mq_open(a, "/jobs").unwrap();
        let qb = f.kernel.sys_mq_open(b, "/jobs").unwrap();
        f.interact(a);
        f.kernel.sys_write(a, qa, b"job").unwrap();
        f.kernel.sys_read(b, qb, 64).unwrap();
        assert!(f
            .kernel
            .sys_open(b, "/dev/video0", OpenMode::ReadOnly)
            .is_ok());
    }

    // -------------------------------------------------- P2: shared memory

    #[test]
    fn figure4_browser_tab_via_shared_memory() {
        let mut f = fixture();
        let browser = f.kernel.sys_spawn(Pid::INIT, "/usr/bin/browser").unwrap();
        let shm = f.kernel.sys_shmget(browser, 0x77, 4).unwrap();
        let browser_vma = f.kernel.sys_shmat(browser, shm).unwrap();
        let tab = f.kernel.sys_spawn(browser, "/usr/bin/browser-tab").unwrap();
        let tab_vma = f.kernel.sys_shmat(tab, shm).unwrap();
        // The tab was spawned before any interaction, and enough time
        // passes that the inherited (absent) timestamp is useless.
        f.clock.advance(SimDuration::from_secs(10));
        f.interact(browser);
        // Browser writes the command into shared memory (faults, embeds),
        // tab reads it (faults, adopts).
        f.kernel
            .sys_shm_write(browser, browser_vma, 0, b"start video")
            .unwrap();
        f.kernel.sys_shm_read(tab, tab_vma, 0, 11).unwrap();
        assert!(f
            .kernel
            .sys_open(tab, "/dev/video0", OpenMode::ReadOnly)
            .is_ok());
    }

    #[test]
    fn shm_accesses_in_wait_window_skip_propagation() {
        let mut f = fixture();
        let a = f.kernel.sys_spawn(Pid::INIT, "/usr/bin/a").unwrap();
        let b = f.kernel.sys_spawn(Pid::INIT, "/usr/bin/b").unwrap();
        let shm = f.kernel.sys_shm_open(a, "/seg", 1).unwrap();
        let va = f.kernel.sys_shmat(a, shm).unwrap();
        let vb = f.kernel.sys_shmat(b, shm).unwrap();
        // Prime both mappings: first accesses fault (no interactions yet).
        f.kernel.sys_shm_write(a, va, 0, b"x").unwrap();
        f.kernel.sys_shm_read(b, vb, 0, 1).unwrap();
        // Now interact; writes inside the open window do NOT embed.
        f.interact(a);
        f.kernel.sys_shm_write(a, va, 0, b"y").unwrap();
        f.kernel.sys_shm_read(b, vb, 0, 1).unwrap();
        assert_eq!(
            f.kernel.sys_open(b, "/dev/video0", OpenMode::ReadOnly),
            Err(Errno::Eacces),
            "wait-window accesses are the documented propagation gap"
        );
        // After the window expires and the kernel re-arms, propagation works.
        f.clock.advance(SimDuration::from_millis(600));
        f.kernel.tick();
        f.interact(a);
        f.kernel.sys_shm_write(a, va, 0, b"z").unwrap();
        f.kernel.sys_shm_read(b, vb, 0, 1).unwrap();
        assert!(f
            .kernel
            .sys_open(b, "/dev/video0", OpenMode::ReadOnly)
            .is_ok());
    }

    #[test]
    fn shmdt_by_foreign_process_rejected() {
        let mut f = fixture();
        let a = f.kernel.sys_spawn(Pid::INIT, "/usr/bin/a").unwrap();
        let b = f.kernel.sys_spawn(Pid::INIT, "/usr/bin/b").unwrap();
        let shm = f.kernel.sys_shmget(a, 1, 1).unwrap();
        let va = f.kernel.sys_shmat(a, shm).unwrap();
        assert_eq!(f.kernel.sys_shmdt(b, va), Err(Errno::Eperm));
    }

    // -------------------------------------------------- P2: pseudo-terminals

    #[test]
    fn cli_workflow_terminal_shell_tool() {
        // xterm (interacted) writes the command to the pty master; bash
        // reads from the slave and adopts the timestamp; the tool bash
        // spawns inherits it via fork and may open the mic.
        let mut f = fixture();
        let xterm = f.kernel.sys_spawn(Pid::INIT, "/usr/bin/xterm").unwrap();
        let (master, slave) = f.kernel.sys_openpty(xterm).unwrap();
        let bash = f.kernel.sys_fork(xterm).unwrap();
        f.interact(xterm);
        f.kernel.sys_write(xterm, master, b"arecord\n").unwrap();
        f.kernel.sys_read(bash, slave, 64).unwrap();
        let arecord = f.kernel.sys_spawn(bash, "/usr/bin/arecord").unwrap();
        assert!(f
            .kernel
            .sys_open(arecord, "/dev/snd/mic0", OpenMode::ReadOnly)
            .is_ok());
    }

    #[test]
    fn background_shell_job_without_input_is_denied() {
        let mut f = fixture();
        let xterm = f.kernel.sys_spawn(Pid::INIT, "/usr/bin/xterm").unwrap();
        let (_master, _slave) = f.kernel.sys_openpty(xterm).unwrap();
        let bash = f.kernel.sys_fork(xterm).unwrap();
        // No terminal traffic after interaction expires.
        f.clock.advance(SimDuration::from_secs(30));
        let job = f.kernel.sys_spawn(bash, "/usr/bin/cron-grabber").unwrap();
        assert_eq!(
            f.kernel.sys_open(job, "/dev/video0", OpenMode::ReadOnly),
            Err(Errno::Eacces)
        );
    }

    // -------------------------------------------------- ptrace hardening

    #[test]
    fn traced_process_cannot_open_devices() {
        let mut f = fixture();
        f.interact(f.app);
        let child = f.kernel.sys_fork(f.app).unwrap();
        f.kernel.sys_ptrace_attach(f.app, child).unwrap();
        assert_eq!(
            f.kernel
                .sys_open(child, "/dev/snd/mic0", OpenMode::ReadOnly),
            Err(Errno::Eacces),
            "frozen permissions while traced"
        );
        f.kernel.sys_ptrace_detach(f.app, child).unwrap();
        assert!(f
            .kernel
            .sys_open(child, "/dev/snd/mic0", OpenMode::ReadOnly)
            .is_ok());
    }

    #[test]
    fn traced_process_does_not_propagate_timestamps() {
        let mut f = fixture();
        let parent = f.kernel.sys_spawn(Pid::INIT, "/usr/bin/p").unwrap();
        let (r, w) = f.kernel.sys_pipe(parent).unwrap();
        let child = f.kernel.sys_fork(parent).unwrap();
        f.clock.advance(SimDuration::from_secs(10));
        f.interact(child);
        f.kernel.sys_ptrace_attach(parent, child).unwrap();
        f.kernel.sys_write(child, w, b"data").unwrap();
        f.kernel.sys_read(parent, r, 64).unwrap();
        assert_eq!(
            f.kernel.sys_open(parent, "/dev/video0", OpenMode::ReadOnly),
            Err(Errno::Eacces),
            "a traced child's timestamp must not flow out"
        );
    }

    // -------------------------------------------------- lifecycle hygiene

    #[test]
    fn exit_releases_pipe_ends() {
        let mut f = fixture();
        let a = f.kernel.sys_spawn(Pid::INIT, "/usr/bin/a").unwrap();
        let (r, w) = f.kernel.sys_pipe(a).unwrap();
        let b = f.kernel.sys_fork(a).unwrap();
        // a closes its copies; b holds the only remaining refs.
        f.kernel.sys_close(a, r).unwrap();
        f.kernel.sys_close(a, w).unwrap();
        f.kernel.sys_exit(b, 0).unwrap();
        // All refs gone: the pipe object is freed.
        assert!(f.kernel.pipes.is_empty());
    }

    #[test]
    fn close_decrements_fork_bumped_refcounts() {
        let mut f = fixture();
        let a = f.kernel.sys_spawn(Pid::INIT, "/usr/bin/a").unwrap();
        let (r, w) = f.kernel.sys_pipe(a).unwrap();
        let b = f.kernel.sys_fork(a).unwrap();
        f.kernel.sys_close(b, w).unwrap();
        f.kernel.sys_close(a, w).unwrap();
        // Writers all closed: reader sees EOF.
        assert_eq!(f.kernel.sys_read(a, r, 1).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn exit_hangs_up_pty_side_when_last_holder_dies() {
        let mut f = fixture();
        let xterm = f.kernel.sys_spawn(Pid::INIT, "/usr/bin/xterm").unwrap();
        let (master, slave) = f.kernel.sys_openpty(xterm).unwrap();
        let bash = f.kernel.sys_fork(xterm).unwrap();
        // xterm drops its slave copy; bash still holds one.
        f.kernel.sys_close(xterm, slave).unwrap();
        f.kernel.sys_write(xterm, master, b"hi").unwrap();
        f.kernel.sys_exit(bash, 0).unwrap();
        // Slave side now fully closed: master write breaks.
        assert_eq!(f.kernel.sys_write(xterm, master, b"x"), Err(Errno::Epipe));
    }

    #[test]
    fn read_write_on_wrong_pipe_end_is_ebadf() {
        let mut f = fixture();
        let a = f.kernel.sys_spawn(Pid::INIT, "/usr/bin/a").unwrap();
        let (r, w) = f.kernel.sys_pipe(a).unwrap();
        assert_eq!(f.kernel.sys_read(a, w, 1), Err(Errno::Ebadf));
        assert_eq!(f.kernel.sys_write(a, r, b"x"), Err(Errno::Ebadf));
    }

    #[test]
    fn regular_file_io_and_bonnie_style_cycle() {
        let mut f = fixture();
        let fd = f.kernel.sys_creat(f.app, "/tmp/data", 0o644).unwrap();
        f.kernel.sys_write(f.app, fd, b"payload").unwrap();
        assert_eq!(f.kernel.sys_read(f.app, fd, 64).unwrap(), b"payload");
        f.kernel.sys_close(f.app, fd).unwrap();
        assert_eq!(f.kernel.sys_stat(f.app, "/tmp/data").unwrap().size, 7);
        f.kernel.sys_unlink(f.app, "/tmp/data").unwrap();
        assert_eq!(f.kernel.sys_stat(f.app, "/tmp/data"), Err(Errno::Enoent));
    }

    #[test]
    fn unlink_respects_ownership() {
        let mut f = fixture();
        let alice = f
            .kernel
            .sys_spawn_as(Pid::INIT, "/usr/bin/app", Uid::from_raw(1000))
            .unwrap();
        let bob = f
            .kernel
            .sys_spawn_as(Pid::INIT, "/usr/bin/app", Uid::from_raw(1001))
            .unwrap();
        f.kernel.sys_creat(alice, "/tmp/alice.txt", 0o644).unwrap();
        assert_eq!(
            f.kernel.sys_unlink(bob, "/tmp/alice.txt"),
            Err(Errno::Eacces)
        );
        assert!(f.kernel.sys_unlink(alice, "/tmp/alice.txt").is_ok());
    }

    #[test]
    fn open_directory_is_eisdir() {
        let mut f = fixture();
        assert_eq!(
            f.kernel.sys_open(f.app, "/tmp", OpenMode::ReadOnly),
            Err(Errno::Eisdir)
        );
    }

    #[test]
    fn interaction_expiry_is_per_process_not_global() {
        let mut f = fixture();
        let other = f.kernel.sys_spawn(Pid::INIT, "/usr/bin/other").unwrap();
        f.interact(f.app);
        assert_eq!(
            f.kernel
                .sys_open(other, "/dev/snd/mic0", OpenMode::ReadOnly),
            Err(Errno::Eacces),
            "another process's interaction must not leak"
        );
        assert!(f
            .kernel
            .sys_open(f.app, "/dev/snd/mic0", OpenMode::ReadOnly)
            .is_ok());
    }

    #[test]
    fn dup_bumps_pipe_refcounts() {
        let mut f = fixture();
        let a = f.kernel.sys_spawn(Pid::INIT, "/usr/bin/a").unwrap();
        let (r, w) = f.kernel.sys_pipe(a).unwrap();
        let w2 = f.kernel.sys_dup(a, w).unwrap();
        f.kernel.sys_close(a, w).unwrap();
        // The duplicate keeps the write side alive.
        f.kernel.sys_write(a, w2, b"x").unwrap();
        assert_eq!(f.kernel.sys_read(a, r, 1).unwrap(), b"x");
        f.kernel.sys_close(a, w2).unwrap();
        assert_eq!(
            f.kernel.sys_read(a, r, 1).unwrap(),
            Vec::<u8>::new(),
            "EOF after both writers close"
        );
    }

    #[test]
    fn kill_respects_uid_boundaries() {
        let mut f = fixture();
        let alice = f
            .kernel
            .sys_spawn_as(Pid::INIT, "/usr/bin/a", Uid::from_raw(1000))
            .unwrap();
        let bob = f
            .kernel
            .sys_spawn_as(Pid::INIT, "/usr/bin/b", Uid::from_raw(1001))
            .unwrap();
        let alice2 = f
            .kernel
            .sys_spawn_as(Pid::INIT, "/usr/bin/a2", Uid::from_raw(1000))
            .unwrap();
        assert_eq!(f.kernel.sys_kill(alice, bob), Err(Errno::Eperm));
        assert!(f.kernel.sys_kill(alice, alice2).is_ok());
        assert!(!f.kernel.tasks().is_running(alice2));
        // Root kills anyone.
        assert!(f.kernel.sys_kill(Pid::INIT, bob).is_ok());
    }

    #[test]
    fn propagation_audited() {
        let mut f = fixture();
        let a = f.kernel.sys_spawn(Pid::INIT, "/usr/bin/a").unwrap();
        let (r, w) = f.kernel.sys_pipe(a).unwrap();
        let b = f.kernel.sys_fork(a).unwrap();
        f.interact(a);
        f.kernel.sys_write(a, w, b"m").unwrap();
        f.kernel.sys_read(b, r, 1).unwrap();
        assert!(f.kernel.audit().count(AuditCategory::InteractionPropagated) >= 2);
    }
}
