//! User-space Linux-kernel simulator hosting the Overhaul permission
//! monitor.
//!
//! This crate reproduces every kernel-side mechanism of *Overhaul:
//! Input-Driven Access Control for Better Privacy on Traditional Operating
//! Systems* (DSN 2016):
//!
//! * a process table whose [`task::Task`] carries the per-process
//!   interaction timestamp (and duplicates it on `fork` — policy **P1**),
//! * an `open(2)` path that mediates sensitive device nodes through the
//!   [`monitor::PermissionMonitor`] (Figure 1),
//! * the [`netlink`] secure channel with VM-map peer authentication,
//! * the trusted udev helper's [`devfs::DeviceMap`],
//! * every IPC family with interaction-timestamp propagation — policy
//!   **P2** ([`ipc`]), including page-fault-interposed shared memory
//!   ([`mm`]) and pseudo-terminals for CLI workflows,
//! * [`ptrace`] hardening and its procfs toggle.
//!
//! The entry point is [`Kernel`], which owns all subsystems and exposes the
//! syscall surface.
//!
//! # Example
//!
//! ```
//! use overhaul_kernel::{Kernel, KernelConfig, OpenMode};
//! use overhaul_kernel::device::DeviceClass;
//! use overhaul_sim::{Clock, Pid, SimDuration};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let clock = Clock::new();
//! let mut kernel = Kernel::new(clock.clone(), KernelConfig::default());
//! let mic = kernel.attach_device(DeviceClass::Microphone, "mic", "/dev/snd/mic0");
//!
//! let app = kernel.sys_spawn(Pid::INIT, "/usr/bin/recorder")?;
//! // No user interaction yet: Overhaul denies the open.
//! assert!(kernel.sys_open(app, "/dev/snd/mic0", OpenMode::ReadOnly).is_err());
//! # let _ = mic;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod devfs;
pub mod device;
pub mod error;
pub mod ipc;
pub mod mm;
pub mod monitor;
pub mod netlink;
pub mod process;
pub mod procfs;
pub mod ptrace;
pub mod syscall;
pub mod task;
pub mod vfs;

use overhaul_sim::{AuditCategory, AuditLog, Clock, Pid, SimDuration, Timestamp, Uid};

use crate::devfs::DeviceMap;
use crate::device::{DeviceClass, DeviceId, DeviceRegistry};
use crate::error::{Errno, SysResult};
use crate::ipc::msgqueue::MsgQueueTable;
use crate::ipc::pipe::PipeTable;
use crate::ipc::pty::PtyTable;
use crate::ipc::shm::ShmTable;
use crate::ipc::unix_socket::SocketTable;
use crate::mm::MemoryManager;
use crate::monitor::{
    AlertRequest, Decision, MonitorConfig, PermissionMonitor, ResourceOp, Verdict,
};
use crate::netlink::{ConnId, KernelPush, Netlink, NetlinkError, NetlinkMessage, NetlinkReply};
use crate::process::ProcessTable;
use crate::ptrace::PtracePolicy;
use crate::vfs::Vfs;

pub use crate::error::SysResult as KernelResult;
pub use crate::syscall::OpenMode;

/// Well-known path of the X server binary (netlink-trusted).
pub const XORG_PATH: &str = "/usr/lib/xorg/Xorg";

/// Well-known path of the trusted udev helper (netlink-trusted).
pub const UDEV_HELPER_PATH: &str = "/usr/lib/overhaul/udev-helper";

/// Kernel-wide configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelConfig {
    /// Master switch: with `false` the kernel behaves like an unmodified
    /// Linux (the Table I baseline).
    pub overhaul_enabled: bool,
    /// Permission-monitor tunables (δ, grant-all benchmark mode).
    pub monitor: MonitorConfig,
    /// Shared-memory wait-list window (paper: 500 ms).
    pub shm_wait: SimDuration,
    /// ptrace hardening (paper: on by default).
    pub ptrace_hardening: bool,
    /// Interaction-timestamp propagation across IPC (**P2**). On by
    /// default; the ablation benches switch it off to measure how much of
    /// the paper's applicability depends on it. (**P1** — fork
    /// inheritance — is structural and cannot be disabled.)
    pub ipc_propagation: bool,
    /// Queue visual-alert requests on device decisions (on by default; the
    /// paper suppresses alerts only for clipboard operations, which are
    /// display-manager territory anyway).
    pub device_alerts: bool,
    /// Executable paths allowed to authenticate on the netlink channel.
    pub trusted_netlink_paths: Vec<String>,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            overhaul_enabled: true,
            monitor: MonitorConfig::default(),
            shm_wait: SimDuration::from_millis(500),
            ptrace_hardening: true,
            ipc_propagation: true,
            device_alerts: true,
            trusted_netlink_paths: vec![XORG_PATH.to_string(), UDEV_HELPER_PATH.to_string()],
        }
    }
}

impl KernelConfig {
    /// The unmodified-Linux baseline used for Table I comparisons.
    pub fn baseline() -> Self {
        KernelConfig {
            overhaul_enabled: false,
            ..KernelConfig::default()
        }
    }
}

/// The simulated kernel.
#[derive(Debug)]
pub struct Kernel {
    clock: Clock,
    config: KernelConfig,
    pub(crate) tasks: ProcessTable,
    pub(crate) vfs: Vfs,
    pub(crate) devices: DeviceRegistry,
    pub(crate) device_map: DeviceMap,
    pub(crate) monitor: PermissionMonitor,
    pub(crate) netlink: Netlink,
    pub(crate) pipes: PipeTable,
    pub(crate) sockets: SocketTable,
    pub(crate) msgqueues: MsgQueueTable,
    pub(crate) shm: ShmTable,
    pub(crate) mm: MemoryManager,
    pub(crate) ptys: PtyTable,
    pub(crate) ptrace: PtracePolicy,
    pub(crate) audit: AuditLog,
}

impl Kernel {
    /// Boots a kernel: process table with init, a VFS with the standard
    /// directory layout, the trusted binaries installed root-owned, and all
    /// subsystems configured per `config`.
    pub fn new(clock: Clock, config: KernelConfig) -> Self {
        let mut vfs = Vfs::new();
        // Install the trusted binaries so netlink authentication can verify
        // superuser ownership of the on-disk images.
        for path in &config.trusted_netlink_paths {
            let _ = ensure_parent_dirs(&mut vfs, path);
            let _ = vfs.create_file(path, Uid::ROOT, 0o755);
        }
        Kernel {
            tasks: ProcessTable::new(),
            devices: DeviceRegistry::new(),
            device_map: DeviceMap::new(),
            monitor: PermissionMonitor::new(config.monitor),
            netlink: Netlink::new(config.trusted_netlink_paths.clone()),
            pipes: PipeTable::new(),
            sockets: SocketTable::new(),
            msgqueues: MsgQueueTable::new(),
            shm: ShmTable::new(),
            mm: MemoryManager::new(config.overhaul_enabled, config.shm_wait),
            ptys: PtyTable::new(),
            ptrace: PtracePolicy {
                hardening_enabled: config.ptrace_hardening,
            },
            audit: AuditLog::new(),
            vfs,
            clock,
            config,
        }
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Current virtual time.
    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// Current configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// Whether Overhaul mediation is active.
    pub fn overhaul_enabled(&self) -> bool {
        self.config.overhaul_enabled
    }

    /// Flips the master switch (baseline vs. protected benchmarking).
    pub fn set_overhaul_enabled(&mut self, enabled: bool) {
        self.config.overhaul_enabled = enabled;
        self.mm.set_interpose(enabled);
    }

    /// Reconfigures the permission monitor (δ sweeps, grant-all mode).
    pub fn set_monitor_config(&mut self, monitor: MonitorConfig) {
        self.config.monitor = monitor;
        self.monitor.set_config(monitor);
    }

    /// Reconfigures the shared-memory wait window (ablation sweeps).
    pub fn set_shm_wait(&mut self, wait: SimDuration) {
        self.config.shm_wait = wait;
        self.mm.set_wait_duration(wait);
    }

    /// The audit log.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Mutable audit log (harnesses append markers).
    pub fn audit_mut(&mut self) -> &mut AuditLog {
        &mut self.audit
    }

    /// Read-only view of the process table.
    pub fn tasks(&self) -> &ProcessTable {
        &self.tasks
    }

    /// Read-only view of the device registry.
    pub fn devices(&self) -> &DeviceRegistry {
        &self.devices
    }

    /// Read-only view of the filesystem.
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    /// Permission-monitor counters.
    pub fn monitor_stats(&self) -> monitor::MonitorStats {
        self.monitor.stats()
    }

    /// Memory-manager counters.
    pub fn mm_stats(&self) -> mm::MmStats {
        self.mm.stats()
    }

    /// The kernel-side sensitive-device path map.
    pub fn device_map(&self) -> &DeviceMap {
        &self.device_map
    }

    /// In-kernel display-manager entry point (§III's integrated design):
    /// records an interaction notification without a channel.
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] for dead processes.
    pub fn record_interaction_direct(&mut self, pid: Pid, at: Timestamp) -> SysResult<bool> {
        let changed = self.monitor.record_interaction(&mut self.tasks, pid, at)?;
        if changed {
            self.audit.record(
                at,
                AuditCategory::InteractionNotification,
                Some(pid),
                "interaction recorded in task_struct (integrated DM)",
            );
        }
        Ok(changed)
    }

    /// In-kernel display-manager entry point: answers a permission query
    /// without a channel. A query about a dead process is a deny.
    pub fn decide_direct(&mut self, pid: Pid, at: Timestamp, op: ResourceOp) -> Decision {
        self.decide(pid, at, op)
    }

    /// Drains pending visual-alert requests without a channel (integrated
    /// display managers read the monitor's queue in-process).
    pub fn take_alerts_direct(&mut self) -> Vec<AlertRequest> {
        self.monitor.take_alerts()
    }

    /// Harness helper: clears a process's stored interaction timestamp
    /// (used by chain tests to isolate message-carried propagation from
    /// fork-inherited credit).
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] for unknown processes.
    pub fn reset_interaction(&mut self, pid: Pid) -> SysResult<()> {
        self.tasks.get_mut(pid)?.clear_interaction();
        Ok(())
    }

    /// Periodic housekeeping: processes the shared-memory wait list.
    /// Harnesses call this as virtual time advances.
    pub fn tick(&mut self) {
        let now = self.clock.now();
        self.mm.tick(now);
    }

    // ---------------------------------------------------------------
    // Device attachment & udev simulation
    // ---------------------------------------------------------------

    /// Attaches a new hardware device: registers it, creates its `/dev`
    /// node, and has the trusted helper record the path mapping.
    ///
    /// # Panics
    ///
    /// Panics if `path` collides with an existing node (harness bug).
    pub fn attach_device(&mut self, class: DeviceClass, label: &str, path: &str) -> DeviceId {
        let device = self.devices.register(class, label);
        ensure_parent_dirs(&mut self.vfs, path).expect("device path parents");
        self.vfs
            .mknod_device(path, device, 0o666)
            .expect("device node path free");
        self.device_map.insert(path, device);
        self.audit.record(
            self.clock.now(),
            AuditCategory::Info,
            None,
            format!("udev: attached {class} '{label}' at {path}"),
        );
        device
    }

    /// Simulates udev renaming a device node, with the trusted helper
    /// propagating the change to the kernel map (the normal case).
    pub fn udev_rename_device(&mut self, old_path: &str, new_path: &str) -> SysResult<()> {
        self.vfs.rename(old_path, new_path)?;
        self.device_map.rename(old_path, new_path);
        self.audit.record(
            self.clock.now(),
            AuditCategory::Info,
            None,
            format!("udev: renamed {old_path} -> {new_path} (helper synced)"),
        );
        Ok(())
    }

    /// The trusted helper catches up on a rename it previously missed,
    /// replaying the event into the kernel map (closing the lag window).
    pub fn device_map_catch_up(&mut self, old_path: &str, new_path: &str) {
        self.device_map.rename(old_path, new_path);
        self.audit.record(
            self.clock.now(),
            AuditCategory::Info,
            None,
            format!("udev: helper caught up {old_path} -> {new_path}"),
        );
    }

    /// Simulates udev renaming a device node while the trusted helper is
    /// *lagging*: the filesystem changes but the kernel map does not. Used
    /// by tests to demonstrate the design's dependence on the helper.
    pub fn udev_rename_device_without_helper(
        &mut self,
        old_path: &str,
        new_path: &str,
    ) -> SysResult<()> {
        self.vfs.rename(old_path, new_path)?;
        self.audit.record(
            self.clock.now(),
            AuditCategory::Info,
            None,
            format!("udev: renamed {old_path} -> {new_path} (helper lagging)"),
        );
        Ok(())
    }

    // ---------------------------------------------------------------
    // Netlink: the secure kernel <-> display-manager channel
    // ---------------------------------------------------------------

    /// Establishes an authenticated netlink connection for `pid`
    /// (VM-map introspection per §IV-B).
    ///
    /// # Errors
    ///
    /// See [`Netlink::connect`].
    pub fn netlink_connect(&mut self, pid: Pid) -> Result<ConnId, NetlinkError> {
        let conn = self.netlink.connect(&self.tasks, &self.vfs, pid)?;
        self.audit.record(
            self.clock.now(),
            AuditCategory::Info,
            Some(pid),
            "netlink: peer authenticated",
        );
        Ok(conn)
    }

    /// Round-trip cost of one netlink exchange: two user/kernel boundary
    /// crossings plus wakeups. Derived from Table I's clipboard row, where
    /// the paste-time permission query accounts for ~35 µs of overhead per
    /// operation on the paper's testbed.
    pub const NETLINK_RTT_MICROS: u64 = 30;

    /// Handles one userspace→kernel message on an established channel.
    ///
    /// # Errors
    ///
    /// [`NetlinkError::UnknownConnection`] for unauthenticated senders; the
    /// per-message semantics never fail (a query about a dead process is
    /// answered with a deny).
    pub fn netlink_send(
        &mut self,
        conn: ConnId,
        msg: NetlinkMessage,
    ) -> Result<NetlinkReply, NetlinkError> {
        overhaul_sim::work::spin_micros(Self::NETLINK_RTT_MICROS);
        self.netlink.authenticate(conn)?;
        match msg {
            NetlinkMessage::InteractionNotification { pid, at } => {
                match self.monitor.record_interaction(&mut self.tasks, pid, at) {
                    Ok(changed) => {
                        if changed {
                            self.audit.record(
                                at,
                                AuditCategory::InteractionNotification,
                                Some(pid),
                                "interaction recorded in task_struct",
                            );
                        }
                    }
                    Err(_) => {
                        // Notification for a pid that died in flight: drop.
                        self.audit.record(
                            at,
                            AuditCategory::Info,
                            Some(pid),
                            "interaction notification for dead process dropped",
                        );
                    }
                }
                Ok(NetlinkReply::Ack)
            }
            NetlinkMessage::PermissionQuery { pid, op, at } => {
                let decision = self.decide(pid, at, op);
                Ok(NetlinkReply::QueryResponse(decision))
            }
            NetlinkMessage::DeviceMapUpdate { old_path, new_path } => {
                if old_path.is_empty() {
                    // New device: the helper is authoritative for the path,
                    // but the device must already be registered; unknown
                    // paths are ignored.
                } else {
                    self.device_map.rename(&old_path, &new_path);
                }
                Ok(NetlinkReply::Ack)
            }
        }
    }

    /// Drains kernel→userspace pushes (visual-alert requests) for an
    /// authenticated connection.
    ///
    /// # Errors
    ///
    /// [`NetlinkError::UnknownConnection`] for unauthenticated callers.
    pub fn netlink_take_pushes(&mut self, conn: ConnId) -> Result<Vec<KernelPush>, NetlinkError> {
        self.netlink.authenticate(conn)?;
        Ok(self
            .monitor
            .take_alerts()
            .into_iter()
            .map(KernelPush::DisplayAlert)
            .collect())
    }

    /// Runs a permission decision for `pid` performing `op` at `at`,
    /// recording audit events. Used by the device-open path internally and
    /// by netlink queries from the display manager.
    pub(crate) fn decide(&mut self, pid: Pid, at: Timestamp, op: ResourceOp) -> Decision {
        let decision = match self.monitor.check(&self.tasks, pid, at) {
            Ok(d) => d,
            Err(_) => Decision {
                verdict: Verdict::Deny,
                reason: monitor::DecisionReason::NoInteraction,
            },
        };
        let category = if decision.verdict.is_grant() {
            AuditCategory::PermissionGranted
        } else {
            AuditCategory::PermissionDenied
        };
        // Static detail strings keep the mediation hot path allocation-free
        // (this is the code the Table I device benchmark times).
        self.audit.record(
            at,
            category,
            Some(pid),
            decision_detail(op, decision.verdict.is_grant()),
        );
        decision
    }

    /// Queues a device-access visual alert if configured.
    pub(crate) fn queue_device_alert(
        &mut self,
        pid: Pid,
        op: ResourceOp,
        granted: bool,
        at: Timestamp,
    ) {
        if !self.config.device_alerts {
            return;
        }
        let process_name = self
            .tasks
            .get(pid)
            .map(|t| t.name().to_string())
            .unwrap_or_else(|_| "<dead>".to_string());
        self.monitor.request_alert(AlertRequest {
            pid,
            process_name,
            op,
            granted,
            at,
        });
    }

    // ---------------------------------------------------------------
    // procfs
    // ---------------------------------------------------------------

    /// Reads an Overhaul procfs node.
    ///
    /// # Errors
    ///
    /// [`Errno::Enoent`] for unknown nodes.
    pub fn sys_procfs_read(&self, path: &str) -> SysResult<String> {
        match path {
            procfs::PTRACE_HARDENING => Ok(if self.ptrace.hardening_enabled {
                "1"
            } else {
                "0"
            }
            .to_string()),
            procfs::DELTA_MS => Ok(self.config.monitor.delta.as_millis().to_string()),
            procfs::STATS => {
                let s = self.monitor.stats();
                Ok(format!(
                    "notifications={} grants={} denies={}",
                    s.notifications, s.grants, s.denies
                ))
            }
            _ => Err(Errno::Enoent),
        }
    }

    /// Writes an Overhaul procfs node. Superuser only.
    ///
    /// # Errors
    ///
    /// [`Errno::Eacces`] for non-root writers, [`Errno::Einval`] for
    /// malformed values, [`Errno::Enoent`] for unknown nodes.
    pub fn sys_procfs_write(&mut self, pid: Pid, path: &str, value: &str) -> SysResult<()> {
        let uid = self.tasks.get(pid)?.uid();
        if !uid.is_root() {
            return Err(Errno::Eacces);
        }
        match path {
            procfs::PTRACE_HARDENING => {
                let enabled = match value.trim() {
                    "0" => false,
                    "1" => true,
                    _ => return Err(Errno::Einval),
                };
                self.ptrace.hardening_enabled = enabled;
                self.config.ptrace_hardening = enabled;
                self.audit.record(
                    self.clock.now(),
                    AuditCategory::PtraceHardening,
                    Some(pid),
                    format!("hardening toggled to {enabled}"),
                );
                Ok(())
            }
            procfs::DELTA_MS => {
                let ms: u64 = value.trim().parse().map_err(|_| Errno::Einval)?;
                let mut cfg = self.config.monitor;
                cfg.delta = SimDuration::from_millis(ms);
                self.set_monitor_config(cfg);
                Ok(())
            }
            _ => Err(Errno::Enoent),
        }
    }
}

/// Allocation-free audit detail for a mediation decision.
fn decision_detail(op: ResourceOp, granted: bool) -> &'static str {
    match (op, granted) {
        (ResourceOp::Mic, true) => "op=mic granted",
        (ResourceOp::Mic, false) => "op=mic denied",
        (ResourceOp::Cam, true) => "op=cam granted",
        (ResourceOp::Cam, false) => "op=cam denied",
        (ResourceOp::Sensor, true) => "op=sensor granted",
        (ResourceOp::Sensor, false) => "op=sensor denied",
        (ResourceOp::Screen, true) => "op=scr granted",
        (ResourceOp::Screen, false) => "op=scr denied",
        (ResourceOp::Copy, true) => "op=copy granted",
        (ResourceOp::Copy, false) => "op=copy denied",
        (ResourceOp::Paste, true) => "op=paste granted",
        (ResourceOp::Paste, false) => "op=paste denied",
    }
}

fn ensure_parent_dirs(vfs: &mut Vfs, path: &str) -> SysResult<()> {
    let components: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
    let mut prefix = String::new();
    for component in components.iter().take(components.len().saturating_sub(1)) {
        prefix.push('/');
        prefix.push_str(component);
        if vfs.resolve(&prefix).is_err() {
            vfs.mkdir(&prefix, Uid::ROOT, 0o755)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> Kernel {
        Kernel::new(Clock::new(), KernelConfig::default())
    }

    #[test]
    fn boot_installs_trusted_binaries_root_owned() {
        let k = kernel();
        let stat = k.vfs().stat(XORG_PATH).unwrap();
        assert!(stat.owner.is_root());
        assert!(k.vfs().stat(UDEV_HELPER_PATH).is_ok());
    }

    #[test]
    fn attach_device_creates_node_and_map_entry() {
        let mut k = kernel();
        let id = k.attach_device(DeviceClass::Camera, "webcam", "/dev/video0");
        assert!(k.vfs().stat("/dev/video0").unwrap().is_device);
        assert_eq!(k.device_map().lookup("/dev/video0"), Some(id));
    }

    #[test]
    fn netlink_round_trip_interaction_and_query() {
        let mut k = kernel();
        let x = k.sys_spawn(Pid::INIT, XORG_PATH).unwrap();
        let app = k.sys_spawn(Pid::INIT, "/usr/bin/app").unwrap();
        let conn = k.netlink_connect(x).unwrap();
        let t = Timestamp::from_millis(100);
        let reply = k
            .netlink_send(
                conn,
                NetlinkMessage::InteractionNotification { pid: app, at: t },
            )
            .unwrap();
        assert_eq!(reply, NetlinkReply::Ack);
        let reply = k
            .netlink_send(
                conn,
                NetlinkMessage::PermissionQuery {
                    pid: app,
                    op: ResourceOp::Paste,
                    at: Timestamp::from_millis(500),
                },
            )
            .unwrap();
        match reply {
            NetlinkReply::QueryResponse(d) => assert!(d.verdict.is_grant()),
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn netlink_rejects_untrusted_connector() {
        let mut k = kernel();
        let mallory = k.sys_spawn(Pid::INIT, "/home/mallory/spy").unwrap();
        assert_eq!(k.netlink_connect(mallory), Err(NetlinkError::UntrustedPeer));
    }

    #[test]
    fn query_for_dead_process_is_denied_not_error() {
        let mut k = kernel();
        let x = k.sys_spawn(Pid::INIT, XORG_PATH).unwrap();
        let conn = k.netlink_connect(x).unwrap();
        let reply = k
            .netlink_send(
                conn,
                NetlinkMessage::PermissionQuery {
                    pid: Pid::from_raw(999),
                    op: ResourceOp::Copy,
                    at: Timestamp::ZERO,
                },
            )
            .unwrap();
        match reply {
            NetlinkReply::QueryResponse(d) => assert!(!d.verdict.is_grant()),
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn procfs_ptrace_toggle_requires_root() {
        let mut k = kernel();
        let user_proc = k
            .sys_spawn_as(Pid::INIT, "/usr/bin/app", Uid::from_raw(1000))
            .unwrap();
        assert_eq!(
            k.sys_procfs_write(user_proc, procfs::PTRACE_HARDENING, "0"),
            Err(Errno::Eacces)
        );
        assert_eq!(
            k.sys_procfs_write(Pid::INIT, procfs::PTRACE_HARDENING, "0"),
            Ok(())
        );
        assert_eq!(k.sys_procfs_read(procfs::PTRACE_HARDENING).unwrap(), "0");
    }

    #[test]
    fn procfs_delta_write_reconfigures_monitor() {
        let mut k = kernel();
        k.sys_procfs_write(Pid::INIT, procfs::DELTA_MS, "750")
            .unwrap();
        assert_eq!(k.config().monitor.delta, SimDuration::from_millis(750));
        assert_eq!(k.sys_procfs_read(procfs::DELTA_MS).unwrap(), "750");
    }

    #[test]
    fn unknown_procfs_node_is_enoent() {
        let k = kernel();
        assert_eq!(
            k.sys_procfs_read("/proc/overhaul/bogus").err(),
            Some(Errno::Enoent)
        );
    }

    #[test]
    fn udev_rename_with_helper_keeps_mediation_map_in_sync() {
        let mut k = kernel();
        let id = k.attach_device(DeviceClass::Microphone, "mic", "/dev/snd/mic0");
        k.udev_rename_device("/dev/snd/mic0", "/dev/snd/mic1")
            .unwrap();
        assert_eq!(k.device_map().lookup("/dev/snd/mic1"), Some(id));
        assert_eq!(k.device_map().lookup("/dev/snd/mic0"), None);
    }

    #[test]
    fn lagging_helper_leaves_map_stale() {
        let mut k = kernel();
        let id = k.attach_device(DeviceClass::Microphone, "mic", "/dev/snd/mic0");
        k.udev_rename_device_without_helper("/dev/snd/mic0", "/dev/snd/mic1")
            .unwrap();
        assert_eq!(
            k.device_map().lookup("/dev/snd/mic0"),
            Some(id),
            "map is stale"
        );
        assert_eq!(k.device_map().lookup("/dev/snd/mic1"), None);
    }
}
