//! User-space Linux-kernel simulator hosting the Overhaul permission
//! monitor.
//!
//! This crate reproduces every kernel-side mechanism of *Overhaul:
//! Input-Driven Access Control for Better Privacy on Traditional Operating
//! Systems* (DSN 2016):
//!
//! * a process table whose [`task::Task`] carries the per-process
//!   interaction timestamp (and duplicates it on `fork` — policy **P1**),
//! * an `open(2)` path that mediates sensitive device nodes through the
//!   [`monitor::PermissionMonitor`] (Figure 1),
//! * the [`netlink`] secure channel with VM-map peer authentication,
//! * the trusted udev helper's [`devfs::DeviceMap`],
//! * every IPC family with interaction-timestamp propagation — policy
//!   **P2** ([`ipc`]), including page-fault-interposed shared memory
//!   ([`mm`]) and pseudo-terminals for CLI workflows,
//! * [`ptrace`] hardening and its procfs toggle.
//!
//! The entry point is [`Kernel`], which owns all subsystems and exposes the
//! syscall surface.
//!
//! # Example
//!
//! ```
//! use overhaul_kernel::{Kernel, KernelConfig, OpenMode};
//! use overhaul_kernel::device::DeviceClass;
//! use overhaul_sim::{Clock, Pid, SimDuration};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let clock = Clock::new();
//! let mut kernel = Kernel::new(clock.clone(), KernelConfig::default());
//! let mic = kernel.attach_device(DeviceClass::Microphone, "mic", "/dev/snd/mic0");
//!
//! let app = kernel.sys_spawn(Pid::INIT, "/usr/bin/recorder")?;
//! // No user interaction yet: Overhaul denies the open.
//! assert!(kernel.sys_open(app, "/dev/snd/mic0", OpenMode::ReadOnly).is_err());
//! # let _ = mic;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod devfs;
pub mod device;
pub mod error;
pub mod ipc;
pub mod mm;
pub mod monitor;
pub mod netlink;
pub mod policy;
pub mod process;
pub mod procfs;
pub mod ptrace;
pub mod snapshot;
pub mod syscall;
pub mod task;
pub mod vfs;

use std::borrow::Cow;
use std::collections::VecDeque;

use overhaul_sim::{
    AuditCategory, AuditLog, ChannelFault, ChannelTag, Clock, ConfigKey, ControlPlane, Effect,
    FaultPlan, Ledger, LedgerEntry, Mechanism, MetricsRegistry, Pid, RuleKind, SimDuration,
    Sketches, SpanId, Timestamp, TraceValue, Tracer, Uid,
};

use crate::devfs::DeviceMap;
use crate::device::{DeviceClass, DeviceId, DeviceRegistry};
use crate::error::{Errno, SysResult};
use crate::ipc::msgqueue::MsgQueueTable;
use crate::ipc::pipe::PipeTable;
use crate::ipc::pty::PtyTable;
use crate::ipc::shm::ShmTable;
use crate::ipc::unix_socket::SocketTable;
use crate::mm::MemoryManager;
use crate::monitor::{AlertRequest, Decision, MonitorConfig, PermissionMonitor, ResourceOp};
use crate::netlink::{
    ChannelState, ConnId, KernelPush, Netlink, NetlinkError, NetlinkMessage, NetlinkReply,
};
use crate::policy::{
    CacheStats, DecisionOutcome, DecisionTrace, IngestEvent, OpRequest, PolicyEngine,
    PolicySnapshot, TaskPolicyView, VerdictCache,
};
use crate::process::ProcessTable;
use crate::ptrace::PtracePolicy;
use crate::vfs::{InodeKind, Vfs};

pub use crate::error::SysResult as KernelResult;
pub use crate::snapshot::SnapshotStats;
pub use crate::syscall::OpenMode;

/// Well-known path of the X server binary (netlink-trusted).
pub const XORG_PATH: &str = "/usr/lib/xorg/Xorg";

/// Well-known path of the trusted udev helper (netlink-trusted).
pub const UDEV_HELPER_PATH: &str = "/usr/lib/overhaul/udev-helper";

/// Kernel-wide configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelConfig {
    /// Master switch: with `false` the kernel behaves like an unmodified
    /// Linux (the Table I baseline).
    pub overhaul_enabled: bool,
    /// Permission-monitor tunables (δ, grant-all benchmark mode).
    pub monitor: MonitorConfig,
    /// Shared-memory wait-list window (paper: 500 ms).
    pub shm_wait: SimDuration,
    /// ptrace hardening (paper: on by default).
    pub ptrace_hardening: bool,
    /// Interaction-timestamp propagation across IPC (**P2**). On by
    /// default; the ablation benches switch it off to measure how much of
    /// the paper's applicability depends on it. (**P1** — fork
    /// inheritance — is structural and cannot be disabled.)
    pub ipc_propagation: bool,
    /// Queue visual-alert requests on device decisions (on by default; the
    /// paper suppresses alerts only for clipboard operations, which are
    /// display-manager territory anyway).
    pub device_alerts: bool,
    /// Executable paths allowed to authenticate on the netlink channel.
    pub trusted_netlink_paths: Vec<String>,
    /// How many times a lost channel message is retried before the sender
    /// gives up and the channel is declared down.
    pub channel_max_retries: u32,
    /// Base virtual-time backoff between channel retries (doubles per
    /// attempt).
    pub channel_retry_backoff: SimDuration,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            overhaul_enabled: true,
            monitor: MonitorConfig::default(),
            shm_wait: SimDuration::from_millis(500),
            ptrace_hardening: true,
            ipc_propagation: true,
            device_alerts: true,
            trusted_netlink_paths: vec![XORG_PATH.to_string(), UDEV_HELPER_PATH.to_string()],
            channel_max_retries: 3,
            channel_retry_backoff: SimDuration::from_millis(10),
        }
    }
}

impl KernelConfig {
    /// The unmodified-Linux baseline used for Table I comparisons.
    pub fn baseline() -> Self {
        KernelConfig {
            overhaul_enabled: false,
            ..KernelConfig::default()
        }
    }
}

/// The simulated kernel.
#[derive(Debug)]
pub struct Kernel {
    clock: Clock,
    config: KernelConfig,
    pub(crate) tasks: ProcessTable,
    pub(crate) vfs: Vfs,
    pub(crate) devices: DeviceRegistry,
    pub(crate) device_map: DeviceMap,
    pub(crate) monitor: PermissionMonitor,
    pub(crate) netlink: Netlink,
    pub(crate) pipes: PipeTable,
    pub(crate) sockets: SocketTable,
    pub(crate) msgqueues: MsgQueueTable,
    pub(crate) shm: ShmTable,
    pub(crate) mm: MemoryManager,
    pub(crate) ptys: PtyTable,
    pub(crate) ptrace: PtracePolicy,
    /// The authoritative hash-chained history. Every audited event and
    /// every control-plane mutation is appended here as a typed entry; the
    /// legacy audit log survives as the ledger's rendered projection.
    pub(crate) ledger: Ledger,
    /// Optional fault plan governing channel faults and boot-time stat
    /// failures. `None` (the default) injects nothing.
    fault: Option<FaultPlan>,
    /// Whether mediation requires a live display channel: when set, every
    /// decision while the channel is [`ChannelState::Down`] is a fail-closed
    /// deny. Set by the system harness when it wires a channel-based
    /// display manager; off for integrated designs.
    channel_required: bool,
    /// Alerts drained from the monitor but not yet delivered to the display
    /// manager (lost in flight or awaiting a reconnect). Replayed on the
    /// next successful drain — the structural exactly-once buffer.
    push_buffer: VecDeque<AlertRequest>,
    /// Notifications overtaken by later traffic: stashed here and delivered
    /// after the next channel message completes.
    reorder_buffer: Vec<(ConnId, u64, NetlinkMessage)>,
    /// Kernel-wide contribution to the global policy epoch, bumped on
    /// configuration changes that can alter verdicts (δ, grant-all mode,
    /// the overhaul master switch, channel-required wiring). Channel-state
    /// and device-map changes contribute via their own generation counters;
    /// see [`Kernel::policy_epoch`].
    policy_epoch: u64,
    /// Epoch-keyed verdict cache over the pure policy engine, stored
    /// densely per process-arena slot. Also holds each live task's most
    /// recent outcome per op (the [`Kernel::explain_last`] store); both
    /// are evicted when the process exits, so per-task derived state is
    /// bounded by the live task count.
    verdict_cache: VerdictCache,
    /// Monotone count of traced decisions, driving the deterministic
    /// head-sampling of cache-hit `kernel.decide` spans.
    decide_serial: u64,
    /// Virtual-time span tracer. Disabled (no-op) by default; the system
    /// harness installs a shared enabled handle when tracing is on, so the
    /// kernel and the display manager record into one trace.
    tracer: Tracer,
    /// Tracing-native metrics with no legacy counterpart struct:
    /// propagation hops per IPC mechanism, credit-chain saturation,
    /// virtual-time histograms. Legacy counters ([`monitor::MonitorStats`],
    /// [`mm::MmStats`], [`CacheStats`]) are mirrored into the procfs
    /// metrics page at render time, so the two can never drift.
    metrics: MetricsRegistry,
    /// Checkpoint/restore counters (bytes exported, derived caches
    /// rebuilt, replay divergences). Never serialized — they describe this
    /// kernel instance's snapshot activity, not simulation state.
    snapshot_stats: SnapshotStats,
    /// Shared latency-sketch recording handle (the observability plane).
    /// The system harness installs its shared handle so the kernel and the
    /// rest of the machine record into one book. Never serialized here —
    /// the book rides in the machine snapshot's aux section, like the
    /// tracer buffer.
    sketch: Sketches,
}

impl Kernel {
    /// Boots a kernel: process table with init, a VFS with the standard
    /// directory layout, the trusted binaries installed root-owned, and all
    /// subsystems configured per `config`.
    pub fn new(clock: Clock, config: KernelConfig) -> Self {
        let mut vfs = Vfs::new();
        // Install the trusted binaries so netlink authentication can verify
        // superuser ownership of the on-disk images.
        for path in &config.trusted_netlink_paths {
            let _ = ensure_parent_dirs(&mut vfs, path);
            let _ = vfs.create_file(path, Uid::ROOT, 0o755);
        }
        // Seed the ledger with the boot configuration as silent entries so
        // a reduction from the genesis head re-derives the control plane of
        // a freshly booted kernel (state-as-reduction holds from boot).
        let boot = clock.now();
        let mut ledger = Ledger::new();
        for (key, value) in [
            (
                ConfigKey::OverhaulEnabled,
                u64::from(config.overhaul_enabled),
            ),
            (
                ConfigKey::PtraceHardening,
                u64::from(config.ptrace_hardening),
            ),
            (ConfigKey::DeltaMs, config.monitor.delta.as_millis()),
            (ConfigKey::GrantAll, u64::from(config.monitor.grant_all)),
        ] {
            ledger.append(LedgerEntry::silent(boot, Effect::Config { key, value }));
        }
        Kernel {
            tasks: ProcessTable::new(),
            devices: DeviceRegistry::new(),
            device_map: DeviceMap::new(),
            monitor: PermissionMonitor::new(config.monitor),
            netlink: Netlink::new(config.trusted_netlink_paths.clone()),
            pipes: PipeTable::new(),
            sockets: SocketTable::new(),
            msgqueues: MsgQueueTable::new(),
            shm: ShmTable::new(),
            mm: MemoryManager::new(config.overhaul_enabled, config.shm_wait),
            ptys: PtyTable::new(),
            ptrace: PtracePolicy {
                hardening_enabled: config.ptrace_hardening,
            },
            ledger,
            fault: None,
            channel_required: false,
            push_buffer: VecDeque::new(),
            reorder_buffer: Vec::new(),
            policy_epoch: 0,
            verdict_cache: VerdictCache::new(),
            decide_serial: 0,
            tracer: Tracer::disabled(),
            metrics: MetricsRegistry::new(),
            snapshot_stats: SnapshotStats::default(),
            sketch: Sketches::new(),
            vfs,
            clock,
            config,
        }
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Current virtual time.
    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// Current configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// Whether Overhaul mediation is active.
    pub fn overhaul_enabled(&self) -> bool {
        self.config.overhaul_enabled
    }

    /// Flips the master switch (baseline vs. protected benchmarking).
    pub fn set_overhaul_enabled(&mut self, enabled: bool) {
        self.config.overhaul_enabled = enabled;
        self.mm.set_interpose(enabled);
        self.policy_epoch += 1;
        self.ledger.append(LedgerEntry::silent(
            self.clock.now(),
            Effect::Config {
                key: ConfigKey::OverhaulEnabled,
                value: u64::from(enabled),
            },
        ));
    }

    /// Reconfigures the permission monitor (δ sweeps, grant-all mode).
    pub fn set_monitor_config(&mut self, monitor: MonitorConfig) {
        self.config.monitor = monitor;
        self.monitor.set_config(monitor);
        self.policy_epoch += 1;
        let at = self.clock.now();
        self.ledger.append(LedgerEntry::silent(
            at,
            Effect::Config {
                key: ConfigKey::DeltaMs,
                value: monitor.delta.as_millis(),
            },
        ));
        self.ledger.append(LedgerEntry::silent(
            at,
            Effect::Config {
                key: ConfigKey::GrantAll,
                value: u64::from(monitor.grant_all),
            },
        ));
    }

    /// Reconfigures the shared-memory wait window (ablation sweeps).
    pub fn set_shm_wait(&mut self, wait: SimDuration) {
        self.config.shm_wait = wait;
        self.mm.set_wait_duration(wait);
    }

    /// The audit log — the rendered projection of the ledger.
    pub fn audit(&self) -> &AuditLog {
        self.ledger.audit()
    }

    /// The authoritative hash-chained history behind the audit view.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Appends a projected informational entry to the ledger (system
    /// harness events such as a display-manager crash).
    pub fn record_event(
        &mut self,
        category: AuditCategory,
        pid: Option<Pid>,
        detail: impl Into<Cow<'static, str>>,
    ) {
        self.ledger
            .append(LedgerEntry::event(self.clock.now(), category, pid, detail));
    }

    /// Discards retained ledger entries and the audit projection
    /// (measurement harnesses bound history growth). The chain head and
    /// sequence numbering stay monotone across the clear.
    pub fn clear_history(&mut self) {
        self.ledger.clear();
    }

    /// The live control-plane state in the ledger reduction's vocabulary:
    /// [`Ledger::reduce`] over this kernel's full history must re-derive a
    /// [`ControlPlane`] whose `state_hash` equals this one's.
    pub fn control_plane(&self) -> ControlPlane {
        ControlPlane {
            overhaul_enabled: self.config.overhaul_enabled,
            ptrace_hardening: self.ptrace.hardening_enabled,
            channel_required: self.channel_required,
            delta_ms: self.config.monitor.delta.as_millis(),
            grant_all: self.config.monitor.grant_all,
            channel: channel_tag(self.netlink.state()),
            devices_by_path: self
                .device_map
                .iter()
                .map(|(path, device)| (path.to_string(), device.as_raw()))
                .collect(),
            quarantined: self
                .device_map
                .quarantined_iter()
                .map(DeviceId::as_raw)
                .collect(),
        }
    }

    /// Read-only view of the process table.
    pub fn tasks(&self) -> &ProcessTable {
        &self.tasks
    }

    /// Read-only view of the device registry.
    pub fn devices(&self) -> &DeviceRegistry {
        &self.devices
    }

    /// Read-only view of the filesystem.
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    /// Permission-monitor counters.
    pub fn monitor_stats(&self) -> monitor::MonitorStats {
        self.monitor.stats()
    }

    /// Memory-manager counters.
    pub fn mm_stats(&self) -> mm::MmStats {
        self.mm.stats()
    }

    /// The kernel-side sensitive-device path map.
    pub fn device_map(&self) -> &DeviceMap {
        &self.device_map
    }

    /// Installs a fault plan governing channel sends, kernel pushes, and
    /// VM-map re-authentication.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Installs a (shared) tracer handle. Every mediation path — decisions,
    /// channel exchanges, page-fault interposition, IPC propagation hops —
    /// records spans and events into it at virtual-time granularity.
    pub fn install_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The kernel's tracer handle (disabled unless one was installed).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Installs a (shared) latency-sketch handle. The mediation hot path
    /// (head-sampled), channel exchanges, page faults, and ledger appends
    /// record per-mechanism latency observations into it.
    pub fn install_sketches(&mut self, sketch: Sketches) {
        self.sketch = sketch;
    }

    /// The kernel's sketch handle.
    pub fn sketches(&self) -> &Sketches {
        &self.sketch
    }

    /// Declares whether mediation depends on a live display channel. When
    /// set, every permission decision taken while the channel is
    /// [`ChannelState::Down`] is a fail-closed deny (and audited as such).
    pub fn set_channel_required(&mut self, required: bool) {
        self.channel_required = required;
        self.policy_epoch += 1;
        self.ledger.append(LedgerEntry::silent(
            self.clock.now(),
            Effect::Config {
                key: ConfigKey::ChannelRequired,
                value: u64::from(required),
            },
        ));
    }

    /// Whether mediation fails closed while the display channel is down.
    pub fn channel_required(&self) -> bool {
        self.channel_required
    }

    /// Health of the kernel↔display-manager channel.
    pub fn channel_state(&self) -> ChannelState {
        self.netlink.state()
    }

    /// Alerts waiting kernel-side for the display manager: the monitor's
    /// fresh queue plus the retained (lost-in-flight) push buffer.
    pub fn pending_push_count(&self) -> usize {
        self.monitor.pending_alert_count() + self.push_buffer.len()
    }

    /// In-kernel display-manager entry point (§III's integrated design):
    /// records an interaction notification without a channel.
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] for dead processes.
    pub fn record_interaction_direct(&mut self, pid: Pid, at: Timestamp) -> SysResult<bool> {
        let changed = self.monitor.record_interaction(&mut self.tasks, pid, at)?;
        if changed {
            self.ledger.append(LedgerEntry::event(
                at,
                AuditCategory::InteractionNotification,
                Some(pid),
                "interaction recorded in task_struct (integrated DM)",
            ));
        }
        Ok(changed)
    }

    /// In-kernel display-manager entry point: answers a permission query
    /// without a channel. A query about a dead process is a deny.
    pub fn decide_direct(&mut self, pid: Pid, at: Timestamp, op: ResourceOp) -> Decision {
        self.decide(pid, at, op)
    }

    /// Drains pending visual-alert requests without a channel (integrated
    /// display managers read the monitor's queue in-process).
    pub fn take_alerts_direct(&mut self) -> Vec<AlertRequest> {
        self.monitor.take_alerts()
    }

    /// Harness helper: clears a process's stored interaction timestamp
    /// (used by chain tests to isolate message-carried propagation from
    /// fork-inherited credit).
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] for unknown processes.
    pub fn reset_interaction(&mut self, pid: Pid) -> SysResult<()> {
        self.tasks.get_mut(pid)?.clear_interaction();
        Ok(())
    }

    /// Periodic housekeeping: processes the shared-memory wait list.
    /// Harnesses call this as virtual time advances.
    pub fn tick(&mut self) {
        let now = self.clock.now();
        let rearms = self.mm.tick(now);
        if rearms > 0 {
            self.metrics
                .add_counter("overhaul_mm_rearm_events_total", rearms as u64);
            self.tracer.event(
                "mm.rearm",
                now,
                &[("count", TraceValue::U64(rearms as u64))],
            );
        }
    }

    // ---------------------------------------------------------------
    // Device attachment & udev simulation
    // ---------------------------------------------------------------

    /// Attaches a new hardware device: registers it, creates its `/dev`
    /// node, and has the trusted helper record the path mapping.
    ///
    /// # Panics
    ///
    /// Panics if `path` collides with an existing node (harness bug).
    pub fn attach_device(&mut self, class: DeviceClass, label: &str, path: &str) -> DeviceId {
        let device = self.devices.register(class, label);
        ensure_parent_dirs(&mut self.vfs, path).expect("device path parents");
        self.vfs
            .mknod_device(path, device, 0o666)
            .expect("device node path free");
        self.device_map.insert(path, device);
        self.ledger.append(
            LedgerEntry::event(
                self.clock.now(),
                AuditCategory::Info,
                None,
                format!("udev: attached {class} '{label}' at {path}"),
            )
            .with_effect(Effect::DeviceAttached {
                path: path.to_string(),
                device: device.as_raw(),
            }),
        );
        device
    }

    /// Simulates udev renaming a device node, with the trusted helper
    /// propagating the change to the kernel map (the normal case).
    pub fn udev_rename_device(&mut self, old_path: &str, new_path: &str) -> SysResult<()> {
        self.vfs.rename(old_path, new_path)?;
        self.device_map.rename(old_path, new_path);
        self.ledger.append(
            LedgerEntry::event(
                self.clock.now(),
                AuditCategory::Info,
                None,
                format!("udev: renamed {old_path} -> {new_path} (helper synced)"),
            )
            .with_effect(Effect::DeviceRenamed {
                old: old_path.to_string(),
                new: new_path.to_string(),
            }),
        );
        Ok(())
    }

    /// The trusted helper catches up on a rename it previously missed,
    /// replaying the event into the kernel map (closing the lag window).
    pub fn device_map_catch_up(&mut self, old_path: &str, new_path: &str) {
        self.device_map.rename(old_path, new_path);
        self.ledger.append(
            LedgerEntry::event(
                self.clock.now(),
                AuditCategory::Info,
                None,
                format!("udev: helper caught up {old_path} -> {new_path}"),
            )
            .with_effect(Effect::DeviceRenamed {
                old: old_path.to_string(),
                new: new_path.to_string(),
            }),
        );
    }

    /// Simulates udev renaming a device node with the trusted helper
    /// propagating the change over the real netlink channel — so the update
    /// is subject to the installed fault plan. The kernel revokes (and
    /// quarantines) the old mapping *before* the helper's update is sent:
    /// if the update is lost, the device stays unreachable (fail closed)
    /// rather than reachable under a stale path.
    ///
    /// # Errors
    ///
    /// Propagates channel errors from [`Kernel::netlink_send`]; on
    /// [`NetlinkError::ChannelDown`] the device remains quarantined until a
    /// later update gets through.
    ///
    /// # Panics
    ///
    /// Panics if `old_path` does not exist or `new_path` is taken (harness
    /// bug, as in [`Kernel::attach_device`]).
    pub fn udev_rename_device_via_channel(
        &mut self,
        helper_conn: ConnId,
        old_path: &str,
        new_path: &str,
    ) -> Result<(), NetlinkError> {
        self.vfs
            .rename(old_path, new_path)
            .expect("udev rename: source node exists, target path free");
        if self.device_map.revoke(old_path).is_some() {
            self.ledger.append(
                LedgerEntry::event(
                    self.clock.now(),
                    AuditCategory::ChannelEvent,
                    None,
                    format!("devmap: {old_path} revoked; device quarantined pending helper update"),
                )
                .with_effect(Effect::DeviceRevoked {
                    path: old_path.to_string(),
                }),
            );
        }
        let update = NetlinkMessage::DeviceMapUpdate {
            old_path: old_path.to_string(),
            new_path: new_path.to_string(),
        };
        match self.netlink_send(helper_conn, update) {
            Ok(_) => Ok(()),
            Err(err) => {
                self.ledger.append(LedgerEntry::event(
                    self.clock.now(),
                    AuditCategory::ChannelEvent,
                    None,
                    "devmap: helper update lost; device remains quarantined (fail closed)",
                ));
                Err(err)
            }
        }
    }

    /// Simulates udev renaming a device node while the trusted helper is
    /// *lagging*: the filesystem changes but the kernel map does not. Used
    /// by tests to demonstrate the design's dependence on the helper.
    pub fn udev_rename_device_without_helper(
        &mut self,
        old_path: &str,
        new_path: &str,
    ) -> SysResult<()> {
        self.vfs.rename(old_path, new_path)?;
        self.ledger.append(LedgerEntry::event(
            self.clock.now(),
            AuditCategory::Info,
            None,
            format!("udev: renamed {old_path} -> {new_path} (helper lagging)"),
        ));
        Ok(())
    }

    // ---------------------------------------------------------------
    // Netlink: the secure kernel <-> display-manager channel
    // ---------------------------------------------------------------

    /// Establishes an authenticated netlink connection for `pid`
    /// (VM-map introspection per §IV-B).
    ///
    /// A connecting X server supersedes any previous display connection:
    /// the stale [`ConnId`] is invalidated and the channel comes back up
    /// (crash/restart recovery).
    ///
    /// # Errors
    ///
    /// See [`Netlink::connect`]; additionally
    /// [`NetlinkError::AuthTransient`] when the installed fault plan fails
    /// the VFS stat backing the introspection (callers may retry).
    pub fn netlink_connect(&mut self, pid: Pid) -> Result<ConnId, NetlinkError> {
        if self.fault.as_ref().is_some_and(|f| f.vfs_stat_fails()) {
            self.ledger.append(LedgerEntry::event(
                self.clock.now(),
                AuditCategory::ChannelEvent,
                Some(pid),
                "netlink: VM-map authentication failed transiently (vfs stat fault)",
            ));
            return Err(NetlinkError::AuthTransient);
        }
        let reconnects_before = self.netlink.display_reconnects();
        let state_before = self.netlink.state();
        let conn = self.netlink.connect(&self.tasks, &self.vfs, pid)?;
        self.ledger.append(LedgerEntry::event(
            self.clock.now(),
            AuditCategory::Info,
            Some(pid),
            "netlink: peer authenticated",
        ));
        if self.netlink.is_display(conn) {
            if self.netlink.display_reconnects() > reconnects_before {
                self.monitor.note_channel_reconnect();
                self.ledger.append(LedgerEntry::event(
                    self.clock.now(),
                    AuditCategory::ChannelEvent,
                    Some(pid),
                    "netlink: display channel re-authenticated",
                ));
            }
            if state_before != ChannelState::Up {
                self.ledger.append(
                    LedgerEntry::event(
                        self.clock.now(),
                        AuditCategory::ChannelEvent,
                        Some(pid),
                        channel_transition_detail(state_before, ChannelState::Up),
                    )
                    .with_effect(Effect::Channel { to: ChannelTag::Up }),
                );
            }
        }
        Ok(conn)
    }

    /// Round-trip cost of one netlink exchange: two user/kernel boundary
    /// crossings plus wakeups. Derived from Table I's clipboard row, where
    /// the paste-time permission query accounts for ~35 µs of overhead per
    /// operation on the paper's testbed.
    pub const NETLINK_RTT_MICROS: u64 = 30;

    /// Handles one userspace→kernel message on an established channel,
    /// subject to the installed fault plan: the message may be delayed,
    /// duplicated (and deduplicated by sequence number), reordered behind
    /// later traffic, or lost and retried with virtual-time backoff.
    ///
    /// # Errors
    ///
    /// [`NetlinkError::UnknownConnection`] for unauthenticated senders;
    /// [`NetlinkError::ChannelDown`] when the message is lost and every
    /// retry fails (the display channel then reads as down and mediation
    /// fails closed). The per-message semantics never fail (a query about a
    /// dead process is answered with a deny).
    pub fn netlink_send(
        &mut self,
        conn: ConnId,
        msg: NetlinkMessage,
    ) -> Result<NetlinkReply, NetlinkError> {
        let start = self.clock.now();
        let wall_start = std::time::Instant::now();
        let retries_before = self.monitor.stats().channel_retries;
        let span = self.tracer.span_enter("kernel.channel.exchange", start);
        self.tracer
            .add_field(span, "kind", TraceValue::Static(netlink_msg_kind(&msg)));
        let result = self.netlink_send_inner(conn, msg, span);
        let end = self.clock.now();
        self.tracer.add_field(
            span,
            "outcome",
            TraceValue::Static(match &result {
                Ok(_) => "ok",
                Err(NetlinkError::ChannelDown) => "channel-down",
                Err(_) => "error",
            }),
        );
        self.tracer.span_exit(span, end);
        if self.tracer.is_enabled() {
            self.metrics.observe_ms(
                "overhaul_channel_exchange_ms",
                end.saturating_since(start).as_millis(),
            );
        }
        // Channel exchanges are rare relative to decisions, so every one
        // lands in the sketch: virtual RTT (fault delays included) in the
        // deterministic plane, host cost in the wall plane, and the retry
        // count of a degraded exchange as its own mechanism.
        let span_raw = span.map_or(0, |s| s.as_raw());
        let seq = self.ledger.next_seq().saturating_sub(1);
        self.sketch.record(
            Mechanism::ChannelExchange,
            end.saturating_since(start).as_millis(),
            wall_start.elapsed().as_nanos() as u64,
            span_raw,
            seq,
        );
        let retries = self.monitor.stats().channel_retries - retries_before;
        if retries > 0 {
            self.sketch
                .record(Mechanism::ChannelRetry, retries, retries, span_raw, seq);
        }
        result
    }

    /// [`Kernel::netlink_send`] minus the exchange span bookkeeping (the
    /// wrapper owns enter/exit so the early returns below can never leak an
    /// open span).
    fn netlink_send_inner(
        &mut self,
        conn: ConnId,
        msg: NetlinkMessage,
        span: Option<overhaul_sim::SpanId>,
    ) -> Result<NetlinkReply, NetlinkError> {
        overhaul_sim::work::spin_micros(Self::NETLINK_RTT_MICROS);
        self.netlink.authenticate(conn)?;
        let seq = self.netlink.assign_seq(conn)?;
        self.tracer.add_field(span, "seq", TraceValue::U64(seq));

        let mut attempt: u32 = 0;
        let mut degraded = false;
        let mut duplicated = false;
        loop {
            let fault = self
                .fault
                .as_ref()
                .map_or(ChannelFault::Deliver, |f| f.next_channel_fault());
            match fault {
                ChannelFault::Deliver => break,
                ChannelFault::Delay(d) => {
                    self.clock.advance(d);
                    degraded = true;
                    self.tracer.event(
                        "channel.fault",
                        self.clock.now(),
                        &[
                            ("fault", TraceValue::Static("delay")),
                            ("delay_ms", TraceValue::U64(d.as_millis())),
                        ],
                    );
                    self.ledger.append(LedgerEntry::event(
                        self.clock.now(),
                        AuditCategory::ChannelEvent,
                        None,
                        "channel: message delayed in flight",
                    ));
                    break;
                }
                ChannelFault::Duplicate => {
                    duplicated = true;
                    degraded = true;
                    self.tracer.event(
                        "channel.fault",
                        self.clock.now(),
                        &[("fault", TraceValue::Static("duplicate"))],
                    );
                    break;
                }
                ChannelFault::Reorder
                    if matches!(msg, NetlinkMessage::InteractionNotification { .. }) =>
                {
                    // The notification is overtaken by later traffic: stash
                    // it and deliver it after the next message completes.
                    // The sender sees a normal Ack.
                    self.reorder_buffer.push((conn, seq, msg));
                    self.channel_transition(conn, ChannelState::Degraded);
                    self.tracer.event(
                        "channel.fault",
                        self.clock.now(),
                        &[("fault", TraceValue::Static("reorder-stash"))],
                    );
                    self.ledger.append(LedgerEntry::event(
                        self.clock.now(),
                        AuditCategory::ChannelEvent,
                        None,
                        "channel: notification reordered behind later traffic",
                    ));
                    return Ok(NetlinkReply::Ack);
                }
                ChannelFault::Drop | ChannelFault::Reorder => {
                    attempt += 1;
                    degraded = true;
                    self.monitor.note_channel_retry();
                    if attempt > self.config.channel_max_retries {
                        self.monitor.note_channel_drop();
                        self.channel_transition(conn, ChannelState::Down);
                        self.tracer.event(
                            "channel.fault",
                            self.clock.now(),
                            &[
                                ("fault", TraceValue::Static("drop-giveup")),
                                ("attempts", TraceValue::U64(u64::from(attempt))),
                            ],
                        );
                        self.ledger.append(LedgerEntry::event(
                            self.clock.now(),
                            AuditCategory::ChannelEvent,
                            None,
                            "channel: message lost after retries; giving up",
                        ));
                        return Err(NetlinkError::ChannelDown);
                    }
                    self.ledger.append(LedgerEntry::event(
                        self.clock.now(),
                        AuditCategory::ChannelEvent,
                        None,
                        "channel: message lost in flight; retrying",
                    ));
                    let backoff = SimDuration::from_millis(
                        self.config.channel_retry_backoff.as_millis() << (attempt - 1),
                    );
                    self.tracer.event(
                        "channel.fault",
                        self.clock.now(),
                        &[
                            ("fault", TraceValue::Static("drop-retry")),
                            ("attempt", TraceValue::U64(u64::from(attempt))),
                            ("backoff_ms", TraceValue::U64(backoff.as_millis())),
                        ],
                    );
                    self.clock.advance(backoff);
                }
            }
        }

        let reply = self.netlink_deliver(conn, seq, msg.clone())?;
        if duplicated {
            // The second copy is suppressed by the sequence-number dedup.
            let _ = self.netlink_deliver(conn, seq, msg)?;
        }
        let to = if degraded {
            ChannelState::Degraded
        } else {
            ChannelState::Up
        };
        self.channel_transition(conn, to);
        self.flush_reordered();
        Ok(reply)
    }

    /// Delivers one in-order message to the kernel: idempotent on the
    /// per-connection sequence number, then dispatches on the message kind.
    fn netlink_deliver(
        &mut self,
        conn: ConnId,
        seq: u64,
        msg: NetlinkMessage,
    ) -> Result<NetlinkReply, NetlinkError> {
        if !self.netlink.mark_delivered(conn, seq)? {
            self.monitor.note_dup_suppressed();
            self.tracer.event(
                "channel.dup-suppressed",
                self.clock.now(),
                &[("seq", TraceValue::U64(seq))],
            );
            self.ledger.append(LedgerEntry::event(
                self.clock.now(),
                AuditCategory::ChannelEvent,
                None,
                "channel: duplicate delivery suppressed",
            ));
            return Ok(NetlinkReply::Ack);
        }
        match msg {
            NetlinkMessage::InteractionNotification { pid, at } => {
                match self.monitor.record_interaction(&mut self.tasks, pid, at) {
                    Ok(changed) => {
                        if changed {
                            self.ledger.append(LedgerEntry::event(
                                at,
                                AuditCategory::InteractionNotification,
                                Some(pid),
                                "interaction recorded in task_struct",
                            ));
                        }
                    }
                    Err(_) => {
                        // Notification for a pid that died in flight: drop.
                        self.ledger.append(LedgerEntry::event(
                            at,
                            AuditCategory::Info,
                            Some(pid),
                            "interaction notification for dead process dropped",
                        ));
                    }
                }
                Ok(NetlinkReply::Ack)
            }
            NetlinkMessage::PermissionQuery { pid, op, at } => {
                let decision = self.decide(pid, at, op);
                Ok(NetlinkReply::QueryResponse(decision))
            }
            NetlinkMessage::DeviceMapUpdate { old_path, new_path } => {
                self.apply_device_map_update(&old_path, &new_path);
                Ok(NetlinkReply::Ack)
            }
        }
    }

    /// Applies a trusted-helper device-map update: revokes (and
    /// quarantines) the old path, then trusts the new path only if it
    /// resolves to a registered device node right now. Shared by the
    /// netlink channel and integrated (in-process) display managers.
    pub fn apply_device_map_update(&mut self, old_path: &str, new_path: &str) {
        if !old_path.is_empty() {
            // Fail closed: drop (and quarantine) the old mapping before
            // trusting anything about the new path.
            if self.device_map.revoke(old_path).is_some() {
                self.ledger.append(
                    LedgerEntry::event(
                        self.clock.now(),
                        AuditCategory::ChannelEvent,
                        None,
                        "devmap: stale path revoked by helper update",
                    )
                    .with_effect(Effect::DeviceRevoked {
                        path: old_path.to_string(),
                    }),
                );
            }
        }
        // Inserting clears any quarantine.
        let device = self
            .vfs
            .resolve(new_path)
            .and_then(|id| self.vfs.inode(id))
            .ok()
            .and_then(|inode| match inode.kind() {
                InodeKind::DeviceNode { device } => Some(*device),
                _ => None,
            });
        if let Some(device) = device {
            self.device_map.insert(new_path, device);
            // Historically unaudited: record the insert as a silent entry so
            // the reduction tracks the map without changing the rendered log.
            self.ledger.append(LedgerEntry::silent(
                self.clock.now(),
                Effect::DeviceInserted {
                    path: new_path.to_string(),
                    device: device.as_raw(),
                },
            ));
        }
    }

    /// Delivers notifications that were stashed by a reorder fault, now
    /// that later traffic has overtaken them. A stashed message whose
    /// connection died in the meantime is dropped (fail closed: losing a
    /// notification can only deny, never grant).
    fn flush_reordered(&mut self) {
        if self.reorder_buffer.is_empty() {
            return;
        }
        let stashed = std::mem::take(&mut self.reorder_buffer);
        for (conn, seq, msg) in stashed {
            if self.netlink.authenticate(conn).is_err() {
                self.monitor.note_channel_drop();
                self.ledger.append(LedgerEntry::event(
                    self.clock.now(),
                    AuditCategory::ChannelEvent,
                    None,
                    "channel: reordered message dropped (connection gone)",
                ));
                continue;
            }
            let _ = self.netlink_deliver(conn, seq, msg);
        }
    }

    /// Drains kernel→userspace pushes (visual-alert requests) for an
    /// authenticated connection. Pushes are buffered kernel-side until a
    /// drain actually delivers them: a push lost in flight (or orphaned by
    /// an X-server crash) stays buffered and is replayed — exactly once —
    /// on the next successful drain, including the drain restart-style
    /// recovery performs after re-authentication.
    ///
    /// # Errors
    ///
    /// [`NetlinkError::UnknownConnection`] for unauthenticated callers.
    pub fn netlink_take_pushes(&mut self, conn: ConnId) -> Result<Vec<KernelPush>, NetlinkError> {
        self.netlink.authenticate(conn)?;
        self.push_buffer.extend(self.monitor.take_alerts());

        let mut delivered = Vec::new();
        let mut degraded = false;
        // Reorder faults re-queue items, so bound the number of draws.
        let mut budget = self.push_buffer.len().saturating_mul(2) + 4;
        while let Some(alert) = self.push_buffer.pop_front() {
            if budget == 0 {
                self.push_buffer.push_front(alert);
                break;
            }
            budget -= 1;
            let fault = self
                .fault
                .as_ref()
                .map_or(ChannelFault::Deliver, |f| f.next_channel_fault());
            match fault {
                ChannelFault::Deliver => delivered.push(KernelPush::DisplayAlert(alert)),
                ChannelFault::Delay(d) => {
                    self.clock.advance(d);
                    degraded = true;
                    delivered.push(KernelPush::DisplayAlert(alert));
                }
                ChannelFault::Duplicate => {
                    // The duplicate copy is suppressed receiver-side;
                    // deliver once and count the suppression.
                    self.monitor.note_dup_suppressed();
                    degraded = true;
                    delivered.push(KernelPush::DisplayAlert(alert));
                }
                ChannelFault::Drop => {
                    // Lost in flight: keep it buffered for the next drain
                    // (or for post-restart replay) — never lost for good.
                    self.monitor.note_channel_retry();
                    degraded = true;
                    self.ledger.append(LedgerEntry::event(
                        self.clock.now(),
                        AuditCategory::ChannelEvent,
                        None,
                        "channel: alert push lost in flight; retained for replay",
                    ));
                    self.push_buffer.push_front(alert);
                    break;
                }
                ChannelFault::Reorder => {
                    degraded = true;
                    self.push_buffer.push_back(alert);
                }
            }
        }
        // Only a real exchange says anything about channel health: an
        // empty fault-free drain must not "heal" a down channel.
        if degraded {
            self.channel_transition(conn, ChannelState::Degraded);
        } else if !delivered.is_empty() {
            self.channel_transition(conn, ChannelState::Up);
        }
        Ok(delivered)
    }

    /// Audits a display-channel state transition (no-op unless `conn` is
    /// the display connection and the state actually changes).
    fn channel_transition(&mut self, conn: ConnId, to: ChannelState) {
        if let Some((from, to)) = self.netlink.transition_display(conn, to) {
            self.ledger.append(
                LedgerEntry::event(
                    self.clock.now(),
                    AuditCategory::ChannelEvent,
                    None,
                    channel_transition_detail(from, to),
                )
                .with_effect(Effect::Channel {
                    to: channel_tag(to),
                }),
            );
        }
    }

    /// The kernel's global policy epoch: changes whenever *any* non-task
    /// state a verdict can depend on changes — monitor/config updates,
    /// display-channel state transitions, device-map mutations. Combined
    /// with the per-task interaction epoch, an unchanged pair proves a
    /// cached verdict is still derived from current state.
    pub fn policy_epoch(&self) -> u64 {
        // Each term is monotone, so the sum is monotone and changes
        // whenever any contributor changes.
        self.policy_epoch + self.netlink.state_generation() + self.device_map.generation()
    }

    /// Builds the immutable [`PolicySnapshot`] a verdict for `pid` depends
    /// on. This is the only part of a decision that reads kernel state;
    /// [`PolicyEngine::decide`] is a pure function of the snapshot.
    pub fn policy_snapshot(&self, pid: Pid, quarantined: bool) -> PolicySnapshot {
        PolicySnapshot {
            delta: self.config.monitor.delta,
            grant_all: self.config.monitor.grant_all,
            channel_required: self.channel_required,
            channel_state: self.netlink.state(),
            quarantined,
            task: self.tasks.get(pid).ok().map(|t| TaskPolicyView {
                frozen: t.permissions_frozen(),
                interaction: t.raw_interaction(),
                chain: t.credit_chain(),
            }),
        }
    }

    /// Runs a permission decision for `pid` performing `op` at `at`,
    /// recording audit events. Used by the device-open path internally and
    /// by netlink queries from the display manager.
    ///
    /// When the kernel is wired to an external display manager
    /// (`channel_required`) and that channel is down, the decision is a
    /// fail-closed deny: no authentic interaction evidence can be reaching
    /// the monitor, so nothing may be granted.
    pub(crate) fn decide(&mut self, pid: Pid, at: Timestamp, op: ResourceOp) -> Decision {
        self.decide_traced(pid, at, op, false).decision
    }

    /// The traced decision path behind every mediation site: consults the
    /// epoch-keyed verdict cache, falls back to a snapshot + pure-engine
    /// evaluation on a miss, then applies the side effects (stats, audit)
    /// identically either way and records the outcome for
    /// [`Kernel::explain_last`].
    pub(crate) fn decide_traced(
        &mut self,
        pid: Pid,
        at: Timestamp,
        op: ResourceOp,
        quarantined: bool,
    ) -> DecisionOutcome {
        let global_epoch = self.policy_epoch();
        // The serial advances on every decision: it drives both the
        // head-sampled `kernel.decide` span and the head-sampled latency
        // sketch. It is plain kernel state and a pure function of the
        // decision sequence — cache temperature and tracer installation
        // never feed it — so a restored run (cold verdict cache) samples
        // the exact same decisions as the uninterrupted one.
        self.decide_serial = self.decide_serial.wrapping_add(1);
        let sampled = self.decide_serial % Self::DECIDE_HIT_SAMPLE == 1;
        // Wall-clock timing only exists on sampled decisions, so the
        // unsampled hot path never touches the host clock.
        let t0 = sampled.then(std::time::Instant::now);
        // The cache is only consulted for pids the process table knows:
        // the pid resolves to a generation-checked arena slot, and reading
        // the live task's epoch through it is what makes a hit sound. It
        // also means unknown-pid outcomes can never be served stale after
        // that pid is later spawned (pids are never reused, and a reused
        // *slot* fails the generation check).
        let slot_entry = self.tasks.slot_entry(pid);
        let slot = slot_entry.map(|(id, _)| id);
        let task_epoch = slot_entry.map(|(_, t)| t.interaction_epoch());
        let cached = match (slot, task_epoch) {
            (Some(id), Some(epoch)) => {
                self.verdict_cache
                    .lookup(id, op, quarantined, at, epoch, global_epoch)
            }
            _ => None,
        };
        let cache_hit = cached.is_some();
        let outcome = match cached {
            Some(outcome) => outcome,
            None => {
                let snapshot = self.policy_snapshot(pid, quarantined);
                let outcome = PolicyEngine::decide(&snapshot, &OpRequest { pid, op, at });
                if let (Some(id), Some(epoch)) = (slot, task_epoch) {
                    if !matches!(outcome.trace, DecisionTrace::UnknownProcess) {
                        self.verdict_cache.store(
                            id,
                            op,
                            quarantined,
                            epoch,
                            global_epoch,
                            snapshot.delta,
                            &outcome,
                        );
                    }
                }
                outcome
            }
        };
        let seq = self.apply_decision_effects(pid, at, op, &outcome, sampled);
        let mut span_id = 0u64;
        if self.tracer.is_enabled() {
            // Decisions are head-sampled 1-in-N so tracing stays within its
            // overhead budget. The condition never reads the cache-hit bit,
            // so the spans a run records are a pure function of the
            // decision sequence: a restored run (whose verdict cache is
            // rebuilt cold) traces byte-identically to the uninterrupted
            // one. Every decision still lands in the monitor and cache
            // counters exactly; only the per-decision span is thinned.
            if sampled {
                span_id = self
                    .record_decide_span(pid, op, at, &outcome)
                    .map_or(0, |s| s.as_raw());
            }
            if !cache_hit {
                if let DecisionTrace::WithinThreshold { elapsed, .. }
                | DecisionTrace::Stale { elapsed, .. } = outcome.trace
                {
                    self.metrics
                        .observe_ms("overhaul_interaction_age_ms", elapsed.as_millis());
                }
            }
        }
        if sampled {
            // The sampled decision's full cost (cache or engine, effects,
            // ledger append) lands in the sketch with its replay
            // coordinate: the span just recorded (0 when untraced) and the
            // ledger entry the decision sealed.
            let wall = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
            let mech = if cache_hit {
                Mechanism::DecideCached
            } else {
                Mechanism::DecideUncached
            };
            self.sketch.record(mech, 0, wall, span_id, seq);
        }
        if outcome.trace.chain().is_some_and(|c| c.saturated()) {
            self.metrics
                .inc_counter("overhaul_credit_chain_saturated_total");
        }
        if let Some(id) = slot {
            self.verdict_cache.record_last(id, op, &outcome);
        }
        outcome
    }

    /// Every how-many-th decision gets a span (the first one always does,
    /// since the serial is pre-incremented before the `% N == 1` check).
    const DECIDE_HIT_SAMPLE: u64 = 64;

    /// Records the `kernel.decide` leaf span — out of line so the sampled
    /// fast path in [`Kernel::decide_traced`] stays small. Deliberately
    /// carries no cache-hit/miss field: the span stream must not depend on
    /// verdict-cache temperature, or a snapshot restore (cold cache) would
    /// diverge from the uninterrupted run it replays.
    #[inline(never)]
    fn record_decide_span(
        &self,
        pid: Pid,
        op: ResourceOp,
        at: Timestamp,
        outcome: &DecisionOutcome,
    ) -> Option<SpanId> {
        // One-lock leaf span: decisions are instantaneous in virtual
        // time, so enter == exit and the span carries the evidence. The
        // returned id becomes the sketch exemplar's replay coordinate.
        self.tracer.record_span(
            "kernel.decide",
            at,
            at,
            &[
                ("pid", TraceValue::U64(u64::from(pid.as_raw()))),
                ("op", TraceValue::Static(op.as_str())),
                (
                    "verdict",
                    TraceValue::Static(if outcome.decision.verdict.is_grant() {
                        "grant"
                    } else {
                        "deny"
                    }),
                ),
                ("rule", TraceValue::Static(outcome.trace.kind_str())),
            ],
        )
    }

    /// Applies a decision's side effects — monitor counters and the audit
    /// record — identically for cache hits and misses. The audit detail
    /// renders from the [`DecisionTrace`], so every surface (audit log,
    /// procfs STATS, overlay alerts) derives from the same trace. Returns
    /// the ledger sequence number the decision sealed; on sampled
    /// decisions the append is also wall-timed into the
    /// [`Mechanism::LedgerAppend`] sketch.
    fn apply_decision_effects(
        &mut self,
        pid: Pid,
        at: Timestamp,
        op: ResourceOp,
        outcome: &DecisionOutcome,
        sampled: bool,
    ) -> u64 {
        let verdict = Effect::Verdict {
            granted: outcome.decision.verdict.is_grant(),
            op: op_tag(op),
            rule: rule_kind(&outcome.trace),
        };
        let entry = match outcome.trace {
            DecisionTrace::ChannelDown | DecisionTrace::Quarantined => {
                self.monitor.note_fail_closed();
                LedgerEntry::event(
                    at,
                    AuditCategory::PermissionDenied,
                    Some(pid),
                    outcome.trace.audit_detail(op),
                )
                .with_effect(verdict)
            }
            DecisionTrace::UnknownProcess => {
                // A query about a dead process is answered (deny) but not
                // counted: the monitor never saw a checkable task.
                LedgerEntry::event(
                    at,
                    AuditCategory::PermissionDenied,
                    Some(pid),
                    outcome.trace.audit_detail(op),
                )
                .with_effect(verdict)
            }
            _ => {
                let granted = outcome.decision.verdict.is_grant();
                self.monitor.note_verdict(granted);
                let category = if granted {
                    AuditCategory::PermissionGranted
                } else {
                    AuditCategory::PermissionDenied
                };
                // Static detail strings and a `Copy`-sized verdict effect
                // keep the mediation hot path allocation-free apart from
                // chain sealing (this is the code the Table I device
                // benchmark times).
                LedgerEntry::event(at, category, Some(pid), outcome.trace.audit_detail(op))
                    .with_effect(verdict)
            }
        };
        // Ledger-append cost is only timed on the decisions the sketch
        // samples anyway; unsampled decisions append untimed.
        let seq = self.ledger.next_seq();
        let t0 = sampled.then(std::time::Instant::now);
        self.ledger.append(entry);
        if sampled {
            let wall = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
            self.sketch.record(Mechanism::LedgerAppend, 0, wall, 0, seq);
        }
        seq
    }

    /// Decides a batch of requests through the traced path (cache + audit +
    /// stats per request). High-throughput mediation entry point.
    pub fn decide_batch(&mut self, requests: &[OpRequest]) -> Vec<DecisionOutcome> {
        requests
            .iter()
            .map(|r| self.decide_traced(r.pid, r.at, r.op, false))
            .collect()
    }

    /// Batched event ingestion: feeds a mixed stream of interaction
    /// notifications and permission requests through the kernel in one
    /// call, so workloads and the fleet harness drive mediation without
    /// per-event dispatch overhead. Contiguous runs of requests are
    /// decided via [`Kernel::decide_batch`]; interactions flow through the
    /// same path as [`Kernel::record_interaction_direct`] (notifications
    /// for dead pids are dropped, exactly like the per-event call).
    ///
    /// The returned vector is aligned with the input: `Some(outcome)` for
    /// each request, `None` for each interaction. Every observable effect
    /// (monitor counters, ledger entries, cache state, trace spans) is
    /// byte-identical to issuing the same events one call at a time in the
    /// same order.
    pub fn ingest_batch(&mut self, events: &[IngestEvent]) -> Vec<Option<DecisionOutcome>> {
        let mut out = Vec::with_capacity(events.len());
        let mut pending: Vec<OpRequest> = Vec::new();
        for event in events {
            match event {
                IngestEvent::Request(req) => pending.push(*req),
                IngestEvent::Interaction { pid, at } => {
                    self.flush_pending_requests(&mut pending, &mut out);
                    let _ = self.record_interaction_direct(*pid, *at);
                    out.push(None);
                }
            }
        }
        self.flush_pending_requests(&mut pending, &mut out);
        out
    }

    /// Decides a buffered run of requests and appends the outcomes.
    fn flush_pending_requests(
        &mut self,
        pending: &mut Vec<OpRequest>,
        out: &mut Vec<Option<DecisionOutcome>>,
    ) {
        if pending.is_empty() {
            return;
        }
        out.extend(self.decide_batch(pending).into_iter().map(Some));
        pending.clear();
    }

    /// The most recent traced outcome for `(pid, op)`: why the last
    /// mediation of that pair granted or denied. Per-task explain state
    /// lives in the slot-indexed cache and is dropped when the process
    /// exits, so only live-or-zombie tasks are explainable.
    pub fn explain_last(&self, pid: Pid, op: ResourceOp) -> Option<&DecisionOutcome> {
        let id = self.tasks.slot_of(pid)?;
        self.verdict_cache.last(id, op)
    }

    /// Verdict-cache hit/miss/size counters.
    pub fn verdict_cache_stats(&self) -> CacheStats {
        self.verdict_cache.stats()
    }

    /// Queues a device-access visual alert if configured. The alert carries
    /// the trace's deny cause so the overlay renders the same reason the
    /// audit log recorded.
    pub(crate) fn queue_device_alert(
        &mut self,
        pid: Pid,
        op: ResourceOp,
        outcome: &DecisionOutcome,
        at: Timestamp,
    ) {
        if !self.config.device_alerts {
            return;
        }
        let process_name = self
            .tasks
            .get(pid)
            .map(|t| t.name().to_string())
            .unwrap_or_else(|_| "<dead>".to_string());
        self.monitor.request_alert(AlertRequest {
            pid,
            process_name,
            op,
            granted: outcome.decision.verdict.is_grant(),
            at,
            reason: outcome.trace.deny_cause().map(str::to_string),
        });
    }

    // ---------------------------------------------------------------
    // procfs
    // ---------------------------------------------------------------

    /// Reads an Overhaul procfs node.
    ///
    /// # Errors
    ///
    /// [`Errno::Enoent`] for unknown nodes.
    pub fn sys_procfs_read(&self, path: &str) -> SysResult<String> {
        match path {
            procfs::PTRACE_HARDENING => Ok(if self.ptrace.hardening_enabled {
                "1"
            } else {
                "0"
            }
            .to_string()),
            procfs::DELTA_MS => Ok(self.config.monitor.delta.as_millis().to_string()),
            procfs::STATS => {
                let s = self.monitor.stats();
                Ok(format!(
                    "notifications={} grants={} denies={} retries={} drops={} \
                     reconnects={} dup_suppressed={} fail_closed={} alerts_queued={}",
                    s.notifications,
                    s.grants,
                    s.denies,
                    s.channel_retries,
                    s.channel_drops,
                    s.channel_reconnects,
                    s.channel_dup_suppressed,
                    s.fail_closed_denies,
                    s.alerts_queued
                ))
            }
            procfs::METRICS => Ok(self.render_metrics()),
            _ => Err(Errno::Enoent),
        }
    }

    /// Renders the unified Prometheus-style metrics page behind
    /// [`procfs::METRICS`].
    ///
    /// Legacy counters ([`monitor::MonitorStats`], [`mm::MmStats`],
    /// [`CacheStats`], fault-plan tallies) are read from their
    /// authoritative structs *at render time* and mirrored into the
    /// registry, so the page agrees with the legacy structs by
    /// construction; the tracing-native metrics (propagation hops,
    /// credit-chain saturation, histograms) are then absorbed from the
    /// kernel's persistent registry.
    pub fn render_metrics(&self) -> String {
        self.metrics_registry().render()
    }

    /// Builds the unified metrics registry behind [`Kernel::render_metrics`]
    /// as a value, so callers that aggregate across machines (the fleet
    /// harness) can [`MetricsRegistry::merge`] registries instead of
    /// re-parsing rendered text pages.
    pub fn metrics_registry(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let s = self.monitor.stats();
        reg.set_counter("overhaul_monitor_notifications_total", s.notifications);
        reg.set_counter("overhaul_monitor_grants_total", s.grants);
        reg.set_counter("overhaul_monitor_denies_total", s.denies);
        reg.set_counter(
            "overhaul_monitor_fail_closed_denies_total",
            s.fail_closed_denies,
        );
        reg.set_counter("overhaul_monitor_alerts_queued_total", s.alerts_queued);
        reg.set_counter("overhaul_channel_retries_total", s.channel_retries);
        reg.set_counter("overhaul_channel_drops_total", s.channel_drops);
        reg.set_counter("overhaul_channel_reconnects_total", s.channel_reconnects);
        reg.set_counter(
            "overhaul_channel_dup_suppressed_total",
            s.channel_dup_suppressed,
        );
        let m = self.mm.stats();
        reg.set_counter("overhaul_mm_faults_total", m.faults);
        reg.set_counter("overhaul_mm_direct_total", m.direct);
        reg.set_counter("overhaul_mm_rearms_total", m.rearms);
        let c = self.verdict_cache.stats();
        reg.set_counter("overhaul_verdict_cache_hits_total", c.hits);
        reg.set_counter("overhaul_verdict_cache_misses_total", c.misses);
        reg.set_gauge("overhaul_verdict_cache_entries", c.entries as i64);
        if let Some(plan) = &self.fault {
            let f = plan.stats();
            reg.set_counter("overhaul_fault_channel_draws_total", f.drawn);
            reg.set_counter("overhaul_fault_drops_total", f.drops);
            reg.set_counter("overhaul_fault_delays_total", f.delays);
            reg.set_counter("overhaul_fault_duplicates_total", f.duplicates);
            reg.set_counter("overhaul_fault_reorders_total", f.reorders);
            reg.set_counter(
                "overhaul_fault_vfs_stat_failures_total",
                f.vfs_stat_failures,
            );
            reg.set_counter("overhaul_fault_crashes_fired_total", f.crashes_fired);
        }
        reg.set_gauge(
            "overhaul_channel_state",
            match self.netlink.state() {
                ChannelState::Up => 2,
                ChannelState::Degraded => 1,
                ChannelState::Down => 0,
            },
        );
        reg.set_gauge("overhaul_trace_spans", self.tracer.span_count() as i64);
        reg.set_gauge(
            "overhaul_trace_dropped_spans",
            self.tracer.dropped_spans() as i64,
        );
        // Same value as the legacy gauge above, exported with Prometheus
        // counter semantics (monotone within a tracer lifetime) under the
        // conventional `_total` name.
        reg.set_counter(
            "overhaul_trace_spans_dropped_total",
            self.tracer.dropped_spans(),
        );
        let snap = self.snapshot_stats;
        reg.set_counter("overhaul_snapshot_bytes_total", snap.snapshot_bytes);
        reg.set_counter(
            "overhaul_restore_rebuild_verdict_cache_total",
            snap.restore_rebuild_verdict_cache,
        );
        reg.set_counter(
            "overhaul_restore_rebuild_dup_suppress_total",
            snap.restore_rebuild_dup_suppress,
        );
        reg.set_gauge(
            "overhaul_replay_divergence_total",
            snap.replay_divergence as i64,
        );
        reg.absorb(&self.metrics);
        reg
    }

    /// Writes an Overhaul procfs node. Superuser only.
    ///
    /// # Errors
    ///
    /// [`Errno::Eacces`] for non-root writers, [`Errno::Einval`] for
    /// malformed values, [`Errno::Enoent`] for unknown nodes.
    pub fn sys_procfs_write(&mut self, pid: Pid, path: &str, value: &str) -> SysResult<()> {
        let uid = self.tasks.get(pid)?.uid();
        if !uid.is_root() {
            return Err(Errno::Eacces);
        }
        match path {
            procfs::PTRACE_HARDENING => {
                let enabled = match value.trim() {
                    "0" => false,
                    "1" => true,
                    _ => return Err(Errno::Einval),
                };
                self.ptrace.hardening_enabled = enabled;
                self.config.ptrace_hardening = enabled;
                self.ledger.append(
                    LedgerEntry::event(
                        self.clock.now(),
                        AuditCategory::PtraceHardening,
                        Some(pid),
                        format!("hardening toggled to {enabled}"),
                    )
                    .with_effect(Effect::Config {
                        key: ConfigKey::PtraceHardening,
                        value: u64::from(enabled),
                    }),
                );
                Ok(())
            }
            procfs::DELTA_MS => {
                let ms: u64 = value.trim().parse().map_err(|_| Errno::Einval)?;
                let mut cfg = self.config.monitor;
                cfg.delta = SimDuration::from_millis(ms);
                self.set_monitor_config(cfg);
                Ok(())
            }
            _ => Err(Errno::Enoent),
        }
    }
}

/// Static span-field label for a channel message kind.
fn netlink_msg_kind(msg: &NetlinkMessage) -> &'static str {
    match msg {
        NetlinkMessage::InteractionNotification { .. } => "notify",
        NetlinkMessage::PermissionQuery { .. } => "query",
        NetlinkMessage::DeviceMapUpdate { .. } => "devmap",
    }
}

/// The ledger's mirror of a [`ChannelState`].
fn channel_tag(state: ChannelState) -> ChannelTag {
    match state {
        ChannelState::Up => ChannelTag::Up,
        ChannelState::Degraded => ChannelTag::Degraded,
        ChannelState::Down => ChannelTag::Down,
    }
}

/// The ledger's structured mirror of the rule a decision trace fired.
fn rule_kind(trace: &DecisionTrace) -> RuleKind {
    match trace {
        DecisionTrace::WithinThreshold { .. } => RuleKind::WithinThreshold,
        DecisionTrace::GrantAll { .. } => RuleKind::GrantAll,
        DecisionTrace::NoInteraction => RuleKind::NoInteraction,
        DecisionTrace::Stale { .. } => RuleKind::Stale,
        DecisionTrace::PermissionsFrozen => RuleKind::PermissionsFrozen,
        DecisionTrace::ChannelDown => RuleKind::ChannelDown,
        DecisionTrace::Quarantined => RuleKind::Quarantined,
        DecisionTrace::UnknownProcess => RuleKind::UnknownProcess,
    }
}

/// Stable ledger tag for a resource op (the `Effect::Verdict` `op` field).
fn op_tag(op: ResourceOp) -> u8 {
    match op {
        ResourceOp::Mic => 0,
        ResourceOp::Cam => 1,
        ResourceOp::Sensor => 2,
        ResourceOp::Screen => 3,
        ResourceOp::Copy => 4,
        ResourceOp::Paste => 5,
    }
}

/// Allocation-free audit detail for a display-channel state transition.
fn channel_transition_detail(from: ChannelState, to: ChannelState) -> &'static str {
    match (from, to) {
        (ChannelState::Up, ChannelState::Degraded) => "channel state: up -> degraded",
        (ChannelState::Up, ChannelState::Down) => "channel state: up -> down",
        (ChannelState::Degraded, ChannelState::Up) => "channel state: degraded -> up",
        (ChannelState::Degraded, ChannelState::Down) => "channel state: degraded -> down",
        (ChannelState::Down, ChannelState::Up) => "channel state: down -> up",
        (ChannelState::Down, ChannelState::Degraded) => "channel state: down -> degraded",
        _ => "channel state: unchanged",
    }
}

fn ensure_parent_dirs(vfs: &mut Vfs, path: &str) -> SysResult<()> {
    let components: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
    let mut prefix = String::new();
    for component in components.iter().take(components.len().saturating_sub(1)) {
        prefix.push('/');
        prefix.push_str(component);
        if vfs.resolve(&prefix).is_err() {
            vfs.mkdir(&prefix, Uid::ROOT, 0o755)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::Verdict;

    fn kernel() -> Kernel {
        Kernel::new(Clock::new(), KernelConfig::default())
    }

    #[test]
    fn boot_installs_trusted_binaries_root_owned() {
        let k = kernel();
        let stat = k.vfs().stat(XORG_PATH).unwrap();
        assert!(stat.owner.is_root());
        assert!(k.vfs().stat(UDEV_HELPER_PATH).is_ok());
    }

    #[test]
    fn attach_device_creates_node_and_map_entry() {
        let mut k = kernel();
        let id = k.attach_device(DeviceClass::Camera, "webcam", "/dev/video0");
        assert!(k.vfs().stat("/dev/video0").unwrap().is_device);
        assert_eq!(k.device_map().lookup("/dev/video0"), Some(id));
    }

    #[test]
    fn netlink_round_trip_interaction_and_query() {
        let mut k = kernel();
        let x = k.sys_spawn(Pid::INIT, XORG_PATH).unwrap();
        let app = k.sys_spawn(Pid::INIT, "/usr/bin/app").unwrap();
        let conn = k.netlink_connect(x).unwrap();
        let t = Timestamp::from_millis(100);
        let reply = k
            .netlink_send(
                conn,
                NetlinkMessage::InteractionNotification { pid: app, at: t },
            )
            .unwrap();
        assert_eq!(reply, NetlinkReply::Ack);
        let reply = k
            .netlink_send(
                conn,
                NetlinkMessage::PermissionQuery {
                    pid: app,
                    op: ResourceOp::Paste,
                    at: Timestamp::from_millis(500),
                },
            )
            .unwrap();
        match reply {
            NetlinkReply::QueryResponse(d) => assert!(d.verdict.is_grant()),
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn netlink_rejects_untrusted_connector() {
        let mut k = kernel();
        let mallory = k.sys_spawn(Pid::INIT, "/home/mallory/spy").unwrap();
        assert_eq!(k.netlink_connect(mallory), Err(NetlinkError::UntrustedPeer));
    }

    #[test]
    fn query_for_dead_process_is_denied_not_error() {
        let mut k = kernel();
        let x = k.sys_spawn(Pid::INIT, XORG_PATH).unwrap();
        let conn = k.netlink_connect(x).unwrap();
        let reply = k
            .netlink_send(
                conn,
                NetlinkMessage::PermissionQuery {
                    pid: Pid::from_raw(999),
                    op: ResourceOp::Copy,
                    at: Timestamp::ZERO,
                },
            )
            .unwrap();
        match reply {
            NetlinkReply::QueryResponse(d) => assert!(!d.verdict.is_grant()),
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn procfs_ptrace_toggle_requires_root() {
        let mut k = kernel();
        let user_proc = k
            .sys_spawn_as(Pid::INIT, "/usr/bin/app", Uid::from_raw(1000))
            .unwrap();
        assert_eq!(
            k.sys_procfs_write(user_proc, procfs::PTRACE_HARDENING, "0"),
            Err(Errno::Eacces)
        );
        assert_eq!(
            k.sys_procfs_write(Pid::INIT, procfs::PTRACE_HARDENING, "0"),
            Ok(())
        );
        assert_eq!(k.sys_procfs_read(procfs::PTRACE_HARDENING).unwrap(), "0");
    }

    #[test]
    fn procfs_delta_write_reconfigures_monitor() {
        let mut k = kernel();
        k.sys_procfs_write(Pid::INIT, procfs::DELTA_MS, "750")
            .unwrap();
        assert_eq!(k.config().monitor.delta, SimDuration::from_millis(750));
        assert_eq!(k.sys_procfs_read(procfs::DELTA_MS).unwrap(), "750");
    }

    #[test]
    fn unknown_procfs_node_is_enoent() {
        let k = kernel();
        assert_eq!(
            k.sys_procfs_read("/proc/overhaul/bogus").err(),
            Some(Errno::Enoent)
        );
    }

    #[test]
    fn udev_rename_with_helper_keeps_mediation_map_in_sync() {
        let mut k = kernel();
        let id = k.attach_device(DeviceClass::Microphone, "mic", "/dev/snd/mic0");
        k.udev_rename_device("/dev/snd/mic0", "/dev/snd/mic1")
            .unwrap();
        assert_eq!(k.device_map().lookup("/dev/snd/mic1"), Some(id));
        assert_eq!(k.device_map().lookup("/dev/snd/mic0"), None);
    }

    use overhaul_sim::FaultSpec;

    #[test]
    fn dropped_messages_exhaust_retries_and_fail_closed() {
        let mut k = kernel();
        k.install_fault_plan(FaultPlan::new(FaultSpec::quiet(1).with_drop_p(1.0)));
        k.set_channel_required(true);
        let x = k.sys_spawn(Pid::INIT, XORG_PATH).unwrap();
        let app = k.sys_spawn(Pid::INIT, "/usr/bin/app").unwrap();
        let conn = k.netlink_connect(x).unwrap();
        assert_eq!(k.channel_state(), ChannelState::Up);

        let err = k
            .netlink_send(
                conn,
                NetlinkMessage::InteractionNotification {
                    pid: app,
                    at: Timestamp::from_millis(1),
                },
            )
            .unwrap_err();
        assert_eq!(err, NetlinkError::ChannelDown);
        assert_eq!(k.channel_state(), ChannelState::Down);

        // Every decision while down is a fail-closed deny, audited.
        let d = k.decide_direct(app, k.now(), ResourceOp::Mic);
        assert_eq!(d.reason, monitor::DecisionReason::ChannelDown);
        let s = k.monitor_stats();
        assert!(s.channel_retries >= 3);
        assert_eq!(s.channel_drops, 1);
        assert_eq!(s.fail_closed_denies, 1);
        assert_eq!(s.denies, 1);
        assert_eq!(k.audit().matching("(channel down)").count(), 1);
    }

    #[test]
    fn duplicate_delivery_is_suppressed_by_seq_dedup() {
        let mut k = kernel();
        k.install_fault_plan(FaultPlan::new(FaultSpec::quiet(2).with_duplicate_p(1.0)));
        let x = k.sys_spawn(Pid::INIT, XORG_PATH).unwrap();
        let app = k.sys_spawn(Pid::INIT, "/usr/bin/app").unwrap();
        let conn = k.netlink_connect(x).unwrap();
        k.netlink_send(
            conn,
            NetlinkMessage::InteractionNotification {
                pid: app,
                at: Timestamp::from_millis(100),
            },
        )
        .unwrap();
        let s = k.monitor_stats();
        assert_eq!(s.notifications, 1, "second copy suppressed");
        assert_eq!(s.channel_dup_suppressed, 1);
        assert_eq!(k.channel_state(), ChannelState::Degraded);
    }

    #[test]
    fn reordered_notification_lands_after_later_traffic() {
        let mut k = kernel();
        let plan = FaultPlan::new(FaultSpec::quiet(3).with_reorder_p(1.0));
        k.install_fault_plan(plan.clone());
        let x = k.sys_spawn(Pid::INIT, XORG_PATH).unwrap();
        let app = k.sys_spawn(Pid::INIT, "/usr/bin/app").unwrap();
        let conn = k.netlink_connect(x).unwrap();

        // The notification is stashed; the sender still sees an Ack.
        let reply = k
            .netlink_send(
                conn,
                NetlinkMessage::InteractionNotification {
                    pid: app,
                    at: Timestamp::from_millis(100),
                },
            )
            .unwrap();
        assert_eq!(reply, NetlinkReply::Ack);
        assert_eq!(k.monitor_stats().notifications, 0, "not delivered yet");

        // The next message overtakes it: the query is answered *before* the
        // notification arrives, so it must deny.
        plan.set_armed(false);
        let reply = k
            .netlink_send(
                conn,
                NetlinkMessage::PermissionQuery {
                    pid: app,
                    op: ResourceOp::Paste,
                    at: Timestamp::from_millis(200),
                },
            )
            .unwrap();
        match reply {
            NetlinkReply::QueryResponse(d) => assert!(!d.verdict.is_grant()),
            other => panic!("unexpected reply {other:?}"),
        }
        // ... and afterwards the stashed notification was flushed.
        assert_eq!(k.monitor_stats().notifications, 1);
    }

    #[test]
    fn delayed_message_advances_virtual_time_and_degrades() {
        let mut k = kernel();
        k.install_fault_plan(FaultPlan::new(
            FaultSpec::quiet(4)
                .with_delay_p(1.0)
                .with_delay_window(SimDuration::from_millis(20), SimDuration::from_millis(21)),
        ));
        let x = k.sys_spawn(Pid::INIT, XORG_PATH).unwrap();
        let conn = k.netlink_connect(x).unwrap();
        let before = k.now();
        k.netlink_send(
            conn,
            NetlinkMessage::InteractionNotification { pid: x, at: before },
        )
        .unwrap();
        assert_eq!(
            k.now().saturating_since(before),
            SimDuration::from_millis(20)
        );
        assert_eq!(k.channel_state(), ChannelState::Degraded);
    }

    #[test]
    fn dropped_pushes_stay_buffered_until_redelivered() {
        let mut k = kernel();
        let plan = FaultPlan::new(FaultSpec::quiet(5).with_drop_p(1.0));
        k.install_fault_plan(plan.clone());
        let x = k.sys_spawn(Pid::INIT, XORG_PATH).unwrap();
        let conn = k.netlink_connect(x).unwrap();
        let outcome = DecisionOutcome {
            decision: Decision {
                verdict: Verdict::Deny,
                reason: monitor::DecisionReason::NoInteraction,
            },
            trace: DecisionTrace::NoInteraction,
        };
        k.queue_device_alert(x, ResourceOp::Cam, &outcome, k.now());
        assert_eq!(k.pending_push_count(), 1);

        let delivered = k.netlink_take_pushes(conn).unwrap();
        assert!(delivered.is_empty(), "push lost in flight");
        assert_eq!(k.pending_push_count(), 1, "still buffered kernel-side");

        plan.set_armed(false);
        let delivered = k.netlink_take_pushes(conn).unwrap();
        assert_eq!(delivered.len(), 1, "replayed exactly once");
        assert_eq!(k.pending_push_count(), 0);
        let s = k.monitor_stats();
        assert_eq!(s.alerts_queued, 1);
    }

    #[test]
    fn channel_down_rename_keeps_device_quarantined() {
        let mut k = kernel();
        let id = k.attach_device(DeviceClass::Microphone, "mic", "/dev/snd/mic0");
        let helper = k.sys_spawn(Pid::INIT, UDEV_HELPER_PATH).unwrap();
        let conn = k.netlink_connect(helper).unwrap();
        let plan = FaultPlan::new(FaultSpec::quiet(6).with_drop_p(1.0));
        k.install_fault_plan(plan.clone());

        let err = k
            .udev_rename_device_via_channel(conn, "/dev/snd/mic0", "/dev/snd/mic1")
            .unwrap_err();
        assert_eq!(err, NetlinkError::ChannelDown);
        assert_eq!(k.device_map().lookup("/dev/snd/mic0"), None, "revoked");
        assert_eq!(k.device_map().lookup("/dev/snd/mic1"), None, "not trusted");
        assert!(k.device_map().is_quarantined(id));

        // A later update that gets through restores the mapping.
        plan.set_armed(false);
        k.netlink_send(
            conn,
            NetlinkMessage::DeviceMapUpdate {
                old_path: String::new(),
                new_path: "/dev/snd/mic1".to_string(),
            },
        )
        .unwrap();
        assert_eq!(k.device_map().lookup("/dev/snd/mic1"), Some(id));
        assert!(!k.device_map().is_quarantined(id));
    }

    #[test]
    fn procfs_stats_exposes_channel_counters() {
        let k = kernel();
        let stats = k.sys_procfs_read(procfs::STATS).unwrap();
        assert!(stats.contains("retries=0"));
        assert!(stats.contains("fail_closed=0"));
    }

    #[test]
    fn explain_last_reports_the_justifying_interaction() {
        let mut k = kernel();
        let app = k.sys_spawn(Pid::INIT, "/usr/bin/app").unwrap();
        k.record_interaction_direct(app, Timestamp::from_millis(100))
            .unwrap();
        let d = k.decide_direct(app, Timestamp::from_millis(600), ResourceOp::Mic);
        assert!(d.verdict.is_grant());
        let outcome = k.explain_last(app, ResourceOp::Mic).expect("recorded");
        match outcome.trace {
            DecisionTrace::WithinThreshold { interaction_at, .. } => {
                assert_eq!(interaction_at, Timestamp::from_millis(100));
            }
            other => panic!("unexpected trace {other:?}"),
        }
        assert_eq!(k.explain_last(app, ResourceOp::Cam), None);
    }

    #[test]
    fn repeated_queries_hit_the_verdict_cache_with_identical_outcomes() {
        let mut k = kernel();
        let app = k.sys_spawn(Pid::INIT, "/usr/bin/app").unwrap();
        k.record_interaction_direct(app, Timestamp::from_millis(100))
            .unwrap();
        let first = k.decide_direct(app, Timestamp::from_millis(200), ResourceOp::Mic);
        let stats_before = k.verdict_cache_stats();
        let second = k.decide_direct(app, Timestamp::from_millis(200), ResourceOp::Mic);
        assert_eq!(first, second);
        let stats_after = k.verdict_cache_stats();
        assert_eq!(stats_after.hits, stats_before.hits + 1);
        // Stats and audit accrue identically on the hit.
        assert_eq!(k.monitor_stats().grants, 2);
        assert_eq!(k.audit().matching("op=mic granted").count(), 2);
    }

    #[test]
    fn task_churn_keeps_verdict_cache_and_slot_table_bounded() {
        // Regression: cached verdicts and `explain_last` cells used to be
        // keyed by pid and never evicted, so a spawn/decide/exit loop grew
        // kernel state without bound. Eviction on exit/reap plus arena
        // slot reuse must keep both bounded by the *live* task count.
        let mut k = kernel();
        let t = Timestamp::from_millis(100);
        let baseline_slots = k.tasks().slot_capacity();
        for round in 0..200 {
            let app = k
                .sys_spawn(Pid::INIT, &format!("/usr/bin/churn{round}"))
                .unwrap();
            k.record_interaction_direct(app, t).unwrap();
            assert!(k
                .decide_direct(app, Timestamp::from_millis(200), ResourceOp::Mic)
                .verdict
                .is_grant());
            k.decide_direct(app, Timestamp::from_millis(200), ResourceOp::Cam);
            assert!(k.verdict_cache_stats().entries <= 2, "live task only");
            k.sys_exit(app, 0).unwrap();
            k.sys_waitpid(Pid::INIT, app).unwrap();
            assert_eq!(
                k.verdict_cache_stats().entries,
                0,
                "exit must evict the task's cached verdicts (round {round})"
            );
            assert_eq!(
                k.explain_last(app, ResourceOp::Mic),
                None,
                "explain_last must not outlive the task"
            );
        }
        // 200 spawned-and-reaped tasks reuse one arena slot, so the slot
        // table must not have grown past the churn task plus slack.
        assert!(
            k.tasks().slot_capacity() <= baseline_slots + 2,
            "slot table grew under churn: {} -> {}",
            baseline_slots,
            k.tasks().slot_capacity()
        );
    }

    #[test]
    fn ingest_batch_is_equivalent_to_per_event_calls() {
        let mk = || {
            let mut k = kernel();
            let a = k.sys_spawn(Pid::INIT, "/usr/bin/a").unwrap();
            let b = k.sys_spawn(Pid::INIT, "/usr/bin/b").unwrap();
            (k, a, b)
        };
        let req = |pid, ms, op| {
            IngestEvent::Request(OpRequest {
                pid,
                op,
                at: Timestamp::from_millis(ms),
            })
        };
        let (mut batched, a, b) = mk();
        let events = vec![
            req(a, 50, ResourceOp::Mic), // no interaction yet: deny
            IngestEvent::Interaction {
                pid: a,
                at: Timestamp::from_millis(100),
            },
            req(a, 150, ResourceOp::Mic),
            req(a, 160, ResourceOp::Mic), // cache hit
            req(b, 170, ResourceOp::Cam), // still deny
            IngestEvent::Interaction {
                pid: Pid::from_raw(9999), // dead pid: dropped, not an error
                at: Timestamp::from_millis(180),
            },
            req(b, 200, ResourceOp::Cam),
        ];
        let outcomes = batched.ingest_batch(&events);
        assert_eq!(outcomes.len(), events.len());
        assert!(!outcomes[0].as_ref().unwrap().decision.verdict.is_grant());
        assert!(outcomes[1].is_none());
        assert!(outcomes[2].as_ref().unwrap().decision.verdict.is_grant());
        assert!(outcomes[3].as_ref().unwrap().decision.verdict.is_grant());

        // Same stream issued one call at a time on a fresh kernel.
        let (mut serial, a2, b2) = mk();
        assert_eq!((a, b), (a2, b2), "spawns are deterministic");
        for event in &events {
            match event {
                IngestEvent::Request(r) => {
                    serial.decide_direct(r.pid, r.at, r.op);
                }
                IngestEvent::Interaction { pid, at } => {
                    let _ = serial.record_interaction_direct(*pid, *at);
                }
            }
        }
        assert_eq!(batched.monitor_stats(), serial.monitor_stats());
        assert_eq!(batched.verdict_cache_stats(), serial.verdict_cache_stats());
        assert_eq!(batched.ledger().head(), serial.ledger().head());
    }

    #[test]
    fn cache_does_not_serve_grants_past_the_delta_window() {
        let mut k = kernel();
        let app = k.sys_spawn(Pid::INIT, "/usr/bin/app").unwrap();
        k.record_interaction_direct(app, Timestamp::from_millis(100))
            .unwrap();
        assert!(k
            .decide_direct(app, Timestamp::from_millis(200), ResourceOp::Mic)
            .verdict
            .is_grant());
        // Same epoch, but past t + δ: must re-evaluate to a stale deny.
        let late = k.decide_direct(app, Timestamp::from_millis(5_000), ResourceOp::Mic);
        assert!(!late.verdict.is_grant());
        assert_eq!(
            late.reason,
            monitor::DecisionReason::Expired {
                elapsed: SimDuration::from_millis(4_900)
            }
        );
    }

    #[test]
    fn new_interaction_invalidates_cached_denies() {
        let mut k = kernel();
        let app = k.sys_spawn(Pid::INIT, "/usr/bin/app").unwrap();
        assert!(!k
            .decide_direct(app, Timestamp::from_millis(50), ResourceOp::Cam)
            .verdict
            .is_grant());
        k.record_interaction_direct(app, Timestamp::from_millis(60))
            .unwrap();
        assert!(k
            .decide_direct(app, Timestamp::from_millis(70), ResourceOp::Cam)
            .verdict
            .is_grant());
    }

    #[test]
    fn unknown_pid_is_never_cached_so_a_later_spawn_decides_fresh() {
        let mut k = kernel();
        let future_pid = Pid::from_raw(4_242);
        assert!(!k
            .decide_direct(future_pid, Timestamp::from_millis(10), ResourceOp::Mic)
            .verdict
            .is_grant());
        // Spawn processes until that pid exists, interact, and re-query.
        let pid = loop {
            let p = k.sys_spawn(Pid::INIT, "/usr/bin/app").unwrap();
            if p.as_raw() >= future_pid.as_raw() {
                break p;
            }
        };
        assert_eq!(pid, future_pid, "pids allocate sequentially");
        k.record_interaction_direct(pid, Timestamp::from_millis(20))
            .unwrap();
        assert!(k
            .decide_direct(pid, Timestamp::from_millis(30), ResourceOp::Mic)
            .verdict
            .is_grant());
    }

    #[test]
    fn decide_batch_matches_sequential_decides() {
        let mut k = kernel();
        let app = k.sys_spawn(Pid::INIT, "/usr/bin/app").unwrap();
        k.record_interaction_direct(app, Timestamp::from_millis(100))
            .unwrap();
        let requests: Vec<OpRequest> = [ResourceOp::Mic, ResourceOp::Cam, ResourceOp::Paste]
            .iter()
            .map(|&op| OpRequest {
                pid: app,
                op,
                at: Timestamp::from_millis(300),
            })
            .collect();
        let outcomes = k.decide_batch(&requests);
        assert_eq!(outcomes.len(), 3);
        for (request, outcome) in requests.iter().zip(&outcomes) {
            assert!(outcome.decision.verdict.is_grant());
            assert_eq!(
                k.explain_last(request.pid, request.op),
                Some(outcome),
                "explain_last sees each batched decision"
            );
        }
    }

    #[test]
    fn lagging_helper_leaves_map_stale() {
        let mut k = kernel();
        let id = k.attach_device(DeviceClass::Microphone, "mic", "/dev/snd/mic0");
        k.udev_rename_device_without_helper("/dev/snd/mic0", "/dev/snd/mic1")
            .unwrap();
        assert_eq!(
            k.device_map().lookup("/dev/snd/mic0"),
            Some(id),
            "map is stale"
        );
        assert_eq!(k.device_map().lookup("/dev/snd/mic1"), None);
    }
}
