//! Kernel checkpoint/restore: the [`Kernel`] half of the versioned
//! snapshot format.
//!
//! The codec splits kernel state along the *primary vs. derived* line:
//!
//! * **Primary state** — everything a replay cannot reconstruct: the
//!   process table with interaction timestamps and credit chains, the
//!   VFS, devices and the udev path map, monitor counters and pending
//!   alerts, the channel registry (sequence numbers and suppression
//!   watermarks), every IPC table, the shm wait list, the hash-chained
//!   ledger (the audit log is rebuilt from it as a projection on decode),
//!   and the in-flight push/reorder buffers. Serialized field by field in
//!   a fixed order.
//! * **Derived state** — the epoch-keyed [`crate::policy::VerdictCache`]
//!   (which also holds the per-task `explain_last` cells) and the
//!   per-connection duplicate-suppression sets. Never serialized; [`Kernel::import_snapshot`] rebuilds them
//!   empty and counts the rebuilds in [`SnapshotStats`], so a restore
//!   doubles as a cache-coherence check: if a rebuilt-cold cache could
//!   change any verdict, span, or watermark, the replay-determinism suite
//!   would catch the divergence.
//!
//! The shared virtual clock, tracer and fault plan are owned by the
//! system harness, which serializes each once and hands the imported
//! handles back in — the kernel never duplicates them.

use overhaul_sim::snapshot::{Dec, Enc, Pack, SnapshotError};
use overhaul_sim::{impl_pack, Clock, FaultPlan, MetricsRegistry, Sketches, Tracer};

use crate::policy::VerdictCache;
use crate::{Kernel, KernelConfig};

/// Counters for the checkpoint/restore subsystem, mirrored onto the
/// `/proc/overhaul/metrics` page.
///
/// Deliberately *not* part of any snapshot: the counters describe what
/// this kernel instance did (bytes checkpointed, caches rebuilt,
/// divergences observed), not simulation state, so serializing them
/// would make `state_hash` depend on how often an identical run was
/// checkpointed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Total bytes of snapshot state this kernel has exported.
    pub snapshot_bytes: u64,
    /// Times the verdict cache was rebuilt (cleared) by a restore.
    pub restore_rebuild_verdict_cache: u64,
    /// Per-connection duplicate-suppression sets rebuilt by restores.
    pub restore_rebuild_dup_suppress: u64,
    /// Replays whose final `state_hash` differed from the recorded one.
    pub replay_divergence: u64,
}

impl_pack!(KernelConfig {
    overhaul_enabled,
    monitor,
    shm_wait,
    ptrace_hardening,
    ipc_propagation,
    device_alerts,
    trusted_netlink_paths,
    channel_max_retries,
    channel_retry_backoff
});

impl Kernel {
    /// Checkpoint/restore counters.
    pub fn snapshot_stats(&self) -> SnapshotStats {
        self.snapshot_stats
    }

    /// Credits exported snapshot bytes to [`SnapshotStats`] (called by the
    /// system harness, which owns the full encoded buffer).
    pub fn note_snapshot_bytes(&mut self, bytes: u64) {
        self.snapshot_stats.snapshot_bytes += bytes;
    }

    /// Records a replay whose final state hash diverged from the recording.
    pub fn note_replay_divergence(&mut self) {
        self.snapshot_stats.replay_divergence += 1;
    }

    /// Folds a prior instance's counters into this one. In-place restore
    /// uses this so instance-lifetime counters (bytes checkpointed, caches
    /// rebuilt) keep accumulating across the restore instead of resetting.
    pub fn absorb_snapshot_stats(&mut self, prior: SnapshotStats) {
        self.snapshot_stats.snapshot_bytes += prior.snapshot_bytes;
        self.snapshot_stats.restore_rebuild_verdict_cache += prior.restore_rebuild_verdict_cache;
        self.snapshot_stats.restore_rebuild_dup_suppress += prior.restore_rebuild_dup_suppress;
        self.snapshot_stats.replay_divergence += prior.replay_divergence;
    }

    /// Serializes the kernel's primary state into `enc`.
    ///
    /// Pure state only: derived caches are skipped (see the module docs)
    /// and the shared clock/tracer/fault handles are serialized by the
    /// system harness.
    pub fn export_snapshot(&self, enc: &mut Enc) {
        self.config.pack(enc);
        self.channel_required.pack(enc);
        self.policy_epoch.pack(enc);
        self.decide_serial.pack(enc);
        self.tasks.pack(enc);
        self.vfs.pack(enc);
        self.devices.pack(enc);
        self.device_map.pack(enc);
        self.monitor.pack(enc);
        self.netlink.pack(enc);
        self.pipes.pack(enc);
        self.sockets.pack(enc);
        self.msgqueues.pack(enc);
        self.shm.pack(enc);
        self.mm.pack(enc);
        self.ptys.pack(enc);
        self.ptrace.pack(enc);
        self.ledger.pack(enc);
        self.push_buffer.pack(enc);
        self.reorder_buffer.pack(enc);
    }

    /// Rebuilds a kernel from state serialized by
    /// [`Kernel::export_snapshot`], wiring in the shared `clock`, `tracer`
    /// and `fault` handles the system harness imported.
    ///
    /// The verdict cache (including its `explain_last` cells) and
    /// per-connection dup-suppression sets come back *empty* (counted in
    /// [`SnapshotStats`]); metrics start empty until
    /// [`Kernel::import_metrics_snapshot`] replays the aux section.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] from a truncated or corrupt state section.
    pub fn import_snapshot(
        dec: &mut Dec<'_>,
        clock: Clock,
        tracer: Tracer,
        fault: Option<FaultPlan>,
    ) -> Result<Kernel, SnapshotError> {
        let mut kernel = Kernel {
            config: Pack::unpack(dec)?,
            channel_required: Pack::unpack(dec)?,
            policy_epoch: Pack::unpack(dec)?,
            decide_serial: Pack::unpack(dec)?,
            tasks: Pack::unpack(dec)?,
            vfs: Pack::unpack(dec)?,
            devices: Pack::unpack(dec)?,
            device_map: Pack::unpack(dec)?,
            monitor: Pack::unpack(dec)?,
            netlink: Pack::unpack(dec)?,
            pipes: Pack::unpack(dec)?,
            sockets: Pack::unpack(dec)?,
            msgqueues: Pack::unpack(dec)?,
            shm: Pack::unpack(dec)?,
            mm: Pack::unpack(dec)?,
            ptys: Pack::unpack(dec)?,
            ptrace: Pack::unpack(dec)?,
            ledger: Pack::unpack(dec)?,
            push_buffer: Pack::unpack(dec)?,
            reorder_buffer: Pack::unpack(dec)?,
            verdict_cache: VerdictCache::new(),
            metrics: MetricsRegistry::new(),
            snapshot_stats: SnapshotStats::default(),
            sketch: Sketches::new(),
            clock,
            tracer,
            fault,
        };
        kernel.snapshot_stats.restore_rebuild_verdict_cache += 1;
        kernel.snapshot_stats.restore_rebuild_dup_suppress +=
            kernel.netlink.connection_count() as u64;
        Ok(kernel)
    }

    /// Serializes the kernel's persistent metrics registry (aux section:
    /// restored verbatim but excluded from the state hash).
    pub fn export_metrics_snapshot(&self, enc: &mut Enc) {
        self.metrics.pack(enc);
    }

    /// Restores the persistent metrics registry from the aux section.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] from a truncated or corrupt aux section.
    pub fn import_metrics_snapshot(&mut self, dec: &mut Dec<'_>) -> Result<(), SnapshotError> {
        self.metrics = Pack::unpack(dec)?;
        Ok(())
    }
}
