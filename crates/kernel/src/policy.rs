//! The unified policy engine: one pure decision core for every Overhaul
//! verdict (§III-B).
//!
//! Overhaul's single rule — grant iff an authentic interaction happened
//! within δ before the operation — used to be re-implemented at each
//! mediation site (the monitor, the device-open path, the quarantine
//! check, the channel fail-closed check). This module centralizes all of
//! it behind [`PolicyEngine::decide`], a *pure, side-effect-free*
//! function from an immutable [`PolicySnapshot`] and an [`OpRequest`] to
//! a [`DecisionOutcome`]:
//!
//! * the snapshot captures everything a verdict may depend on —
//!   interaction timestamp, freeze bit, δ/grant-all config, channel
//!   state, device quarantine;
//! * the outcome bundles the wire-compatible [`Decision`] with a
//!   structured [`DecisionTrace`] explaining *why*: which interaction
//!   justified a grant and through which propagation chain it arrived
//!   ([`CreditChain`]), or the precise deny reason (no interaction,
//!   stale-by-N ms, frozen, channel down, quarantined).
//!
//! Because the engine is pure, verdicts are cacheable: [`VerdictCache`]
//! keys entries by `(pid, op, quarantined)` plus a per-task interaction
//! epoch and a global policy epoch, and bounds each entry's time validity
//! with a [`Validity`] window so grants expire exactly at `t + δ` without
//! any invalidation traffic. Repeated mediation of the same `(pid, op)`
//! within one epoch is an O(1) lookup instead of a full state walk.
//!
//! The interaction-timestamp propagation protocol (policy **P2**,
//! [`embed_on_send`] / [`adopt_on_receive`]) lives here too: it is the
//! other half of the same temporal-proximity policy, and keeping both in
//! one module means there is exactly one place where timestamps are
//! compared.

use std::fmt;

use overhaul_sim::{Pid, SimDuration, SlotId, Timestamp};
use serde::{Deserialize, Serialize};

use crate::monitor::{Decision, DecisionReason, ResourceOp, Verdict};
use crate::netlink::ChannelState;

/// Maximum number of hops a [`CreditChain`] records before saturating.
pub const MAX_CREDIT_HOPS: usize = 16;

/// The IPC mechanism an interaction timestamp propagated through
/// (policy **P2**).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IpcMechanism {
    /// Anonymous pipe or FIFO.
    Pipe,
    /// UNIX domain socket pair.
    UnixSocket,
    /// POSIX (named) message queue.
    PosixMq,
    /// SysV (keyed) message queue.
    SysvMsgq,
    /// POSIX/SysV shared-memory segment.
    Shm,
    /// Pseudo-terminal pair.
    Pty,
}

impl IpcMechanism {
    /// The mechanism name as it appears in audit-log details.
    pub fn as_str(self) -> &'static str {
        match self {
            IpcMechanism::Pipe => "pipe",
            IpcMechanism::UnixSocket => "unix-socket",
            IpcMechanism::PosixMq => "posix-mq",
            IpcMechanism::SysvMsgq => "sysv-msgq",
            IpcMechanism::Shm => "shm",
            IpcMechanism::Pty => "pty",
        }
    }
}

impl fmt::Display for IpcMechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One hop in the provenance of a task's interaction credit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CreditHop {
    /// The display manager notified this task directly (hardware input).
    Direct,
    /// Inherited from the parent on `fork` (policy **P1**).
    Fork,
    /// Adopted from an IPC resource slot (policy **P2**).
    Ipc(IpcMechanism),
}

/// The propagation chain behind a task's current interaction credit:
/// how the timestamp travelled from the hardware input to this task.
///
/// Fixed-capacity and `Copy` so snapshots, traces, and cache entries
/// never allocate; chains longer than [`MAX_CREDIT_HOPS`] saturate. A
/// saturated chain keeps its correct prefix and — so decision traces can
/// never silently misreport provenance on long IPC chains — records that
/// hops were dropped in [`CreditChain::saturated`].
#[derive(Clone, Copy, Serialize, Deserialize)]
pub struct CreditChain {
    len: u8,
    saturated: bool,
    hops: [CreditHop; MAX_CREDIT_HOPS],
}

impl CreditChain {
    /// An empty chain (no interaction credit, or provenance unknown).
    pub const fn empty() -> Self {
        CreditChain {
            len: 0,
            saturated: false,
            hops: [CreditHop::Direct; MAX_CREDIT_HOPS],
        }
    }

    /// A single-hop chain for a direct hardware-input notification.
    pub fn direct() -> Self {
        CreditChain::empty().extended(CreditHop::Direct)
    }

    /// A single-hop chain for a timestamp adopted from an IPC resource.
    pub fn via(mechanism: IpcMechanism) -> Self {
        CreditChain::empty().extended(CreditHop::Ipc(mechanism))
    }

    /// This chain with `hop` appended; saturates at [`MAX_CREDIT_HOPS`].
    /// A hop dropped by saturation is recorded in
    /// [`CreditChain::saturated`] rather than lost silently.
    pub fn extended(mut self, hop: CreditHop) -> Self {
        if (self.len as usize) < MAX_CREDIT_HOPS {
            self.hops[self.len as usize] = hop;
            self.len += 1;
        } else {
            self.saturated = true;
        }
        self
    }

    /// The recorded hops, oldest first.
    pub fn hops(&self) -> &[CreditHop] {
        &self.hops[..self.len as usize]
    }

    /// Number of recorded hops.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no hops are recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether hops beyond [`MAX_CREDIT_HOPS`] were dropped: the recorded
    /// prefix is correct but the chain's tail is not fully known.
    pub fn saturated(&self) -> bool {
        self.saturated
    }
}

impl Default for CreditChain {
    fn default() -> Self {
        CreditChain::empty()
    }
}

impl PartialEq for CreditChain {
    fn eq(&self, other: &Self) -> bool {
        self.saturated == other.saturated && self.hops() == other.hops()
    }
}

impl Eq for CreditChain {}

impl fmt::Debug for CreditChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.hops()).finish()?;
        if self.saturated {
            f.write_str(" (saturated: hops dropped)")?;
        }
        Ok(())
    }
}

/// One permission query: "may `pid` perform `op` at time `at`?"
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpRequest {
    /// The requesting process.
    pub pid: Pid,
    /// The operation class.
    pub op: ResourceOp,
    /// The operation time (`t + n` in the paper).
    pub at: Timestamp,
}

/// One element of a batched ingestion feed (`Kernel::ingest_batch`): an
/// authentic-interaction notification or a permission request. `Copy` and
/// integer-only so batches move through the kernel, the replay log, and
/// the fleet harness without touching the heap per event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IngestEvent {
    /// An authentic user interaction observed for `pid` at `at`.
    Interaction {
        /// The interacting process.
        pid: Pid,
        /// When the input arrived (`t` in the paper).
        at: Timestamp,
    },
    /// A permission query, answered through the traced decide path.
    Request(OpRequest),
}

/// The policy-relevant view of one task, lifted out of the process table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskPolicyView {
    /// Whether ptrace hardening currently freezes the task's permissions.
    pub frozen: bool,
    /// The raw stored interaction timestamp (ignoring the freeze bit; the
    /// engine applies the freeze itself so the trace can say *frozen*
    /// rather than *no interaction*).
    pub interaction: Option<Timestamp>,
    /// Provenance of the stored interaction credit.
    pub chain: CreditChain,
}

/// An immutable view of everything a verdict may depend on.
///
/// Building a snapshot is the *only* part of a decision that touches
/// kernel state; [`PolicyEngine::decide`] itself is a pure function of
/// this value, which is what makes verdicts cacheable and the engine
/// trivially testable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicySnapshot {
    /// Temporal-proximity threshold δ.
    pub delta: SimDuration,
    /// Benchmark grant-all mode (Table I setup).
    pub grant_all: bool,
    /// Whether this configuration requires a live display-manager channel
    /// (fail closed while it is down).
    pub channel_required: bool,
    /// Health of the kernel↔display-manager channel.
    pub channel_state: ChannelState,
    /// Whether the target device is quarantined pending a helper update.
    pub quarantined: bool,
    /// The requesting task, or `None` if the pid does not exist.
    pub task: Option<TaskPolicyView>,
}

/// Structured explanation of a decision: exactly which rule fired, with
/// the evidence (timestamps, gaps, propagation chain) that fired it.
///
/// Deny reasons are ordered: quarantine wins over channel state, which
/// wins over everything task-local — mirroring the pre-refactor layering
/// where the device-open path checked quarantine before ever consulting
/// the monitor, and the kernel checked the channel before the task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecisionTrace {
    /// Granted: an authentic interaction at `interaction_at` happened
    /// within δ before the operation.
    WithinThreshold {
        /// The justifying interaction timestamp (`t`).
        interaction_at: Timestamp,
        /// The gap `n = (t+n) - t`.
        elapsed: SimDuration,
        /// The threshold the gap was compared against.
        delta: SimDuration,
        /// How the interaction credit reached this task.
        chain: CreditChain,
    },
    /// Granted unconditionally (benchmark mode, checks still executed).
    GrantAll {
        /// The stored interaction timestamp, if any (too old to justify
        /// the grant on its own, or absent).
        interaction_at: Option<Timestamp>,
    },
    /// Denied: the process never received an authentic interaction.
    NoInteraction,
    /// Denied: the last interaction is older than δ.
    Stale {
        /// The stored interaction timestamp (`t`).
        interaction_at: Timestamp,
        /// The stale gap.
        elapsed: SimDuration,
        /// The threshold the gap was compared against.
        delta: SimDuration,
        /// How far past δ the operation came: `elapsed - delta`.
        over_by: SimDuration,
        /// How the (now stale) credit had reached this task.
        chain: CreditChain,
    },
    /// Denied: ptrace hardening froze this task's permissions.
    PermissionsFrozen,
    /// Denied: the kernel↔display-manager channel is down — fail closed.
    ChannelDown,
    /// Denied: the device is quarantined pending a helper map update.
    Quarantined,
    /// Denied: the pid does not exist in the process table.
    UnknownProcess,
}

impl DecisionTrace {
    /// The verdict this trace implies.
    pub fn verdict(&self) -> Verdict {
        match self {
            DecisionTrace::WithinThreshold { .. } | DecisionTrace::GrantAll { .. } => {
                Verdict::Grant
            }
            _ => Verdict::Deny,
        }
    }

    /// The wire-compatible [`DecisionReason`] this trace collapses to.
    ///
    /// [`DecisionTrace::UnknownProcess`] maps to
    /// [`DecisionReason::NoInteraction`]: a pid the kernel does not know
    /// has, by definition, never received an interaction.
    pub fn reason(&self) -> DecisionReason {
        match *self {
            DecisionTrace::WithinThreshold { elapsed, .. } => {
                DecisionReason::WithinThreshold { elapsed }
            }
            DecisionTrace::GrantAll { .. } => DecisionReason::GrantAll,
            DecisionTrace::NoInteraction | DecisionTrace::UnknownProcess => {
                DecisionReason::NoInteraction
            }
            DecisionTrace::Stale { elapsed, .. } => DecisionReason::Expired { elapsed },
            DecisionTrace::PermissionsFrozen => DecisionReason::PermissionsFrozen,
            DecisionTrace::ChannelDown => DecisionReason::ChannelDown,
            DecisionTrace::Quarantined => DecisionReason::Quarantined,
        }
    }

    /// The audit-log detail line for this trace deciding `op`.
    ///
    /// Every mediation site renders its audit record (and, for denies,
    /// its overlay-alert reason) from here, so the audit log, procfs, and
    /// the overlay can never drift apart.
    pub fn audit_detail(&self, op: ResourceOp) -> &'static str {
        match self {
            DecisionTrace::ChannelDown => channel_down_detail(op),
            DecisionTrace::Quarantined => quarantined_detail(op),
            trace => decision_detail(op, trace.verdict().is_grant()),
        }
    }

    /// The parenthesized deny cause shown verbatim on overlay alerts for
    /// fail-closed denies, or `None` for grants and ordinary denies.
    ///
    /// The same constant is embedded in [`DecisionTrace::audit_detail`],
    /// which is what keeps the audit log and the overlay agreeing
    /// verbatim.
    pub fn deny_cause(&self) -> Option<&'static str> {
        match self {
            DecisionTrace::ChannelDown => Some("channel down"),
            DecisionTrace::Quarantined => Some("quarantined pending helper update"),
            _ => None,
        }
    }

    /// A short static label naming the rule that fired, for span fields
    /// and metrics labels.
    pub fn kind_str(&self) -> &'static str {
        match self {
            DecisionTrace::WithinThreshold { .. } => "within-threshold",
            DecisionTrace::GrantAll { .. } => "grant-all",
            DecisionTrace::NoInteraction => "no-interaction",
            DecisionTrace::Stale { .. } => "stale",
            DecisionTrace::PermissionsFrozen => "permissions-frozen",
            DecisionTrace::ChannelDown => "channel-down",
            DecisionTrace::Quarantined => "quarantined",
            DecisionTrace::UnknownProcess => "unknown-process",
        }
    }

    /// The propagation chain behind the decision's evidence, when the
    /// fired rule consulted one.
    pub fn chain(&self) -> Option<&CreditChain> {
        match self {
            DecisionTrace::WithinThreshold { chain, .. } | DecisionTrace::Stale { chain, .. } => {
                Some(chain)
            }
            _ => None,
        }
    }

    /// A human-readable one-line explanation (the `explain_last` hook).
    pub fn describe(&self) -> String {
        match self {
            DecisionTrace::WithinThreshold {
                interaction_at,
                elapsed,
                delta,
                chain,
            } => format!(
                "granted: interaction at {interaction_at} was {}ms ago (δ = {}ms), via {:?}",
                elapsed.as_millis(),
                delta.as_millis(),
                chain
            ),
            DecisionTrace::GrantAll { interaction_at } => match interaction_at {
                Some(at) => format!("granted: benchmark grant-all (stale interaction at {at})"),
                None => "granted: benchmark grant-all (no interaction)".to_string(),
            },
            DecisionTrace::NoInteraction => {
                "denied: no authentic interaction on record".to_string()
            }
            DecisionTrace::Stale {
                interaction_at,
                elapsed,
                delta,
                over_by,
                chain,
            } => format!(
                "denied: interaction at {interaction_at} is stale by {}ms \
                 ({}ms elapsed, δ = {}ms), via {:?}",
                over_by.as_millis(),
                elapsed.as_millis(),
                delta.as_millis(),
                chain
            ),
            DecisionTrace::PermissionsFrozen => {
                "denied: permissions frozen by ptrace hardening".to_string()
            }
            DecisionTrace::ChannelDown => {
                "denied: display-manager channel down (fail closed)".to_string()
            }
            DecisionTrace::Quarantined => {
                "denied: device quarantined pending helper update".to_string()
            }
            DecisionTrace::UnknownProcess => "denied: no such process".to_string(),
        }
    }
}

/// A verdict plus its structured explanation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecisionOutcome {
    /// The wire-compatible decision (what mediation sites act on).
    pub decision: Decision,
    /// Why — the structured trace behind the decision.
    pub trace: DecisionTrace,
}

impl DecisionOutcome {
    /// Rebuilds this outcome for a different operation time within the
    /// same validity window, recomputing the time-dependent fields
    /// (`elapsed`, `over_by`) so a cache hit is byte-identical to a fresh
    /// evaluation at `at`.
    pub fn refreshed_at(mut self, at: Timestamp) -> Self {
        match &mut self.trace {
            DecisionTrace::WithinThreshold {
                interaction_at,
                elapsed,
                ..
            } => {
                *elapsed = at.saturating_since(*interaction_at);
                self.decision.reason = DecisionReason::WithinThreshold { elapsed: *elapsed };
            }
            DecisionTrace::Stale {
                interaction_at,
                elapsed,
                delta,
                over_by,
                ..
            } => {
                *elapsed = at.saturating_since(*interaction_at);
                *over_by =
                    SimDuration::from_millis(elapsed.as_millis().saturating_sub(delta.as_millis()));
                self.decision.reason = DecisionReason::Expired { elapsed: *elapsed };
            }
            _ => {}
        }
        self
    }
}

/// The pure decision core. All of Overhaul's verdict logic lives in
/// [`PolicyEngine::evaluate_at`]; everything else in the kernel is
/// snapshot construction and effect application (stats, audit, alerts).
#[derive(Debug, Clone, Copy, Default)]
pub struct PolicyEngine;

impl PolicyEngine {
    /// Decides one request against a snapshot. Pure: same inputs, same
    /// outcome, no side effects.
    pub fn decide(snapshot: &PolicySnapshot, request: &OpRequest) -> DecisionOutcome {
        Self::evaluate_at(snapshot, request.at)
    }

    /// Decides a batch of requests against one snapshot (high-throughput
    /// mediation; the snapshot is built once and reused).
    pub fn decide_batch(snapshot: &PolicySnapshot, requests: &[OpRequest]) -> Vec<DecisionOutcome> {
        requests
            .iter()
            .map(|request| Self::decide(snapshot, request))
            .collect()
    }

    /// The op-agnostic evaluation core: decides an operation at `at`.
    ///
    /// Rule order (semantics-preserving with the pre-refactor sites):
    /// quarantine → channel fail-closed → unknown pid → ptrace freeze →
    /// within-δ grant → benchmark grant-all → stale deny → no-interaction
    /// deny. The freeze wins over grant-all; a fresh interaction wins
    /// over grant-all so traces carry the real justification.
    pub fn evaluate_at(snapshot: &PolicySnapshot, at: Timestamp) -> DecisionOutcome {
        let trace = if snapshot.quarantined {
            DecisionTrace::Quarantined
        } else if snapshot.channel_required && snapshot.channel_state == ChannelState::Down {
            DecisionTrace::ChannelDown
        } else {
            match snapshot.task {
                None => DecisionTrace::UnknownProcess,
                Some(task) if task.frozen => DecisionTrace::PermissionsFrozen,
                Some(task) => match task.interaction {
                    Some(t) => {
                        let elapsed = at.saturating_since(t);
                        if elapsed < snapshot.delta {
                            DecisionTrace::WithinThreshold {
                                interaction_at: t,
                                elapsed,
                                delta: snapshot.delta,
                                chain: task.chain,
                            }
                        } else if snapshot.grant_all {
                            DecisionTrace::GrantAll {
                                interaction_at: Some(t),
                            }
                        } else {
                            DecisionTrace::Stale {
                                interaction_at: t,
                                elapsed,
                                delta: snapshot.delta,
                                over_by: SimDuration::from_millis(
                                    elapsed
                                        .as_millis()
                                        .saturating_sub(snapshot.delta.as_millis()),
                                ),
                                chain: task.chain,
                            }
                        }
                    }
                    None if snapshot.grant_all => DecisionTrace::GrantAll {
                        interaction_at: None,
                    },
                    None => DecisionTrace::NoInteraction,
                },
            }
        };
        DecisionOutcome {
            decision: Decision {
                verdict: trace.verdict(),
                reason: trace.reason(),
            },
            trace,
        }
    }
}

/// The operation-time window over which a cached verdict stays correct.
///
/// Epochs invalidate cached verdicts when *state* changes; the validity
/// window invalidates them when *time alone* changes the answer — a
/// within-δ grant silently becomes a stale deny at exactly `t + δ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Validity {
    /// Correct at any operation time (frozen / no-interaction / channel /
    /// quarantine outcomes: time does not change them).
    Always,
    /// Correct for operation times strictly before the boundary
    /// (within-δ grants: valid until `t + δ`).
    Before(Timestamp),
    /// Correct for operation times at or after the boundary
    /// (stale denies and stale grant-alls: valid from `t + δ` on).
    AtOrAfter(Timestamp),
}

impl Validity {
    /// Whether the window covers an operation at `at`.
    pub fn covers(self, at: Timestamp) -> bool {
        match self {
            Validity::Always => true,
            Validity::Before(boundary) => at < boundary,
            Validity::AtOrAfter(boundary) => at >= boundary,
        }
    }

    /// The validity window of a freshly evaluated trace.
    ///
    /// `delta` must be the threshold the trace was evaluated under (it is
    /// only consulted for [`DecisionTrace::GrantAll`] with a stale
    /// interaction, whose own variant does not carry δ).
    pub fn for_trace(trace: &DecisionTrace, delta: SimDuration) -> Validity {
        match *trace {
            DecisionTrace::WithinThreshold {
                interaction_at,
                delta,
                ..
            } => Validity::Before(interaction_at + delta),
            DecisionTrace::Stale {
                interaction_at,
                delta,
                ..
            } => Validity::AtOrAfter(interaction_at + delta),
            DecisionTrace::GrantAll {
                interaction_at: Some(t),
            } => Validity::AtOrAfter(t + delta),
            _ => Validity::Always,
        }
    }
}

/// One cached verdict with the epochs and time window it is valid for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedVerdict {
    /// The task's interaction epoch when the verdict was computed.
    pub task_epoch: u64,
    /// The kernel's global policy epoch when the verdict was computed.
    pub global_epoch: u64,
    /// The operation-time window the verdict covers.
    pub validity: Validity,
    /// The cached outcome (time-dependent fields are refreshed on hits).
    pub outcome: DecisionOutcome,
}

/// Hit/miss counters of a [`VerdictCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a full evaluation.
    pub misses: u64,
    /// Verdicts currently stored.
    pub entries: usize,
}

/// The dense index of a [`ResourceOp`] (also its wire/ledger tag).
#[inline]
pub(crate) fn op_index(op: ResourceOp) -> usize {
    match op {
        ResourceOp::Mic => 0,
        ResourceOp::Cam => 1,
        ResourceOp::Sensor => 2,
        ResourceOp::Screen => 3,
        ResourceOp::Copy => 4,
        ResourceOp::Paste => 5,
    }
}

/// Number of [`ResourceOp`] variants (the width of per-task slot arrays).
const OP_WAYS: usize = 6;
/// Verdict cells per task: one per `(op, quarantined)` pair.
const VERDICT_WAYS: usize = OP_WAYS * 2;

/// Per-task verdict and last-decision storage, parallel to one process
/// arena slot. `gen` records which arena generation wrote the cells; a
/// mismatch means the slot was reused by a later task and the cells are
/// logically empty.
#[derive(Debug, Clone)]
struct TaskSlots {
    gen: u32,
    verdicts: [Option<CachedVerdict>; VERDICT_WAYS],
    last: [Option<DecisionOutcome>; OP_WAYS],
}

impl TaskSlots {
    const EMPTY: TaskSlots = TaskSlots {
        gen: 0,
        verdicts: [None; VERDICT_WAYS],
        last: [None; OP_WAYS],
    };

    fn live_verdicts(&self) -> usize {
        self.verdicts.iter().filter(|v| v.is_some()).count()
    }
}

/// The epoch-keyed verdict cache, stored densely per process-arena slot.
///
/// Each task slot holds a fixed array of `(op, quarantined)` verdict
/// cells plus the task's last decision per op, indexed by the
/// generation-checked [`SlotId`] the process table issued — a lookup is
/// two array indexes and an epoch compare, with no hashing. An entry is a
/// hit only when the slot generation and both epochs still match *and*
/// its [`Validity`] window covers the queried operation time.
/// Unknown-process outcomes are never cached by the kernel (a later spawn
/// of that pid would not bump any epoch). The kernel explicitly
/// [`evict`](VerdictCache::evict)s a slot when its process exits, so the
/// cache footprint is bounded by the *live* task count even under
/// unbounded task churn; the generation check makes even a missed
/// eviction harmless when a slot is reused.
#[derive(Debug, Clone, Default)]
pub struct VerdictCache {
    slots: Vec<TaskSlots>,
    hits: u64,
    misses: u64,
    entries: usize,
}

impl VerdictCache {
    /// An empty cache.
    pub fn new() -> Self {
        VerdictCache::default()
    }

    /// Mutable access to the cells for `id`, growing the side table and
    /// resetting reused slots as needed. Only called on the store path.
    fn slot_mut(&mut self, id: SlotId) -> &mut TaskSlots {
        let index = id.index() as usize;
        if self.slots.len() <= index {
            self.slots.resize(index + 1, TaskSlots::EMPTY);
        }
        if self.slots[index].gen != id.gen() {
            self.entries -= self.slots[index].live_verdicts();
            self.slots[index] = TaskSlots::EMPTY;
            self.slots[index].gen = id.gen();
        }
        &mut self.slots[index]
    }

    /// Shared access to the cells for `id`, if present and current.
    fn slot(&self, id: SlotId) -> Option<&TaskSlots> {
        self.slots
            .get(id.index() as usize)
            .filter(|s| s.gen == id.gen())
    }

    /// Looks up a verdict for `(slot, op, quarantined)` at operation time
    /// `at`, requiring both epochs to match. On a hit, time-dependent
    /// trace fields are refreshed so the outcome is byte-identical to a
    /// fresh evaluation.
    #[inline]
    pub fn lookup(
        &mut self,
        id: SlotId,
        op: ResourceOp,
        quarantined: bool,
        at: Timestamp,
        task_epoch: u64,
        global_epoch: u64,
    ) -> Option<DecisionOutcome> {
        let hit = match self
            .slot(id)
            .and_then(|s| s.verdicts[op_index(op) * 2 + quarantined as usize].as_ref())
        {
            Some(entry)
                if entry.task_epoch == task_epoch
                    && entry.global_epoch == global_epoch
                    && entry.validity.covers(at) =>
            {
                Some(entry.outcome.refreshed_at(at))
            }
            _ => None,
        };
        if hit.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Stores a freshly evaluated outcome. `delta` must be the threshold
    /// the outcome was evaluated under (see [`Validity::for_trace`]).
    #[allow(clippy::too_many_arguments)] // the cache key is wide by design
    pub fn store(
        &mut self,
        id: SlotId,
        op: ResourceOp,
        quarantined: bool,
        task_epoch: u64,
        global_epoch: u64,
        delta: SimDuration,
        outcome: &DecisionOutcome,
    ) {
        let cached = CachedVerdict {
            task_epoch,
            global_epoch,
            validity: Validity::for_trace(&outcome.trace, delta),
            outcome: *outcome,
        };
        let fresh = self.slot_mut(id).verdicts[op_index(op) * 2 + quarantined as usize]
            .replace(cached)
            .is_none();
        if fresh {
            self.entries += 1;
        }
    }

    /// Records the task's most recent decision for `op` (the backing
    /// store of `Kernel::explain_last`).
    #[inline]
    pub fn record_last(&mut self, id: SlotId, op: ResourceOp, outcome: &DecisionOutcome) {
        self.slot_mut(id).last[op_index(op)] = Some(*outcome);
    }

    /// The task's most recent decision for `op`, if any.
    pub fn last(&self, id: SlotId, op: ResourceOp) -> Option<&DecisionOutcome> {
        self.slot(id)?.last[op_index(op)].as_ref()
    }

    /// Drops every cell belonging to `id` (process exit / reap). Stale
    /// ids (slot already reused) are a no-op.
    pub fn evict(&mut self, id: SlotId) {
        let index = id.index() as usize;
        if index < self.slots.len() && self.slots[index].gen == id.gen() {
            self.entries -= self.slots[index].live_verdicts();
            self.slots[index] = TaskSlots::EMPTY;
            self.slots[index].gen = id.gen();
        }
    }

    /// Hit/miss/size counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.entries,
        }
    }

    /// Drops every entry (counters survive).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.entries = 0;
    }
}

/// Step (2) of the propagation protocol: embed the sender's interaction
/// timestamp into the IPC resource slot, keeping the most recent value.
///
/// Returns `true` if the slot changed.
pub fn embed_on_send(slot: &mut Option<Timestamp>, sender: Option<Timestamp>) -> bool {
    match (slot.as_ref(), sender) {
        (_, None) => false,
        (Some(existing), Some(new)) if *existing >= new => false,
        (_, Some(new)) => {
            *slot = Some(new);
            true
        }
    }
}

/// Step (3) of the propagation protocol: the receiving process adopts the
/// resource timestamp if it is more recent than its own.
///
/// Returns the adopted timestamp, or `None` if nothing changed.
pub fn adopt_on_receive(receiver: Option<Timestamp>, slot: Option<Timestamp>) -> Option<Timestamp> {
    match (receiver, slot) {
        (_, None) => None,
        (Some(own), Some(embedded)) if own >= embedded => None,
        (_, Some(embedded)) => Some(embedded),
    }
}

fn decision_detail(op: ResourceOp, granted: bool) -> &'static str {
    match (op, granted) {
        (ResourceOp::Mic, true) => "op=mic granted",
        (ResourceOp::Mic, false) => "op=mic denied",
        (ResourceOp::Cam, true) => "op=cam granted",
        (ResourceOp::Cam, false) => "op=cam denied",
        (ResourceOp::Sensor, true) => "op=sensor granted",
        (ResourceOp::Sensor, false) => "op=sensor denied",
        (ResourceOp::Screen, true) => "op=scr granted",
        (ResourceOp::Screen, false) => "op=scr denied",
        (ResourceOp::Copy, true) => "op=copy granted",
        (ResourceOp::Copy, false) => "op=copy denied",
        (ResourceOp::Paste, true) => "op=paste granted",
        (ResourceOp::Paste, false) => "op=paste denied",
    }
}

fn channel_down_detail(op: ResourceOp) -> &'static str {
    match op {
        ResourceOp::Mic => "op=mic denied (channel down)",
        ResourceOp::Cam => "op=cam denied (channel down)",
        ResourceOp::Sensor => "op=sensor denied (channel down)",
        ResourceOp::Screen => "op=scr denied (channel down)",
        ResourceOp::Copy => "op=copy denied (channel down)",
        ResourceOp::Paste => "op=paste denied (channel down)",
    }
}

fn quarantined_detail(op: ResourceOp) -> &'static str {
    match op {
        ResourceOp::Mic => "op=mic denied (quarantined pending helper update)",
        ResourceOp::Cam => "op=cam denied (quarantined pending helper update)",
        ResourceOp::Sensor => "op=sensor denied (quarantined pending helper update)",
        ResourceOp::Screen => "op=scr denied (quarantined pending helper update)",
        ResourceOp::Copy => "op=copy denied (quarantined pending helper update)",
        ResourceOp::Paste => "op=paste denied (quarantined pending helper update)",
    }
}

mod pack {
    //! Snapshot codec for credit chains and batched ingestion payloads.
    //! Verdict-cache entries and last decisions are *derived* state —
    //! rebuilt after restore, never serialized — so only the provenance
    //! and wire types get codecs.

    use overhaul_sim::impl_pack;
    use overhaul_sim::snapshot::{Dec, Enc, Pack, SnapshotError};
    use overhaul_sim::{Pid, Timestamp};

    use super::{CreditChain, CreditHop, IngestEvent, IpcMechanism, OpRequest};
    use crate::monitor::ResourceOp;

    impl Pack for OpRequest {
        fn pack(&self, enc: &mut Enc) {
            self.pid.pack(enc);
            self.op.pack(enc);
            self.at.pack(enc);
        }
        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            Ok(OpRequest {
                pid: Pid::unpack(dec)?,
                op: ResourceOp::unpack(dec)?,
                at: Timestamp::unpack(dec)?,
            })
        }
    }

    impl Pack for IngestEvent {
        fn pack(&self, enc: &mut Enc) {
            match self {
                IngestEvent::Interaction { pid, at } => {
                    enc.put_u8(0);
                    pid.pack(enc);
                    at.pack(enc);
                }
                IngestEvent::Request(req) => {
                    enc.put_u8(1);
                    req.pack(enc);
                }
            }
        }
        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            Ok(match dec.take_u8()? {
                0 => IngestEvent::Interaction {
                    pid: Pid::unpack(dec)?,
                    at: Timestamp::unpack(dec)?,
                },
                1 => IngestEvent::Request(OpRequest::unpack(dec)?),
                _ => return Err(SnapshotError::BadValue("ingest event tag")),
            })
        }
    }

    impl Pack for IpcMechanism {
        fn pack(&self, enc: &mut Enc) {
            enc.put_u8(match self {
                IpcMechanism::Pipe => 0,
                IpcMechanism::UnixSocket => 1,
                IpcMechanism::PosixMq => 2,
                IpcMechanism::SysvMsgq => 3,
                IpcMechanism::Shm => 4,
                IpcMechanism::Pty => 5,
            });
        }
        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            Ok(match dec.take_u8()? {
                0 => IpcMechanism::Pipe,
                1 => IpcMechanism::UnixSocket,
                2 => IpcMechanism::PosixMq,
                3 => IpcMechanism::SysvMsgq,
                4 => IpcMechanism::Shm,
                5 => IpcMechanism::Pty,
                _ => return Err(SnapshotError::BadValue("ipc mechanism")),
            })
        }
    }

    impl Pack for CreditHop {
        fn pack(&self, enc: &mut Enc) {
            match self {
                CreditHop::Direct => enc.put_u8(0),
                CreditHop::Fork => enc.put_u8(1),
                CreditHop::Ipc(mechanism) => {
                    enc.put_u8(2);
                    mechanism.pack(enc);
                }
            }
        }
        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            Ok(match dec.take_u8()? {
                0 => CreditHop::Direct,
                1 => CreditHop::Fork,
                2 => CreditHop::Ipc(Pack::unpack(dec)?),
                _ => return Err(SnapshotError::BadValue("credit hop")),
            })
        }
    }

    impl_pack!(CreditChain {
        len,
        saturated,
        hops
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(task: Option<TaskPolicyView>) -> PolicySnapshot {
        PolicySnapshot {
            delta: SimDuration::from_secs(2),
            grant_all: false,
            channel_required: false,
            channel_state: ChannelState::Up,
            quarantined: false,
            task,
        }
    }

    fn live_task(interaction_ms: Option<u64>) -> TaskPolicyView {
        TaskPolicyView {
            frozen: false,
            interaction: interaction_ms.map(Timestamp::from_millis),
            chain: CreditChain::direct(),
        }
    }

    fn at(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn grant_within_delta_with_trace_evidence() {
        let snap = snapshot(Some(live_task(Some(1_000))));
        let out = PolicyEngine::evaluate_at(&snap, at(2_500));
        assert_eq!(out.decision.verdict, Verdict::Grant);
        assert_eq!(
            out.decision.reason,
            DecisionReason::WithinThreshold {
                elapsed: SimDuration::from_millis(1_500)
            }
        );
        match out.trace {
            DecisionTrace::WithinThreshold {
                interaction_at,
                chain,
                ..
            } => {
                assert_eq!(interaction_at, at(1_000));
                assert_eq!(chain.hops(), &[CreditHop::Direct]);
            }
            other => panic!("unexpected trace {other:?}"),
        }
    }

    #[test]
    fn deny_at_exactly_delta_is_stale() {
        // Paper: grant iff n < δ, so n == δ is a deny.
        let snap = snapshot(Some(live_task(Some(0))));
        let out = PolicyEngine::evaluate_at(&snap, at(2_000));
        assert_eq!(out.decision.verdict, Verdict::Deny);
        assert_eq!(
            out.decision.reason,
            DecisionReason::Expired {
                elapsed: SimDuration::from_secs(2)
            }
        );
        match out.trace {
            DecisionTrace::Stale { over_by, .. } => {
                assert_eq!(over_by, SimDuration::from_millis(0));
            }
            other => panic!("unexpected trace {other:?}"),
        }
    }

    #[test]
    fn operation_before_interaction_grants_with_zero_elapsed() {
        // saturating_since clamps to 0, which is < δ — matches the
        // pre-refactor monitor exactly.
        let snap = snapshot(Some(live_task(Some(5_000))));
        let out = PolicyEngine::evaluate_at(&snap, at(4_000));
        assert_eq!(
            out.decision.reason,
            DecisionReason::WithinThreshold {
                elapsed: SimDuration::from_millis(0)
            }
        );
    }

    #[test]
    fn quarantine_wins_over_everything() {
        let mut snap = snapshot(Some(live_task(Some(1_000))));
        snap.quarantined = true;
        snap.channel_required = true;
        snap.channel_state = ChannelState::Down;
        let out = PolicyEngine::evaluate_at(&snap, at(1_100));
        assert_eq!(out.trace, DecisionTrace::Quarantined);
        assert_eq!(out.decision.reason, DecisionReason::Quarantined);
    }

    #[test]
    fn channel_down_fails_closed_before_task_lookup() {
        let mut snap = snapshot(None);
        snap.channel_required = true;
        snap.channel_state = ChannelState::Down;
        let out = PolicyEngine::evaluate_at(&snap, at(10));
        assert_eq!(out.trace, DecisionTrace::ChannelDown);
        assert_eq!(out.decision.reason, DecisionReason::ChannelDown);
    }

    #[test]
    fn degraded_channel_does_not_fail_closed() {
        let mut snap = snapshot(Some(live_task(Some(0))));
        snap.channel_required = true;
        snap.channel_state = ChannelState::Degraded;
        let out = PolicyEngine::evaluate_at(&snap, at(100));
        assert_eq!(out.decision.verdict, Verdict::Grant);
    }

    #[test]
    fn frozen_wins_over_grant_all() {
        let mut snap = snapshot(Some(TaskPolicyView {
            frozen: true,
            interaction: Some(at(90)),
            chain: CreditChain::direct(),
        }));
        snap.grant_all = true;
        let out = PolicyEngine::evaluate_at(&snap, at(100));
        assert_eq!(out.trace, DecisionTrace::PermissionsFrozen);
        assert_eq!(out.decision.reason, DecisionReason::PermissionsFrozen);
    }

    #[test]
    fn grant_all_covers_stale_and_absent_interactions() {
        let mut stale = snapshot(Some(live_task(Some(0))));
        stale.grant_all = true;
        let out = PolicyEngine::evaluate_at(&stale, at(10_000));
        assert_eq!(
            out.trace,
            DecisionTrace::GrantAll {
                interaction_at: Some(at(0))
            }
        );

        let mut absent = snapshot(Some(live_task(None)));
        absent.grant_all = true;
        let out = PolicyEngine::evaluate_at(&absent, at(10));
        assert_eq!(
            out.trace,
            DecisionTrace::GrantAll {
                interaction_at: None
            }
        );
        assert_eq!(out.decision.reason, DecisionReason::GrantAll);
    }

    #[test]
    fn fresh_interaction_wins_over_grant_all() {
        let mut snap = snapshot(Some(live_task(Some(1_000))));
        snap.grant_all = true;
        let out = PolicyEngine::evaluate_at(&snap, at(1_100));
        assert!(matches!(out.trace, DecisionTrace::WithinThreshold { .. }));
    }

    #[test]
    fn unknown_process_maps_to_no_interaction_reason() {
        let out = PolicyEngine::evaluate_at(&snapshot(None), at(10));
        assert_eq!(out.trace, DecisionTrace::UnknownProcess);
        assert_eq!(out.decision.reason, DecisionReason::NoInteraction);
        assert_eq!(out.decision.verdict, Verdict::Deny);
    }

    #[test]
    fn audit_details_match_the_legacy_strings() {
        let grant = PolicyEngine::evaluate_at(&snapshot(Some(live_task(Some(0)))), at(100));
        assert_eq!(grant.trace.audit_detail(ResourceOp::Mic), "op=mic granted");
        let deny = PolicyEngine::evaluate_at(&snapshot(Some(live_task(None))), at(100));
        assert_eq!(deny.trace.audit_detail(ResourceOp::Cam), "op=cam denied");
        assert_eq!(
            DecisionTrace::ChannelDown.audit_detail(ResourceOp::Screen),
            "op=scr denied (channel down)"
        );
        assert_eq!(
            DecisionTrace::Quarantined.audit_detail(ResourceOp::Mic),
            "op=mic denied (quarantined pending helper update)"
        );
        assert_eq!(
            DecisionTrace::Quarantined.deny_cause(),
            Some("quarantined pending helper update")
        );
        assert_eq!(DecisionTrace::NoInteraction.deny_cause(), None);
    }

    #[test]
    fn decide_batch_matches_individual_decides() {
        let snap = snapshot(Some(live_task(Some(1_000))));
        let requests: Vec<OpRequest> = [500u64, 1_500, 2_500, 4_000]
            .iter()
            .map(|ms| OpRequest {
                pid: Pid::from_raw(7),
                op: ResourceOp::Mic,
                at: at(*ms),
            })
            .collect();
        let batch = PolicyEngine::decide_batch(&snap, &requests);
        assert_eq!(batch.len(), requests.len());
        for (request, outcome) in requests.iter().zip(&batch) {
            assert_eq!(*outcome, PolicyEngine::decide(&snap, request));
        }
    }

    #[test]
    fn credit_chain_saturates_without_losing_prefix() {
        let mut chain = CreditChain::direct();
        for _ in 0..MAX_CREDIT_HOPS + 4 {
            chain = chain.extended(CreditHop::Fork);
        }
        assert_eq!(chain.len(), MAX_CREDIT_HOPS);
        assert_eq!(chain.hops()[0], CreditHop::Direct);
        assert_eq!(chain.hops()[MAX_CREDIT_HOPS - 1], CreditHop::Fork);
    }

    #[test]
    fn credit_chain_saturation_is_recorded_not_silent() {
        let mut chain = CreditChain::direct();
        for _ in 1..MAX_CREDIT_HOPS {
            chain = chain.extended(CreditHop::Fork);
        }
        // Exactly full: nothing dropped yet.
        assert_eq!(chain.len(), MAX_CREDIT_HOPS);
        assert!(!chain.saturated());

        let full = chain;
        chain = chain.extended(CreditHop::Ipc(IpcMechanism::Pipe));
        assert!(chain.saturated(), "dropped hop must set the flag");
        assert_eq!(chain.hops(), full.hops(), "prefix stays intact");
        assert_ne!(chain, full, "saturation is visible to equality");

        // Saturation is rendered, so decision traces and audit output
        // can never silently misreport a truncated chain.
        let rendered = format!("{chain:?}");
        assert!(rendered.contains("saturated"), "{rendered}");
        assert!(!format!("{full:?}").contains("saturated"));
        let trace = DecisionTrace::Stale {
            interaction_at: Timestamp::from_millis(100),
            elapsed: SimDuration::from_millis(5000),
            delta: SimDuration::from_millis(2000),
            over_by: SimDuration::from_millis(3000),
            chain,
        };
        assert!(
            trace.describe().contains("saturated"),
            "{}",
            trace.describe()
        );
    }

    #[test]
    fn ipc_mechanism_names_match_audit_strings() {
        assert_eq!(IpcMechanism::Pipe.as_str(), "pipe");
        assert_eq!(IpcMechanism::UnixSocket.as_str(), "unix-socket");
        assert_eq!(IpcMechanism::PosixMq.as_str(), "posix-mq");
        assert_eq!(IpcMechanism::SysvMsgq.as_str(), "sysv-msgq");
        assert_eq!(IpcMechanism::Shm.as_str(), "shm");
        assert_eq!(IpcMechanism::Pty.to_string(), "pty");
    }

    #[test]
    fn validity_windows_track_the_delta_boundary() {
        let delta = SimDuration::from_secs(2);
        let snap = snapshot(Some(live_task(Some(1_000))));
        let grant = PolicyEngine::evaluate_at(&snap, at(1_500));
        assert_eq!(
            Validity::for_trace(&grant.trace, delta),
            Validity::Before(at(3_000))
        );
        let stale = PolicyEngine::evaluate_at(&snap, at(4_000));
        assert_eq!(
            Validity::for_trace(&stale.trace, delta),
            Validity::AtOrAfter(at(3_000))
        );
        assert!(Validity::Before(at(3_000)).covers(at(2_999)));
        assert!(!Validity::Before(at(3_000)).covers(at(3_000)));
        assert!(Validity::AtOrAfter(at(3_000)).covers(at(3_000)));
        assert!(!Validity::AtOrAfter(at(3_000)).covers(at(2_999)));
    }

    #[test]
    fn cache_hit_refreshes_elapsed_to_match_fresh_evaluation() {
        let delta = SimDuration::from_secs(2);
        let snap = snapshot(Some(live_task(Some(1_000))));
        let mut cache = VerdictCache::new();
        let id = SlotId::new(0, 0);

        let first = PolicyEngine::evaluate_at(&snap, at(1_100));
        cache.store(id, ResourceOp::Mic, false, 1, 1, delta, &first);

        // Same epoch, later op time, still within the window: the hit
        // must equal a fresh evaluation at the new time.
        let hit = cache
            .lookup(id, ResourceOp::Mic, false, at(2_200), 1, 1)
            .expect("hit");
        assert_eq!(hit, PolicyEngine::evaluate_at(&snap, at(2_200)));
        assert_eq!(
            hit.decision.reason,
            DecisionReason::WithinThreshold {
                elapsed: SimDuration::from_millis(1_200)
            }
        );

        // Past the window the grant must NOT hit: time alone flipped it.
        assert!(cache
            .lookup(id, ResourceOp::Mic, false, at(3_000), 1, 1)
            .is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn cache_misses_on_epoch_changes() {
        let delta = SimDuration::from_secs(2);
        let snap = snapshot(Some(live_task(Some(1_000))));
        let mut cache = VerdictCache::new();
        let id = SlotId::new(0, 0);
        let out = PolicyEngine::evaluate_at(&snap, at(1_100));
        cache.store(id, ResourceOp::Mic, false, 3, 9, delta, &out);

        assert!(cache
            .lookup(id, ResourceOp::Mic, false, at(1_200), 4, 9)
            .is_none());
        assert!(cache
            .lookup(id, ResourceOp::Mic, false, at(1_200), 3, 10)
            .is_none());
        assert!(cache
            .lookup(id, ResourceOp::Cam, false, at(1_200), 3, 9)
            .is_none());
        assert!(cache
            .lookup(id, ResourceOp::Mic, true, at(1_200), 3, 9)
            .is_none());
        assert!(cache
            .lookup(id, ResourceOp::Mic, false, at(1_200), 3, 9)
            .is_some());
    }

    #[test]
    fn stale_deny_hits_refresh_over_by() {
        let delta = SimDuration::from_secs(2);
        let snap = snapshot(Some(live_task(Some(0))));
        let mut cache = VerdictCache::new();
        let id = SlotId::new(0, 0);
        let stale = PolicyEngine::evaluate_at(&snap, at(5_000));
        cache.store(id, ResourceOp::Cam, false, 1, 1, delta, &stale);
        let hit = cache
            .lookup(id, ResourceOp::Cam, false, at(9_000), 1, 1)
            .expect("hit");
        assert_eq!(hit, PolicyEngine::evaluate_at(&snap, at(9_000)));
        match hit.trace {
            DecisionTrace::Stale { over_by, .. } => {
                assert_eq!(over_by, SimDuration::from_secs(7));
            }
            other => panic!("unexpected trace {other:?}"),
        }
    }

    #[test]
    fn cache_clear_drops_entries_but_keeps_counters() {
        let delta = SimDuration::from_secs(2);
        let snap = snapshot(Some(live_task(None)));
        let mut cache = VerdictCache::new();
        let id = SlotId::new(0, 0);
        let out = PolicyEngine::evaluate_at(&snap, at(10));
        cache.store(id, ResourceOp::Mic, false, 1, 1, delta, &out);
        assert!(cache
            .lookup(id, ResourceOp::Mic, false, at(20), 1, 1)
            .is_some());
        cache.clear();
        assert!(cache
            .lookup(id, ResourceOp::Mic, false, at(20), 1, 1)
            .is_none());
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn describe_names_the_evidence() {
        let snap = snapshot(Some(live_task(Some(1_000))));
        let grant = PolicyEngine::evaluate_at(&snap, at(1_500));
        let text = grant.trace.describe();
        assert!(text.contains("granted"));
        assert!(text.contains("500ms"));
        assert!(DecisionTrace::ChannelDown
            .describe()
            .contains("fail closed"));
    }
}
