//! The sensitive-device path map and the trusted udev helper (§IV-B,
//! *Device mediation*).
//!
//! Overhaul's `open` hook needs to know *which filesystem paths are
//! sensitive devices*, but "modern Linux distributions often make use of
//! dynamic device name assignments at runtime using frameworks such as
//! udev". The prototype therefore relies on "a trusted helper application,
//! owned by the superuser ... invoked in response to changes in the device
//! filesystem, (which) propagates these changes to the kernel via an
//! authenticated netlink channel."
//!
//! [`DeviceMap`] is the kernel-side map the helper maintains. Crucially,
//! mediation keys off this map — if the helper lags behind a rename, the
//! device is temporarily unmediated, which is the real design's failure
//! mode and is covered by tests.
//!
//! Paths are interned: each distinct path string is stored once in an
//! append-only [`Interner`] and the live mapping is a dense
//! `Vec<Option<DeviceId>>` indexed by [`Sym`]. Mediation-time lookups cost
//! one string hash plus an array index, and re-announced paths (the
//! helper replays events) never re-allocate. The snapshot encoding is
//! unchanged from the `BTreeMap<String, DeviceId>` layout it replaces, so
//! state hashes and ledger heads are unaffected.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use overhaul_sim::{Interner, Sym};

use crate::device::DeviceId;

/// Kernel-side map from device-node paths to sensitive devices.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DeviceMap {
    /// Every path ever announced, interned once. Symbols are never freed:
    /// device maps are tiny and the helper replays a bounded set of paths.
    paths: Interner,
    /// Live mapping, indexed by `Sym`. `None` marks a path that is known
    /// to the interner but not currently mapped.
    by_sym: Vec<Option<DeviceId>>,
    /// Number of `Some` entries in `by_sym`.
    mapped: usize,
    /// Devices whose old path was revoked while the helper's update about
    /// the new path is still in flight. A quarantined device is unreachable
    /// even at unmapped paths (fail closed) until a fresh mapping arrives.
    quarantined: BTreeSet<DeviceId>,
    /// Bumped on every mutation; folded into the kernel's global policy
    /// epoch so the verdict cache invalidates on map/quarantine changes.
    generation: u64,
}

impl DeviceMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        DeviceMap::default()
    }

    /// The dense mapping cell for `path`, interning it if new.
    fn cell_mut(&mut self, path: &str) -> &mut Option<DeviceId> {
        let sym = self.paths.intern(path);
        let index = sym.as_raw() as usize;
        if index >= self.by_sym.len() {
            self.by_sym.resize(index + 1, None);
        }
        &mut self.by_sym[index]
    }

    /// The dense mapping cell for `path`, if the path was ever announced.
    fn cell(&self, path: &str) -> Option<&Option<DeviceId>> {
        let sym = self.paths.lookup(path)?;
        self.by_sym.get(sym.as_raw() as usize)
    }

    /// Registers `path` as the node of `device`, lifting any quarantine:
    /// a fresh helper-provided mapping is the all-clear.
    pub fn insert(&mut self, path: impl Into<String>, device: DeviceId) {
        self.quarantined.remove(&device);
        let cell = self.cell_mut(&path.into());
        if cell.replace(device).is_none() {
            self.mapped += 1;
        }
        self.generation += 1;
    }

    /// Removes a path mapping, returning the device it pointed to.
    pub fn remove(&mut self, path: &str) -> Option<DeviceId> {
        let sym = self.paths.lookup(path)?;
        let removed = self.by_sym.get_mut(sym.as_raw() as usize)?.take();
        if removed.is_some() {
            self.mapped -= 1;
            self.generation += 1;
        }
        removed
    }

    /// Revokes a path mapping and quarantines its device: the node moved
    /// and the helper's update for the new location has not arrived yet, so
    /// the device must stay unreachable in the meantime.
    pub fn revoke(&mut self, path: &str) -> Option<DeviceId> {
        let sym = self.paths.lookup(path)?;
        let device = self.by_sym.get_mut(sym.as_raw() as usize)?.take()?;
        self.mapped -= 1;
        self.quarantined.insert(device);
        self.generation += 1;
        Some(device)
    }

    /// Whether `device` is quarantined pending a helper update.
    pub fn is_quarantined(&self, device: DeviceId) -> bool {
        self.quarantined.contains(&device)
    }

    /// Applies a rename reported by the trusted helper. A rename of an
    /// unknown path is ignored (the helper may replay events). A completed
    /// rename lifts any quarantine on the device.
    pub fn rename(&mut self, old_path: &str, new_path: impl Into<String>) {
        let Some(sym) = self.paths.lookup(old_path) else {
            return;
        };
        let Some(device) = self
            .by_sym
            .get_mut(sym.as_raw() as usize)
            .and_then(Option::take)
        else {
            return;
        };
        self.quarantined.remove(&device);
        *self.cell_mut(&new_path.into()) = Some(device);
        self.generation += 1;
    }

    /// Monotone counter of map mutations (the device map's contribution to
    /// the global policy epoch).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The sensitive device at `path`, if the map knows one.
    #[inline]
    pub fn lookup(&self, path: &str) -> Option<DeviceId> {
        *self.cell(path)?
    }

    /// The symbol for `path`, if the path was ever announced to the map.
    /// Symbols are stable for the life of the map, so callers on hot paths
    /// can resolve a path to an integer once and compare integers after.
    pub fn sym_of(&self, path: &str) -> Option<Sym> {
        self.paths.lookup(path)
    }

    /// The sensitive device mapped at `sym`, if any. Array-indexed: the
    /// no-string-hash fast path for callers holding a [`Sym`].
    #[inline]
    pub fn lookup_sym(&self, sym: Sym) -> Option<DeviceId> {
        *self.by_sym.get(sym.as_raw() as usize)?
    }

    /// Whether `path` is currently mapped as sensitive.
    pub fn is_sensitive(&self, path: &str) -> bool {
        self.lookup(path).is_some()
    }

    /// The current path of `device`, if mapped.
    pub fn path_of(&self, device: DeviceId) -> Option<&str> {
        self.by_sym
            .iter()
            .position(|d| *d == Some(device))
            .map(|i| self.paths.resolve(Sym::from_raw(i as u32)))
    }

    /// The mapped `(path, device)` pairs in path order. Paths intern in
    /// announcement order, so this sorts the (tiny) live set on demand.
    fn sorted_pairs(&self) -> Vec<(&str, DeviceId)> {
        let mut pairs: Vec<(&str, DeviceId)> = self
            .by_sym
            .iter()
            .enumerate()
            .filter_map(|(i, dev)| dev.map(|d| (self.paths.resolve(Sym::from_raw(i as u32)), d)))
            .collect();
        pairs.sort_unstable_by_key(|(path, _)| *path);
        pairs
    }

    /// Iterates the mapped `(path, device)` pairs in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, DeviceId)> + '_ {
        self.sorted_pairs().into_iter()
    }

    /// Iterates the quarantined devices in id order.
    pub fn quarantined_iter(&self) -> impl Iterator<Item = DeviceId> + '_ {
        self.quarantined.iter().copied()
    }

    /// Number of mapped paths.
    pub fn len(&self) -> usize {
        self.mapped
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.mapped == 0
    }
}

impl DeviceMap {
    /// Rebuilds the interner + dense table from the external sorted-map
    /// shape (the snapshot decode path).
    fn from_sorted(
        by_path: BTreeMap<String, DeviceId>,
        quarantined: BTreeSet<DeviceId>,
        generation: u64,
    ) -> Self {
        let mut map = DeviceMap {
            quarantined,
            ..DeviceMap::default()
        };
        for (path, device) in by_path {
            *map.cell_mut(&path) = Some(device);
            map.mapped += 1;
        }
        map.generation = generation;
        map
    }
}

mod pack {
    //! Snapshot codec for the device map (including quarantine state and
    //! the policy-epoch generation counter). Encodes the sorted-pair
    //! `BTreeMap` layout the pre-interning map used, byte for byte, so
    //! `state_hash` and every committed snapshot stay valid; the interner
    //! and dense table are rebuilt on decode.

    use std::collections::{BTreeMap, BTreeSet};

    use overhaul_sim::{Dec, Enc, Pack, SnapshotError};

    use super::DeviceMap;
    use crate::device::DeviceId;

    impl Pack for DeviceMap {
        fn pack(&self, enc: &mut Enc) {
            enc.put_u64(self.mapped as u64);
            for (path, device) in self.iter() {
                enc.put_u64(path.len() as u64);
                enc.put_slice(path.as_bytes());
                device.pack(enc);
            }
            self.quarantined.pack(enc);
            enc.put_u64(self.generation);
        }

        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            let by_path = BTreeMap::<String, DeviceId>::unpack(dec)?;
            let quarantined = BTreeSet::<DeviceId>::unpack(dec)?;
            let generation = dec.take_u64()?;
            Ok(DeviceMap::from_sorted(by_path, quarantined, generation))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overhaul_sim::{Enc, Pack};

    #[test]
    fn insert_and_lookup() {
        let mut map = DeviceMap::new();
        map.insert("/dev/video0", DeviceId::from_raw(1));
        assert_eq!(map.lookup("/dev/video0"), Some(DeviceId::from_raw(1)));
        assert!(map.is_sensitive("/dev/video0"));
        assert!(!map.is_sensitive("/dev/null"));
    }

    #[test]
    fn rename_moves_mapping() {
        let mut map = DeviceMap::new();
        map.insert("/dev/video0", DeviceId::from_raw(1));
        map.rename("/dev/video0", "/dev/video1");
        assert_eq!(map.lookup("/dev/video0"), None);
        assert_eq!(map.lookup("/dev/video1"), Some(DeviceId::from_raw(1)));
    }

    #[test]
    fn rename_of_unknown_path_is_ignored() {
        let mut map = DeviceMap::new();
        map.rename("/dev/ghost", "/dev/real");
        assert!(map.is_empty());
    }

    #[test]
    fn remove_returns_device() {
        let mut map = DeviceMap::new();
        map.insert("/dev/snd", DeviceId::from_raw(2));
        assert_eq!(map.remove("/dev/snd"), Some(DeviceId::from_raw(2)));
        assert_eq!(map.remove("/dev/snd"), None);
    }

    #[test]
    fn revoke_quarantines_until_reinserted() {
        let mut map = DeviceMap::new();
        let dev = DeviceId::from_raw(4);
        map.insert("/dev/video0", dev);
        assert_eq!(map.revoke("/dev/video0"), Some(dev));
        assert!(map.is_quarantined(dev));
        assert_eq!(map.lookup("/dev/video0"), None);

        map.insert("/dev/video1", dev);
        assert!(!map.is_quarantined(dev), "fresh mapping lifts quarantine");
        assert_eq!(map.lookup("/dev/video1"), Some(dev));
    }

    #[test]
    fn revoke_of_unknown_path_quarantines_nothing() {
        let mut map = DeviceMap::new();
        assert_eq!(map.revoke("/dev/ghost"), None);
        assert!(!map.is_quarantined(DeviceId::from_raw(1)));
    }

    #[test]
    fn rename_lifts_quarantine() {
        let mut map = DeviceMap::new();
        let dev = DeviceId::from_raw(5);
        map.insert("/dev/a", dev);
        map.revoke("/dev/a");
        map.insert("/dev/a", dev); // helper re-announces the old path
        map.rename("/dev/a", "/dev/b");
        assert!(!map.is_quarantined(dev));
        assert_eq!(map.lookup("/dev/b"), Some(dev));
    }

    #[test]
    fn generation_bumps_on_every_mutation_only() {
        let mut map = DeviceMap::new();
        let dev = DeviceId::from_raw(7);
        assert_eq!(map.generation(), 0);
        map.insert("/dev/a", dev);
        assert_eq!(map.generation(), 1);
        map.revoke("/dev/a");
        assert_eq!(map.generation(), 2);
        // Revoking an unknown path changes nothing.
        map.revoke("/dev/ghost");
        assert_eq!(map.generation(), 2);
        map.insert("/dev/b", dev);
        map.rename("/dev/b", "/dev/c");
        assert_eq!(map.generation(), 4);
        map.rename("/dev/ghost", "/dev/real");
        assert_eq!(map.generation(), 4);
        assert_eq!(map.remove("/dev/c"), Some(dev));
        assert_eq!(map.generation(), 5);
        assert_eq!(map.remove("/dev/c"), None);
        assert_eq!(map.generation(), 5);
    }

    #[test]
    fn path_of_reverse_lookup() {
        let mut map = DeviceMap::new();
        map.insert("/dev/mic", DeviceId::from_raw(3));
        assert_eq!(map.path_of(DeviceId::from_raw(3)), Some("/dev/mic"));
        assert_eq!(map.path_of(DeviceId::from_raw(9)), None);
    }

    #[test]
    fn sym_lookup_is_stable_across_remap() {
        let mut map = DeviceMap::new();
        map.insert("/dev/video0", DeviceId::from_raw(1));
        let sym = map.sym_of("/dev/video0").expect("interned");
        assert_eq!(map.lookup_sym(sym), Some(DeviceId::from_raw(1)));
        map.remove("/dev/video0");
        assert_eq!(map.lookup_sym(sym), None, "sym survives, mapping gone");
        map.insert("/dev/video0", DeviceId::from_raw(2));
        assert_eq!(map.sym_of("/dev/video0"), Some(sym), "sym is stable");
        assert_eq!(map.lookup_sym(sym), Some(DeviceId::from_raw(2)));
    }

    #[test]
    fn pack_layout_matches_legacy_btreemap_encoding() {
        let mut map = DeviceMap::new();
        // Announce out of path order and churn so the dense table diverges
        // from sorted order; the encoding must still be the sorted one.
        map.insert("/dev/video9", DeviceId::from_raw(9));
        map.insert("/dev/audio", DeviceId::from_raw(2));
        map.insert("/dev/mic", DeviceId::from_raw(3));
        map.revoke("/dev/audio");
        map.rename("/dev/video9", "/dev/cam");

        let mut legacy_by_path = BTreeMap::new();
        for (path, dev) in map.iter() {
            legacy_by_path.insert(path.to_string(), dev);
        }
        let mut legacy = Enc::new();
        legacy_by_path.pack(&mut legacy);
        map.quarantined.pack(&mut legacy);
        legacy.put_u64(map.generation());

        let mut current = Enc::new();
        map.pack(&mut current);
        assert_eq!(current.bytes(), legacy.bytes());

        let mut dec = overhaul_sim::Dec::new(current.bytes());
        let restored = DeviceMap::unpack(&mut dec).expect("decode");
        dec.finish().expect("no trailing bytes");
        assert_eq!(restored.len(), map.len());
        assert_eq!(restored.generation(), map.generation());
        assert_eq!(
            restored.iter().collect::<Vec<_>>(),
            map.iter().collect::<Vec<_>>()
        );
        assert!(restored.is_quarantined(DeviceId::from_raw(2)));
    }
}
