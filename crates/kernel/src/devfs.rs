//! The sensitive-device path map and the trusted udev helper (§IV-B,
//! *Device mediation*).
//!
//! Overhaul's `open` hook needs to know *which filesystem paths are
//! sensitive devices*, but "modern Linux distributions often make use of
//! dynamic device name assignments at runtime using frameworks such as
//! udev". The prototype therefore relies on "a trusted helper application,
//! owned by the superuser ... invoked in response to changes in the device
//! filesystem, (which) propagates these changes to the kernel via an
//! authenticated netlink channel."
//!
//! [`DeviceMap`] is the kernel-side map the helper maintains. Crucially,
//! mediation keys off this map — if the helper lags behind a rename, the
//! device is temporarily unmediated, which is the real design's failure
//! mode and is covered by tests.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::device::DeviceId;

/// Kernel-side map from device-node paths to sensitive devices.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DeviceMap {
    by_path: BTreeMap<String, DeviceId>,
    /// Devices whose old path was revoked while the helper's update about
    /// the new path is still in flight. A quarantined device is unreachable
    /// even at unmapped paths (fail closed) until a fresh mapping arrives.
    quarantined: BTreeSet<DeviceId>,
    /// Bumped on every mutation; folded into the kernel's global policy
    /// epoch so the verdict cache invalidates on map/quarantine changes.
    generation: u64,
}

impl DeviceMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        DeviceMap::default()
    }

    /// Registers `path` as the node of `device`, lifting any quarantine:
    /// a fresh helper-provided mapping is the all-clear.
    pub fn insert(&mut self, path: impl Into<String>, device: DeviceId) {
        self.quarantined.remove(&device);
        self.by_path.insert(path.into(), device);
        self.generation += 1;
    }

    /// Removes a path mapping, returning the device it pointed to.
    pub fn remove(&mut self, path: &str) -> Option<DeviceId> {
        let removed = self.by_path.remove(path);
        if removed.is_some() {
            self.generation += 1;
        }
        removed
    }

    /// Revokes a path mapping and quarantines its device: the node moved
    /// and the helper's update for the new location has not arrived yet, so
    /// the device must stay unreachable in the meantime.
    pub fn revoke(&mut self, path: &str) -> Option<DeviceId> {
        let device = self.by_path.remove(path)?;
        self.quarantined.insert(device);
        self.generation += 1;
        Some(device)
    }

    /// Whether `device` is quarantined pending a helper update.
    pub fn is_quarantined(&self, device: DeviceId) -> bool {
        self.quarantined.contains(&device)
    }

    /// Applies a rename reported by the trusted helper. A rename of an
    /// unknown path is ignored (the helper may replay events). A completed
    /// rename lifts any quarantine on the device.
    pub fn rename(&mut self, old_path: &str, new_path: impl Into<String>) {
        if let Some(device) = self.by_path.remove(old_path) {
            self.quarantined.remove(&device);
            self.by_path.insert(new_path.into(), device);
            self.generation += 1;
        }
    }

    /// Monotone counter of map mutations (the device map's contribution to
    /// the global policy epoch).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The sensitive device at `path`, if the map knows one.
    pub fn lookup(&self, path: &str) -> Option<DeviceId> {
        self.by_path.get(path).copied()
    }

    /// Whether `path` is currently mapped as sensitive.
    pub fn is_sensitive(&self, path: &str) -> bool {
        self.by_path.contains_key(path)
    }

    /// The current path of `device`, if mapped.
    pub fn path_of(&self, device: DeviceId) -> Option<&str> {
        self.by_path
            .iter()
            .find(|(_, d)| **d == device)
            .map(|(p, _)| p.as_str())
    }

    /// Iterates the mapped `(path, device)` pairs in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, DeviceId)> + '_ {
        self.by_path.iter().map(|(path, dev)| (path.as_str(), *dev))
    }

    /// Iterates the quarantined devices in id order.
    pub fn quarantined_iter(&self) -> impl Iterator<Item = DeviceId> + '_ {
        self.quarantined.iter().copied()
    }

    /// Number of mapped paths.
    pub fn len(&self) -> usize {
        self.by_path.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.by_path.is_empty()
    }
}

mod pack {
    //! Snapshot codec for the device map (including quarantine state and
    //! the policy-epoch generation counter).

    use overhaul_sim::impl_pack;

    use super::DeviceMap;

    impl_pack!(DeviceMap {
        by_path,
        quarantined,
        generation
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut map = DeviceMap::new();
        map.insert("/dev/video0", DeviceId::from_raw(1));
        assert_eq!(map.lookup("/dev/video0"), Some(DeviceId::from_raw(1)));
        assert!(map.is_sensitive("/dev/video0"));
        assert!(!map.is_sensitive("/dev/null"));
    }

    #[test]
    fn rename_moves_mapping() {
        let mut map = DeviceMap::new();
        map.insert("/dev/video0", DeviceId::from_raw(1));
        map.rename("/dev/video0", "/dev/video1");
        assert_eq!(map.lookup("/dev/video0"), None);
        assert_eq!(map.lookup("/dev/video1"), Some(DeviceId::from_raw(1)));
    }

    #[test]
    fn rename_of_unknown_path_is_ignored() {
        let mut map = DeviceMap::new();
        map.rename("/dev/ghost", "/dev/real");
        assert!(map.is_empty());
    }

    #[test]
    fn remove_returns_device() {
        let mut map = DeviceMap::new();
        map.insert("/dev/snd", DeviceId::from_raw(2));
        assert_eq!(map.remove("/dev/snd"), Some(DeviceId::from_raw(2)));
        assert_eq!(map.remove("/dev/snd"), None);
    }

    #[test]
    fn revoke_quarantines_until_reinserted() {
        let mut map = DeviceMap::new();
        let dev = DeviceId::from_raw(4);
        map.insert("/dev/video0", dev);
        assert_eq!(map.revoke("/dev/video0"), Some(dev));
        assert!(map.is_quarantined(dev));
        assert_eq!(map.lookup("/dev/video0"), None);

        map.insert("/dev/video1", dev);
        assert!(!map.is_quarantined(dev), "fresh mapping lifts quarantine");
        assert_eq!(map.lookup("/dev/video1"), Some(dev));
    }

    #[test]
    fn revoke_of_unknown_path_quarantines_nothing() {
        let mut map = DeviceMap::new();
        assert_eq!(map.revoke("/dev/ghost"), None);
        assert!(!map.is_quarantined(DeviceId::from_raw(1)));
    }

    #[test]
    fn rename_lifts_quarantine() {
        let mut map = DeviceMap::new();
        let dev = DeviceId::from_raw(5);
        map.insert("/dev/a", dev);
        map.revoke("/dev/a");
        map.insert("/dev/a", dev); // helper re-announces the old path
        map.rename("/dev/a", "/dev/b");
        assert!(!map.is_quarantined(dev));
        assert_eq!(map.lookup("/dev/b"), Some(dev));
    }

    #[test]
    fn generation_bumps_on_every_mutation_only() {
        let mut map = DeviceMap::new();
        let dev = DeviceId::from_raw(7);
        assert_eq!(map.generation(), 0);
        map.insert("/dev/a", dev);
        assert_eq!(map.generation(), 1);
        map.revoke("/dev/a");
        assert_eq!(map.generation(), 2);
        // Revoking an unknown path changes nothing.
        map.revoke("/dev/ghost");
        assert_eq!(map.generation(), 2);
        map.insert("/dev/b", dev);
        map.rename("/dev/b", "/dev/c");
        assert_eq!(map.generation(), 4);
        map.rename("/dev/ghost", "/dev/real");
        assert_eq!(map.generation(), 4);
        assert_eq!(map.remove("/dev/c"), Some(dev));
        assert_eq!(map.generation(), 5);
        assert_eq!(map.remove("/dev/c"), None);
        assert_eq!(map.generation(), 5);
    }

    #[test]
    fn path_of_reverse_lookup() {
        let mut map = DeviceMap::new();
        map.insert("/dev/mic", DeviceId::from_raw(3));
        assert_eq!(map.path_of(DeviceId::from_raw(3)), Some("/dev/mic"));
        assert_eq!(map.path_of(DeviceId::from_raw(9)), None);
    }
}
