//! Overhaul's procfs nodes.
//!
//! The paper exposes a single toggle: ptrace hardening "could be toggled by
//! the super user through a proc filesystem node to facilitate legitimate
//! debugging tasks". This reproduction adds a δ tunable and a stats node
//! for the experiment harnesses. Node I/O happens through
//! [`crate::Kernel::sys_procfs_read`] / [`crate::Kernel::sys_procfs_write`].

/// Toggle node for ptrace hardening (`"0"` / `"1"`, root-writable).
pub const PTRACE_HARDENING: &str = "/proc/overhaul/ptrace_hardening";

/// The temporal-proximity threshold δ in milliseconds (root-writable).
pub const DELTA_MS: &str = "/proc/overhaul/delta_ms";

/// Read-only permission-monitor counters.
pub const STATS: &str = "/proc/overhaul/stats";

/// Read-only Prometheus-style metrics page: every monitor and channel
/// counter, memory-manager and verdict-cache statistics, fault-injection
/// tallies, and the tracing-native metrics (propagation hops per IPC
/// mechanism, credit-chain saturation, virtual-time histograms) rendered
/// from one [`overhaul_sim::MetricsRegistry`].
pub const METRICS: &str = "/proc/overhaul/metrics";

/// All known node paths.
pub const ALL_NODES: [&str; 4] = [PTRACE_HARDENING, DELTA_MS, STATS, METRICS];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_paths_live_under_proc_overhaul() {
        for node in ALL_NODES {
            assert!(node.starts_with("/proc/overhaul/"), "{node}");
        }
    }
}
