//! The kernel permission monitor (§III-B, §IV-B).
//!
//! The monitor stores interaction notifications from the display manager in
//! each task's `task_struct` and answers permission queries by *temporal
//! proximity*: a privileged operation at time `t+n` is correlated with the
//! latest authentic input at time `t`, and granted iff `n < δ`. The paper
//! empirically sets δ = 2 s ("less than 1 second could lead to falsely
//! revoked permissions, but 2 seconds is sufficient").
//!
//! For Table I the authors "temporarily modified OVERHAUL's permission
//! monitor to grant access to resources even when there is no user
//! interaction, in order to exercise the entire execution path" — that mode
//! is [`MonitorConfig::grant_all`].

use std::fmt;

use overhaul_sim::{Pid, SimDuration, Timestamp};
use serde::{Deserialize, Serialize};

use crate::error::SysResult;
use crate::netlink::ChannelState;
use crate::policy::{PolicyEngine, PolicySnapshot, TaskPolicyView};
use crate::process::ProcessTable;

/// A privileged operation class, the paper's
/// `op ∈ {copy, paste, scr, mic, cam}` (plus generic sensors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceOp {
    /// Microphone access.
    Mic,
    /// Camera access.
    Cam,
    /// Other sensor access.
    Sensor,
    /// Screen-contents capture.
    Screen,
    /// Clipboard copy (selection ownership).
    Copy,
    /// Clipboard paste (selection conversion).
    Paste,
}

impl ResourceOp {
    /// The paper's short name for the operation class — static, so trace
    /// spans and metric labels on the mediation hot path never allocate.
    pub fn as_str(self) -> &'static str {
        match self {
            ResourceOp::Mic => "mic",
            ResourceOp::Cam => "cam",
            ResourceOp::Sensor => "sensor",
            ResourceOp::Screen => "scr",
            ResourceOp::Copy => "copy",
            ResourceOp::Paste => "paste",
        }
    }
}

impl fmt::Display for ResourceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Grant or deny.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The operation may proceed.
    Grant,
    /// The operation is blocked.
    Deny,
}

impl Verdict {
    /// Whether this is a grant.
    pub fn is_grant(self) -> bool {
        matches!(self, Verdict::Grant)
    }
}

/// Why the monitor decided the way it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecisionReason {
    /// Granted: the operation followed an authentic interaction within δ.
    WithinThreshold {
        /// `n = (t+n) - t`, the interaction-to-operation gap.
        elapsed: SimDuration,
    },
    /// Granted unconditionally (benchmark mode, checks still executed).
    GrantAll,
    /// Denied: the process never received an authentic interaction.
    NoInteraction,
    /// Denied: the last interaction is older than δ.
    Expired {
        /// The stale gap.
        elapsed: SimDuration,
    },
    /// Denied: ptrace hardening froze this task's permissions.
    PermissionsFrozen,
    /// Denied: the kernel↔display-manager channel is down, so no authentic
    /// interaction evidence can reach the monitor — fail closed.
    ChannelDown,
    /// Denied: the device is quarantined pending a helper map update.
    Quarantined,
}

/// The monitor's answer to a permission query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decision {
    /// Grant or deny.
    pub verdict: Verdict,
    /// Why.
    pub reason: DecisionReason,
}

/// A pending visual-alert request from the kernel to the display manager
/// (`V_{A,op}` in the paper; step 6 of Figure 1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlertRequest {
    /// Process that performed (or attempted) the operation.
    pub pid: Pid,
    /// Process name, resolved kernel-side so the display manager can render
    /// a meaningful alert even for processes that are not X clients.
    pub process_name: String,
    /// The operation class.
    pub op: ResourceOp,
    /// Whether the access was granted (alerts fire for blocked attempts
    /// too, as in the §V-B camera-probe experiment).
    pub granted: bool,
    /// When the decision was made.
    pub at: Timestamp,
    /// For denials with an out-of-band cause (channel down, device
    /// quarantine), the cause exactly as the overlay should render it.
    /// `None` for plain temporal-proximity outcomes.
    pub reason: Option<String>,
}

/// Tunables of the permission monitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Temporal-proximity threshold δ. Paper default: 2 s.
    pub delta: SimDuration,
    /// Benchmark mode: run every check but always grant (Table I setup).
    pub grant_all: bool,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            delta: SimDuration::from_secs(2),
            grant_all: false,
        }
    }
}

/// Running counters kept by the monitor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitorStats {
    /// Interaction notifications recorded.
    pub notifications: u64,
    /// Queries answered `Grant`.
    pub grants: u64,
    /// Queries answered `Deny`.
    pub denies: u64,
    /// Channel messages that needed at least one retry to get through.
    pub channel_retries: u64,
    /// Channel messages lost for good (all retries exhausted).
    pub channel_drops: u64,
    /// Times a restarted display manager re-authenticated the channel.
    pub channel_reconnects: u64,
    /// Duplicate channel deliveries suppressed by sequence-number dedup.
    pub channel_dup_suppressed: u64,
    /// Denials issued purely because the channel was down (fail closed).
    /// Every one of these is also counted in `denies`.
    pub fail_closed_denies: u64,
    /// Visual-alert requests queued for the display manager.
    pub alerts_queued: u64,
}

/// The kernel permission monitor.
///
/// ```
/// use overhaul_kernel::monitor::{MonitorConfig, PermissionMonitor};
/// use overhaul_kernel::process::ProcessTable;
/// use overhaul_sim::{Pid, Timestamp};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut tasks = ProcessTable::new();
/// let app = tasks.fork(Pid::INIT)?;
/// let mut monitor = PermissionMonitor::new(MonitorConfig::default());
///
/// monitor.record_interaction(&mut tasks, app, Timestamp::from_millis(1_000))?;
/// // 500 ms later: within δ = 2 s, granted.
/// assert!(monitor.check(&tasks, app, Timestamp::from_millis(1_500))?.verdict.is_grant());
/// // 5 s later: expired, denied.
/// assert!(!monitor.check(&tasks, app, Timestamp::from_millis(6_000))?.verdict.is_grant());
/// # Ok(())
/// # }
/// ```
/// The kernel permission monitor.
#[derive(Debug, Clone, Default)]
pub struct PermissionMonitor {
    config: MonitorConfig,
    stats: MonitorStats,
    pending_alerts: Vec<AlertRequest>,
}

impl PermissionMonitor {
    /// Creates a monitor with the given tunables.
    pub fn new(config: MonitorConfig) -> Self {
        PermissionMonitor {
            config,
            stats: MonitorStats::default(),
            pending_alerts: Vec::new(),
        }
    }

    /// Current configuration.
    pub fn config(&self) -> MonitorConfig {
        self.config
    }

    /// Replaces the configuration (δ sweeps in the ablation benches).
    pub fn set_config(&mut self, config: MonitorConfig) {
        self.config = config;
    }

    /// Counters.
    pub fn stats(&self) -> MonitorStats {
        self.stats
    }

    /// Records an interaction notification `N_{A,t}` for `pid` inside its
    /// task structure. Returns whether the stored timestamp changed.
    ///
    /// # Errors
    ///
    /// [`crate::error::Errno::Esrch`] if `pid` does not exist — the binding
    /// between notifications and processes is by pid, so a stale pid is
    /// simply dropped.
    pub fn record_interaction(
        &mut self,
        tasks: &mut ProcessTable,
        pid: Pid,
        at: Timestamp,
    ) -> SysResult<bool> {
        let task = tasks.get_mut(pid)?;
        self.stats.notifications += 1;
        Ok(task.observe_interaction(at))
    }

    /// Answers a permission query `Q_{A,t+n}`: compares the task's stored
    /// interaction time `t` with the operation time `op_at = t+n` and grants
    /// iff `n < δ`.
    ///
    /// # Errors
    ///
    /// [`crate::error::Errno::Esrch`] if `pid` does not exist.
    pub fn check(
        &mut self,
        tasks: &ProcessTable,
        pid: Pid,
        op_at: Timestamp,
    ) -> SysResult<Decision> {
        let task = tasks.get(pid)?;
        // The monitor answers pure temporal-proximity queries: channel state
        // and device quarantine are the kernel's concern (handled before the
        // query ever reaches the monitor), so the snapshot is benign there.
        let snapshot = PolicySnapshot {
            delta: self.config.delta,
            grant_all: self.config.grant_all,
            channel_required: false,
            channel_state: ChannelState::Up,
            quarantined: false,
            task: Some(TaskPolicyView {
                frozen: task.permissions_frozen(),
                interaction: task.raw_interaction(),
                chain: task.credit_chain(),
            }),
        };
        let outcome = PolicyEngine::evaluate_at(&snapshot, op_at);
        self.note_verdict(outcome.decision.verdict.is_grant());
        Ok(outcome.decision)
    }

    /// Counts a verdict computed outside the monitor (the kernel's unified
    /// decision path) so `grants`/`denies` stay authoritative regardless of
    /// which layer evaluated the policy.
    pub(crate) fn note_verdict(&mut self, granted: bool) {
        if granted {
            self.stats.grants += 1;
        } else {
            self.stats.denies += 1;
        }
    }

    /// Records a channel message retry.
    pub fn note_channel_retry(&mut self) {
        self.stats.channel_retries += 1;
    }

    /// Records a channel message lost after exhausting its retries.
    pub fn note_channel_drop(&mut self) {
        self.stats.channel_drops += 1;
    }

    /// Records a display-manager channel re-authentication.
    pub fn note_channel_reconnect(&mut self) {
        self.stats.channel_reconnects += 1;
    }

    /// Records a duplicate delivery suppressed by sequence-number dedup.
    pub fn note_dup_suppressed(&mut self) {
        self.stats.channel_dup_suppressed += 1;
    }

    /// Records a denial issued because the channel was down (fail closed).
    /// Counts in both `fail_closed_denies` and the overall `denies`.
    pub fn note_fail_closed(&mut self) {
        self.stats.fail_closed_denies += 1;
        self.stats.denies += 1;
    }

    /// Queues a visual alert request `V_{A,op}` for the display manager.
    pub fn request_alert(&mut self, alert: AlertRequest) {
        self.stats.alerts_queued += 1;
        self.pending_alerts.push(alert);
    }

    /// Drains queued alert requests (read by the secure channel / core).
    pub fn take_alerts(&mut self) -> Vec<AlertRequest> {
        std::mem::take(&mut self.pending_alerts)
    }

    /// Number of alerts waiting to be delivered.
    pub fn pending_alert_count(&self) -> usize {
        self.pending_alerts.len()
    }
}

mod pack {
    //! Snapshot codec for the monitor (hashed state: stats and queued
    //! alerts are part of the event-history-determined kernel state).

    use overhaul_sim::impl_pack;
    use overhaul_sim::snapshot::{Dec, Enc, Pack, SnapshotError};

    use super::{
        AlertRequest, Decision, DecisionReason, MonitorConfig, MonitorStats, PermissionMonitor,
        ResourceOp, Verdict,
    };

    impl Pack for ResourceOp {
        fn pack(&self, enc: &mut Enc) {
            enc.put_u8(match self {
                ResourceOp::Mic => 0,
                ResourceOp::Cam => 1,
                ResourceOp::Sensor => 2,
                ResourceOp::Screen => 3,
                ResourceOp::Copy => 4,
                ResourceOp::Paste => 5,
            });
        }
        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            Ok(match dec.take_u8()? {
                0 => ResourceOp::Mic,
                1 => ResourceOp::Cam,
                2 => ResourceOp::Sensor,
                3 => ResourceOp::Screen,
                4 => ResourceOp::Copy,
                5 => ResourceOp::Paste,
                _ => return Err(SnapshotError::BadValue("resource op")),
            })
        }
    }

    impl Pack for Verdict {
        fn pack(&self, enc: &mut Enc) {
            enc.put_u8(match self {
                Verdict::Grant => 0,
                Verdict::Deny => 1,
            });
        }
        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            Ok(match dec.take_u8()? {
                0 => Verdict::Grant,
                1 => Verdict::Deny,
                _ => return Err(SnapshotError::BadValue("verdict")),
            })
        }
    }

    impl Pack for DecisionReason {
        fn pack(&self, enc: &mut Enc) {
            match self {
                DecisionReason::WithinThreshold { elapsed } => {
                    enc.put_u8(0);
                    elapsed.pack(enc);
                }
                DecisionReason::GrantAll => enc.put_u8(1),
                DecisionReason::NoInteraction => enc.put_u8(2),
                DecisionReason::Expired { elapsed } => {
                    enc.put_u8(3);
                    elapsed.pack(enc);
                }
                DecisionReason::PermissionsFrozen => enc.put_u8(4),
                DecisionReason::ChannelDown => enc.put_u8(5),
                DecisionReason::Quarantined => enc.put_u8(6),
            }
        }
        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            Ok(match dec.take_u8()? {
                0 => DecisionReason::WithinThreshold {
                    elapsed: Pack::unpack(dec)?,
                },
                1 => DecisionReason::GrantAll,
                2 => DecisionReason::NoInteraction,
                3 => DecisionReason::Expired {
                    elapsed: Pack::unpack(dec)?,
                },
                4 => DecisionReason::PermissionsFrozen,
                5 => DecisionReason::ChannelDown,
                6 => DecisionReason::Quarantined,
                _ => return Err(SnapshotError::BadValue("decision reason")),
            })
        }
    }

    impl_pack!(Decision { verdict, reason });
    impl_pack!(AlertRequest {
        pid,
        process_name,
        op,
        granted,
        at,
        reason
    });
    impl_pack!(MonitorConfig { delta, grant_all });
    impl_pack!(MonitorStats {
        notifications,
        grants,
        denies,
        channel_retries,
        channel_drops,
        channel_reconnects,
        channel_dup_suppressed,
        fail_closed_denies,
        alerts_queued
    });
    impl_pack!(PermissionMonitor {
        config,
        stats,
        pending_alerts
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Errno;

    fn setup() -> (PermissionMonitor, ProcessTable, Pid) {
        let mut tasks = ProcessTable::new();
        let pid = tasks.fork(Pid::INIT).unwrap();
        (PermissionMonitor::new(MonitorConfig::default()), tasks, pid)
    }

    #[test]
    fn grant_within_delta() {
        let (mut monitor, mut tasks, pid) = setup();
        monitor
            .record_interaction(&mut tasks, pid, Timestamp::from_millis(1000))
            .unwrap();
        let d = monitor
            .check(&tasks, pid, Timestamp::from_millis(2500))
            .unwrap();
        assert_eq!(d.verdict, Verdict::Grant);
        assert_eq!(
            d.reason,
            DecisionReason::WithinThreshold {
                elapsed: SimDuration::from_millis(1500)
            }
        );
    }

    #[test]
    fn deny_at_exactly_delta() {
        // Paper: grant iff n < δ, so n == δ is a deny.
        let (mut monitor, mut tasks, pid) = setup();
        monitor
            .record_interaction(&mut tasks, pid, Timestamp::from_millis(0))
            .unwrap();
        let d = monitor
            .check(&tasks, pid, Timestamp::from_millis(2000))
            .unwrap();
        assert_eq!(d.verdict, Verdict::Deny);
    }

    #[test]
    fn deny_without_interaction() {
        let (mut monitor, tasks, pid) = setup();
        let d = monitor
            .check(&tasks, pid, Timestamp::from_millis(10))
            .unwrap();
        assert_eq!(d.verdict, Verdict::Deny);
        assert_eq!(d.reason, DecisionReason::NoInteraction);
    }

    #[test]
    fn deny_after_expiry() {
        let (mut monitor, mut tasks, pid) = setup();
        monitor
            .record_interaction(&mut tasks, pid, Timestamp::from_millis(0))
            .unwrap();
        let d = monitor
            .check(&tasks, pid, Timestamp::from_millis(5000))
            .unwrap();
        assert_eq!(d.verdict, Verdict::Deny);
        assert_eq!(
            d.reason,
            DecisionReason::Expired {
                elapsed: SimDuration::from_secs(5)
            }
        );
    }

    #[test]
    fn grant_all_mode_grants_but_still_counts() {
        let (mut monitor, tasks, pid) = setup();
        monitor.set_config(MonitorConfig {
            grant_all: true,
            ..MonitorConfig::default()
        });
        let d = monitor
            .check(&tasks, pid, Timestamp::from_millis(10))
            .unwrap();
        assert_eq!(d.verdict, Verdict::Grant);
        assert_eq!(d.reason, DecisionReason::GrantAll);
        assert_eq!(monitor.stats().grants, 1);
    }

    #[test]
    fn frozen_task_denied_even_in_grant_all() {
        let (mut monitor, mut tasks, pid) = setup();
        monitor.set_config(MonitorConfig {
            grant_all: true,
            ..MonitorConfig::default()
        });
        tasks.get_mut(pid).unwrap().set_permissions_frozen(true);
        let d = monitor
            .check(&tasks, pid, Timestamp::from_millis(10))
            .unwrap();
        assert_eq!(d.verdict, Verdict::Deny);
        assert_eq!(d.reason, DecisionReason::PermissionsFrozen);
    }

    #[test]
    fn unknown_pid_is_esrch() {
        let (mut monitor, tasks, _) = setup();
        assert_eq!(
            monitor
                .check(&tasks, Pid::from_raw(999), Timestamp::ZERO)
                .err(),
            Some(Errno::Esrch)
        );
    }

    #[test]
    fn stats_track_grants_and_denies() {
        let (mut monitor, mut tasks, pid) = setup();
        monitor
            .record_interaction(&mut tasks, pid, Timestamp::from_millis(100))
            .unwrap();
        monitor
            .check(&tasks, pid, Timestamp::from_millis(200))
            .unwrap();
        monitor
            .check(&tasks, pid, Timestamp::from_millis(9000))
            .unwrap();
        let stats = monitor.stats();
        assert_eq!(stats.notifications, 1);
        assert_eq!(stats.grants, 1);
        assert_eq!(stats.denies, 1);
    }

    #[test]
    fn alerts_queue_and_drain() {
        let (mut monitor, _, pid) = setup();
        monitor.request_alert(AlertRequest {
            pid,
            process_name: "spy".into(),
            op: ResourceOp::Cam,
            granted: false,
            at: Timestamp::from_millis(5),
            reason: None,
        });
        assert_eq!(monitor.pending_alert_count(), 1);
        let alerts = monitor.take_alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].op, ResourceOp::Cam);
        assert_eq!(monitor.pending_alert_count(), 0);
    }

    #[test]
    fn channel_counters_accumulate() {
        let (mut monitor, _, _) = setup();
        monitor.note_channel_retry();
        monitor.note_channel_retry();
        monitor.note_channel_drop();
        monitor.note_channel_reconnect();
        monitor.note_dup_suppressed();
        monitor.note_fail_closed();
        let stats = monitor.stats();
        assert_eq!(stats.channel_retries, 2);
        assert_eq!(stats.channel_drops, 1);
        assert_eq!(stats.channel_reconnects, 1);
        assert_eq!(stats.channel_dup_suppressed, 1);
        assert_eq!(stats.fail_closed_denies, 1);
        assert_eq!(stats.denies, 1, "fail-closed denials count as denials");
    }

    #[test]
    fn queued_alerts_are_counted() {
        let (mut monitor, _, pid) = setup();
        monitor.request_alert(AlertRequest {
            pid,
            process_name: "spy".into(),
            op: ResourceOp::Mic,
            granted: true,
            at: Timestamp::from_millis(1),
            reason: None,
        });
        monitor.take_alerts();
        assert_eq!(monitor.stats().alerts_queued, 1, "survives the drain");
    }

    #[test]
    fn resource_op_display_matches_paper_notation() {
        assert_eq!(ResourceOp::Screen.to_string(), "scr");
        assert_eq!(ResourceOp::Mic.to_string(), "mic");
        assert_eq!(ResourceOp::Paste.to_string(), "paste");
    }
}
