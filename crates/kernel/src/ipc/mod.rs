//! Inter-process communication facilities and the interaction-timestamp
//! propagation protocol (§III-D, §IV-B).
//!
//! Overhaul must "interpose on ... the entire range of IPC mechanisms
//! provided by the OS". The prototype supports "all of POSIX shared memory
//! and message queues, UNIX SysV shared memory and message queues, FIFOs,
//! anonymous pipes, and UNIX domain sockets" plus pseudo-terminals for CLI
//! workflows; so does this reproduction:
//!
//! * [`pipe`] — anonymous pipes and the byte buffers backing FIFOs,
//! * [`unix_socket`] — UNIX domain socket pairs,
//! * [`msgqueue`] — POSIX (named) and SysV (keyed) message queues,
//! * [`shm`] — POSIX and SysV shared-memory segments (interposed via the
//!   VM subsystem in [`crate::mm`]),
//! * [`pty`] — pseudo-terminal pairs.
//!
//! Every IPC resource carries an *embedded interaction timestamp* slot. The
//! propagation protocol (policy **P2**) is implemented by two tiny
//! functions used by every send/receive path:
//!
//! 1. on *send*, [`embed_on_send`] stores the sender's timestamp in the
//!    resource "unless the structure already contains a more recent
//!    timestamp";
//! 2. on *receive*, [`adopt_on_receive`] copies the resource timestamp into
//!    the receiver's `task_struct` "if the IPC channel has a more
//!    up-to-date timestamp".

pub mod msgqueue;
pub mod pipe;
pub mod pty;
pub mod shm;
pub mod unix_socket;

// The protocol's two comparison functions live with the rest of the
// temporal-proximity logic in the unified policy engine; re-exported here
// so IPC call sites keep their natural import path.
pub use crate::policy::{adopt_on_receive, embed_on_send};

#[cfg(test)]
mod tests {
    use super::*;
    use overhaul_sim::Timestamp;

    fn ts(ms: u64) -> Option<Timestamp> {
        Some(Timestamp::from_millis(ms))
    }

    #[test]
    fn embed_writes_into_empty_slot() {
        let mut slot = None;
        assert!(embed_on_send(&mut slot, ts(10)));
        assert_eq!(slot, ts(10));
    }

    #[test]
    fn embed_keeps_newer_existing() {
        let mut slot = ts(20);
        assert!(!embed_on_send(&mut slot, ts(10)));
        assert_eq!(slot, ts(20));
    }

    #[test]
    fn embed_upgrades_older_existing() {
        let mut slot = ts(5);
        assert!(embed_on_send(&mut slot, ts(50)));
        assert_eq!(slot, ts(50));
    }

    #[test]
    fn embed_ignores_sender_without_timestamp() {
        let mut slot = ts(5);
        assert!(!embed_on_send(&mut slot, None));
        assert_eq!(slot, ts(5));
    }

    #[test]
    fn adopt_takes_newer_resource_timestamp() {
        assert_eq!(adopt_on_receive(ts(5), ts(9)), ts(9));
        assert_eq!(adopt_on_receive(None, ts(9)), ts(9));
    }

    #[test]
    fn adopt_keeps_newer_own_timestamp() {
        assert_eq!(adopt_on_receive(ts(9), ts(5)), None);
        assert_eq!(adopt_on_receive(ts(9), ts(9)), None);
        assert_eq!(adopt_on_receive(ts(9), None), None);
    }

    #[test]
    fn protocol_is_monotone_under_any_interleaving() {
        // Relay chain: A(t=100) -> B -> C. Whatever the interleaving, the
        // timestamp only ever increases along the chain.
        let mut link_ab = None;
        let mut link_bc = None;
        let a = ts(100);
        embed_on_send(&mut link_ab, a);
        let b = adopt_on_receive(None, link_ab);
        embed_on_send(&mut link_bc, b);
        let c = adopt_on_receive(None, link_bc);
        assert_eq!(c, ts(100));
    }
}
