//! Anonymous pipes (and the byte channel backing FIFOs).
//!
//! A pipe is a unidirectional byte stream with reader/writer reference
//! counts (so `EPIPE`/EOF semantics work across `fork` and `close`) and an
//! embedded interaction-timestamp slot for the **P2** propagation protocol.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use overhaul_sim::Timestamp;
use serde::{Deserialize, Serialize};

use crate::error::{Errno, SysResult};

/// Identifier of a pipe object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PipeId(u64);

impl PipeId {
    /// Creates a `PipeId` from its raw value.
    pub const fn from_raw(raw: u64) -> Self {
        PipeId(raw)
    }

    /// The raw value.
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PipeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pipe:{}", self.0)
    }
}

/// One pipe object.
#[derive(Debug, Clone)]
pub struct Pipe {
    buffer: VecDeque<u8>,
    readers: u32,
    writers: u32,
    embedded_ts: Option<Timestamp>,
}

impl Pipe {
    fn new() -> Self {
        Pipe {
            buffer: VecDeque::new(),
            readers: 1,
            writers: 1,
            embedded_ts: None,
        }
    }

    /// Bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Live reader descriptors.
    pub fn readers(&self) -> u32 {
        self.readers
    }

    /// Live writer descriptors.
    pub fn writers(&self) -> u32 {
        self.writers
    }

    /// The embedded interaction timestamp slot (propagation protocol).
    pub fn embedded_ts(&self) -> Option<Timestamp> {
        self.embedded_ts
    }

    /// Mutable access to the embedded timestamp slot.
    pub fn embedded_ts_mut(&mut self) -> &mut Option<Timestamp> {
        &mut self.embedded_ts
    }
}

/// ```
/// use overhaul_kernel::ipc::pipe::PipeTable;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut pipes = PipeTable::new();
/// let pipe = pipes.create();
/// pipes.write(pipe, b"hello")?;
/// assert_eq!(pipes.read(pipe, 5)?, b"hello");
/// # Ok(())
/// # }
/// ```
/// Table of all live pipes.
#[derive(Debug, Clone, Default)]
pub struct PipeTable {
    pipes: BTreeMap<PipeId, Pipe>,
    next: u64,
}

impl PipeTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        PipeTable::default()
    }

    /// Allocates a new pipe with one reader and one writer reference.
    pub fn create(&mut self) -> PipeId {
        self.next += 1;
        let id = PipeId(self.next);
        self.pipes.insert(id, Pipe::new());
        id
    }

    /// Looks up a pipe.
    pub fn get(&self, id: PipeId) -> SysResult<&Pipe> {
        self.pipes.get(&id).ok_or(Errno::Ebadf)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, id: PipeId) -> SysResult<&mut Pipe> {
        self.pipes.get_mut(&id).ok_or(Errno::Ebadf)
    }

    /// Writes bytes into the pipe.
    ///
    /// # Errors
    ///
    /// [`Errno::Epipe`] if no readers remain.
    pub fn write(&mut self, id: PipeId, bytes: &[u8]) -> SysResult<usize> {
        let pipe = self.get_mut(id)?;
        if pipe.readers == 0 {
            return Err(Errno::Epipe);
        }
        pipe.buffer.extend(bytes.iter().copied());
        Ok(bytes.len())
    }

    /// Reads up to `max` bytes.
    ///
    /// Returns an empty vector at EOF (no data and no writers).
    ///
    /// # Errors
    ///
    /// [`Errno::Eagain`] if the pipe is empty but writers remain.
    pub fn read(&mut self, id: PipeId, max: usize) -> SysResult<Vec<u8>> {
        let pipe = self.get_mut(id)?;
        if pipe.buffer.is_empty() {
            return if pipe.writers == 0 {
                Ok(Vec::new())
            } else {
                Err(Errno::Eagain)
            };
        }
        let n = max.min(pipe.buffer.len());
        Ok(pipe.buffer.drain(..n).collect())
    }

    /// Adds a reader reference (fork / dup / FIFO open).
    pub fn add_reader(&mut self, id: PipeId) -> SysResult<()> {
        self.get_mut(id)?.readers += 1;
        Ok(())
    }

    /// Adds a writer reference.
    pub fn add_writer(&mut self, id: PipeId) -> SysResult<()> {
        self.get_mut(id)?.writers += 1;
        Ok(())
    }

    /// Drops a reader reference, freeing the pipe when unreferenced.
    pub fn release_reader(&mut self, id: PipeId) {
        if let Some(pipe) = self.pipes.get_mut(&id) {
            pipe.readers = pipe.readers.saturating_sub(1);
            if pipe.readers == 0 && pipe.writers == 0 {
                self.pipes.remove(&id);
            }
        }
    }

    /// Drops a writer reference, freeing the pipe when unreferenced.
    pub fn release_writer(&mut self, id: PipeId) {
        if let Some(pipe) = self.pipes.get_mut(&id) {
            pipe.writers = pipe.writers.saturating_sub(1);
            if pipe.readers == 0 && pipe.writers == 0 {
                self.pipes.remove(&id);
            }
        }
    }

    /// Number of live pipes.
    pub fn len(&self) -> usize {
        self.pipes.len()
    }

    /// Whether no pipes exist.
    pub fn is_empty(&self) -> bool {
        self.pipes.is_empty()
    }
}

mod pack {
    //! Snapshot codec for pipes, including buffered bytes, reference
    //! counts, and the embedded propagation-timestamp slot.

    use overhaul_sim::{impl_pack, impl_pack_newtype};

    use super::{Pipe, PipeId, PipeTable};

    impl_pack_newtype!(PipeId, u64);
    impl_pack!(Pipe {
        buffer,
        readers,
        writers,
        embedded_ts
    });
    impl_pack!(PipeTable { pipes, next });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut table = PipeTable::new();
        let id = table.create();
        table.write(id, b"hello").unwrap();
        assert_eq!(table.read(id, 5).unwrap(), b"hello");
    }

    #[test]
    fn partial_reads_preserve_order() {
        let mut table = PipeTable::new();
        let id = table.create();
        table.write(id, b"abcdef").unwrap();
        assert_eq!(table.read(id, 3).unwrap(), b"abc");
        assert_eq!(table.read(id, 10).unwrap(), b"def");
    }

    #[test]
    fn empty_pipe_with_writers_is_eagain() {
        let mut table = PipeTable::new();
        let id = table.create();
        assert_eq!(table.read(id, 1), Err(Errno::Eagain));
    }

    #[test]
    fn eof_when_writers_gone() {
        let mut table = PipeTable::new();
        let id = table.create();
        table.release_writer(id);
        assert_eq!(table.read(id, 1).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn write_without_readers_is_epipe() {
        let mut table = PipeTable::new();
        let id = table.create();
        table.release_reader(id);
        assert_eq!(table.write(id, b"x"), Err(Errno::Epipe));
    }

    #[test]
    fn pipe_freed_when_fully_released() {
        let mut table = PipeTable::new();
        let id = table.create();
        table.release_reader(id);
        table.release_writer(id);
        assert!(table.is_empty());
        assert_eq!(table.get(id).err(), Some(Errno::Ebadf));
    }

    #[test]
    fn fork_style_refcounts_keep_pipe_alive() {
        let mut table = PipeTable::new();
        let id = table.create();
        table.add_reader(id).unwrap();
        table.add_writer(id).unwrap();
        table.release_reader(id);
        table.release_writer(id);
        // One reader and one writer remain.
        table.write(id, b"y").unwrap();
        assert_eq!(table.read(id, 1).unwrap(), b"y");
    }

    #[test]
    fn embedded_timestamp_slot_round_trips() {
        let mut table = PipeTable::new();
        let id = table.create();
        assert_eq!(table.get(id).unwrap().embedded_ts(), None);
        *table.get_mut(id).unwrap().embedded_ts_mut() = Some(Timestamp::from_millis(7));
        assert_eq!(
            table.get(id).unwrap().embedded_ts(),
            Some(Timestamp::from_millis(7))
        );
    }
}
