//! Pseudo-terminal pairs (§IV-B, *CLI interactions*).
//!
//! A terminal emulator (e.g. `xterm`) holds the master side; the shell and
//! its jobs hold the slave side. When the user types a command, the
//! emulator — which received the authentic X input events — *writes* to the
//! master; the shell *reads* from the slave. The paper propagates
//! interaction timestamps through the pseudo-terminal device driver so that
//! command-line tools launched from a terminal can access protected devices:
//! "Whenever a process writes to a terminal endpoint, that process embeds
//! its timestamp into the kernel data structure representing the pseudo
//! terminal device."
//!
//! Per the paper's wording the *device* carries a single embedded timestamp
//! (unlike sockets, where each direction has its own): terminal traffic is
//! an interactive session, and either side writing refreshes the session's
//! interaction recency.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use overhaul_sim::Timestamp;
use serde::{Deserialize, Serialize};

use crate::error::{Errno, SysResult};

/// Identifier of a pseudo-terminal pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PtyId(u64);

impl PtyId {
    /// Creates a `PtyId` from its raw value.
    pub const fn from_raw(raw: u64) -> Self {
        PtyId(raw)
    }

    /// The raw value.
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PtyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pty:{}", self.0)
    }
}

/// Which side of the pair a descriptor holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PtySide {
    /// Held by the terminal emulator.
    Master,
    /// Held by the shell and its children.
    Slave,
}

/// One pseudo-terminal pair.
#[derive(Debug, Clone)]
pub struct PtyPair {
    master_to_slave: VecDeque<u8>,
    slave_to_master: VecDeque<u8>,
    embedded_ts: Option<Timestamp>,
    master_open: bool,
    slave_open: bool,
}

impl PtyPair {
    fn new() -> Self {
        PtyPair {
            master_to_slave: VecDeque::new(),
            slave_to_master: VecDeque::new(),
            embedded_ts: None,
            master_open: true,
            slave_open: true,
        }
    }

    /// The embedded interaction timestamp on the device.
    pub fn embedded_ts(&self) -> Option<Timestamp> {
        self.embedded_ts
    }

    /// Bytes waiting to be read from `side`.
    pub fn pending(&self, side: PtySide) -> usize {
        match side {
            PtySide::Master => self.slave_to_master.len(),
            PtySide::Slave => self.master_to_slave.len(),
        }
    }
}

/// Table of live pseudo-terminal pairs.
#[derive(Debug, Clone, Default)]
pub struct PtyTable {
    ptys: BTreeMap<PtyId, PtyPair>,
    next: u64,
}

impl PtyTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        PtyTable::default()
    }

    /// `openpty(3)`: allocates a new master/slave pair.
    pub fn open_pair(&mut self) -> PtyId {
        self.next += 1;
        let id = PtyId(self.next);
        self.ptys.insert(id, PtyPair::new());
        id
    }

    /// Looks up a pair.
    pub fn get(&self, id: PtyId) -> SysResult<&PtyPair> {
        self.ptys.get(&id).ok_or(Errno::Ebadf)
    }

    /// Writes from `side` to the opposite endpoint's buffer.
    ///
    /// # Errors
    ///
    /// [`Errno::Epipe`] if the opposite side has hung up.
    pub fn write(&mut self, id: PtyId, side: PtySide, bytes: &[u8]) -> SysResult<usize> {
        let pair = self.ptys.get_mut(&id).ok_or(Errno::Ebadf)?;
        let (peer_open, buffer) = match side {
            PtySide::Master => (pair.slave_open, &mut pair.master_to_slave),
            PtySide::Slave => (pair.master_open, &mut pair.slave_to_master),
        };
        if !peer_open {
            return Err(Errno::Epipe);
        }
        buffer.extend(bytes.iter().copied());
        Ok(bytes.len())
    }

    /// Reads up to `max` bytes from `side`'s inbound buffer.
    ///
    /// Returns an empty vector on hangup-EOF.
    ///
    /// # Errors
    ///
    /// [`Errno::Eagain`] if nothing is buffered and the peer is open.
    pub fn read(&mut self, id: PtyId, side: PtySide, max: usize) -> SysResult<Vec<u8>> {
        let pair = self.ptys.get_mut(&id).ok_or(Errno::Ebadf)?;
        let (peer_open, buffer) = match side {
            PtySide::Master => (pair.slave_open, &mut pair.slave_to_master),
            PtySide::Slave => (pair.master_open, &mut pair.master_to_slave),
        };
        if buffer.is_empty() {
            return if peer_open {
                Err(Errno::Eagain)
            } else {
                Ok(Vec::new())
            };
        }
        let n = max.min(buffer.len());
        Ok(buffer.drain(..n).collect())
    }

    /// Embedded timestamp slot of the device.
    pub fn embedded_ts_mut(&mut self, id: PtyId) -> SysResult<&mut Option<Timestamp>> {
        Ok(&mut self.ptys.get_mut(&id).ok_or(Errno::Ebadf)?.embedded_ts)
    }

    /// Closes one side; the pair is freed once both sides hang up.
    pub fn close_side(&mut self, id: PtyId, side: PtySide) {
        if let Some(pair) = self.ptys.get_mut(&id) {
            match side {
                PtySide::Master => pair.master_open = false,
                PtySide::Slave => pair.slave_open = false,
            }
            if !pair.master_open && !pair.slave_open {
                self.ptys.remove(&id);
            }
        }
    }

    /// Number of live pairs.
    pub fn len(&self) -> usize {
        self.ptys.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.ptys.is_empty()
    }
}

mod pack {
    //! Snapshot codec for pseudo-terminal pairs.

    use overhaul_sim::{impl_pack, impl_pack_newtype};

    use super::{PtyId, PtyPair, PtyTable};

    impl_pack_newtype!(PtyId, u64);
    impl_pack!(PtyPair {
        master_to_slave,
        slave_to_master,
        embedded_ts,
        master_open,
        slave_open
    });
    impl_pack!(PtyTable { ptys, next });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn master_write_reaches_slave() {
        let mut table = PtyTable::new();
        let id = table.open_pair();
        table.write(id, PtySide::Master, b"ls -l\n").unwrap();
        assert_eq!(table.read(id, PtySide::Slave, 64).unwrap(), b"ls -l\n");
    }

    #[test]
    fn slave_write_reaches_master() {
        let mut table = PtyTable::new();
        let id = table.open_pair();
        table.write(id, PtySide::Slave, b"output").unwrap();
        assert_eq!(table.read(id, PtySide::Master, 64).unwrap(), b"output");
    }

    #[test]
    fn empty_buffer_is_eagain_until_hangup() {
        let mut table = PtyTable::new();
        let id = table.open_pair();
        assert_eq!(table.read(id, PtySide::Slave, 1), Err(Errno::Eagain));
        table.close_side(id, PtySide::Master);
        assert_eq!(table.read(id, PtySide::Slave, 1).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn write_to_hung_up_peer_is_epipe() {
        let mut table = PtyTable::new();
        let id = table.open_pair();
        table.close_side(id, PtySide::Slave);
        assert_eq!(table.write(id, PtySide::Master, b"x"), Err(Errno::Epipe));
    }

    #[test]
    fn pair_freed_when_both_sides_close() {
        let mut table = PtyTable::new();
        let id = table.open_pair();
        table.close_side(id, PtySide::Master);
        table.close_side(id, PtySide::Slave);
        assert!(table.is_empty());
    }

    #[test]
    fn single_embedded_timestamp_per_device() {
        let mut table = PtyTable::new();
        let id = table.open_pair();
        *table.embedded_ts_mut(id).unwrap() = Some(Timestamp::from_millis(11));
        assert_eq!(
            table.get(id).unwrap().embedded_ts(),
            Some(Timestamp::from_millis(11))
        );
    }

    #[test]
    fn pending_counts_per_side() {
        let mut table = PtyTable::new();
        let id = table.open_pair();
        table.write(id, PtySide::Master, b"abc").unwrap();
        assert_eq!(table.get(id).unwrap().pending(PtySide::Slave), 3);
        assert_eq!(table.get(id).unwrap().pending(PtySide::Master), 0);
    }
}
