//! UNIX domain socket pairs.
//!
//! Modeled as bidirectional datagram channels (`socketpair(2)` semantics):
//! two ends, each with its own inbound queue. Each direction carries its own
//! embedded interaction-timestamp slot for the **P2** propagation protocol —
//! traffic from A to B must not launder B's interactions back to A.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use overhaul_sim::Timestamp;
use serde::{Deserialize, Serialize};

use crate::error::{Errno, SysResult};

/// Identifier of a socket pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SocketId(u64);

impl SocketId {
    /// Creates a `SocketId` from its raw value.
    pub const fn from_raw(raw: u64) -> Self {
        SocketId(raw)
    }

    /// The raw value.
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SocketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sock:{}", self.0)
    }
}

/// Which end of a socket pair a descriptor holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SocketEnd {
    /// The first end returned by `socketpair`.
    A,
    /// The second end.
    B,
}

impl SocketEnd {
    /// The opposite end.
    pub fn peer(self) -> SocketEnd {
        match self {
            SocketEnd::A => SocketEnd::B,
            SocketEnd::B => SocketEnd::A,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct Direction {
    queue: VecDeque<Vec<u8>>,
    embedded_ts: Option<Timestamp>,
}

/// One socket pair.
#[derive(Debug, Clone)]
pub struct SocketPair {
    a_to_b: Direction,
    b_to_a: Direction,
    a_refs: u32,
    b_refs: u32,
}

impl SocketPair {
    fn new() -> Self {
        SocketPair {
            a_to_b: Direction::default(),
            b_to_a: Direction::default(),
            a_refs: 1,
            b_refs: 1,
        }
    }

    fn outbound(&mut self, from: SocketEnd) -> &mut Direction {
        match from {
            SocketEnd::A => &mut self.a_to_b,
            SocketEnd::B => &mut self.b_to_a,
        }
    }

    fn inbound(&mut self, to: SocketEnd) -> &mut Direction {
        match to {
            SocketEnd::A => &mut self.b_to_a,
            SocketEnd::B => &mut self.a_to_b,
        }
    }

    fn refs(&self, end: SocketEnd) -> u32 {
        match end {
            SocketEnd::A => self.a_refs,
            SocketEnd::B => self.b_refs,
        }
    }

    /// Messages queued toward `end`.
    pub fn pending_for(&self, end: SocketEnd) -> usize {
        match end {
            SocketEnd::A => self.b_to_a.queue.len(),
            SocketEnd::B => self.a_to_b.queue.len(),
        }
    }

    /// The embedded timestamp on the direction *out of* `from`.
    pub fn embedded_ts_from(&self, from: SocketEnd) -> Option<Timestamp> {
        match from {
            SocketEnd::A => self.a_to_b.embedded_ts,
            SocketEnd::B => self.b_to_a.embedded_ts,
        }
    }
}

/// Table of live socket pairs.
#[derive(Debug, Clone, Default)]
pub struct SocketTable {
    sockets: BTreeMap<SocketId, SocketPair>,
    next: u64,
}

impl SocketTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SocketTable::default()
    }

    /// `socketpair(2)`: allocates a connected pair.
    pub fn create_pair(&mut self) -> SocketId {
        self.next += 1;
        let id = SocketId(self.next);
        self.sockets.insert(id, SocketPair::new());
        id
    }

    /// Looks up a pair.
    pub fn get(&self, id: SocketId) -> SysResult<&SocketPair> {
        self.sockets.get(&id).ok_or(Errno::Ebadf)
    }

    /// Sends a datagram from `from` to its peer. Returns a mutable handle to
    /// the direction's embedded timestamp slot alongside success, so the
    /// kernel can run the propagation protocol in the same step.
    ///
    /// # Errors
    ///
    /// [`Errno::Econnreset`] if the peer end has been fully closed.
    pub fn send(&mut self, id: SocketId, from: SocketEnd, data: Vec<u8>) -> SysResult<()> {
        let pair = self.sockets.get_mut(&id).ok_or(Errno::Ebadf)?;
        if pair.refs(from.peer()) == 0 {
            return Err(Errno::Econnreset);
        }
        pair.outbound(from).queue.push_back(data);
        Ok(())
    }

    /// Receives the next datagram queued for `at` end.
    ///
    /// # Errors
    ///
    /// [`Errno::Eagain`] if nothing is queued.
    pub fn recv(&mut self, id: SocketId, at: SocketEnd) -> SysResult<Vec<u8>> {
        let pair = self.sockets.get_mut(&id).ok_or(Errno::Ebadf)?;
        pair.inbound(at).queue.pop_front().ok_or(Errno::Eagain)
    }

    /// Embedded timestamp slot for the direction out of `from`.
    pub fn embedded_ts_mut(
        &mut self,
        id: SocketId,
        from: SocketEnd,
    ) -> SysResult<&mut Option<Timestamp>> {
        let pair = self.sockets.get_mut(&id).ok_or(Errno::Ebadf)?;
        Ok(&mut pair.outbound(from).embedded_ts)
    }

    /// Adds a reference to one end (fork/dup).
    pub fn add_ref(&mut self, id: SocketId, end: SocketEnd) -> SysResult<()> {
        let pair = self.sockets.get_mut(&id).ok_or(Errno::Ebadf)?;
        match end {
            SocketEnd::A => pair.a_refs += 1,
            SocketEnd::B => pair.b_refs += 1,
        }
        Ok(())
    }

    /// Drops a reference to one end, freeing the pair when both ends are
    /// fully closed.
    pub fn release(&mut self, id: SocketId, end: SocketEnd) {
        if let Some(pair) = self.sockets.get_mut(&id) {
            match end {
                SocketEnd::A => pair.a_refs = pair.a_refs.saturating_sub(1),
                SocketEnd::B => pair.b_refs = pair.b_refs.saturating_sub(1),
            }
            if pair.a_refs == 0 && pair.b_refs == 0 {
                self.sockets.remove(&id);
            }
        }
    }

    /// Number of live pairs.
    pub fn len(&self) -> usize {
        self.sockets.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.sockets.is_empty()
    }
}

mod pack {
    //! Snapshot codec for socket pairs, per-direction queues and
    //! timestamp slots included.

    use overhaul_sim::snapshot::{Dec, Enc, Pack, SnapshotError};
    use overhaul_sim::{impl_pack, impl_pack_newtype};

    use super::{Direction, SocketEnd, SocketId, SocketPair, SocketTable};

    impl_pack_newtype!(SocketId, u64);

    impl Pack for SocketEnd {
        fn pack(&self, enc: &mut Enc) {
            enc.put_u8(match self {
                SocketEnd::A => 0,
                SocketEnd::B => 1,
            });
        }
        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            Ok(match dec.take_u8()? {
                0 => SocketEnd::A,
                1 => SocketEnd::B,
                _ => return Err(SnapshotError::BadValue("socket end")),
            })
        }
    }

    impl_pack!(Direction { queue, embedded_ts });
    impl_pack!(SocketPair {
        a_to_b,
        b_to_a,
        a_refs,
        b_refs
    });
    impl_pack!(SocketTable { sockets, next });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_across_pair() {
        let mut table = SocketTable::new();
        let id = table.create_pair();
        table.send(id, SocketEnd::A, b"ping".to_vec()).unwrap();
        assert_eq!(table.recv(id, SocketEnd::B).unwrap(), b"ping");
        table.send(id, SocketEnd::B, b"pong".to_vec()).unwrap();
        assert_eq!(table.recv(id, SocketEnd::A).unwrap(), b"pong");
    }

    #[test]
    fn datagram_boundaries_preserved() {
        let mut table = SocketTable::new();
        let id = table.create_pair();
        table.send(id, SocketEnd::A, b"one".to_vec()).unwrap();
        table.send(id, SocketEnd::A, b"two".to_vec()).unwrap();
        assert_eq!(table.recv(id, SocketEnd::B).unwrap(), b"one");
        assert_eq!(table.recv(id, SocketEnd::B).unwrap(), b"two");
    }

    #[test]
    fn empty_queue_is_eagain() {
        let mut table = SocketTable::new();
        let id = table.create_pair();
        assert_eq!(table.recv(id, SocketEnd::A), Err(Errno::Eagain));
    }

    #[test]
    fn send_to_closed_peer_is_reset() {
        let mut table = SocketTable::new();
        let id = table.create_pair();
        table.release(id, SocketEnd::B);
        assert_eq!(
            table.send(id, SocketEnd::A, vec![1]),
            Err(Errno::Econnreset)
        );
    }

    #[test]
    fn pair_freed_when_both_ends_closed() {
        let mut table = SocketTable::new();
        let id = table.create_pair();
        table.release(id, SocketEnd::A);
        table.release(id, SocketEnd::B);
        assert!(table.is_empty());
    }

    #[test]
    fn directions_have_independent_timestamp_slots() {
        let mut table = SocketTable::new();
        let id = table.create_pair();
        *table.embedded_ts_mut(id, SocketEnd::A).unwrap() = Some(Timestamp::from_millis(10));
        assert_eq!(
            table.get(id).unwrap().embedded_ts_from(SocketEnd::A),
            Some(Timestamp::from_millis(10))
        );
        assert_eq!(
            table.get(id).unwrap().embedded_ts_from(SocketEnd::B),
            None,
            "A's interactions must not leak onto the B->A direction"
        );
    }

    #[test]
    fn peer_end_is_involutive() {
        assert_eq!(SocketEnd::A.peer(), SocketEnd::B);
        assert_eq!(SocketEnd::A.peer().peer(), SocketEnd::A);
    }

    #[test]
    fn pending_counts() {
        let mut table = SocketTable::new();
        let id = table.create_pair();
        table.send(id, SocketEnd::A, vec![0]).unwrap();
        table.send(id, SocketEnd::A, vec![1]).unwrap();
        assert_eq!(table.get(id).unwrap().pending_for(SocketEnd::B), 2);
        assert_eq!(table.get(id).unwrap().pending_for(SocketEnd::A), 0);
    }
}
