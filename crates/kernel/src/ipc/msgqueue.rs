//! POSIX and SysV message queues.
//!
//! Both families share one queue object: SysV queues are addressed by an
//! integer key (`msgget`/`msgsnd`/`msgrcv`), POSIX queues by a name
//! (`mq_open`/`mq_send`/`mq_receive`). Each queue carries an embedded
//! interaction-timestamp slot for the **P2** propagation protocol.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use overhaul_sim::Timestamp;
use serde::{Deserialize, Serialize};

use crate::error::{Errno, SysResult};

/// Identifier of a message queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MsgqId(u64);

impl MsgqId {
    /// Creates a `MsgqId` from its raw value.
    pub const fn from_raw(raw: u64) -> Self {
        MsgqId(raw)
    }

    /// The raw value.
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for MsgqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "msgq:{}", self.0)
    }
}

/// Which API family created a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueFamily {
    /// `msgget`-style, addressed by integer key.
    SysV,
    /// `mq_open`-style, addressed by name.
    Posix,
}

/// One queued message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// SysV message type (POSIX sends use 0).
    pub mtype: i64,
    /// Payload.
    pub data: Vec<u8>,
}

/// One message queue.
#[derive(Debug, Clone)]
pub struct MsgQueue {
    family: QueueFamily,
    messages: VecDeque<Message>,
    embedded_ts: Option<Timestamp>,
}

impl MsgQueue {
    fn new(family: QueueFamily) -> Self {
        MsgQueue {
            family,
            messages: VecDeque::new(),
            embedded_ts: None,
        }
    }

    /// API family.
    pub fn family(&self) -> QueueFamily {
        self.family
    }

    /// Messages currently queued.
    pub fn depth(&self) -> usize {
        self.messages.len()
    }

    /// The embedded interaction timestamp slot.
    pub fn embedded_ts(&self) -> Option<Timestamp> {
        self.embedded_ts
    }
}

/// Table of all message queues, with both namespaces.
#[derive(Debug, Clone, Default)]
pub struct MsgQueueTable {
    queues: BTreeMap<MsgqId, MsgQueue>,
    sysv_keys: BTreeMap<i32, MsgqId>,
    posix_names: BTreeMap<String, MsgqId>,
    next: u64,
}

impl MsgQueueTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        MsgQueueTable::default()
    }

    fn alloc(&mut self, family: QueueFamily) -> MsgqId {
        self.next += 1;
        let id = MsgqId(self.next);
        self.queues.insert(id, MsgQueue::new(family));
        id
    }

    /// `msgget(2)`: finds or creates the SysV queue for `key`.
    pub fn sysv_get(&mut self, key: i32) -> MsgqId {
        if let Some(id) = self.sysv_keys.get(&key) {
            return *id;
        }
        let id = self.alloc(QueueFamily::SysV);
        self.sysv_keys.insert(key, id);
        id
    }

    /// `mq_open(3)`: finds or creates the POSIX queue named `name`.
    pub fn posix_open(&mut self, name: &str) -> MsgqId {
        if let Some(id) = self.posix_names.get(name) {
            return *id;
        }
        let id = self.alloc(QueueFamily::Posix);
        self.posix_names.insert(name.to_string(), id);
        id
    }

    /// Looks up a queue.
    pub fn get(&self, id: MsgqId) -> SysResult<&MsgQueue> {
        self.queues.get(&id).ok_or(Errno::Einval)
    }

    /// Enqueues a message.
    pub fn send(&mut self, id: MsgqId, msg: Message) -> SysResult<()> {
        let queue = self.queues.get_mut(&id).ok_or(Errno::Einval)?;
        queue.messages.push_back(msg);
        Ok(())
    }

    /// Dequeues the next message; with `mtype != 0` the first message of
    /// that type (SysV semantics).
    ///
    /// # Errors
    ///
    /// [`Errno::Enomsg`] if no matching message is queued.
    pub fn receive(&mut self, id: MsgqId, mtype: i64) -> SysResult<Message> {
        let queue = self.queues.get_mut(&id).ok_or(Errno::Einval)?;
        if mtype == 0 {
            queue.messages.pop_front().ok_or(Errno::Enomsg)
        } else {
            let pos = queue
                .messages
                .iter()
                .position(|m| m.mtype == mtype)
                .ok_or(Errno::Enomsg)?;
            Ok(queue.messages.remove(pos).expect("position valid"))
        }
    }

    /// Embedded timestamp slot of a queue.
    pub fn embedded_ts_mut(&mut self, id: MsgqId) -> SysResult<&mut Option<Timestamp>> {
        Ok(&mut self.queues.get_mut(&id).ok_or(Errno::Einval)?.embedded_ts)
    }

    /// Removes a queue (`msgctl(IPC_RMID)` / `mq_unlink`).
    pub fn remove(&mut self, id: MsgqId) {
        self.queues.remove(&id);
        self.sysv_keys.retain(|_, v| *v != id);
        self.posix_names.retain(|_, v| *v != id);
    }

    /// Number of live queues.
    pub fn len(&self) -> usize {
        self.queues.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.queues.is_empty()
    }
}

mod pack {
    //! Snapshot codec for message queues and both addressing namespaces.

    use overhaul_sim::snapshot::{Dec, Enc, Pack, SnapshotError};
    use overhaul_sim::{impl_pack, impl_pack_newtype};

    use super::{Message, MsgQueue, MsgQueueTable, MsgqId, QueueFamily};

    impl_pack_newtype!(MsgqId, u64);

    impl Pack for QueueFamily {
        fn pack(&self, enc: &mut Enc) {
            enc.put_u8(match self {
                QueueFamily::SysV => 0,
                QueueFamily::Posix => 1,
            });
        }
        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            Ok(match dec.take_u8()? {
                0 => QueueFamily::SysV,
                1 => QueueFamily::Posix,
                _ => return Err(SnapshotError::BadValue("queue family")),
            })
        }
    }

    impl_pack!(Message { mtype, data });
    impl_pack!(MsgQueue {
        family,
        messages,
        embedded_ts
    });
    impl_pack!(MsgQueueTable {
        queues,
        sysv_keys,
        posix_names,
        next
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sysv_key_maps_to_same_queue() {
        let mut table = MsgQueueTable::new();
        let a = table.sysv_get(0x1234);
        let b = table.sysv_get(0x1234);
        assert_eq!(a, b);
        assert_eq!(table.get(a).unwrap().family(), QueueFamily::SysV);
    }

    #[test]
    fn posix_name_maps_to_same_queue() {
        let mut table = MsgQueueTable::new();
        let a = table.posix_open("/work");
        let b = table.posix_open("/work");
        assert_eq!(a, b);
        assert_ne!(a, table.posix_open("/other"));
    }

    #[test]
    fn fifo_order_for_untyped_receive() {
        let mut table = MsgQueueTable::new();
        let q = table.posix_open("/q");
        table
            .send(
                q,
                Message {
                    mtype: 0,
                    data: vec![1],
                },
            )
            .unwrap();
        table
            .send(
                q,
                Message {
                    mtype: 0,
                    data: vec![2],
                },
            )
            .unwrap();
        assert_eq!(table.receive(q, 0).unwrap().data, vec![1]);
        assert_eq!(table.receive(q, 0).unwrap().data, vec![2]);
    }

    #[test]
    fn typed_receive_selects_matching_message() {
        let mut table = MsgQueueTable::new();
        let q = table.sysv_get(1);
        table
            .send(
                q,
                Message {
                    mtype: 7,
                    data: vec![7],
                },
            )
            .unwrap();
        table
            .send(
                q,
                Message {
                    mtype: 9,
                    data: vec![9],
                },
            )
            .unwrap();
        assert_eq!(table.receive(q, 9).unwrap().data, vec![9]);
        assert_eq!(table.receive(q, 9).err(), Some(Errno::Enomsg));
        assert_eq!(table.receive(q, 0).unwrap().data, vec![7]);
    }

    #[test]
    fn empty_queue_is_enomsg() {
        let mut table = MsgQueueTable::new();
        let q = table.sysv_get(2);
        assert_eq!(table.receive(q, 0).err(), Some(Errno::Enomsg));
    }

    #[test]
    fn remove_clears_all_namespaces() {
        let mut table = MsgQueueTable::new();
        let q = table.sysv_get(3);
        table.remove(q);
        assert!(table.is_empty());
        let q2 = table.sysv_get(3);
        assert_ne!(q, q2, "key must map to a fresh queue after removal");
    }

    #[test]
    fn embedded_timestamp_slot() {
        let mut table = MsgQueueTable::new();
        let q = table.posix_open("/ts");
        *table.embedded_ts_mut(q).unwrap() = Some(Timestamp::from_millis(99));
        assert_eq!(
            table.get(q).unwrap().embedded_ts(),
            Some(Timestamp::from_millis(99))
        );
    }
}
