//! POSIX and SysV shared-memory segments.
//!
//! Shared memory is the one IPC mechanism the kernel cannot interpose at a
//! send/receive call site: "once the kernel allocates and maps a shared
//! memory region ... writes and reads to these regions are regular memory
//! operations" (§IV-B). The segment object here only stores the bytes and
//! the embedded timestamp slot; the *interposition* — permission
//! revocation, page faults, the 500 ms wait list — lives in [`crate::mm`].

use std::collections::BTreeMap;
use std::fmt;

use overhaul_sim::Timestamp;
use serde::{Deserialize, Serialize};

use crate::error::{Errno, SysResult};

/// Simulated page size in bytes (4 KiB).
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a shared-memory segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ShmId(u64);

impl ShmId {
    /// Creates a `ShmId` from its raw value.
    pub const fn from_raw(raw: u64) -> Self {
        ShmId(raw)
    }

    /// The raw value.
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ShmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shm:{}", self.0)
    }
}

/// Which API family created the segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShmFamily {
    /// `shmget`-style, addressed by integer key.
    SysV,
    /// `shm_open`-style, addressed by name.
    Posix,
}

/// One shared-memory segment.
#[derive(Debug, Clone)]
pub struct ShmSegment {
    family: ShmFamily,
    pages: usize,
    data: Vec<u8>,
    embedded_ts: Option<Timestamp>,
    attach_count: u32,
}

impl ShmSegment {
    fn new(family: ShmFamily, pages: usize) -> Self {
        ShmSegment {
            family,
            pages,
            data: vec![0; pages * PAGE_SIZE],
            embedded_ts: None,
            attach_count: 0,
        }
    }

    /// API family.
    pub fn family(&self) -> ShmFamily {
        self.family
    }

    /// Size in pages.
    pub fn pages(&self) -> usize {
        self.pages
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the segment has zero length.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of live attachments.
    pub fn attach_count(&self) -> u32 {
        self.attach_count
    }

    /// The embedded interaction timestamp slot.
    pub fn embedded_ts(&self) -> Option<Timestamp> {
        self.embedded_ts
    }
}

/// Table of all shared-memory segments.
#[derive(Debug, Clone, Default)]
pub struct ShmTable {
    segments: BTreeMap<ShmId, ShmSegment>,
    sysv_keys: BTreeMap<i32, ShmId>,
    posix_names: BTreeMap<String, ShmId>,
    next: u64,
}

impl ShmTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ShmTable::default()
    }

    fn alloc(&mut self, family: ShmFamily, pages: usize) -> ShmId {
        self.next += 1;
        let id = ShmId(self.next);
        self.segments.insert(id, ShmSegment::new(family, pages));
        id
    }

    /// `shmget(2)`: finds or creates the SysV segment for `key`.
    ///
    /// # Errors
    ///
    /// [`Errno::Einval`] if an existing segment for `key` is smaller than
    /// `pages`, or if `pages` is zero.
    pub fn sysv_get(&mut self, key: i32, pages: usize) -> SysResult<ShmId> {
        if pages == 0 {
            return Err(Errno::Einval);
        }
        if let Some(id) = self.sysv_keys.get(&key) {
            let seg = self.segments.get(id).expect("key table consistent");
            if seg.pages < pages {
                return Err(Errno::Einval);
            }
            return Ok(*id);
        }
        let id = self.alloc(ShmFamily::SysV, pages);
        self.sysv_keys.insert(key, id);
        Ok(id)
    }

    /// `shm_open(3)` + `ftruncate`: finds or creates the POSIX segment.
    ///
    /// # Errors
    ///
    /// [`Errno::Einval`] if `pages` is zero or an existing segment is
    /// smaller.
    pub fn posix_open(&mut self, name: &str, pages: usize) -> SysResult<ShmId> {
        if pages == 0 {
            return Err(Errno::Einval);
        }
        if let Some(id) = self.posix_names.get(name) {
            let seg = self.segments.get(id).expect("name table consistent");
            if seg.pages < pages {
                return Err(Errno::Einval);
            }
            return Ok(*id);
        }
        let id = self.alloc(ShmFamily::Posix, pages);
        self.posix_names.insert(name.to_string(), id);
        Ok(id)
    }

    /// Looks up a segment.
    pub fn get(&self, id: ShmId) -> SysResult<&ShmSegment> {
        self.segments.get(&id).ok_or(Errno::Einval)
    }

    /// Records an attachment.
    pub fn attach(&mut self, id: ShmId) -> SysResult<()> {
        self.segments
            .get_mut(&id)
            .ok_or(Errno::Einval)?
            .attach_count += 1;
        Ok(())
    }

    /// Records a detachment.
    pub fn detach(&mut self, id: ShmId) {
        if let Some(seg) = self.segments.get_mut(&id) {
            seg.attach_count = seg.attach_count.saturating_sub(1);
        }
    }

    /// Writes bytes at `offset`.
    ///
    /// # Errors
    ///
    /// [`Errno::Efault`] if the write falls outside the segment.
    pub fn write(&mut self, id: ShmId, offset: usize, bytes: &[u8]) -> SysResult<()> {
        let seg = self.segments.get_mut(&id).ok_or(Errno::Einval)?;
        let end = offset.checked_add(bytes.len()).ok_or(Errno::Efault)?;
        if end > seg.data.len() {
            return Err(Errno::Efault);
        }
        seg.data[offset..end].copy_from_slice(bytes);
        Ok(())
    }

    /// Reads `len` bytes at `offset`.
    ///
    /// # Errors
    ///
    /// [`Errno::Efault`] if the read falls outside the segment.
    pub fn read(&self, id: ShmId, offset: usize, len: usize) -> SysResult<Vec<u8>> {
        let seg = self.segments.get(&id).ok_or(Errno::Einval)?;
        let end = offset.checked_add(len).ok_or(Errno::Efault)?;
        if end > seg.data.len() {
            return Err(Errno::Efault);
        }
        Ok(seg.data[offset..end].to_vec())
    }

    /// Embedded timestamp slot of a segment.
    pub fn embedded_ts_mut(&mut self, id: ShmId) -> SysResult<&mut Option<Timestamp>> {
        Ok(&mut self.segments.get_mut(&id).ok_or(Errno::Einval)?.embedded_ts)
    }

    /// Removes a segment.
    pub fn remove(&mut self, id: ShmId) {
        self.segments.remove(&id);
        self.sysv_keys.retain(|_, v| *v != id);
        self.posix_names.retain(|_, v| *v != id);
    }

    /// Number of live segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

mod pack {
    //! Snapshot codec for shared-memory segments: contents, attachment
    //! counts, and both addressing namespaces.

    use overhaul_sim::snapshot::{Dec, Enc, Pack, SnapshotError};
    use overhaul_sim::{impl_pack, impl_pack_newtype};

    use super::{ShmFamily, ShmId, ShmSegment, ShmTable};

    impl_pack_newtype!(ShmId, u64);

    impl Pack for ShmFamily {
        fn pack(&self, enc: &mut Enc) {
            enc.put_u8(match self {
                ShmFamily::SysV => 0,
                ShmFamily::Posix => 1,
            });
        }
        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            Ok(match dec.take_u8()? {
                0 => ShmFamily::SysV,
                1 => ShmFamily::Posix,
                _ => return Err(SnapshotError::BadValue("shm family")),
            })
        }
    }

    impl_pack!(ShmSegment {
        family,
        pages,
        data,
        embedded_ts,
        attach_count
    });
    impl_pack!(ShmTable {
        segments,
        sysv_keys,
        posix_names,
        next
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sysv_key_round_trips() {
        let mut table = ShmTable::new();
        let a = table.sysv_get(0x77, 4).unwrap();
        let b = table.sysv_get(0x77, 4).unwrap();
        assert_eq!(a, b);
        assert_eq!(table.get(a).unwrap().pages(), 4);
        assert_eq!(table.get(a).unwrap().len(), 4 * PAGE_SIZE);
    }

    #[test]
    fn zero_pages_rejected() {
        let mut table = ShmTable::new();
        assert_eq!(table.sysv_get(1, 0), Err(Errno::Einval));
        assert_eq!(table.posix_open("/x", 0), Err(Errno::Einval));
    }

    #[test]
    fn requesting_larger_existing_segment_fails() {
        let mut table = ShmTable::new();
        table.sysv_get(5, 2).unwrap();
        assert_eq!(table.sysv_get(5, 8), Err(Errno::Einval));
        // Smaller or equal is fine.
        assert!(table.sysv_get(5, 1).is_ok());
    }

    #[test]
    fn write_read_round_trip() {
        let mut table = ShmTable::new();
        let id = table.posix_open("/seg", 1).unwrap();
        table.write(id, 100, b"secret").unwrap();
        assert_eq!(table.read(id, 100, 6).unwrap(), b"secret");
    }

    #[test]
    fn out_of_bounds_access_is_efault() {
        let mut table = ShmTable::new();
        let id = table.posix_open("/seg", 1).unwrap();
        assert_eq!(table.write(id, PAGE_SIZE - 2, b"abc"), Err(Errno::Efault));
        assert_eq!(table.read(id, PAGE_SIZE, 1).err(), Some(Errno::Efault));
        assert_eq!(table.write(id, usize::MAX, b"a"), Err(Errno::Efault));
    }

    #[test]
    fn attach_detach_counting() {
        let mut table = ShmTable::new();
        let id = table.sysv_get(9, 1).unwrap();
        table.attach(id).unwrap();
        table.attach(id).unwrap();
        table.detach(id);
        assert_eq!(table.get(id).unwrap().attach_count(), 1);
    }

    #[test]
    fn remove_clears_namespaces() {
        let mut table = ShmTable::new();
        let id = table.posix_open("/gone", 1).unwrap();
        table.remove(id);
        assert!(table.is_empty());
        let id2 = table.posix_open("/gone", 1).unwrap();
        assert_ne!(id, id2);
    }

    #[test]
    fn embedded_timestamp_slot() {
        let mut table = ShmTable::new();
        let id = table.sysv_get(3, 1).unwrap();
        *table.embedded_ts_mut(id).unwrap() = Some(Timestamp::from_millis(4));
        assert_eq!(
            table.get(id).unwrap().embedded_ts(),
            Some(Timestamp::from_millis(4))
        );
    }
}
