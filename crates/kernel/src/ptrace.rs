//! ptrace hardening (§IV-B, *Processes isolation and introspection*).
//!
//! Debugging facilities could let an attacker inject code into a process
//! that legitimately holds interaction permissions. Linux already restricts
//! `ptrace` to descendants; Overhaul goes further: "we provide even stricter
//! security by temporarily disabling all permissions for a debugged process"
//! — which "prevents parent processes from tracing their own children (to)
//! subvert attacks where a malicious program could launch another legitimate
//! executable, and then inject code into it". The hardening is on by
//! default and toggleable by the superuser through a procfs node.

use overhaul_sim::Pid;
use serde::{Deserialize, Serialize};

use crate::error::{Errno, SysResult};
use crate::process::ProcessTable;

/// ptrace policy state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PtracePolicy {
    /// When `true` (default), attaching freezes the tracee's interaction
    /// permissions for the duration of the trace.
    pub hardening_enabled: bool,
}

impl Default for PtracePolicy {
    fn default() -> Self {
        PtracePolicy {
            hardening_enabled: true,
        }
    }
}

impl PtracePolicy {
    /// `PTRACE_ATTACH`: `tracer` attaches to `tracee`.
    ///
    /// The tracee must be a transitive descendant of the tracer (the
    /// baseline Linux-style restriction the paper relies on: unrelated
    /// processes "cannot manipulate each other's state"). Under hardening
    /// the tracee's permissions are frozen until detach.
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] for dead processes, [`Errno::Eperm`] for
    /// non-descendants or an already-traced tracee.
    pub fn attach(&self, tasks: &mut ProcessTable, tracer: Pid, tracee: Pid) -> SysResult<()> {
        if !tasks.is_running(tracer) || !tasks.is_running(tracee) {
            return Err(Errno::Esrch);
        }
        if !tasks.is_descendant_of(tracee, tracer) {
            return Err(Errno::Eperm);
        }
        {
            let target = tasks.get(tracee)?;
            if target.traced_by().is_some() {
                return Err(Errno::Eperm);
            }
        }
        let target = tasks.get_mut(tracee)?;
        target.set_traced_by(Some(tracer));
        if self.hardening_enabled {
            target.set_permissions_frozen(true);
        }
        Ok(())
    }

    /// `PTRACE_DETACH`: `tracer` detaches from `tracee`, unfreezing its
    /// permissions.
    ///
    /// # Errors
    ///
    /// [`Errno::Esrch`] if the tracee is gone, [`Errno::Eperm`] if `tracer`
    /// is not the attached tracer.
    pub fn detach(&self, tasks: &mut ProcessTable, tracer: Pid, tracee: Pid) -> SysResult<()> {
        let target = tasks.get_mut(tracee)?;
        if target.traced_by() != Some(tracer) {
            return Err(Errno::Eperm);
        }
        target.set_traced_by(None);
        target.set_permissions_frozen(false);
        Ok(())
    }
}

mod pack {
    //! Snapshot codec for the ptrace policy.

    use overhaul_sim::impl_pack;

    use super::PtracePolicy;

    impl_pack!(PtracePolicy { hardening_enabled });
}

#[cfg(test)]
mod tests {
    use super::*;
    use overhaul_sim::Timestamp;

    fn setup() -> (PtracePolicy, ProcessTable, Pid, Pid) {
        let mut tasks = ProcessTable::new();
        let parent = tasks.fork(Pid::INIT).unwrap();
        let child = tasks.fork(parent).unwrap();
        (PtracePolicy::default(), tasks, parent, child)
    }

    #[test]
    fn attach_freezes_child_permissions() {
        let (policy, mut tasks, parent, child) = setup();
        tasks
            .get_mut(child)
            .unwrap()
            .observe_interaction(Timestamp::from_millis(10));
        policy.attach(&mut tasks, parent, child).unwrap();
        assert_eq!(
            tasks.get(child).unwrap().interaction(),
            None,
            "a traced process must lose its permissions"
        );
    }

    #[test]
    fn detach_restores_permissions() {
        let (policy, mut tasks, parent, child) = setup();
        tasks
            .get_mut(child)
            .unwrap()
            .observe_interaction(Timestamp::from_millis(10));
        policy.attach(&mut tasks, parent, child).unwrap();
        policy.detach(&mut tasks, parent, child).unwrap();
        assert_eq!(
            tasks.get(child).unwrap().interaction(),
            Some(Timestamp::from_millis(10))
        );
    }

    #[test]
    fn non_descendant_attach_rejected() {
        let (policy, mut tasks, _parent, child) = setup();
        let stranger = tasks.fork(Pid::INIT).unwrap();
        assert_eq!(
            policy.attach(&mut tasks, stranger, child),
            Err(Errno::Eperm)
        );
    }

    #[test]
    fn cannot_attach_twice() {
        let (policy, mut tasks, parent, child) = setup();
        policy.attach(&mut tasks, parent, child).unwrap();
        let grandparent = Pid::INIT;
        assert_eq!(
            policy.attach(&mut tasks, grandparent, child),
            Err(Errno::Eperm)
        );
    }

    #[test]
    fn hardening_off_keeps_permissions_live() {
        let (_, mut tasks, parent, child) = setup();
        let policy = PtracePolicy {
            hardening_enabled: false,
        };
        tasks
            .get_mut(child)
            .unwrap()
            .observe_interaction(Timestamp::from_millis(10));
        policy.attach(&mut tasks, parent, child).unwrap();
        assert_eq!(
            tasks.get(child).unwrap().interaction(),
            Some(Timestamp::from_millis(10)),
            "with hardening disabled only the baseline restriction applies"
        );
    }

    #[test]
    fn detach_by_wrong_tracer_rejected() {
        let (policy, mut tasks, parent, child) = setup();
        policy.attach(&mut tasks, parent, child).unwrap();
        assert_eq!(
            policy.detach(&mut tasks, Pid::INIT, child),
            Err(Errno::Eperm)
        );
    }

    #[test]
    fn dead_process_attach_is_esrch() {
        let (policy, mut tasks, parent, child) = setup();
        tasks.exit(child, 0).unwrap();
        assert_eq!(policy.attach(&mut tasks, parent, child), Err(Errno::Esrch));
    }
}
