//! Kernel error numbers.
//!
//! The simulated syscall surface reports failures with classic UNIX error
//! numbers. Overhaul's device mediation deliberately reuses `EACCES` — to an
//! unmodified application a temporally-denied device open looks exactly like
//! an ordinary permission failure, which is what keeps the scheme
//! application-transparent.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A UNIX-style error number returned by the simulated kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Errno {
    /// Operation not permitted.
    Eperm,
    /// No such file or directory.
    Enoent,
    /// No such process.
    Esrch,
    /// Bad file descriptor.
    Ebadf,
    /// Resource temporarily unavailable.
    Eagain,
    /// Permission denied.
    Eacces,
    /// Bad address.
    Efault,
    /// File exists.
    Eexist,
    /// No such device.
    Enodev,
    /// Not a directory.
    Enotdir,
    /// Is a directory.
    Eisdir,
    /// Invalid argument.
    Einval,
    /// Broken pipe.
    Epipe,
    /// Function not implemented.
    Enosys,
    /// Directory not empty.
    Enotempty,
    /// No message of the desired type (empty queue, non-blocking).
    Enomsg,
    /// Connection reset by peer.
    Econnreset,
}

impl Errno {
    /// The conventional short name (`EACCES`, `ENOENT`, ...).
    pub const fn name(self) -> &'static str {
        match self {
            Errno::Eperm => "EPERM",
            Errno::Enoent => "ENOENT",
            Errno::Esrch => "ESRCH",
            Errno::Ebadf => "EBADF",
            Errno::Eagain => "EAGAIN",
            Errno::Eacces => "EACCES",
            Errno::Efault => "EFAULT",
            Errno::Eexist => "EEXIST",
            Errno::Enodev => "ENODEV",
            Errno::Enotdir => "ENOTDIR",
            Errno::Eisdir => "EISDIR",
            Errno::Einval => "EINVAL",
            Errno::Epipe => "EPIPE",
            Errno::Enosys => "ENOSYS",
            Errno::Enotempty => "ENOTEMPTY",
            Errno::Enomsg => "ENOMSG",
            Errno::Econnreset => "ECONNRESET",
        }
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            Errno::Eperm => "operation not permitted",
            Errno::Enoent => "no such file or directory",
            Errno::Esrch => "no such process",
            Errno::Ebadf => "bad file descriptor",
            Errno::Eagain => "resource temporarily unavailable",
            Errno::Eacces => "permission denied",
            Errno::Efault => "bad address",
            Errno::Eexist => "file exists",
            Errno::Enodev => "no such device",
            Errno::Enotdir => "not a directory",
            Errno::Eisdir => "is a directory",
            Errno::Einval => "invalid argument",
            Errno::Epipe => "broken pipe",
            Errno::Enosys => "function not implemented",
            Errno::Enotempty => "directory not empty",
            Errno::Enomsg => "no message of desired type",
            Errno::Econnreset => "connection reset by peer",
        };
        write!(f, "{} ({})", msg, self.name())
    }
}

impl Error for Errno {}

/// Convenience alias for syscall results.
pub type SysResult<T> = Result<T, Errno>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_name_and_message() {
        let rendered = Errno::Eacces.to_string();
        assert!(rendered.contains("EACCES"));
        assert!(rendered.contains("permission denied"));
    }

    #[test]
    fn names_match_convention() {
        assert_eq!(Errno::Enoent.name(), "ENOENT");
        assert_eq!(Errno::Epipe.name(), "EPIPE");
    }

    #[test]
    fn errno_is_a_std_error() {
        fn takes_error<E: Error>(_: E) {}
        takes_error(Errno::Einval);
    }
}
