//! The simulated `task_struct`.
//!
//! The paper stores the interaction timestamp "inside the `task_struct`,
//! which is the data structure Linux uses to represent a process"
//! (§IV-B, *Process permission management*). [`Task`] is this reproduction's
//! `task_struct`: per-process identity, the file-descriptor table, and —
//! the heart of Overhaul — the most recent *authentic user interaction*
//! timestamp, plus the ptrace-hardening freeze bit.

use std::collections::BTreeMap;

use overhaul_sim::{Fd, Pid, Timestamp, Uid};
use serde::{Deserialize, Serialize};

use crate::device::DeviceId;
use crate::ipc::msgqueue::MsgqId;
use crate::ipc::pipe::PipeId;
use crate::ipc::pty::PtyId;
use crate::ipc::unix_socket::{SocketEnd, SocketId};
use crate::policy::{CreditChain, CreditHop, IpcMechanism};
use crate::vfs::InodeId;

/// What an open file descriptor refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FileDescription {
    /// A regular file in the VFS.
    Regular {
        /// Backing inode.
        inode: InodeId,
    },
    /// A sensitive hardware device node (microphone, camera, sensor).
    Device {
        /// The device behind the node.
        device: DeviceId,
    },
    /// Read end of an anonymous pipe or FIFO.
    PipeRead {
        /// Backing pipe object.
        pipe: PipeId,
    },
    /// Write end of an anonymous pipe or FIFO.
    PipeWrite {
        /// Backing pipe object.
        pipe: PipeId,
    },
    /// One end of a UNIX domain socket pair.
    Socket {
        /// Backing socket object.
        socket: SocketId,
        /// Which end this descriptor holds.
        end: SocketEnd,
    },
    /// A POSIX message queue descriptor.
    MessageQueue {
        /// Backing queue.
        queue: MsgqId,
    },
    /// Master side of a pseudo-terminal pair (held by the terminal emulator).
    PtyMaster {
        /// Backing pty pair.
        pty: PtyId,
    },
    /// Slave side of a pseudo-terminal pair (held by the shell and its jobs).
    PtySlave {
        /// Backing pty pair.
        pty: PtyId,
    },
}

/// Lifecycle state of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskState {
    /// Runnable / running.
    Running,
    /// Exited, waiting to be reaped by its parent.
    Zombie {
        /// Exit status code.
        code: i32,
    },
}

/// The simulated `task_struct`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Task {
    pid: Pid,
    ppid: Option<Pid>,
    uid: Uid,
    exe_path: String,
    name: String,
    state: TaskState,
    /// Most recent authentic user-interaction timestamp, the field Overhaul
    /// adds to `task_struct`. `None` means "expired / never interacted".
    interaction: Option<Timestamp>,
    /// Bumped on every change that can alter this task's verdicts: new or
    /// adopted interactions, clears, and freeze-bit flips. The verdict
    /// cache keys on it, so a stale epoch invalidates cached decisions.
    interaction_epoch: u64,
    /// Provenance of the stored interaction credit: how the timestamp
    /// reached this task (direct input, fork inheritance, IPC adoption).
    credit: CreditChain,
    /// Set while the process is being traced and ptrace hardening is on:
    /// the permission monitor treats the task as having no interactions.
    permissions_frozen: bool,
    traced_by: Option<Pid>,
    fds: BTreeMap<Fd, FileDescription>,
    next_fd: u32,
    children: Vec<Pid>,
}

impl Task {
    /// Creates a fresh task. Interaction state starts expired: Overhaul
    /// denies sensitive accesses by default.
    pub fn new(pid: Pid, ppid: Option<Pid>, uid: Uid, exe_path: impl Into<String>) -> Self {
        let exe_path = exe_path.into();
        let name = exe_path.rsplit('/').next().unwrap_or(&exe_path).to_string();
        Task {
            pid,
            ppid,
            uid,
            exe_path,
            name,
            state: TaskState::Running,
            interaction: None,
            interaction_epoch: 0,
            credit: CreditChain::empty(),
            permissions_frozen: false,
            traced_by: None,
            fds: BTreeMap::new(),
            next_fd: 3, // 0/1/2 notionally reserved for stdio
            children: Vec::new(),
        }
    }

    /// Duplicates this task for `fork`: the child inherits the file table
    /// and — policy **P1** — the parent's interaction timestamp, exactly as
    /// Linux's `task_struct` copy gives the paper this property "for free".
    pub fn fork_into(&self, child_pid: Pid) -> Task {
        Task {
            pid: child_pid,
            ppid: Some(self.pid),
            uid: self.uid,
            exe_path: self.exe_path.clone(),
            name: self.name.clone(),
            state: TaskState::Running,
            interaction: self.interaction,
            // Pids are never reused and unknown-pid verdicts are never
            // cached, so a fresh child can safely start at epoch 0.
            interaction_epoch: 0,
            credit: if self.interaction.is_some() {
                self.credit.extended(CreditHop::Fork)
            } else {
                CreditChain::empty()
            },
            permissions_frozen: false,
            traced_by: None,
            fds: self.fds.clone(),
            next_fd: self.next_fd,
            children: Vec::new(),
        }
    }

    /// Process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Parent process id, `None` for init.
    pub fn ppid(&self) -> Option<Pid> {
        self.ppid
    }

    /// Owning user.
    pub fn uid(&self) -> Uid {
        self.uid
    }

    /// Changes the owning user (harness setup for non-root processes).
    pub fn set_uid(&mut self, uid: Uid) {
        self.uid = uid;
    }

    /// Filesystem path of the executable image (used by netlink
    /// authentication to recognize the X server).
    pub fn exe_path(&self) -> &str {
        &self.exe_path
    }

    /// Short process name (basename of the executable).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Lifecycle state.
    pub fn state(&self) -> TaskState {
        self.state
    }

    /// Whether the task is alive (not a zombie).
    pub fn is_running(&self) -> bool {
        matches!(self.state, TaskState::Running)
    }

    /// Replaces the executable image (`execve`). The interaction timestamp
    /// survives: exec reuses the same `task_struct`.
    pub fn exec(&mut self, exe_path: impl Into<String>) {
        self.exe_path = exe_path.into();
        self.name = self
            .exe_path
            .rsplit('/')
            .next()
            .unwrap_or(&self.exe_path)
            .to_string();
    }

    /// Marks the task exited.
    pub fn set_zombie(&mut self, code: i32) {
        self.state = TaskState::Zombie { code };
    }

    /// The stored interaction timestamp, if any and not frozen.
    ///
    /// While ptrace hardening has this task frozen, the permission monitor
    /// sees no interactions at all, so this returns `None`.
    pub fn interaction(&self) -> Option<Timestamp> {
        if self.permissions_frozen {
            None
        } else {
            self.interaction
        }
    }

    /// The raw stored timestamp, ignoring the freeze bit. Needed by the IPC
    /// propagation protocol, which copies timestamps even for frozen tasks
    /// (the freeze only gates *decisions*).
    pub fn raw_interaction(&self) -> Option<Timestamp> {
        self.interaction
    }

    /// Records an authentic interaction, keeping the most recent timestamp.
    ///
    /// Returns `true` if the stored timestamp changed — the IPC propagation
    /// protocol uses this to avoid logging no-op propagations.
    pub fn observe_interaction(&mut self, at: Timestamp) -> bool {
        self.observe_with(at, CreditChain::direct())
    }

    /// Records an interaction adopted from an IPC resource (policy **P2**),
    /// attributing the credit to `mechanism` in the propagation chain.
    ///
    /// Same keep-the-most-recent semantics as [`Task::observe_interaction`].
    pub fn adopt_interaction(&mut self, at: Timestamp, mechanism: IpcMechanism) -> bool {
        self.observe_with(at, CreditChain::via(mechanism))
    }

    fn observe_with(&mut self, at: Timestamp, chain: CreditChain) -> bool {
        match self.interaction {
            Some(existing) if existing >= at => false,
            _ => {
                self.interaction = Some(at);
                self.credit = chain;
                self.interaction_epoch += 1;
                true
            }
        }
    }

    /// Clears the interaction record (used by tests and the procfs reset).
    pub fn clear_interaction(&mut self) {
        self.interaction = None;
        self.credit = CreditChain::empty();
        self.interaction_epoch += 1;
    }

    /// The epoch counter behind the verdict cache: any value change means
    /// previously cached verdicts for this task may be stale.
    pub fn interaction_epoch(&self) -> u64 {
        self.interaction_epoch
    }

    /// Provenance of the current interaction credit.
    pub fn credit_chain(&self) -> CreditChain {
        self.credit
    }

    /// Whether ptrace hardening currently freezes this task's permissions.
    pub fn permissions_frozen(&self) -> bool {
        self.permissions_frozen
    }

    /// Sets / clears the ptrace permission freeze. Bumps the interaction
    /// epoch on actual flips: the freeze changes verdicts.
    pub fn set_permissions_frozen(&mut self, frozen: bool) {
        if self.permissions_frozen != frozen {
            self.permissions_frozen = frozen;
            self.interaction_epoch += 1;
        }
    }

    /// The tracer attached to this task, if any.
    pub fn traced_by(&self) -> Option<Pid> {
        self.traced_by
    }

    /// Records (or clears) an attached tracer.
    pub fn set_traced_by(&mut self, tracer: Option<Pid>) {
        self.traced_by = tracer;
    }

    /// Allocates the next file descriptor for `desc`.
    pub fn install_fd(&mut self, desc: FileDescription) -> Fd {
        let fd = Fd::from_raw(self.next_fd);
        self.next_fd += 1;
        self.fds.insert(fd, desc);
        fd
    }

    /// Looks up an open descriptor.
    pub fn fd(&self, fd: Fd) -> Option<FileDescription> {
        self.fds.get(&fd).copied()
    }

    /// Removes a descriptor, returning what it referred to.
    pub fn remove_fd(&mut self, fd: Fd) -> Option<FileDescription> {
        self.fds.remove(&fd)
    }

    /// All open descriptors, in fd order.
    pub fn open_fds(&self) -> impl Iterator<Item = (Fd, FileDescription)> + '_ {
        self.fds.iter().map(|(fd, desc)| (*fd, *desc))
    }

    /// Number of open descriptors.
    pub fn fd_count(&self) -> usize {
        self.fds.len()
    }

    /// Drains the fd table (process exit), returning every description so
    /// the kernel can release the backing objects.
    pub fn drain_fds(&mut self) -> Vec<FileDescription> {
        let drained = std::mem::take(&mut self.fds);
        drained.into_values().collect()
    }

    /// Child pids (live and zombie).
    pub fn children(&self) -> &[Pid] {
        &self.children
    }

    /// Registers a new child.
    pub fn add_child(&mut self, child: Pid) {
        self.children.push(child);
    }

    /// Unregisters a child (reaped or reparented).
    pub fn remove_child(&mut self, child: Pid) {
        self.children.retain(|c| *c != child);
    }

    /// Changes the recorded parent (reparenting to init on parent exit).
    pub fn set_ppid(&mut self, ppid: Option<Pid>) {
        self.ppid = ppid;
    }
}

mod pack {
    //! Snapshot codec for the simulated `task_struct` and its fd table.

    use overhaul_sim::impl_pack;
    use overhaul_sim::snapshot::{Dec, Enc, Pack, SnapshotError};

    use super::{FileDescription, Task, TaskState};

    impl Pack for TaskState {
        fn pack(&self, enc: &mut Enc) {
            match self {
                TaskState::Running => enc.put_u8(0),
                TaskState::Zombie { code } => {
                    enc.put_u8(1);
                    code.pack(enc);
                }
            }
        }
        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            Ok(match dec.take_u8()? {
                0 => TaskState::Running,
                1 => TaskState::Zombie {
                    code: Pack::unpack(dec)?,
                },
                _ => return Err(SnapshotError::BadValue("task state")),
            })
        }
    }

    impl Pack for FileDescription {
        fn pack(&self, enc: &mut Enc) {
            match self {
                FileDescription::Regular { inode } => {
                    enc.put_u8(0);
                    inode.pack(enc);
                }
                FileDescription::Device { device } => {
                    enc.put_u8(1);
                    device.pack(enc);
                }
                FileDescription::PipeRead { pipe } => {
                    enc.put_u8(2);
                    pipe.pack(enc);
                }
                FileDescription::PipeWrite { pipe } => {
                    enc.put_u8(3);
                    pipe.pack(enc);
                }
                FileDescription::Socket { socket, end } => {
                    enc.put_u8(4);
                    socket.pack(enc);
                    end.pack(enc);
                }
                FileDescription::MessageQueue { queue } => {
                    enc.put_u8(5);
                    queue.pack(enc);
                }
                FileDescription::PtyMaster { pty } => {
                    enc.put_u8(6);
                    pty.pack(enc);
                }
                FileDescription::PtySlave { pty } => {
                    enc.put_u8(7);
                    pty.pack(enc);
                }
            }
        }
        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            Ok(match dec.take_u8()? {
                0 => FileDescription::Regular {
                    inode: Pack::unpack(dec)?,
                },
                1 => FileDescription::Device {
                    device: Pack::unpack(dec)?,
                },
                2 => FileDescription::PipeRead {
                    pipe: Pack::unpack(dec)?,
                },
                3 => FileDescription::PipeWrite {
                    pipe: Pack::unpack(dec)?,
                },
                4 => FileDescription::Socket {
                    socket: Pack::unpack(dec)?,
                    end: Pack::unpack(dec)?,
                },
                5 => FileDescription::MessageQueue {
                    queue: Pack::unpack(dec)?,
                },
                6 => FileDescription::PtyMaster {
                    pty: Pack::unpack(dec)?,
                },
                7 => FileDescription::PtySlave {
                    pty: Pack::unpack(dec)?,
                },
                _ => return Err(SnapshotError::BadValue("file description")),
            })
        }
    }

    impl_pack!(Task {
        pid,
        ppid,
        uid,
        exe_path,
        name,
        state,
        interaction,
        interaction_epoch,
        credit,
        permissions_frozen,
        traced_by,
        fds,
        next_fd,
        children
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> Task {
        Task::new(
            Pid::from_raw(10),
            Some(Pid::INIT),
            Uid::from_raw(1000),
            "/usr/bin/app",
        )
    }

    #[test]
    fn name_is_basename_of_exe() {
        let t = task();
        assert_eq!(t.name(), "app");
        assert_eq!(t.exe_path(), "/usr/bin/app");
    }

    #[test]
    fn interaction_keeps_most_recent() {
        let mut t = task();
        assert!(t.observe_interaction(Timestamp::from_millis(100)));
        assert!(
            !t.observe_interaction(Timestamp::from_millis(50)),
            "older must not overwrite"
        );
        assert!(
            !t.observe_interaction(Timestamp::from_millis(100)),
            "equal is a no-op"
        );
        assert!(t.observe_interaction(Timestamp::from_millis(150)));
        assert_eq!(t.interaction(), Some(Timestamp::from_millis(150)));
    }

    #[test]
    fn fork_copies_interaction_timestamp_p1() {
        let mut parent = task();
        parent.observe_interaction(Timestamp::from_millis(500));
        let child = parent.fork_into(Pid::from_raw(11));
        assert_eq!(child.interaction(), Some(Timestamp::from_millis(500)));
        assert_eq!(child.ppid(), Some(parent.pid()));
    }

    #[test]
    fn fork_does_not_inherit_freeze_or_tracer() {
        let mut parent = task();
        parent.set_permissions_frozen(true);
        parent.set_traced_by(Some(Pid::INIT));
        let child = parent.fork_into(Pid::from_raw(11));
        assert!(!child.permissions_frozen());
        assert_eq!(child.traced_by(), None);
    }

    #[test]
    fn freeze_hides_interaction_from_monitor_view() {
        let mut t = task();
        t.observe_interaction(Timestamp::from_millis(10));
        t.set_permissions_frozen(true);
        assert_eq!(
            t.interaction(),
            None,
            "frozen task must look interaction-less"
        );
        assert_eq!(t.raw_interaction(), Some(Timestamp::from_millis(10)));
        t.set_permissions_frozen(false);
        assert_eq!(t.interaction(), Some(Timestamp::from_millis(10)));
    }

    #[test]
    fn exec_preserves_interaction() {
        let mut t = task();
        t.observe_interaction(Timestamp::from_millis(30));
        t.exec("/usr/bin/other");
        assert_eq!(t.name(), "other");
        assert_eq!(t.interaction(), Some(Timestamp::from_millis(30)));
    }

    #[test]
    fn fd_install_lookup_remove() {
        let mut t = task();
        let fd = t.install_fd(FileDescription::PipeRead {
            pipe: PipeId::from_raw(1),
        });
        assert_eq!(
            t.fd(fd),
            Some(FileDescription::PipeRead {
                pipe: PipeId::from_raw(1)
            })
        );
        assert_eq!(t.fd_count(), 1);
        let removed = t.remove_fd(fd).unwrap();
        assert!(matches!(removed, FileDescription::PipeRead { .. }));
        assert_eq!(t.fd(fd), None);
    }

    #[test]
    fn fds_are_unique_and_increasing() {
        let mut t = task();
        let a = t.install_fd(FileDescription::Regular {
            inode: InodeId::from_raw(1),
        });
        let b = t.install_fd(FileDescription::Regular {
            inode: InodeId::from_raw(2),
        });
        assert!(b > a);
    }

    #[test]
    fn drain_fds_empties_table() {
        let mut t = task();
        t.install_fd(FileDescription::Regular {
            inode: InodeId::from_raw(1),
        });
        t.install_fd(FileDescription::Device {
            device: DeviceId::from_raw(1),
        });
        let drained = t.drain_fds();
        assert_eq!(drained.len(), 2);
        assert_eq!(t.fd_count(), 0);
    }

    #[test]
    fn zombie_state_round_trip() {
        let mut t = task();
        assert!(t.is_running());
        t.set_zombie(3);
        assert!(!t.is_running());
        assert_eq!(t.state(), TaskState::Zombie { code: 3 });
    }

    #[test]
    fn epoch_bumps_on_every_verdict_relevant_change() {
        let mut t = task();
        let e0 = t.interaction_epoch();
        assert!(t.observe_interaction(Timestamp::from_millis(100)));
        assert_eq!(t.interaction_epoch(), e0 + 1);
        // A rejected (older) interaction changes nothing.
        assert!(!t.observe_interaction(Timestamp::from_millis(50)));
        assert_eq!(t.interaction_epoch(), e0 + 1);
        t.set_permissions_frozen(true);
        assert_eq!(t.interaction_epoch(), e0 + 2);
        // Redundant freeze is a no-op.
        t.set_permissions_frozen(true);
        assert_eq!(t.interaction_epoch(), e0 + 2);
        t.set_permissions_frozen(false);
        assert_eq!(t.interaction_epoch(), e0 + 3);
        t.clear_interaction();
        assert_eq!(t.interaction_epoch(), e0 + 4);
        assert!(t.credit_chain().is_empty());
    }

    #[test]
    fn credit_chain_tracks_provenance() {
        let mut t = task();
        assert!(t.credit_chain().is_empty());
        t.observe_interaction(Timestamp::from_millis(100));
        assert_eq!(t.credit_chain().hops(), &[CreditHop::Direct]);
        assert!(t.adopt_interaction(Timestamp::from_millis(200), IpcMechanism::Pipe));
        assert_eq!(
            t.credit_chain().hops(),
            &[CreditHop::Ipc(IpcMechanism::Pipe)]
        );
        // A rejected adoption leaves the chain untouched.
        assert!(!t.adopt_interaction(Timestamp::from_millis(150), IpcMechanism::Shm));
        assert_eq!(
            t.credit_chain().hops(),
            &[CreditHop::Ipc(IpcMechanism::Pipe)]
        );
    }

    #[test]
    fn fork_extends_chain_and_resets_epoch() {
        let mut parent = task();
        parent.observe_interaction(Timestamp::from_millis(500));
        let child = parent.fork_into(Pid::from_raw(11));
        assert_eq!(
            child.credit_chain().hops(),
            &[CreditHop::Direct, CreditHop::Fork]
        );
        assert_eq!(child.interaction_epoch(), 0);

        let blank_child = task().fork_into(Pid::from_raw(12));
        assert!(blank_child.credit_chain().is_empty());
    }

    #[test]
    fn child_bookkeeping() {
        let mut t = task();
        t.add_child(Pid::from_raw(20));
        t.add_child(Pid::from_raw(21));
        t.remove_child(Pid::from_raw(20));
        assert_eq!(t.children(), &[Pid::from_raw(21)]);
    }
}
