//! Sensitive hardware devices.
//!
//! The paper protects "privacy-sensitive hardware devices such as the
//! microphone or camera" plus arbitrary sensors. Devices here are synthetic:
//! reading one yields deterministic sample bytes, which is enough for the
//! empirical experiment (§V-D) to observe exactly *what* spyware would have
//! captured with and without Overhaul.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{Errno, SysResult};

/// Identifier of a registered device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceId(u32);

impl DeviceId {
    /// Creates a `DeviceId` from its raw value.
    pub const fn from_raw(raw: u32) -> Self {
        DeviceId(raw)
    }

    /// The raw value.
    pub const fn as_raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev:{}", self.0)
    }
}

/// The class of a sensitive device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Audio capture.
    Microphone,
    /// Video capture.
    Camera,
    /// Any other attached sensor (GPS, accelerometer, ...).
    Sensor,
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DeviceClass::Microphone => "microphone",
            DeviceClass::Camera => "camera",
            DeviceClass::Sensor => "sensor",
        })
    }
}

/// A registered hardware device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Device {
    id: DeviceId,
    class: DeviceClass,
    label: String,
    opens: u64,
    samples_served: u64,
}

impl Device {
    /// Device id.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// Device class.
    pub fn class(&self) -> DeviceClass {
        self.class
    }

    /// Human-readable label ("built-in mic").
    pub fn label(&self) -> &str {
        &self.label
    }

    /// How many times the device node has been successfully opened.
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// How many sample reads the device has served.
    pub fn samples_served(&self) -> u64 {
        self.samples_served
    }
}

/// Registry of all sensitive devices attached to the simulated machine.
#[derive(Debug, Clone, Default)]
pub struct DeviceRegistry {
    devices: BTreeMap<DeviceId, Device>,
    next: u32,
}

impl DeviceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        DeviceRegistry::default()
    }

    /// Attaches a new device and returns its id.
    pub fn register(&mut self, class: DeviceClass, label: impl Into<String>) -> DeviceId {
        self.next += 1;
        let id = DeviceId(self.next);
        self.devices.insert(
            id,
            Device {
                id,
                class,
                label: label.into(),
                opens: 0,
                samples_served: 0,
            },
        );
        id
    }

    /// Looks up a device.
    pub fn get(&self, id: DeviceId) -> SysResult<&Device> {
        self.devices.get(&id).ok_or(Errno::Enodev)
    }

    /// Per-open driver bring-up cost. Table I measures 45.2 s for 10 M
    /// baseline opens of the microphone node — about 4.5 µs per `open(2)`
    /// — so the simulated driver performs that much work.
    pub const DRIVER_OPEN_COST_NANOS: u64 = 4_500;

    /// Records a successful open of the device node, performing the
    /// calibrated driver bring-up work.
    pub fn record_open(&mut self, id: DeviceId) -> SysResult<()> {
        let device = self.devices.get_mut(&id).ok_or(Errno::Enodev)?;
        device.opens += 1;
        overhaul_sim::work::spin_nanos(Self::DRIVER_OPEN_COST_NANOS);
        Ok(())
    }

    /// Reads one synthetic sample from the device: for a microphone a PCM
    /// chunk, for a camera a frame. The content is deterministic per device
    /// and sequence number so experiments can assert exactly what leaked.
    pub fn read_sample(&mut self, id: DeviceId) -> SysResult<Vec<u8>> {
        let device = self.devices.get_mut(&id).ok_or(Errno::Enodev)?;
        device.samples_served += 1;
        let tag = match device.class {
            DeviceClass::Microphone => "pcm",
            DeviceClass::Camera => "frame",
            DeviceClass::Sensor => "reading",
        };
        Ok(format!("{}:{}:{}", tag, device.label, device.samples_served).into_bytes())
    }

    /// All registered devices in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Device> {
        self.devices.values()
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }
}

mod pack {
    //! Snapshot codec for the device registry.

    use overhaul_sim::snapshot::{Dec, Enc, Pack, SnapshotError};
    use overhaul_sim::{impl_pack, impl_pack_newtype};

    use super::{Device, DeviceClass, DeviceId, DeviceRegistry};

    impl_pack_newtype!(DeviceId, u32);

    impl Pack for DeviceClass {
        fn pack(&self, enc: &mut Enc) {
            enc.put_u8(match self {
                DeviceClass::Microphone => 0,
                DeviceClass::Camera => 1,
                DeviceClass::Sensor => 2,
            });
        }
        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            Ok(match dec.take_u8()? {
                0 => DeviceClass::Microphone,
                1 => DeviceClass::Camera,
                2 => DeviceClass::Sensor,
                _ => return Err(SnapshotError::BadValue("device class")),
            })
        }
    }

    impl_pack!(Device {
        id,
        class,
        label,
        opens,
        samples_served
    });
    impl_pack!(DeviceRegistry { devices, next });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut reg = DeviceRegistry::new();
        let mic = reg.register(DeviceClass::Microphone, "headset mic");
        let dev = reg.get(mic).unwrap();
        assert_eq!(dev.class(), DeviceClass::Microphone);
        assert_eq!(dev.label(), "headset mic");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn missing_device_is_enodev() {
        let reg = DeviceRegistry::new();
        assert_eq!(reg.get(DeviceId::from_raw(9)).err(), Some(Errno::Enodev));
    }

    #[test]
    fn open_counter_increments() {
        let mut reg = DeviceRegistry::new();
        let cam = reg.register(DeviceClass::Camera, "webcam");
        reg.record_open(cam).unwrap();
        reg.record_open(cam).unwrap();
        assert_eq!(reg.get(cam).unwrap().opens(), 2);
    }

    #[test]
    fn samples_are_deterministic_and_sequenced() {
        let mut reg = DeviceRegistry::new();
        let mic = reg.register(DeviceClass::Microphone, "mic");
        let s1 = reg.read_sample(mic).unwrap();
        let s2 = reg.read_sample(mic).unwrap();
        assert_eq!(s1, b"pcm:mic:1".to_vec());
        assert_eq!(s2, b"pcm:mic:2".to_vec());
    }

    #[test]
    fn sample_tag_matches_class() {
        let mut reg = DeviceRegistry::new();
        let cam = reg.register(DeviceClass::Camera, "cam");
        let sensor = reg.register(DeviceClass::Sensor, "gps");
        assert!(String::from_utf8(reg.read_sample(cam).unwrap())
            .unwrap()
            .starts_with("frame:"));
        assert!(String::from_utf8(reg.read_sample(sensor).unwrap())
            .unwrap()
            .starts_with("reading:"));
    }

    #[test]
    fn ids_are_unique() {
        let mut reg = DeviceRegistry::new();
        let a = reg.register(DeviceClass::Camera, "a");
        let b = reg.register(DeviceClass::Camera, "b");
        assert_ne!(a, b);
    }
}
