//! Process table: creation, exit, reaping, and ancestry queries.
//!
//! Overhaul leans on two properties of the Linux process model that this
//! table reproduces: `fork`/`clone` duplicate the `task_struct` (so the
//! interaction timestamp propagates to children — policy **P1**), and the
//! parent/child tree is what constrains `ptrace` ("do not allow attaching to
//! processes that are not direct descendants of the debugging process").

use std::collections::BTreeMap;

use overhaul_sim::{Pid, Uid};

use crate::error::{Errno, SysResult};
use crate::task::{FileDescription, Task, TaskState};

/// ```
/// use overhaul_kernel::process::ProcessTable;
/// use overhaul_sim::{Pid, Timestamp};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut tasks = ProcessTable::new();
/// let parent = tasks.fork(Pid::INIT)?;
/// tasks.get_mut(parent)?.observe_interaction(Timestamp::from_millis(7));
/// // P1: the child inherits the parent's interaction timestamp.
/// let child = tasks.fork(parent)?;
/// assert_eq!(tasks.get(child)?.interaction(), Some(Timestamp::from_millis(7)));
/// # Ok(())
/// # }
/// ```
/// The table of all simulated processes.
#[derive(Debug, Clone)]
pub struct ProcessTable {
    tasks: BTreeMap<Pid, Task>,
    next_pid: u32,
}

impl Default for ProcessTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ProcessTable {
    /// Creates a table containing only `init` (pid 1, root,
    /// `/sbin/init`).
    pub fn new() -> Self {
        let mut tasks = BTreeMap::new();
        tasks.insert(
            Pid::INIT,
            Task::new(Pid::INIT, None, Uid::ROOT, "/sbin/init"),
        );
        ProcessTable { tasks, next_pid: 2 }
    }

    /// Looks up a live-or-zombie task.
    pub fn get(&self, pid: Pid) -> SysResult<&Task> {
        self.tasks.get(&pid).ok_or(Errno::Esrch)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, pid: Pid) -> SysResult<&mut Task> {
        self.tasks.get_mut(&pid).ok_or(Errno::Esrch)
    }

    /// Whether `pid` exists and is running.
    pub fn is_running(&self, pid: Pid) -> bool {
        self.tasks.get(&pid).map(Task::is_running).unwrap_or(false)
    }

    /// Iterates over all tasks in pid order.
    pub fn iter(&self) -> impl Iterator<Item = &Task> {
        self.tasks.values()
    }

    /// Number of tasks (live + zombie).
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether only init exists.
    pub fn is_empty(&self) -> bool {
        self.tasks.len() <= 1
    }

    /// Creates a brand-new process that is a child of `parent` running a
    /// fresh image at `exe_path`. Equivalent to `fork` + `execve` for
    /// harness convenience; the interaction timestamp still flows from the
    /// parent per **P1**, and the uid is inherited.
    pub fn spawn(&mut self, parent: Pid, exe_path: &str) -> SysResult<Pid> {
        let child = self.fork(parent)?;
        self.get_mut(child)?.exec(exe_path);
        Ok(child)
    }

    /// `fork(2)`: duplicates `parent` into a new child, copying the fd table
    /// and the interaction timestamp (**P1**).
    pub fn fork(&mut self, parent: Pid) -> SysResult<Pid> {
        let parent_task = self.tasks.get(&parent).ok_or(Errno::Esrch)?;
        if !parent_task.is_running() {
            return Err(Errno::Esrch);
        }
        let child_pid = Pid::from_raw(self.next_pid);
        self.next_pid += 1;
        let child = parent_task.fork_into(child_pid);
        self.tasks.insert(child_pid, child);
        self.tasks
            .get_mut(&parent)
            .expect("parent checked above")
            .add_child(child_pid);
        Ok(child_pid)
    }

    /// `execve(2)`: replaces the image of `pid`. The `task_struct` — and so
    /// the interaction timestamp — is reused.
    pub fn exec(&mut self, pid: Pid, exe_path: &str) -> SysResult<()> {
        let task = self.get_mut(pid)?;
        if !task.is_running() {
            return Err(Errno::Esrch);
        }
        task.exec(exe_path);
        Ok(())
    }

    /// `exit(2)`: marks `pid` a zombie, reparents its children to init, and
    /// returns the drained file descriptions so the kernel can release the
    /// backing objects (pipes, sockets, devices...).
    pub fn exit(&mut self, pid: Pid, code: i32) -> SysResult<Vec<FileDescription>> {
        if pid == Pid::INIT {
            return Err(Errno::Eperm);
        }
        let (drained, children) = {
            let task = self.get_mut(pid)?;
            if !task.is_running() {
                return Err(Errno::Esrch);
            }
            task.set_zombie(code);
            task.set_traced_by(None);
            (task.drain_fds(), task.children().to_vec())
        };
        for child in children {
            if let Some(child_task) = self.tasks.get_mut(&child) {
                child_task.set_ppid(Some(Pid::INIT));
            }
            self.tasks
                .get_mut(&pid)
                .expect("exists")
                .remove_child(child);
            self.tasks
                .get_mut(&Pid::INIT)
                .expect("init exists")
                .add_child(child);
        }
        Ok(drained)
    }

    /// `waitpid(2)`: reaps a zombie child of `parent`, returning its exit
    /// code, or [`Errno::Eagain`] if the child is still running.
    pub fn wait(&mut self, parent: Pid, child: Pid) -> SysResult<i32> {
        let parent_children = self.get(parent)?.children().to_vec();
        if !parent_children.contains(&child) {
            return Err(Errno::Esrch);
        }
        match self.get(child)?.state() {
            TaskState::Running => Err(Errno::Eagain),
            TaskState::Zombie { code } => {
                self.tasks.remove(&child);
                self.get_mut(parent)?.remove_child(child);
                Ok(code)
            }
        }
    }

    /// Whether `candidate` is a (transitive) descendant of `ancestor`.
    pub fn is_descendant_of(&self, candidate: Pid, ancestor: Pid) -> bool {
        let mut cursor = candidate;
        // Bounded walk to guard against (impossible) ppid cycles.
        for _ in 0..self.tasks.len() + 1 {
            match self.tasks.get(&cursor).and_then(Task::ppid) {
                Some(ppid) if ppid == ancestor => return true,
                Some(ppid) => cursor = ppid,
                None => return false,
            }
        }
        false
    }

    /// Pids of all running tasks.
    pub fn running_pids(&self) -> Vec<Pid> {
        self.tasks
            .values()
            .filter(|t| t.is_running())
            .map(Task::pid)
            .collect()
    }
}

mod pack {
    //! Snapshot codec for the process table.

    use overhaul_sim::impl_pack;

    use super::ProcessTable;

    impl_pack!(ProcessTable { tasks, next_pid });
}

#[cfg(test)]
mod tests {
    use super::*;
    use overhaul_sim::Timestamp;

    #[test]
    fn new_table_has_init() {
        let table = ProcessTable::new();
        assert!(table.is_running(Pid::INIT));
        assert_eq!(table.get(Pid::INIT).unwrap().exe_path(), "/sbin/init");
    }

    #[test]
    fn fork_creates_child_with_parent_link() {
        let mut table = ProcessTable::new();
        let child = table.fork(Pid::INIT).unwrap();
        assert_eq!(table.get(child).unwrap().ppid(), Some(Pid::INIT));
        assert!(table.get(Pid::INIT).unwrap().children().contains(&child));
    }

    #[test]
    fn fork_propagates_interaction_p1() {
        let mut table = ProcessTable::new();
        let parent = table.fork(Pid::INIT).unwrap();
        table
            .get_mut(parent)
            .unwrap()
            .observe_interaction(Timestamp::from_millis(77));
        let child = table.fork(parent).unwrap();
        assert_eq!(
            table.get(child).unwrap().interaction(),
            Some(Timestamp::from_millis(77))
        );
    }

    #[test]
    fn fork_of_dead_parent_fails() {
        let mut table = ProcessTable::new();
        let p = table.fork(Pid::INIT).unwrap();
        table.exit(p, 0).unwrap();
        assert_eq!(table.fork(p), Err(Errno::Esrch));
    }

    #[test]
    fn exit_reparents_children_to_init() {
        let mut table = ProcessTable::new();
        let parent = table.fork(Pid::INIT).unwrap();
        let child = table.fork(parent).unwrap();
        table.exit(parent, 0).unwrap();
        assert_eq!(table.get(child).unwrap().ppid(), Some(Pid::INIT));
        assert!(table.get(Pid::INIT).unwrap().children().contains(&child));
    }

    #[test]
    fn init_cannot_exit() {
        let mut table = ProcessTable::new();
        assert_eq!(table.exit(Pid::INIT, 0), Err(Errno::Eperm));
    }

    #[test]
    fn wait_reaps_zombie() {
        let mut table = ProcessTable::new();
        let child = table.fork(Pid::INIT).unwrap();
        assert_eq!(table.wait(Pid::INIT, child), Err(Errno::Eagain));
        table.exit(child, 42).unwrap();
        assert_eq!(table.wait(Pid::INIT, child), Ok(42));
        assert!(table.get(child).is_err(), "reaped task is gone");
    }

    #[test]
    fn wait_rejects_non_child() {
        let mut table = ProcessTable::new();
        let a = table.fork(Pid::INIT).unwrap();
        let b = table.fork(a).unwrap();
        assert_eq!(table.wait(Pid::INIT, b), Err(Errno::Esrch));
    }

    #[test]
    fn descendant_query_walks_tree() {
        let mut table = ProcessTable::new();
        let a = table.fork(Pid::INIT).unwrap();
        let b = table.fork(a).unwrap();
        let c = table.fork(b).unwrap();
        assert!(table.is_descendant_of(c, a));
        assert!(table.is_descendant_of(c, Pid::INIT));
        assert!(!table.is_descendant_of(a, c));
        assert!(
            !table.is_descendant_of(a, a),
            "a process is not its own descendant"
        );
    }

    #[test]
    fn spawn_is_fork_plus_exec() {
        let mut table = ProcessTable::new();
        let launcher = table.fork(Pid::INIT).unwrap();
        table
            .get_mut(launcher)
            .unwrap()
            .observe_interaction(Timestamp::from_millis(5));
        let shot = table.spawn(launcher, "/usr/bin/shot").unwrap();
        let task = table.get(shot).unwrap();
        assert_eq!(task.name(), "shot");
        assert_eq!(
            task.interaction(),
            Some(Timestamp::from_millis(5)),
            "figure 3: launcher's interaction must reach the spawned program"
        );
    }

    #[test]
    fn exit_drains_fd_table() {
        let mut table = ProcessTable::new();
        let p = table.fork(Pid::INIT).unwrap();
        table
            .get_mut(p)
            .unwrap()
            .install_fd(FileDescription::Regular {
                inode: crate::vfs::InodeId::from_raw(9),
            });
        let drained = table.exit(p, 0).unwrap();
        assert_eq!(drained.len(), 1);
    }

    #[test]
    fn running_pids_excludes_zombies() {
        let mut table = ProcessTable::new();
        let a = table.fork(Pid::INIT).unwrap();
        let b = table.fork(Pid::INIT).unwrap();
        table.exit(a, 0).unwrap();
        let pids = table.running_pids();
        assert!(pids.contains(&b));
        assert!(!pids.contains(&a));
    }
}
