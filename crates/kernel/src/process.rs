//! Process table: creation, exit, reaping, and ancestry queries.
//!
//! Overhaul leans on two properties of the Linux process model that this
//! table reproduces: `fork`/`clone` duplicate the `task_struct` (so the
//! interaction timestamp propagates to children — policy **P1**), and the
//! parent/child tree is what constrains `ptrace` ("do not allow attaching to
//! processes that are not direct descendants of the debugging process").
//!
//! Storage is a generation-checked [`Slab`] arena plus a dense
//! pid-indexed side table (`by_pid`), so the decide hot path resolves a pid
//! to a task with two array indexes instead of a `BTreeMap` walk. Pids are
//! sequential and never reused, which keeps `by_pid` a straight `Vec`; a
//! reaped pid leaves a dead entry behind whose generation check fails, so a
//! stale [`SlotId`] can never alias a later task. The snapshot codec still
//! emits the legacy sorted `(pid, task)` layout byte-for-byte and rebuilds
//! the arena on decode.

use overhaul_sim::{Pid, Slab, SlotId, Uid};

use crate::error::{Errno, SysResult};
use crate::task::{FileDescription, Task, TaskState};

/// Sentinel for a pid that has no live-or-zombie task. Index `u32::MAX`
/// can never be a real slot (the arena would need 4 billion live tasks).
const DEAD: SlotId = SlotId::new(u32::MAX, u32::MAX);

/// ```
/// use overhaul_kernel::process::ProcessTable;
/// use overhaul_sim::{Pid, Timestamp};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut tasks = ProcessTable::new();
/// let parent = tasks.fork(Pid::INIT)?;
/// tasks.get_mut(parent)?.observe_interaction(Timestamp::from_millis(7));
/// // P1: the child inherits the parent's interaction timestamp.
/// let child = tasks.fork(parent)?;
/// assert_eq!(tasks.get(child)?.interaction(), Some(Timestamp::from_millis(7)));
/// # Ok(())
/// # }
/// ```
/// The table of all simulated processes.
#[derive(Debug, Clone)]
pub struct ProcessTable {
    arena: Slab<Task>,
    /// Indexed by raw pid; `DEAD` for pids never issued or already reaped.
    by_pid: Vec<SlotId>,
    next_pid: u32,
}

impl Default for ProcessTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ProcessTable {
    /// Creates a table containing only `init` (pid 1, root,
    /// `/sbin/init`).
    pub fn new() -> Self {
        let mut table = ProcessTable {
            arena: Slab::new(),
            by_pid: Vec::new(),
            next_pid: 2,
        };
        table.install(Task::new(Pid::INIT, None, Uid::ROOT, "/sbin/init"));
        table
    }

    /// Inserts `task` into the arena and wires up the pid index.
    fn install(&mut self, task: Task) -> SlotId {
        let pid = task.pid().as_raw() as usize;
        let id = self.arena.insert(task);
        if self.by_pid.len() <= pid {
            self.by_pid.resize(pid + 1, DEAD);
        }
        self.by_pid[pid] = id;
        id
    }

    /// Resolves a pid to its live-or-zombie arena slot. This is the decide
    /// hot path's entire lookup: one bounds-checked index plus the arena's
    /// generation check.
    #[inline]
    pub fn slot_of(&self, pid: Pid) -> Option<SlotId> {
        let id = *self.by_pid.get(pid.as_raw() as usize)?;
        if id == DEAD {
            return None;
        }
        debug_assert!(self.arena.contains(id));
        Some(id)
    }

    /// Direct slot access (generation-checked).
    #[inline]
    pub fn get_by_slot(&self, id: SlotId) -> Option<&Task> {
        self.arena.get(id)
    }

    /// Resolves `pid` to `(slot, task)` in one step.
    #[inline]
    pub fn slot_entry(&self, pid: Pid) -> Option<(SlotId, &Task)> {
        let id = self.slot_of(pid)?;
        Some((id, self.arena.get(id)?))
    }

    /// Number of arena slots ever allocated (live + free); per-task side
    /// tables (like the verdict cache) size themselves off this.
    pub fn slot_capacity(&self) -> usize {
        self.arena.slot_capacity()
    }

    /// Looks up a live-or-zombie task.
    pub fn get(&self, pid: Pid) -> SysResult<&Task> {
        self.slot_of(pid)
            .and_then(|id| self.arena.get(id))
            .ok_or(Errno::Esrch)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, pid: Pid) -> SysResult<&mut Task> {
        match self.slot_of(pid) {
            Some(id) => self.arena.get_mut(id).ok_or(Errno::Esrch),
            None => Err(Errno::Esrch),
        }
    }

    /// Whether `pid` exists and is running.
    pub fn is_running(&self, pid: Pid) -> bool {
        self.get(pid).map(Task::is_running).unwrap_or(false)
    }

    /// Iterates over all tasks in pid order.
    pub fn iter(&self) -> impl Iterator<Item = &Task> {
        self.by_pid
            .iter()
            .filter(|&&id| id != DEAD)
            .filter_map(|&id| self.arena.get(id))
    }

    /// Number of tasks (live + zombie).
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Whether only init exists.
    pub fn is_empty(&self) -> bool {
        self.arena.len() <= 1
    }

    /// Creates a brand-new process that is a child of `parent` running a
    /// fresh image at `exe_path`. Equivalent to `fork` + `execve` for
    /// harness convenience; the interaction timestamp still flows from the
    /// parent per **P1**, and the uid is inherited.
    pub fn spawn(&mut self, parent: Pid, exe_path: &str) -> SysResult<Pid> {
        let child = self.fork(parent)?;
        self.get_mut(child)?.exec(exe_path);
        Ok(child)
    }

    /// `fork(2)`: duplicates `parent` into a new child, copying the fd table
    /// and the interaction timestamp (**P1**).
    pub fn fork(&mut self, parent: Pid) -> SysResult<Pid> {
        let child_pid = Pid::from_raw(self.next_pid);
        let parent_task = self.get(parent)?;
        if !parent_task.is_running() {
            return Err(Errno::Esrch);
        }
        let child = parent_task.fork_into(child_pid);
        self.next_pid += 1;
        self.install(child);
        self.get_mut(parent)
            .expect("parent checked above")
            .add_child(child_pid);
        Ok(child_pid)
    }

    /// `execve(2)`: replaces the image of `pid`. The `task_struct` — and so
    /// the interaction timestamp — is reused.
    pub fn exec(&mut self, pid: Pid, exe_path: &str) -> SysResult<()> {
        let task = self.get_mut(pid)?;
        if !task.is_running() {
            return Err(Errno::Esrch);
        }
        task.exec(exe_path);
        Ok(())
    }

    /// `exit(2)`: marks `pid` a zombie, reparents its children to init, and
    /// returns the drained file descriptions so the kernel can release the
    /// backing objects (pipes, sockets, devices...).
    pub fn exit(&mut self, pid: Pid, code: i32) -> SysResult<Vec<FileDescription>> {
        if pid == Pid::INIT {
            return Err(Errno::Eperm);
        }
        let (drained, children) = {
            let task = self.get_mut(pid)?;
            if !task.is_running() {
                return Err(Errno::Esrch);
            }
            task.set_zombie(code);
            task.set_traced_by(None);
            (task.drain_fds(), task.children().to_vec())
        };
        for child in children {
            if let Ok(child_task) = self.get_mut(child) {
                child_task.set_ppid(Some(Pid::INIT));
            }
            self.get_mut(pid).expect("exists").remove_child(child);
            self.get_mut(Pid::INIT)
                .expect("init exists")
                .add_child(child);
        }
        Ok(drained)
    }

    /// `waitpid(2)`: reaps a zombie child of `parent`, returning its exit
    /// code, or [`Errno::Eagain`] if the child is still running.
    pub fn wait(&mut self, parent: Pid, child: Pid) -> SysResult<i32> {
        let parent_children = self.get(parent)?.children().to_vec();
        if !parent_children.contains(&child) {
            return Err(Errno::Esrch);
        }
        match self.get(child)?.state() {
            TaskState::Running => Err(Errno::Eagain),
            TaskState::Zombie { code } => {
                if let Some(id) = self.slot_of(child) {
                    self.arena.remove(id);
                    self.by_pid[child.as_raw() as usize] = DEAD;
                }
                self.get_mut(parent)?.remove_child(child);
                Ok(code)
            }
        }
    }

    /// Whether `candidate` is a (transitive) descendant of `ancestor`.
    pub fn is_descendant_of(&self, candidate: Pid, ancestor: Pid) -> bool {
        let mut cursor = candidate;
        // Bounded walk to guard against (impossible) ppid cycles.
        for _ in 0..self.arena.len() + 1 {
            match self.get(cursor).ok().and_then(Task::ppid) {
                Some(ppid) if ppid == ancestor => return true,
                Some(ppid) => cursor = ppid,
                None => return false,
            }
        }
        false
    }

    /// Pids of all running tasks.
    pub fn running_pids(&self) -> Vec<Pid> {
        self.iter()
            .filter(|t| t.is_running())
            .map(Task::pid)
            .collect()
    }
}

mod pack {
    //! Snapshot codec for the process table.
    //!
    //! Emits the pre-arena layout byte-for-byte: a `u64` task count, the
    //! `(pid, task)` pairs in ascending pid order (exactly what the old
    //! `BTreeMap<Pid, Task>` field produced), then `next_pid`. Arena slots,
    //! generations, and the pid index are derived state rebuilt on decode,
    //! so state hashes are unchanged across the refactor.

    use overhaul_sim::snapshot::{Dec, Enc, Pack, SnapshotError};
    use overhaul_sim::Pid;

    use super::ProcessTable;
    use crate::task::Task;

    impl Pack for ProcessTable {
        fn pack(&self, enc: &mut Enc) {
            enc.put_u64(self.arena.len() as u64);
            for task in self.iter() {
                task.pid().pack(enc);
                task.pack(enc);
            }
            enc.put_u32(self.next_pid);
        }

        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            let count = dec.take_u64()?;
            let mut table = ProcessTable {
                arena: overhaul_sim::Slab::new(),
                by_pid: Vec::new(),
                next_pid: 2,
            };
            let mut prev: Option<Pid> = None;
            for _ in 0..count {
                let pid = Pid::unpack(dec)?;
                if prev.is_some_and(|p| p >= pid) {
                    return Err(SnapshotError::BadValue("process table pid order"));
                }
                prev = Some(pid);
                let task = Task::unpack(dec)?;
                if task.pid() != pid {
                    return Err(SnapshotError::BadValue("process table pid mismatch"));
                }
                table.install(task);
            }
            table.next_pid = dec.take_u32()?;
            Ok(table)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overhaul_sim::Timestamp;

    #[test]
    fn new_table_has_init() {
        let table = ProcessTable::new();
        assert!(table.is_running(Pid::INIT));
        assert_eq!(table.get(Pid::INIT).unwrap().exe_path(), "/sbin/init");
    }

    #[test]
    fn fork_creates_child_with_parent_link() {
        let mut table = ProcessTable::new();
        let child = table.fork(Pid::INIT).unwrap();
        assert_eq!(table.get(child).unwrap().ppid(), Some(Pid::INIT));
        assert!(table.get(Pid::INIT).unwrap().children().contains(&child));
    }

    #[test]
    fn fork_propagates_interaction_p1() {
        let mut table = ProcessTable::new();
        let parent = table.fork(Pid::INIT).unwrap();
        table
            .get_mut(parent)
            .unwrap()
            .observe_interaction(Timestamp::from_millis(77));
        let child = table.fork(parent).unwrap();
        assert_eq!(
            table.get(child).unwrap().interaction(),
            Some(Timestamp::from_millis(77))
        );
    }

    #[test]
    fn fork_of_dead_parent_fails() {
        let mut table = ProcessTable::new();
        let p = table.fork(Pid::INIT).unwrap();
        table.exit(p, 0).unwrap();
        assert_eq!(table.fork(p), Err(Errno::Esrch));
    }

    #[test]
    fn exit_reparents_children_to_init() {
        let mut table = ProcessTable::new();
        let parent = table.fork(Pid::INIT).unwrap();
        let child = table.fork(parent).unwrap();
        table.exit(parent, 0).unwrap();
        assert_eq!(table.get(child).unwrap().ppid(), Some(Pid::INIT));
        assert!(table.get(Pid::INIT).unwrap().children().contains(&child));
    }

    #[test]
    fn init_cannot_exit() {
        let mut table = ProcessTable::new();
        assert_eq!(table.exit(Pid::INIT, 0), Err(Errno::Eperm));
    }

    #[test]
    fn wait_reaps_zombie() {
        let mut table = ProcessTable::new();
        let child = table.fork(Pid::INIT).unwrap();
        assert_eq!(table.wait(Pid::INIT, child), Err(Errno::Eagain));
        table.exit(child, 42).unwrap();
        assert_eq!(table.wait(Pid::INIT, child), Ok(42));
        assert!(table.get(child).is_err(), "reaped task is gone");
    }

    #[test]
    fn wait_rejects_non_child() {
        let mut table = ProcessTable::new();
        let a = table.fork(Pid::INIT).unwrap();
        let b = table.fork(a).unwrap();
        assert_eq!(table.wait(Pid::INIT, b), Err(Errno::Esrch));
    }

    #[test]
    fn descendant_query_walks_tree() {
        let mut table = ProcessTable::new();
        let a = table.fork(Pid::INIT).unwrap();
        let b = table.fork(a).unwrap();
        let c = table.fork(b).unwrap();
        assert!(table.is_descendant_of(c, a));
        assert!(table.is_descendant_of(c, Pid::INIT));
        assert!(!table.is_descendant_of(a, c));
        assert!(
            !table.is_descendant_of(a, a),
            "a process is not its own descendant"
        );
    }

    #[test]
    fn spawn_is_fork_plus_exec() {
        let mut table = ProcessTable::new();
        let launcher = table.fork(Pid::INIT).unwrap();
        table
            .get_mut(launcher)
            .unwrap()
            .observe_interaction(Timestamp::from_millis(5));
        let shot = table.spawn(launcher, "/usr/bin/shot").unwrap();
        let task = table.get(shot).unwrap();
        assert_eq!(task.name(), "shot");
        assert_eq!(
            task.interaction(),
            Some(Timestamp::from_millis(5)),
            "figure 3: launcher's interaction must reach the spawned program"
        );
    }

    #[test]
    fn exit_drains_fd_table() {
        let mut table = ProcessTable::new();
        let p = table.fork(Pid::INIT).unwrap();
        table
            .get_mut(p)
            .unwrap()
            .install_fd(FileDescription::Regular {
                inode: crate::vfs::InodeId::from_raw(9),
            });
        let drained = table.exit(p, 0).unwrap();
        assert_eq!(drained.len(), 1);
    }

    #[test]
    fn running_pids_excludes_zombies() {
        let mut table = ProcessTable::new();
        let a = table.fork(Pid::INIT).unwrap();
        let b = table.fork(Pid::INIT).unwrap();
        table.exit(a, 0).unwrap();
        let pids = table.running_pids();
        assert!(pids.contains(&b));
        assert!(!pids.contains(&a));
    }

    #[test]
    fn slot_of_reaped_pid_is_dead_and_slot_is_reused_with_new_generation() {
        let mut table = ProcessTable::new();
        let a = table.fork(Pid::INIT).unwrap();
        let a_slot = table.slot_of(a).unwrap();
        table.exit(a, 0).unwrap();
        assert!(
            table.slot_of(a).is_some(),
            "zombies still resolve until reaped"
        );
        table.wait(Pid::INIT, a).unwrap();
        assert_eq!(table.slot_of(a), None);
        assert!(table.get_by_slot(a_slot).is_none(), "stale slot id is dead");

        let b = table.fork(Pid::INIT).unwrap();
        let b_slot = table.slot_of(b).unwrap();
        assert_eq!(b_slot.index(), a_slot.index(), "freed slot is reused");
        assert_ne!(b_slot.gen(), a_slot.gen(), "with a bumped generation");
        assert!(table.get_by_slot(a_slot).is_none());
        assert_eq!(table.get_by_slot(b_slot).unwrap().pid(), b);
    }

    #[test]
    fn pack_layout_matches_legacy_btreemap_encoding() {
        use overhaul_sim::snapshot::{Dec, Enc, Pack};
        use std::collections::BTreeMap;

        let mut table = ProcessTable::new();
        let a = table.fork(Pid::INIT).unwrap();
        let b = table.spawn(a, "/usr/bin/cam").unwrap();
        table.exit(b, 3).unwrap();

        let mut enc = Enc::new();
        table.pack(&mut enc);
        let arena_bytes = enc.into_bytes();

        // Re-encode through the legacy shape: BTreeMap<Pid, Task> + u32.
        let map: BTreeMap<Pid, Task> = table.iter().map(|t| (t.pid(), t.clone())).collect();
        let mut legacy = Enc::new();
        map.pack(&mut legacy);
        legacy.put_u32(table.next_pid);
        assert_eq!(arena_bytes, legacy.into_bytes());

        let restored = ProcessTable::unpack(&mut Dec::new(&arena_bytes)).unwrap();
        assert_eq!(restored.len(), table.len());
        assert_eq!(restored.next_pid, table.next_pid);
        assert!(restored.is_running(a));
    }
}
