//! In-memory virtual filesystem.
//!
//! Overhaul mediates sensitive hardware "by monitoring `open` system call
//! invocations on device nodes exposed in the filesystem" (§IV-B). This VFS
//! provides those device nodes (plus regular files, directories, and FIFOs)
//! and the classic UNIX owner/other permission bits that Overhaul layers on
//! top of. The filesystem micro-benchmark (Table I, "Bonnie++") creates,
//! stats, and deletes files here.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use overhaul_sim::Uid;
use serde::{Deserialize, Serialize};

use crate::device::DeviceId;
use crate::error::{Errno, SysResult};
use crate::ipc::pipe::PipeId;

/// Identifier of a VFS inode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InodeId(u64);

impl InodeId {
    /// Creates an `InodeId` from its raw value.
    pub const fn from_raw(raw: u64) -> Self {
        InodeId(raw)
    }

    /// The raw value.
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for InodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ino:{}", self.0)
    }
}

/// What an inode is.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InodeKind {
    /// A directory mapping names to child inodes.
    Directory {
        /// Directory entries in name order.
        entries: BTreeMap<String, InodeId>,
    },
    /// A regular file with byte contents.
    Regular {
        /// File contents.
        data: Vec<u8>,
    },
    /// A device node pointing at a registered device.
    DeviceNode {
        /// The device behind this node.
        device: DeviceId,
    },
    /// A named pipe; the backing pipe object is allocated at `mkfifo` time.
    Fifo {
        /// Backing pipe object.
        pipe: PipeId,
    },
}

/// Metadata + contents of one filesystem object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Inode {
    id: InodeId,
    kind: InodeKind,
    owner: Uid,
    /// Classic permission bits; only the rw bits for owner (0o600) and
    /// other (0o006) are enforced.
    mode: u16,
}

impl Inode {
    /// Inode id.
    pub fn id(&self) -> InodeId {
        self.id
    }

    /// Inode kind and contents.
    pub fn kind(&self) -> &InodeKind {
        &self.kind
    }

    /// Owning user.
    pub fn owner(&self) -> Uid {
        self.owner
    }

    /// Permission bits.
    pub fn mode(&self) -> u16 {
        self.mode
    }

    /// Whether `uid` may open this inode; `write` selects the write bit.
    /// Root bypasses permission bits, as in UNIX.
    pub fn permits(&self, uid: Uid, write: bool) -> bool {
        if uid.is_root() {
            return true;
        }
        let (owner_bit, other_bit) = if write {
            (0o200, 0o002)
        } else {
            (0o400, 0o004)
        };
        if uid == self.owner {
            self.mode & owner_bit != 0
        } else {
            self.mode & other_bit != 0
        }
    }
}

/// Result of `stat(2)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stat {
    /// Inode number.
    pub inode: InodeId,
    /// Owner.
    pub owner: Uid,
    /// Permission bits.
    pub mode: u16,
    /// Size in bytes (0 for non-regular files).
    pub size: usize,
    /// True for directories.
    pub is_dir: bool,
    /// True for device nodes.
    pub is_device: bool,
}

/// The in-memory filesystem tree.
#[derive(Debug, Clone)]
pub struct Vfs {
    inodes: HashMap<InodeId, Inode>,
    root: InodeId,
    next: u64,
}

impl Default for Vfs {
    fn default() -> Self {
        Self::new()
    }
}

fn split_path(path: &str) -> SysResult<Vec<&str>> {
    if !path.starts_with('/') {
        return Err(Errno::Einval);
    }
    Ok(path.split('/').filter(|c| !c.is_empty()).collect())
}

fn split_parent(path: &str) -> SysResult<(Vec<&str>, &str)> {
    let mut components = split_path(path)?;
    let name = components.pop().ok_or(Errno::Einval)?;
    Ok((components, name))
}

impl Vfs {
    /// Creates a filesystem with a root directory owned by root and the
    /// conventional `/dev`, `/tmp`, `/usr/bin`, `/usr/lib/xorg`, and
    /// `/home` directories.
    pub fn new() -> Self {
        let root_id = InodeId(1);
        let mut vfs = Vfs {
            inodes: HashMap::new(),
            root: root_id,
            next: 2,
        };
        vfs.inodes.insert(
            root_id,
            Inode {
                id: root_id,
                kind: InodeKind::Directory {
                    entries: BTreeMap::new(),
                },
                owner: Uid::ROOT,
                mode: 0o755,
            },
        );
        for dir in [
            "/dev",
            "/tmp",
            "/usr",
            "/usr/bin",
            "/usr/lib",
            "/usr/lib/xorg",
            "/home",
            "/proc",
        ] {
            vfs.mkdir(dir, Uid::ROOT, 0o755).expect("bootstrap dirs");
        }
        vfs
    }

    fn alloc(&mut self, kind: InodeKind, owner: Uid, mode: u16) -> InodeId {
        let id = InodeId(self.next);
        self.next += 1;
        self.inodes.insert(
            id,
            Inode {
                id,
                kind,
                owner,
                mode,
            },
        );
        id
    }

    fn resolve_components(&self, components: &[&str]) -> SysResult<InodeId> {
        let mut cursor = self.root;
        for component in components {
            let inode = self.inodes.get(&cursor).ok_or(Errno::Enoent)?;
            match &inode.kind {
                InodeKind::Directory { entries } => {
                    cursor = *entries.get(*component).ok_or(Errno::Enoent)?;
                }
                _ => return Err(Errno::Enotdir),
            }
        }
        Ok(cursor)
    }

    /// Resolves an absolute path to an inode id.
    ///
    /// # Errors
    ///
    /// [`Errno::Einval`] for relative paths, [`Errno::Enoent`] for missing
    /// components, [`Errno::Enotdir`] when traversing a non-directory.
    pub fn resolve(&self, path: &str) -> SysResult<InodeId> {
        self.resolve_components(&split_path(path)?)
    }

    /// Looks up an inode by id.
    pub fn inode(&self, id: InodeId) -> SysResult<&Inode> {
        self.inodes.get(&id).ok_or(Errno::Enoent)
    }

    fn insert_child(
        &mut self,
        parent_components: &[&str],
        name: &str,
        child: InodeId,
    ) -> SysResult<()> {
        let parent_id = self.resolve_components(parent_components)?;
        let parent = self.inodes.get_mut(&parent_id).ok_or(Errno::Enoent)?;
        match &mut parent.kind {
            InodeKind::Directory { entries } => {
                if entries.contains_key(name) {
                    return Err(Errno::Eexist);
                }
                entries.insert(name.to_string(), child);
                Ok(())
            }
            _ => Err(Errno::Enotdir),
        }
    }

    /// Creates a directory.
    pub fn mkdir(&mut self, path: &str, owner: Uid, mode: u16) -> SysResult<InodeId> {
        let (parent, name) = split_parent(path)?;
        let id = self.alloc(
            InodeKind::Directory {
                entries: BTreeMap::new(),
            },
            owner,
            mode,
        );
        match self.insert_child(&parent, name, id) {
            Ok(()) => Ok(id),
            Err(e) => {
                self.inodes.remove(&id);
                Err(e)
            }
        }
    }

    /// Per-create disk/journal cost. Table I's Bonnie++ row measures
    /// ~47 300 file creations per second on the baseline — about 21 µs per
    /// create — so file creation performs that much work.
    pub const FILE_CREATE_COST_MICROS: u64 = 20;

    /// Creates an empty regular file (including the calibrated disk work).
    pub fn create_file(&mut self, path: &str, owner: Uid, mode: u16) -> SysResult<InodeId> {
        overhaul_sim::work::spin_micros(Self::FILE_CREATE_COST_MICROS);
        let (parent, name) = split_parent(path)?;
        let id = self.alloc(InodeKind::Regular { data: Vec::new() }, owner, mode);
        match self.insert_child(&parent, name, id) {
            Ok(()) => Ok(id),
            Err(e) => {
                self.inodes.remove(&id);
                Err(e)
            }
        }
    }

    /// Creates a device node (root-owned by convention, like udev does).
    pub fn mknod_device(&mut self, path: &str, device: DeviceId, mode: u16) -> SysResult<InodeId> {
        let (parent, name) = split_parent(path)?;
        let id = self.alloc(InodeKind::DeviceNode { device }, Uid::ROOT, mode);
        match self.insert_child(&parent, name, id) {
            Ok(()) => Ok(id),
            Err(e) => {
                self.inodes.remove(&id);
                Err(e)
            }
        }
    }

    /// Creates a named pipe backed by `pipe`.
    pub fn mkfifo(
        &mut self,
        path: &str,
        pipe: PipeId,
        owner: Uid,
        mode: u16,
    ) -> SysResult<InodeId> {
        let (parent, name) = split_parent(path)?;
        let id = self.alloc(InodeKind::Fifo { pipe }, owner, mode);
        match self.insert_child(&parent, name, id) {
            Ok(()) => Ok(id),
            Err(e) => {
                self.inodes.remove(&id);
                Err(e)
            }
        }
    }

    /// Removes a file, device node, or FIFO (not a directory).
    pub fn unlink(&mut self, path: &str) -> SysResult<()> {
        let (parent, name) = split_parent(path)?;
        let parent_id = self.resolve_components(&parent)?;
        let child_id = {
            let parent_inode = self.inodes.get(&parent_id).ok_or(Errno::Enoent)?;
            match &parent_inode.kind {
                InodeKind::Directory { entries } => *entries.get(name).ok_or(Errno::Enoent)?,
                _ => return Err(Errno::Enotdir),
            }
        };
        if matches!(self.inode(child_id)?.kind, InodeKind::Directory { .. }) {
            return Err(Errno::Eisdir);
        }
        if let InodeKind::Directory { entries } =
            &mut self.inodes.get_mut(&parent_id).expect("checked").kind
        {
            entries.remove(name);
        }
        self.inodes.remove(&child_id);
        Ok(())
    }

    /// Renames an entry within the tree (used by the udev simulation for
    /// dynamic device names).
    pub fn rename(&mut self, from: &str, to: &str) -> SysResult<()> {
        let id = self.resolve(from)?;
        let (to_parent, to_name) = split_parent(to)?;
        // Insert at destination first so a failure leaves the source intact.
        self.insert_child(&to_parent, to_name, id)?;
        let (from_parent, from_name) = split_parent(from).expect("resolved above");
        let from_parent_id = self
            .resolve_components(&from_parent)
            .expect("resolved above");
        if let InodeKind::Directory { entries } = &mut self
            .inodes
            .get_mut(&from_parent_id)
            .expect("resolved above")
            .kind
        {
            entries.remove(from_name);
        }
        Ok(())
    }

    /// `stat(2)`.
    pub fn stat(&self, path: &str) -> SysResult<Stat> {
        let inode = self.inode(self.resolve(path)?)?;
        Ok(Stat {
            inode: inode.id,
            owner: inode.owner,
            mode: inode.mode,
            size: match &inode.kind {
                InodeKind::Regular { data } => data.len(),
                _ => 0,
            },
            is_dir: matches!(inode.kind, InodeKind::Directory { .. }),
            is_device: matches!(inode.kind, InodeKind::DeviceNode { .. }),
        })
    }

    /// Lists the names in a directory.
    pub fn list_dir(&self, path: &str) -> SysResult<Vec<String>> {
        let inode = self.inode(self.resolve(path)?)?;
        match &inode.kind {
            InodeKind::Directory { entries } => Ok(entries.keys().cloned().collect()),
            _ => Err(Errno::Enotdir),
        }
    }

    /// Appends bytes to a regular file.
    pub fn append(&mut self, id: InodeId, bytes: &[u8]) -> SysResult<usize> {
        let inode = self.inodes.get_mut(&id).ok_or(Errno::Enoent)?;
        match &mut inode.kind {
            InodeKind::Regular { data } => {
                data.extend_from_slice(bytes);
                Ok(bytes.len())
            }
            InodeKind::Directory { .. } => Err(Errno::Eisdir),
            _ => Err(Errno::Einval),
        }
    }

    /// Reads the full contents of a regular file.
    pub fn read_all(&self, id: InodeId) -> SysResult<&[u8]> {
        let inode = self.inode(id)?;
        match &inode.kind {
            InodeKind::Regular { data } => Ok(data),
            InodeKind::Directory { .. } => Err(Errno::Eisdir),
            _ => Err(Errno::Einval),
        }
    }

    /// Number of inodes currently allocated.
    pub fn inode_count(&self) -> usize {
        self.inodes.len()
    }
}

mod pack {
    //! Snapshot codec for the filesystem tree.

    use overhaul_sim::snapshot::{Dec, Enc, Pack, SnapshotError};
    use overhaul_sim::{impl_pack, impl_pack_newtype};

    use super::{Inode, InodeId, InodeKind, Vfs};

    impl_pack_newtype!(InodeId, u64);

    impl Pack for InodeKind {
        fn pack(&self, enc: &mut Enc) {
            match self {
                InodeKind::Directory { entries } => {
                    enc.put_u8(0);
                    entries.pack(enc);
                }
                InodeKind::Regular { data } => {
                    enc.put_u8(1);
                    data.pack(enc);
                }
                InodeKind::DeviceNode { device } => {
                    enc.put_u8(2);
                    device.pack(enc);
                }
                InodeKind::Fifo { pipe } => {
                    enc.put_u8(3);
                    pipe.pack(enc);
                }
            }
        }
        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            Ok(match dec.take_u8()? {
                0 => InodeKind::Directory {
                    entries: Pack::unpack(dec)?,
                },
                1 => InodeKind::Regular {
                    data: Pack::unpack(dec)?,
                },
                2 => InodeKind::DeviceNode {
                    device: Pack::unpack(dec)?,
                },
                3 => InodeKind::Fifo {
                    pipe: Pack::unpack(dec)?,
                },
                _ => return Err(SnapshotError::BadValue("inode kind")),
            })
        }
    }

    impl_pack!(Inode {
        id,
        kind,
        owner,
        mode
    });
    impl_pack!(Vfs { inodes, root, next });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_directories_exist() {
        let vfs = Vfs::new();
        for dir in ["/dev", "/tmp", "/usr/bin", "/usr/lib/xorg", "/proc"] {
            assert!(vfs.stat(dir).unwrap().is_dir, "{dir} missing");
        }
    }

    #[test]
    fn create_write_read_file() {
        let mut vfs = Vfs::new();
        let id = vfs
            .create_file("/tmp/a.txt", Uid::from_raw(1000), 0o644)
            .unwrap();
        vfs.append(id, b"hello").unwrap();
        assert_eq!(vfs.read_all(id).unwrap(), b"hello");
        assert_eq!(vfs.stat("/tmp/a.txt").unwrap().size, 5);
    }

    #[test]
    fn duplicate_create_fails_with_eexist() {
        let mut vfs = Vfs::new();
        vfs.create_file("/tmp/a", Uid::ROOT, 0o644).unwrap();
        assert_eq!(
            vfs.create_file("/tmp/a", Uid::ROOT, 0o644),
            Err(Errno::Eexist)
        );
    }

    #[test]
    fn failed_create_does_not_leak_inodes() {
        let mut vfs = Vfs::new();
        let before = vfs.inode_count();
        vfs.create_file("/tmp/a", Uid::ROOT, 0o644).unwrap();
        let _ = vfs.create_file("/tmp/a", Uid::ROOT, 0o644);
        assert_eq!(vfs.inode_count(), before + 1);
    }

    #[test]
    fn relative_paths_rejected() {
        let vfs = Vfs::new();
        assert_eq!(vfs.resolve("tmp/a"), Err(Errno::Einval));
    }

    #[test]
    fn missing_path_is_enoent() {
        let vfs = Vfs::new();
        assert_eq!(vfs.resolve("/tmp/missing"), Err(Errno::Enoent));
    }

    #[test]
    fn traversing_file_is_enotdir() {
        let mut vfs = Vfs::new();
        vfs.create_file("/tmp/f", Uid::ROOT, 0o644).unwrap();
        assert_eq!(vfs.resolve("/tmp/f/x"), Err(Errno::Enotdir));
    }

    #[test]
    fn unlink_removes_file_but_not_dirs() {
        let mut vfs = Vfs::new();
        vfs.create_file("/tmp/f", Uid::ROOT, 0o644).unwrap();
        vfs.unlink("/tmp/f").unwrap();
        assert_eq!(vfs.resolve("/tmp/f"), Err(Errno::Enoent));
        assert_eq!(vfs.unlink("/tmp"), Err(Errno::Eisdir));
    }

    #[test]
    fn rename_moves_device_nodes_like_udev() {
        let mut vfs = Vfs::new();
        vfs.mknod_device("/dev/video0", DeviceId::from_raw(1), 0o660)
            .unwrap();
        vfs.rename("/dev/video0", "/dev/video1").unwrap();
        assert!(vfs.stat("/dev/video1").unwrap().is_device);
        assert_eq!(vfs.resolve("/dev/video0"), Err(Errno::Enoent));
    }

    #[test]
    fn rename_to_existing_name_fails_and_preserves_source() {
        let mut vfs = Vfs::new();
        vfs.create_file("/tmp/a", Uid::ROOT, 0o644).unwrap();
        vfs.create_file("/tmp/b", Uid::ROOT, 0o644).unwrap();
        assert_eq!(vfs.rename("/tmp/a", "/tmp/b"), Err(Errno::Eexist));
        assert!(vfs.resolve("/tmp/a").is_ok());
    }

    #[test]
    fn permission_bits_enforced_for_non_root() {
        let mut vfs = Vfs::new();
        let owner = Uid::from_raw(1000);
        let other = Uid::from_raw(1001);
        let id = vfs.create_file("/tmp/secret", owner, 0o600).unwrap();
        let inode = vfs.inode(id).unwrap();
        assert!(inode.permits(owner, true));
        assert!(!inode.permits(other, false));
        assert!(inode.permits(Uid::ROOT, true), "root bypasses bits");
    }

    #[test]
    fn world_readable_mode() {
        let mut vfs = Vfs::new();
        let id = vfs.create_file("/tmp/pub", Uid::ROOT, 0o644).unwrap();
        let inode = vfs.inode(id).unwrap();
        assert!(inode.permits(Uid::from_raw(5), false));
        assert!(!inode.permits(Uid::from_raw(5), true));
    }

    #[test]
    fn list_dir_is_sorted() {
        let mut vfs = Vfs::new();
        vfs.create_file("/tmp/b", Uid::ROOT, 0o644).unwrap();
        vfs.create_file("/tmp/a", Uid::ROOT, 0o644).unwrap();
        assert_eq!(
            vfs.list_dir("/tmp").unwrap(),
            vec!["a".to_string(), "b".to_string()]
        );
    }

    #[test]
    fn mkfifo_creates_pipe_node() {
        let mut vfs = Vfs::new();
        let id = vfs
            .mkfifo("/tmp/fifo", PipeId::from_raw(7), Uid::ROOT, 0o644)
            .unwrap();
        match vfs.inode(id).unwrap().kind() {
            InodeKind::Fifo { pipe } => assert_eq!(*pipe, PipeId::from_raw(7)),
            other => panic!("expected fifo, got {other:?}"),
        }
    }
}
