//! The secure kernel↔display-manager communication channel (§IV-B).
//!
//! The prototype used Linux netlink for the channel and solved the
//! authentication problem by kernel introspection: "it examines the virtual
//! memory maps to check whether the process it is communicating with is
//! indeed the X server ... whether the executable code mapped into the
//! process is loaded from the well-known, and superuser-owned, filesystem
//! path for the X binaries."
//!
//! Here a [`Netlink`] registry tracks connections; [`Netlink::connect`]
//! performs that introspection against the process table and VFS. Messages
//! from unauthenticated connections are rejected, which is what the
//! malicious-interposer tests exercise.

use std::collections::BTreeMap;
use std::fmt;

use overhaul_sim::{Pid, Timestamp};
use serde::{Deserialize, Serialize};

use crate::monitor::{AlertRequest, Decision, ResourceOp};
use crate::process::ProcessTable;
use crate::vfs::Vfs;

/// Identifier of an established netlink connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ConnId(u32);

impl ConnId {
    /// The raw value.
    pub const fn as_raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nl:{}", self.0)
    }
}

/// A message sent from userspace to the kernel over the channel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetlinkMessage {
    /// `N_{A,t}`: the display manager authenticated a hardware input event
    /// delivered to the client owned by `pid` at `at`.
    InteractionNotification {
        /// X client process.
        pid: Pid,
        /// Event delivery time.
        at: Timestamp,
    },
    /// `Q_{A,t+n}`: may `pid` perform `op` at `at`?
    PermissionQuery {
        /// Requesting process.
        pid: Pid,
        /// Operation class.
        op: ResourceOp,
        /// Operation time.
        at: Timestamp,
    },
    /// The trusted udev helper reports that a sensitive device moved to a
    /// new filesystem path.
    DeviceMapUpdate {
        /// Old node path (empty if the device is new).
        old_path: String,
        /// New node path.
        new_path: String,
    },
}

/// The kernel's reply to a [`NetlinkMessage`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NetlinkReply {
    /// Message accepted (notifications, map updates).
    Ack,
    /// `R_{A,t+n}`: answer to a permission query.
    QueryResponse(Decision),
}

/// A message pushed from the kernel to the display manager.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelPush {
    /// `V_{A,op}`: render a visual alert.
    DisplayAlert(AlertRequest),
}

/// Why a connection attempt or message was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetlinkError {
    /// The peer process does not exist.
    NoSuchProcess,
    /// The peer's executable is not a trusted, superuser-owned binary at a
    /// well-known path.
    UntrustedPeer,
    /// The connection id is not registered.
    UnknownConnection,
}

impl fmt::Display for NetlinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NetlinkError::NoSuchProcess => "netlink peer process does not exist",
            NetlinkError::UntrustedPeer => "netlink peer failed VM-map authentication",
            NetlinkError::UnknownConnection => "unknown netlink connection",
        })
    }
}

impl std::error::Error for NetlinkError {}

#[derive(Debug, Clone)]
struct Connection {
    pid: Pid,
}

/// Registry of authenticated kernel↔userspace channels.
#[derive(Debug, Clone)]
pub struct Netlink {
    connections: BTreeMap<ConnId, Connection>,
    next: u32,
    trusted_exe_paths: Vec<String>,
}

impl Netlink {
    /// Creates a registry trusting the given executable paths (the X server
    /// binary, the udev helper).
    pub fn new(trusted_exe_paths: Vec<String>) -> Self {
        Netlink {
            connections: BTreeMap::new(),
            next: 0,
            trusted_exe_paths,
        }
    }

    /// The trusted executable paths.
    pub fn trusted_paths(&self) -> &[String] {
        &self.trusted_exe_paths
    }

    /// Attempts to establish an authenticated connection for `pid`.
    ///
    /// Reproduces the paper's introspection: the peer's mapped executable
    /// must be one of the well-known trusted paths, and that binary must be
    /// owned by the superuser in the filesystem (so a user cannot drop a
    /// fake `Xorg` somewhere and connect).
    ///
    /// # Errors
    ///
    /// [`NetlinkError::NoSuchProcess`] if `pid` is dead,
    /// [`NetlinkError::UntrustedPeer`] if introspection fails.
    pub fn connect(
        &mut self,
        tasks: &ProcessTable,
        vfs: &Vfs,
        pid: Pid,
    ) -> Result<ConnId, NetlinkError> {
        let task = tasks.get(pid).map_err(|_| NetlinkError::NoSuchProcess)?;
        if !task.is_running() {
            return Err(NetlinkError::NoSuchProcess);
        }
        let exe = task.exe_path();
        if !self.trusted_exe_paths.iter().any(|p| p == exe) {
            return Err(NetlinkError::UntrustedPeer);
        }
        let owner = vfs
            .stat(exe)
            .map_err(|_| NetlinkError::UntrustedPeer)?
            .owner;
        if !owner.is_root() {
            return Err(NetlinkError::UntrustedPeer);
        }
        self.next += 1;
        let id = ConnId(self.next);
        self.connections.insert(id, Connection { pid });
        Ok(id)
    }

    /// The peer pid of an established connection.
    pub fn peer(&self, conn: ConnId) -> Result<Pid, NetlinkError> {
        self.connections
            .get(&conn)
            .map(|c| c.pid)
            .ok_or(NetlinkError::UnknownConnection)
    }

    /// Validates that `conn` is established, returning its peer.
    pub fn authenticate(&self, conn: ConnId) -> Result<Pid, NetlinkError> {
        self.peer(conn)
    }

    /// Tears down a connection (peer exit).
    pub fn disconnect(&mut self, conn: ConnId) {
        self.connections.remove(&conn);
    }

    /// Drops every connection whose peer is no longer running.
    pub fn reap_dead_peers(&mut self, tasks: &ProcessTable) {
        self.connections.retain(|_, c| tasks.is_running(c.pid));
    }

    /// Number of live connections.
    pub fn connection_count(&self) -> usize {
        self.connections.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overhaul_sim::Uid;

    const XORG: &str = "/usr/lib/xorg/Xorg";

    fn setup() -> (Netlink, ProcessTable, Vfs) {
        let netlink = Netlink::new(vec![XORG.to_string()]);
        let tasks = ProcessTable::new();
        let mut vfs = Vfs::new();
        vfs.create_file(XORG, Uid::ROOT, 0o755).unwrap();
        (netlink, tasks, vfs)
    }

    #[test]
    fn trusted_root_owned_binary_connects() {
        let (mut netlink, mut tasks, vfs) = setup();
        let x = tasks.spawn(Pid::INIT, XORG).unwrap();
        let conn = netlink.connect(&tasks, &vfs, x).unwrap();
        assert_eq!(netlink.peer(conn).unwrap(), x);
        assert_eq!(netlink.connection_count(), 1);
    }

    #[test]
    fn untrusted_exe_rejected() {
        let (mut netlink, mut tasks, vfs) = setup();
        let mallory = tasks.spawn(Pid::INIT, "/home/mallory/fake-xorg").unwrap();
        assert_eq!(
            netlink.connect(&tasks, &vfs, mallory),
            Err(NetlinkError::UntrustedPeer)
        );
    }

    #[test]
    fn trusted_path_but_user_owned_binary_rejected() {
        // A user replacing the binary file (were it user-writable) must not
        // be able to authenticate: the on-disk binary must be root-owned.
        let mut netlink = Netlink::new(vec!["/tmp/Xorg".to_string()]);
        let mut tasks = ProcessTable::new();
        let mut vfs = Vfs::new();
        vfs.create_file("/tmp/Xorg", Uid::from_raw(1000), 0o755)
            .unwrap();
        let p = tasks.spawn(Pid::INIT, "/tmp/Xorg").unwrap();
        assert_eq!(
            netlink.connect(&tasks, &vfs, p),
            Err(NetlinkError::UntrustedPeer)
        );
    }

    #[test]
    fn missing_binary_rejected() {
        let (mut netlink, mut tasks, _) = setup();
        let vfs = Vfs::new(); // no Xorg file on disk
        let p = tasks.spawn(Pid::INIT, XORG).unwrap();
        assert_eq!(
            netlink.connect(&tasks, &vfs, p),
            Err(NetlinkError::UntrustedPeer)
        );
    }

    #[test]
    fn dead_process_cannot_connect() {
        let (mut netlink, mut tasks, vfs) = setup();
        let x = tasks.spawn(Pid::INIT, XORG).unwrap();
        tasks.exit(x, 0).unwrap();
        assert_eq!(
            netlink.connect(&tasks, &vfs, x),
            Err(NetlinkError::NoSuchProcess)
        );
    }

    #[test]
    fn unknown_connection_rejected() {
        let (netlink, _, _) = setup();
        assert_eq!(
            netlink.peer(ConnId(99)),
            Err(NetlinkError::UnknownConnection)
        );
    }

    #[test]
    fn reap_dead_peers_drops_connections() {
        let (mut netlink, mut tasks, vfs) = setup();
        let x = tasks.spawn(Pid::INIT, XORG).unwrap();
        let conn = netlink.connect(&tasks, &vfs, x).unwrap();
        tasks.exit(x, 0).unwrap();
        netlink.reap_dead_peers(&tasks);
        assert_eq!(netlink.peer(conn), Err(NetlinkError::UnknownConnection));
    }

    #[test]
    fn disconnect_is_idempotent() {
        let (mut netlink, mut tasks, vfs) = setup();
        let x = tasks.spawn(Pid::INIT, XORG).unwrap();
        let conn = netlink.connect(&tasks, &vfs, x).unwrap();
        netlink.disconnect(conn);
        netlink.disconnect(conn);
        assert_eq!(netlink.connection_count(), 0);
    }
}
