//! The secure kernel↔display-manager communication channel (§IV-B).
//!
//! The prototype used Linux netlink for the channel and solved the
//! authentication problem by kernel introspection: "it examines the virtual
//! memory maps to check whether the process it is communicating with is
//! indeed the X server ... whether the executable code mapped into the
//! process is loaded from the well-known, and superuser-owned, filesystem
//! path for the X binaries."
//!
//! Here a [`Netlink`] registry tracks connections; [`Netlink::connect`]
//! performs that introspection against the process table and VFS. Messages
//! from unauthenticated connections are rejected, which is what the
//! malicious-interposer tests exercise.
//!
//! On top of the registry sits the channel's failure model: every
//! connection carries per-message sequence numbers with an idempotent
//! delivery record (so duplicated deliveries are suppressed), and the
//! registry tracks the health of the display-manager channel as an explicit
//! [`ChannelState`] machine that the permission monitor consults to fail
//! closed while the channel is down. Connections are invalidated *eagerly*
//! from the process-exit path — a recycled pid can never inherit an
//! authenticated channel.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use overhaul_sim::{Pid, Timestamp};
use serde::{Deserialize, Serialize};

use crate::monitor::{AlertRequest, Decision, ResourceOp};
use crate::process::ProcessTable;
use crate::vfs::Vfs;

/// Identifier of an established netlink connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ConnId(u32);

impl ConnId {
    /// The raw value.
    pub const fn as_raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nl:{}", self.0)
    }
}

/// Health of the kernel↔display-manager channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChannelState {
    /// Messages are delivered cleanly.
    Up,
    /// Messages are getting through, but only after retries, delays, or
    /// duplicate suppression.
    Degraded,
    /// No authenticated display-manager connection is delivering messages;
    /// the permission monitor fails closed.
    Down,
}

impl fmt::Display for ChannelState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ChannelState::Up => "up",
            ChannelState::Degraded => "degraded",
            ChannelState::Down => "down",
        })
    }
}

/// A message sent from userspace to the kernel over the channel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetlinkMessage {
    /// `N_{A,t}`: the display manager authenticated a hardware input event
    /// delivered to the client owned by `pid` at `at`.
    InteractionNotification {
        /// X client process.
        pid: Pid,
        /// Event delivery time.
        at: Timestamp,
    },
    /// `Q_{A,t+n}`: may `pid` perform `op` at `at`?
    PermissionQuery {
        /// Requesting process.
        pid: Pid,
        /// Operation class.
        op: ResourceOp,
        /// Operation time.
        at: Timestamp,
    },
    /// The trusted udev helper reports that a sensitive device moved to a
    /// new filesystem path.
    DeviceMapUpdate {
        /// Old node path (empty if the device is new).
        old_path: String,
        /// New node path.
        new_path: String,
    },
}

/// The kernel's reply to a [`NetlinkMessage`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NetlinkReply {
    /// Message accepted (notifications, map updates).
    Ack,
    /// `R_{A,t+n}`: answer to a permission query.
    QueryResponse(Decision),
}

/// A message pushed from the kernel to the display manager.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelPush {
    /// `V_{A,op}`: render a visual alert.
    DisplayAlert(AlertRequest),
}

/// Why a connection attempt or message was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetlinkError {
    /// The peer process does not exist.
    NoSuchProcess,
    /// The peer's executable is not a trusted, superuser-owned binary at a
    /// well-known path.
    UntrustedPeer,
    /// The connection id is not registered.
    UnknownConnection,
    /// The message was lost in flight and every retry failed; the channel
    /// is down and the sender must treat the exchange as failed (closed).
    ChannelDown,
    /// VM-map introspection could not complete because a filesystem stat
    /// failed transiently; the caller may retry authentication.
    AuthTransient,
}

impl fmt::Display for NetlinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NetlinkError::NoSuchProcess => "netlink peer process does not exist",
            NetlinkError::UntrustedPeer => "netlink peer failed VM-map authentication",
            NetlinkError::UnknownConnection => "unknown netlink connection",
            NetlinkError::ChannelDown => "netlink message lost after retries; channel down",
            NetlinkError::AuthTransient => "netlink authentication failed transiently",
        })
    }
}

impl std::error::Error for NetlinkError {}

/// How many delivered sequence numbers each connection remembers for
/// duplicate suppression.
const DELIVERY_RECORD: usize = 64;

#[derive(Debug, Clone)]
struct Connection {
    pid: Pid,
    is_display: bool,
    next_seq: u64,
    delivered: BTreeSet<u64>,
    /// Suppression floor: every sequence number `<= watermark` is treated
    /// as already delivered. The floor trails the highest freshly delivered
    /// seq by exactly [`DELIVERY_RECORD`], so it is a pure function of the
    /// delivery history — the `delivered` set is a *derived* dup-suppression
    /// record that snapshots rebuild empty without changing how the floor
    /// evolves afterwards.
    watermark: u64,
}

/// Registry of authenticated kernel↔userspace channels.
#[derive(Debug, Clone)]
pub struct Netlink {
    connections: BTreeMap<ConnId, Connection>,
    next: u32,
    trusted_exe_paths: Vec<String>,
    display_conn: Option<ConnId>,
    display_state: ChannelState,
    /// Bumped on every display-channel state change; folded into the
    /// kernel's global policy epoch so the verdict cache invalidates on
    /// channel transitions.
    state_generation: u64,
    had_display: bool,
    display_reconnects: u64,
}

impl Netlink {
    /// Creates a registry trusting the given executable paths (the X server
    /// binary, the udev helper).
    pub fn new(trusted_exe_paths: Vec<String>) -> Self {
        Netlink {
            connections: BTreeMap::new(),
            next: 0,
            trusted_exe_paths,
            display_conn: None,
            display_state: ChannelState::Down,
            state_generation: 0,
            had_display: false,
            display_reconnects: 0,
        }
    }

    /// The trusted executable paths.
    pub fn trusted_paths(&self) -> &[String] {
        &self.trusted_exe_paths
    }

    /// Attempts to establish an authenticated connection for `pid`.
    ///
    /// Reproduces the paper's introspection: the peer's mapped executable
    /// must be one of the well-known trusted paths, and that binary must be
    /// owned by the superuser in the filesystem (so a user cannot drop a
    /// fake `Xorg` somewhere and connect).
    ///
    /// A connecting X server supersedes any previous display connection:
    /// the old [`ConnId`] is invalidated (restart recovery), the new one
    /// becomes the display channel, and the channel comes up.
    ///
    /// # Errors
    ///
    /// [`NetlinkError::NoSuchProcess`] if `pid` is dead,
    /// [`NetlinkError::UntrustedPeer`] if introspection fails.
    pub fn connect(
        &mut self,
        tasks: &ProcessTable,
        vfs: &Vfs,
        pid: Pid,
    ) -> Result<ConnId, NetlinkError> {
        let task = tasks.get(pid).map_err(|_| NetlinkError::NoSuchProcess)?;
        if !task.is_running() {
            return Err(NetlinkError::NoSuchProcess);
        }
        let exe = task.exe_path();
        if !self.trusted_exe_paths.iter().any(|p| p == exe) {
            return Err(NetlinkError::UntrustedPeer);
        }
        let owner = vfs
            .stat(exe)
            .map_err(|_| NetlinkError::UntrustedPeer)?
            .owner;
        if !owner.is_root() {
            return Err(NetlinkError::UntrustedPeer);
        }
        let is_display = exe == crate::XORG_PATH;
        self.next += 1;
        let id = ConnId(self.next);
        self.connections.insert(
            id,
            Connection {
                pid,
                is_display,
                next_seq: 0,
                delivered: BTreeSet::new(),
                watermark: 0,
            },
        );
        if is_display {
            if let Some(old) = self.display_conn.take() {
                self.connections.remove(&old);
            }
            if self.had_display {
                self.display_reconnects += 1;
            }
            self.had_display = true;
            self.display_conn = Some(id);
            self.display_state = ChannelState::Up;
            self.state_generation += 1;
        }
        Ok(id)
    }

    /// The peer pid of an established connection.
    pub fn peer(&self, conn: ConnId) -> Result<Pid, NetlinkError> {
        self.connections
            .get(&conn)
            .map(|c| c.pid)
            .ok_or(NetlinkError::UnknownConnection)
    }

    /// Validates that `conn` is established, returning its peer.
    pub fn authenticate(&self, conn: ConnId) -> Result<Pid, NetlinkError> {
        self.peer(conn)
    }

    /// Whether `conn` is the current display-manager connection.
    pub fn is_display(&self, conn: ConnId) -> bool {
        self.display_conn == Some(conn)
    }

    /// Health of the display-manager channel.
    pub fn state(&self) -> ChannelState {
        self.display_state
    }

    /// Monotone counter of display-channel state changes (the channel's
    /// contribution to the global policy epoch).
    pub fn state_generation(&self) -> u64 {
        self.state_generation
    }

    /// Times a new display connection superseded an earlier one.
    pub fn display_reconnects(&self) -> u64 {
        self.display_reconnects
    }

    /// Assigns the next per-connection sequence number for an outgoing
    /// message.
    ///
    /// # Errors
    ///
    /// [`NetlinkError::UnknownConnection`] for unestablished connections.
    pub fn assign_seq(&mut self, conn: ConnId) -> Result<u64, NetlinkError> {
        let c = self
            .connections
            .get_mut(&conn)
            .ok_or(NetlinkError::UnknownConnection)?;
        c.next_seq += 1;
        Ok(c.next_seq)
    }

    /// Records that `seq` was delivered on `conn`. Returns `false` if it
    /// was already delivered (a duplicate to be suppressed).
    ///
    /// The record is bounded: sequence numbers more than
    /// `DELIVERY_RECORD` behind the highest freshly delivered seq fall
    /// under the watermark floor and are suppressed implicitly, so a late
    /// duplicate of a long-forgotten seq is still suppressed — the record
    /// can only ever forget *towards* "already delivered", never towards
    /// re-admitting a duplicate. The floor is a pure function of
    /// `(seq, watermark)`, never of the set contents, so restoring a
    /// snapshot (which rebuilds the set empty) cannot change how it evolves.
    ///
    /// # Errors
    ///
    /// [`NetlinkError::UnknownConnection`] for unestablished connections.
    pub fn mark_delivered(&mut self, conn: ConnId, seq: u64) -> Result<bool, NetlinkError> {
        let c = self
            .connections
            .get_mut(&conn)
            .ok_or(NetlinkError::UnknownConnection)?;
        if seq <= c.watermark {
            return Ok(false);
        }
        let fresh = c.delivered.insert(seq);
        if fresh {
            let floor = seq.saturating_sub(DELIVERY_RECORD as u64);
            if floor > c.watermark {
                c.watermark = floor;
                c.delivered = c.delivered.split_off(&(c.watermark + 1));
            }
        }
        Ok(fresh)
    }

    /// Moves the display channel to `to` if `conn` is the display
    /// connection and the state actually changes, returning the transition.
    pub(crate) fn transition_display(
        &mut self,
        conn: ConnId,
        to: ChannelState,
    ) -> Option<(ChannelState, ChannelState)> {
        if self.display_conn != Some(conn) {
            return None;
        }
        let from = self.display_state;
        if from == to {
            return None;
        }
        self.display_state = to;
        self.state_generation += 1;
        Some((from, to))
    }

    /// Tears down a connection (peer exit).
    pub fn disconnect(&mut self, conn: ConnId) {
        self.connections.remove(&conn);
        if self.display_conn == Some(conn) {
            self.display_conn = None;
            if self.display_state != ChannelState::Down {
                self.display_state = ChannelState::Down;
                self.state_generation += 1;
            }
        }
    }

    /// Eagerly invalidates every connection whose peer is `pid` (called
    /// from the process-exit path, so a stale — or recycled — pid can never
    /// use an authenticated channel). Returns `(dropped, display_lost)`:
    /// how many connections were removed and whether the display channel
    /// went down.
    pub fn invalidate_peer(&mut self, pid: Pid) -> (usize, bool) {
        let before = self.connections.len();
        self.connections.retain(|_, c| c.pid != pid);
        let dropped = before - self.connections.len();
        let display_lost = self
            .display_conn
            .is_some_and(|conn| !self.connections.contains_key(&conn));
        if display_lost {
            self.display_conn = None;
            if self.display_state != ChannelState::Down {
                self.display_state = ChannelState::Down;
                self.state_generation += 1;
            }
        }
        (dropped, display_lost)
    }

    /// Drops every connection whose peer is no longer running (periodic
    /// scan; retained as a belt-and-braces sweep on top of the eager
    /// exit-path invalidation).
    pub fn reap_dead_peers(&mut self, tasks: &ProcessTable) {
        self.connections.retain(|_, c| tasks.is_running(c.pid));
        if let Some(conn) = self.display_conn {
            if !self.connections.contains_key(&conn) {
                self.display_conn = None;
                if self.display_state != ChannelState::Down {
                    self.display_state = ChannelState::Down;
                    self.state_generation += 1;
                }
            }
        }
    }

    /// Number of live connections.
    pub fn connection_count(&self) -> usize {
        self.connections.len()
    }
}

mod pack {
    //! Snapshot codec for the channel registry.
    //!
    //! Per-connection `delivered` sets are derived dup-suppression records:
    //! they are *not* serialized and restore rebuilds them empty. The
    //! watermark floor is serialized, and because its evolution never reads
    //! the set contents, a restored registry suppresses and admits exactly
    //! the same sequence numbers as the uninterrupted one.

    use std::collections::BTreeSet;

    use overhaul_sim::snapshot::{Dec, Enc, Pack, SnapshotError};
    use overhaul_sim::{impl_pack, impl_pack_newtype};

    use super::{ChannelState, ConnId, Connection, Netlink, NetlinkMessage};

    impl_pack_newtype!(ConnId, u32);

    impl Pack for ChannelState {
        fn pack(&self, enc: &mut Enc) {
            enc.put_u8(match self {
                ChannelState::Up => 0,
                ChannelState::Degraded => 1,
                ChannelState::Down => 2,
            });
        }
        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            Ok(match dec.take_u8()? {
                0 => ChannelState::Up,
                1 => ChannelState::Degraded,
                2 => ChannelState::Down,
                _ => return Err(SnapshotError::BadValue("channel state")),
            })
        }
    }

    impl Pack for NetlinkMessage {
        fn pack(&self, enc: &mut Enc) {
            match self {
                NetlinkMessage::InteractionNotification { pid, at } => {
                    enc.put_u8(0);
                    pid.pack(enc);
                    at.pack(enc);
                }
                NetlinkMessage::PermissionQuery { pid, op, at } => {
                    enc.put_u8(1);
                    pid.pack(enc);
                    op.pack(enc);
                    at.pack(enc);
                }
                NetlinkMessage::DeviceMapUpdate { old_path, new_path } => {
                    enc.put_u8(2);
                    old_path.pack(enc);
                    new_path.pack(enc);
                }
            }
        }
        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            Ok(match dec.take_u8()? {
                0 => NetlinkMessage::InteractionNotification {
                    pid: Pack::unpack(dec)?,
                    at: Pack::unpack(dec)?,
                },
                1 => NetlinkMessage::PermissionQuery {
                    pid: Pack::unpack(dec)?,
                    op: Pack::unpack(dec)?,
                    at: Pack::unpack(dec)?,
                },
                2 => NetlinkMessage::DeviceMapUpdate {
                    old_path: Pack::unpack(dec)?,
                    new_path: Pack::unpack(dec)?,
                },
                _ => return Err(SnapshotError::BadValue("netlink message")),
            })
        }
    }

    impl Pack for Connection {
        fn pack(&self, enc: &mut Enc) {
            self.pid.pack(enc);
            self.is_display.pack(enc);
            self.next_seq.pack(enc);
            self.watermark.pack(enc);
        }
        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            Ok(Connection {
                pid: Pack::unpack(dec)?,
                is_display: Pack::unpack(dec)?,
                next_seq: Pack::unpack(dec)?,
                // Derived dup-suppression record: rebuilt empty on restore.
                delivered: BTreeSet::new(),
                watermark: Pack::unpack(dec)?,
            })
        }
    }

    impl_pack!(Netlink {
        connections,
        next,
        trusted_exe_paths,
        display_conn,
        display_state,
        state_generation,
        had_display,
        display_reconnects
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use overhaul_sim::Uid;

    const XORG: &str = "/usr/lib/xorg/Xorg";

    fn setup() -> (Netlink, ProcessTable, Vfs) {
        let netlink = Netlink::new(vec![XORG.to_string()]);
        let tasks = ProcessTable::new();
        let mut vfs = Vfs::new();
        vfs.create_file(XORG, Uid::ROOT, 0o755).unwrap();
        (netlink, tasks, vfs)
    }

    #[test]
    fn trusted_root_owned_binary_connects() {
        let (mut netlink, mut tasks, vfs) = setup();
        let x = tasks.spawn(Pid::INIT, XORG).unwrap();
        let conn = netlink.connect(&tasks, &vfs, x).unwrap();
        assert_eq!(netlink.peer(conn).unwrap(), x);
        assert_eq!(netlink.connection_count(), 1);
        assert!(netlink.is_display(conn));
        assert_eq!(netlink.state(), ChannelState::Up);
    }

    #[test]
    fn untrusted_exe_rejected() {
        let (mut netlink, mut tasks, vfs) = setup();
        let mallory = tasks.spawn(Pid::INIT, "/home/mallory/fake-xorg").unwrap();
        assert_eq!(
            netlink.connect(&tasks, &vfs, mallory),
            Err(NetlinkError::UntrustedPeer)
        );
    }

    #[test]
    fn trusted_path_but_user_owned_binary_rejected() {
        // A user replacing the binary file (were it user-writable) must not
        // be able to authenticate: the on-disk binary must be root-owned.
        let mut netlink = Netlink::new(vec!["/tmp/Xorg".to_string()]);
        let mut tasks = ProcessTable::new();
        let mut vfs = Vfs::new();
        vfs.create_file("/tmp/Xorg", Uid::from_raw(1000), 0o755)
            .unwrap();
        let p = tasks.spawn(Pid::INIT, "/tmp/Xorg").unwrap();
        assert_eq!(
            netlink.connect(&tasks, &vfs, p),
            Err(NetlinkError::UntrustedPeer)
        );
    }

    #[test]
    fn missing_binary_rejected() {
        let (mut netlink, mut tasks, _) = setup();
        let vfs = Vfs::new(); // no Xorg file on disk
        let p = tasks.spawn(Pid::INIT, XORG).unwrap();
        assert_eq!(
            netlink.connect(&tasks, &vfs, p),
            Err(NetlinkError::UntrustedPeer)
        );
    }

    #[test]
    fn dead_process_cannot_connect() {
        let (mut netlink, mut tasks, vfs) = setup();
        let x = tasks.spawn(Pid::INIT, XORG).unwrap();
        tasks.exit(x, 0).unwrap();
        assert_eq!(
            netlink.connect(&tasks, &vfs, x),
            Err(NetlinkError::NoSuchProcess)
        );
    }

    #[test]
    fn unknown_connection_rejected() {
        let (netlink, _, _) = setup();
        assert_eq!(
            netlink.peer(ConnId(99)),
            Err(NetlinkError::UnknownConnection)
        );
    }

    #[test]
    fn reap_dead_peers_drops_connections() {
        let (mut netlink, mut tasks, vfs) = setup();
        let x = tasks.spawn(Pid::INIT, XORG).unwrap();
        let conn = netlink.connect(&tasks, &vfs, x).unwrap();
        tasks.exit(x, 0).unwrap();
        netlink.reap_dead_peers(&tasks);
        assert_eq!(netlink.peer(conn), Err(NetlinkError::UnknownConnection));
        assert_eq!(netlink.state(), ChannelState::Down);
    }

    #[test]
    fn disconnect_is_idempotent() {
        let (mut netlink, mut tasks, vfs) = setup();
        let x = tasks.spawn(Pid::INIT, XORG).unwrap();
        let conn = netlink.connect(&tasks, &vfs, x).unwrap();
        netlink.disconnect(conn);
        netlink.disconnect(conn);
        assert_eq!(netlink.connection_count(), 0);
        assert_eq!(netlink.state(), ChannelState::Down);
    }

    #[test]
    fn invalidate_peer_is_eager_and_downs_the_channel() {
        let (mut netlink, mut tasks, vfs) = setup();
        let x = tasks.spawn(Pid::INIT, XORG).unwrap();
        let conn = netlink.connect(&tasks, &vfs, x).unwrap();
        let (dropped, display_lost) = netlink.invalidate_peer(x);
        assert_eq!(dropped, 1);
        assert!(display_lost);
        assert_eq!(netlink.peer(conn), Err(NetlinkError::UnknownConnection));
        assert_eq!(netlink.state(), ChannelState::Down);
        // Idempotent.
        assert_eq!(netlink.invalidate_peer(x), (0, false));
    }

    #[test]
    fn sequence_numbers_deduplicate_deliveries() {
        let (mut netlink, mut tasks, vfs) = setup();
        let x = tasks.spawn(Pid::INIT, XORG).unwrap();
        let conn = netlink.connect(&tasks, &vfs, x).unwrap();
        let s1 = netlink.assign_seq(conn).unwrap();
        let s2 = netlink.assign_seq(conn).unwrap();
        assert_ne!(s1, s2);
        assert!(netlink.mark_delivered(conn, s1).unwrap());
        assert!(!netlink.mark_delivered(conn, s1).unwrap(), "duplicate");
        assert!(netlink.mark_delivered(conn, s2).unwrap());
    }

    #[test]
    fn delivery_record_is_bounded() {
        let (mut netlink, mut tasks, vfs) = setup();
        let x = tasks.spawn(Pid::INIT, XORG).unwrap();
        let conn = netlink.connect(&tasks, &vfs, x).unwrap();
        for _ in 0..(DELIVERY_RECORD as u64 + 32) {
            let seq = netlink.assign_seq(conn).unwrap();
            assert!(netlink.mark_delivered(conn, seq).unwrap());
        }
    }

    #[test]
    fn evicted_seq_cannot_readmit_late_duplicate() {
        // Regression: the bounded delivery record used to evict the lowest
        // stored seq outright, so a late duplicate of an evicted seq was
        // readmitted as "fresh" and delivered twice. The watermark keeps
        // every evicted seq implicitly remembered.
        let (mut netlink, mut tasks, vfs) = setup();
        let x = tasks.spawn(Pid::INIT, XORG).unwrap();
        let conn = netlink.connect(&tasks, &vfs, x).unwrap();
        let first = netlink.assign_seq(conn).unwrap();
        assert!(netlink.mark_delivered(conn, first).unwrap());
        // Push far past the record bound.
        for _ in 0..(DELIVERY_RECORD as u64 * 3) {
            let seq = netlink.assign_seq(conn).unwrap();
            assert!(netlink.mark_delivered(conn, seq).unwrap());
        }
        assert!(
            !netlink.mark_delivered(conn, first).unwrap(),
            "a late duplicate of a long-evicted seq must stay suppressed"
        );
    }

    #[test]
    fn out_of_order_delivery_record_stays_bounded_and_exact() {
        let (mut netlink, mut tasks, vfs) = setup();
        let x = tasks.spawn(Pid::INIT, XORG).unwrap();
        let conn = netlink.connect(&tasks, &vfs, x).unwrap();
        // Deliver only even seqs first (holes keep the watermark low), far
        // past the bound, then replay: every delivered seq must still read
        // as a duplicate, and the holes below the (raised) floor are
        // conservatively suppressed too — the record forgets only towards
        // "already delivered", never towards readmission.
        let total = DELIVERY_RECORD as u64 * 4;
        for _ in 0..total {
            netlink.assign_seq(conn).unwrap();
        }
        for seq in (2..=total).step_by(2) {
            assert!(netlink.mark_delivered(conn, seq).unwrap());
        }
        for seq in (2..=total).step_by(2) {
            assert!(
                !netlink.mark_delivered(conn, seq).unwrap(),
                "replay of delivered seq {seq} must be suppressed"
            );
        }
    }

    #[test]
    fn display_reconnect_invalidates_the_old_conn() {
        let (mut netlink, mut tasks, vfs) = setup();
        let x1 = tasks.spawn(Pid::INIT, XORG).unwrap();
        let old = netlink.connect(&tasks, &vfs, x1).unwrap();
        tasks.exit(x1, 139).unwrap();
        netlink.invalidate_peer(x1);
        assert_eq!(netlink.state(), ChannelState::Down);

        let x2 = tasks.spawn(Pid::INIT, XORG).unwrap();
        let new = netlink.connect(&tasks, &vfs, x2).unwrap();
        assert_ne!(old, new);
        assert_eq!(netlink.peer(old), Err(NetlinkError::UnknownConnection));
        assert!(netlink.is_display(new));
        assert_eq!(netlink.state(), ChannelState::Up);
        assert_eq!(netlink.display_reconnects(), 1);
    }

    #[test]
    fn transition_only_applies_to_the_display_conn() {
        let (mut netlink, mut tasks, vfs) = setup();
        let x = tasks.spawn(Pid::INIT, XORG).unwrap();
        let conn = netlink.connect(&tasks, &vfs, x).unwrap();
        assert_eq!(
            netlink.transition_display(conn, ChannelState::Degraded),
            Some((ChannelState::Up, ChannelState::Degraded))
        );
        // Same state: no transition reported.
        assert_eq!(
            netlink.transition_display(conn, ChannelState::Degraded),
            None
        );
        // A non-display conn id does not move the machine.
        assert_eq!(
            netlink.transition_display(ConnId(999), ChannelState::Down),
            None
        );
        assert_eq!(netlink.state(), ChannelState::Degraded);
    }

    #[test]
    fn state_generation_counts_every_transition_exactly_once() {
        let (mut netlink, mut tasks, vfs) = setup();
        let g0 = netlink.state_generation();
        let x = tasks.spawn(Pid::INIT, XORG).unwrap();
        let conn = netlink.connect(&tasks, &vfs, x).unwrap();
        assert_eq!(netlink.state_generation(), g0 + 1, "Down -> Up");
        netlink.transition_display(conn, ChannelState::Degraded);
        assert_eq!(netlink.state_generation(), g0 + 2);
        // A no-op transition does not bump.
        netlink.transition_display(conn, ChannelState::Degraded);
        assert_eq!(netlink.state_generation(), g0 + 2);
        netlink.invalidate_peer(x);
        assert_eq!(netlink.state_generation(), g0 + 3, "Degraded -> Down");
        // Already down: disconnect of a gone conn is a no-op.
        netlink.disconnect(conn);
        assert_eq!(netlink.state_generation(), g0 + 3);
    }
}
