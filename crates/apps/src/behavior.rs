//! Application behavior model and the generic session driver.
//!
//! The applicability study (§V-C) ran 58 device/screen applications and 50
//! clipboard applications under Overhaul and watched for broken
//! functionality and spurious alerts. Real applications differ in *when*
//! and *through which process* they touch a protected resource; an
//! [`AppSpec`] captures exactly that — the resource, the triggering
//! pattern, and the expected outcome — and [`run_session`] drives one
//! simulated usage session of the app on a [`System`].

use overhaul_core::{Gui, System};
use overhaul_kernel::error::Errno;
use overhaul_sim::{Pid, SimDuration};
use overhaul_xserver::geometry::Rect;
use overhaul_xserver::protocol::{Atom, Reply, Request, XError};
use serde::{Deserialize, Serialize};

/// A protected resource an application uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Microphone device.
    Mic,
    /// Camera device.
    Cam,
    /// Screen contents (GetImage on the root window).
    Screen,
    /// Clipboard copy (selection ownership).
    ClipboardCopy,
    /// Clipboard paste (selection conversion).
    ClipboardPaste,
}

impl ResourceKind {
    /// Device node, for hardware resources.
    pub fn device_path(self) -> Option<&'static str> {
        match self {
            ResourceKind::Mic => Some("/dev/snd/mic0"),
            ResourceKind::Cam => Some("/dev/video0"),
            _ => None,
        }
    }
}

/// Which IPC mechanism a multi-process app uses internally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IpcKind {
    /// Anonymous pipe.
    Pipe,
    /// UNIX domain socket pair.
    Socket,
    /// Shared memory (the Figure 4 browser pattern).
    SharedMemory,
    /// SysV message queue.
    MessageQueue,
}

/// When/how the application performs a resource access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Trigger {
    /// Immediately at program start, before any user interaction
    /// (Skype's autostart camera probe).
    OnLaunch,
    /// Shortly after the user clicks the app (the normal GUI pattern).
    OnClick,
    /// A user-configured delay after the click (delayed screenshot tools);
    /// delays beyond δ are the paper's documented limitation.
    DelayedAfterClick(SimDuration),
    /// The click lands on the main process, which then spawns a worker
    /// that performs the access (the Figure 3 launcher pattern, via P1).
    ViaChildProcess,
    /// The click lands on the main process, which commands a pre-existing
    /// worker over IPC (the Figure 4 browser pattern, via P2).
    ViaIpc(IpcKind),
    /// The user types a command into a terminal; the shell runs a CLI tool
    /// that performs the access (the pseudo-terminal pattern).
    ViaCli,
}

/// Whether Overhaul is expected to allow the access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Expectation {
    /// The access follows user intent and must be granted.
    Granted,
    /// The access is not input-driven; Overhaul is expected to block it
    /// (and that block is correct behavior, not a false positive).
    Blocked,
}

impl Expectation {
    /// Whether an observed grant/deny satisfies this expectation. The
    /// campaign engine's richer taxonomy ([`crate::campaign::Expectation`])
    /// mirrors this predicate and adds the expected-bypass case.
    pub fn satisfied_by(self, granted: bool) -> bool {
        match self {
            Expectation::Granted => granted,
            Expectation::Blocked => !granted,
        }
    }
}

/// One scripted resource access of an application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Access {
    /// The resource touched.
    pub resource: ResourceKind,
    /// How the access is triggered.
    pub trigger: Trigger,
    /// The expected decision under Overhaul.
    pub expect: Expectation,
}

/// Application category (for reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Video conferencing (Skype, Jitsi, ...).
    VideoConferencing,
    /// Audio/video editors (Audacity, Kwave, ...).
    AvEditor,
    /// Audio/video recorders (Cheese, ZArt, ...).
    AvRecorder,
    /// Screenshot utilities (Shutter, GNOME Screenshot, ...).
    Screenshot,
    /// Screencasting tools (Istanbul, recordMyDesktop, ...).
    Screencast,
    /// Web browsers running media web apps.
    Browser,
    /// Office suites, editors, mail clients, terminals (clipboard corpus).
    Productivity,
}

/// A scripted application.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppSpec {
    /// Display name ("Skype").
    pub name: String,
    /// Executable path in the simulated filesystem.
    pub exe: String,
    /// Category for reporting.
    pub category: Category,
    /// The accesses one usage session performs.
    pub accesses: Vec<Access>,
}

impl AppSpec {
    /// Creates a spec; the executable path is derived from the name.
    pub fn new(name: &str, category: Category, accesses: Vec<Access>) -> Self {
        let exe = format!(
            "/usr/bin/{}",
            name.to_lowercase().replace([' ', '(', ')'], "-")
        );
        AppSpec {
            name: name.to_string(),
            exe,
            category,
            accesses,
        }
    }
}

/// The observed result of one access during a session.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessResult {
    /// What was attempted.
    pub access: Access,
    /// Whether it was granted.
    pub granted: bool,
}

/// The result of driving one app session.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionOutcome {
    /// App name.
    pub app: String,
    /// Per-access results, in script order.
    pub results: Vec<AccessResult>,
    /// Alerts shown during the session.
    pub alerts: usize,
}

impl SessionOutcome {
    /// A *false positive*: an access the user initiated (expected granted)
    /// was blocked — this would break the app.
    pub fn false_positives(&self) -> usize {
        self.results
            .iter()
            .filter(|r| {
                r.access.expect == Expectation::Granted && !r.access.expect.satisfied_by(r.granted)
            })
            .count()
    }

    /// A *spurious-but-correct block*: an access not driven by user input
    /// was blocked, as designed (Skype's autostart probe).
    pub fn expected_blocks(&self) -> usize {
        self.results
            .iter()
            .filter(|r| {
                r.access.expect == Expectation::Blocked && r.access.expect.satisfied_by(r.granted)
            })
            .count()
    }

    /// An expected block that was *granted* — a protection failure
    /// (only possible on baseline systems).
    pub fn protection_failures(&self) -> usize {
        self.results
            .iter()
            .filter(|r| {
                r.access.expect == Expectation::Blocked && !r.access.expect.satisfied_by(r.granted)
            })
            .count()
    }

    /// Whether the app worked as its users expect.
    pub fn functional(&self) -> bool {
        self.false_positives() == 0
    }
}

/// Drives one usage session of `spec` on `system`.
///
/// The session launches the app's GUI, waits for the window to become
/// stable, then performs each scripted access with its trigger pattern.
///
/// # Panics
///
/// Panics only on simulator-internal inconsistencies (e.g. the spawn of a
/// fresh process failing), never on access denials.
pub fn run_session(system: &mut System, spec: &AppSpec) -> SessionOutcome {
    let alerts_before = system.alert_history().len();
    let gui = system
        .launch_gui_app(&spec.exe, Rect::new(0, 0, 400, 300))
        .expect("spawn app process");
    let mut results = Vec::new();

    // OnLaunch accesses happen before the window is even stable.
    for access in &spec.accesses {
        if matches!(access.trigger, Trigger::OnLaunch) {
            let granted = attempt_resource(system, gui.pid, gui, access.resource);
            results.push(AccessResult {
                access: *access,
                granted,
            });
        }
    }
    system.settle();

    for access in &spec.accesses {
        let granted = match access.trigger {
            Trigger::OnLaunch => continue, // handled above
            Trigger::OnClick => {
                system.click_window(gui.window);
                system.advance(SimDuration::from_millis(150));
                attempt_resource(system, gui.pid, gui, access.resource)
            }
            Trigger::DelayedAfterClick(delay) => {
                system.click_window(gui.window);
                system.advance(delay);
                attempt_resource(system, gui.pid, gui, access.resource)
            }
            Trigger::ViaChildProcess => {
                system.click_window(gui.window);
                system.advance(SimDuration::from_millis(100));
                let worker = system
                    .kernel_mut()
                    .sys_spawn(gui.pid, &format!("{}-worker", spec.exe))
                    .expect("spawn worker");
                attempt_resource(system, worker, gui, access.resource)
            }
            Trigger::ViaIpc(kind) => run_ipc_access(system, &spec.exe, gui, kind, access.resource),
            Trigger::ViaCli => run_cli_access(system, &spec.exe, access.resource),
        };
        results.push(AccessResult {
            access: *access,
            granted,
        });
        // Space accesses apart so earlier interactions do not mask later
        // trigger patterns.
        system.advance(SimDuration::from_secs(5));
    }

    SessionOutcome {
        app: spec.name.clone(),
        results,
        alerts: system.alert_history().len() - alerts_before,
    }
}

/// Attempts one resource access from `pid` (devices) or through the app's
/// X client (display resources). Returns whether it was granted.
fn attempt_resource(system: &mut System, pid: Pid, gui: Gui, resource: ResourceKind) -> bool {
    match resource {
        ResourceKind::Mic | ResourceKind::Cam => {
            let path = resource.device_path().expect("hardware resource");
            match system.open_device(pid, path) {
                Ok(fd) => {
                    // Exercise the device, then release it.
                    let _ = system.kernel_mut().sys_read(pid, fd, 64);
                    let _ = system.kernel_mut().sys_close(pid, fd);
                    true
                }
                Err(Errno::Eacces) => false,
                Err(other) => panic!("unexpected device error {other}"),
            }
        }
        ResourceKind::Screen => {
            // Display requests must come from the process's own client; a
            // worker gets its own connection.
            let client = match system.xserver().client_of_pid(pid) {
                Some(c) => c,
                None => system.connect_x(pid),
            };
            match system.x_request(client, Request::GetImage { window: None }) {
                Ok(Reply::Image(_)) => true,
                Err(XError::BadAccess) => false,
                other => panic!("unexpected GetImage outcome {other:?}"),
            }
        }
        ResourceKind::ClipboardCopy => {
            let client = match system.xserver().client_of_pid(pid) {
                Some(c) => c,
                None => system.connect_x(pid),
            };
            let window = if client == gui.client {
                gui.window
            } else {
                match system.x_request(
                    client,
                    Request::CreateWindow {
                        rect: Rect::new(0, 0, 10, 10),
                    },
                ) {
                    Ok(Reply::Window(w)) => w,
                    other => panic!("unexpected CreateWindow outcome {other:?}"),
                }
            };
            match system.x_request(
                client,
                Request::SetSelectionOwner {
                    selection: Atom::clipboard(),
                    window,
                },
            ) {
                Ok(_) => true,
                Err(XError::BadAccess) => false,
                Err(other) => panic!("unexpected copy error {other}"),
            }
        }
        ResourceKind::ClipboardPaste => {
            let client = match system.xserver().client_of_pid(pid) {
                Some(c) => c,
                None => system.connect_x(pid),
            };
            let window = if client == gui.client {
                gui.window
            } else {
                match system.x_request(
                    client,
                    Request::CreateWindow {
                        rect: Rect::new(0, 0, 10, 10),
                    },
                ) {
                    Ok(Reply::Window(w)) => w,
                    other => panic!("unexpected CreateWindow outcome {other:?}"),
                }
            };
            match system.x_request(
                client,
                Request::ConvertSelection {
                    selection: Atom::clipboard(),
                    requestor: window,
                    property: Atom::new("XSEL_DATA"),
                },
            ) {
                Ok(_) => true,
                Err(XError::BadAccess) => false,
                Err(other) => panic!("unexpected paste error {other}"),
            }
        }
    }
}

/// The Figure 4 pattern: the main process sets up the IPC channel and
/// *then* forks its worker (so descriptors are inherited, as real
/// multi-process apps do). The fork happens long before any interaction,
/// leaving P1 nothing useful to copy; only the post-click IPC message (P2)
/// can carry the interaction to the worker.
fn run_ipc_access(
    system: &mut System,
    exe: &str,
    gui: Gui,
    kind: IpcKind,
    resource: ResourceKind,
) -> bool {
    let command = b"start-media".to_vec();
    let kernel = system.kernel_mut();

    // Channel setup + worker fork, all pre-interaction.
    enum Channel {
        Pipe {
            r: overhaul_sim::Fd,
            w: overhaul_sim::Fd,
        },
        Socket {
            a: overhaul_sim::Fd,
            b: overhaul_sim::Fd,
        },
        Shm {
            main_vma: overhaul_kernel::mm::VmaId,
            worker_vma: overhaul_kernel::mm::VmaId,
        },
        Queue {
            q: overhaul_kernel::ipc::msgqueue::MsgqId,
        },
    }
    let (worker, channel) = match kind {
        IpcKind::Pipe => {
            let (r, w) = kernel.sys_pipe(gui.pid).expect("pipe");
            let worker = kernel.sys_fork(gui.pid).expect("fork worker");
            kernel
                .sys_execve(worker, &format!("{exe}-tab"))
                .expect("exec worker");
            (worker, Channel::Pipe { r, w })
        }
        IpcKind::Socket => {
            let (a, b) = kernel.sys_socketpair(gui.pid).expect("socketpair");
            let worker = kernel.sys_fork(gui.pid).expect("fork worker");
            kernel
                .sys_execve(worker, &format!("{exe}-tab"))
                .expect("exec worker");
            (worker, Channel::Socket { a, b })
        }
        IpcKind::SharedMemory => {
            let shm = kernel
                .sys_shmget(gui.pid, exe.len() as i32 + 7, 1)
                .expect("shmget");
            let main_vma = kernel.sys_shmat(gui.pid, shm).expect("shmat main");
            let worker = kernel.sys_fork(gui.pid).expect("fork worker");
            kernel
                .sys_execve(worker, &format!("{exe}-tab"))
                .expect("exec worker");
            let worker_vma = kernel.sys_shmat(worker, shm).expect("shmat worker");
            (
                worker,
                Channel::Shm {
                    main_vma,
                    worker_vma,
                },
            )
        }
        IpcKind::MessageQueue => {
            let q = kernel
                .sys_msgget(gui.pid, exe.len() as i32 + 11)
                .expect("msgget");
            let worker = kernel.sys_fork(gui.pid).expect("fork worker");
            kernel
                .sys_execve(worker, &format!("{exe}-tab"))
                .expect("exec worker");
            (worker, Channel::Queue { q })
        }
    };

    // Let anything the fork copied expire, then interact and command the
    // worker.
    system.advance(SimDuration::from_secs(10));
    system.click_window(gui.window);
    system.advance(SimDuration::from_millis(50));
    let kernel = system.kernel_mut();
    match channel {
        Channel::Pipe { r, w } => {
            kernel.sys_write(gui.pid, w, &command).expect("pipe write");
            let _ = kernel.sys_read(worker, r, 64);
        }
        Channel::Socket { a, b } => {
            kernel.sys_write(gui.pid, a, &command).expect("socket send");
            let _ = kernel.sys_read(worker, b, 64);
        }
        Channel::Shm {
            main_vma,
            worker_vma,
        } => {
            kernel
                .sys_shm_write(gui.pid, main_vma, 0, &command)
                .expect("shm write");
            let _ = kernel.sys_shm_read(worker, worker_vma, 0, command.len());
        }
        Channel::Queue { q } => {
            kernel.sys_msgsnd(gui.pid, q, 1, &command).expect("msgsnd");
            let _ = kernel.sys_msgrcv(worker, q, 1);
        }
    }
    attempt_resource(system, worker, gui, resource)
}

/// The CLI pattern: the user types into a terminal emulator; the shell —
/// which only ever sees the command through the pseudo-terminal — spawns
/// the tool.
fn run_cli_access(system: &mut System, exe: &str, resource: ResourceKind) -> bool {
    let xterm = system
        .launch_gui_app("/usr/bin/xterm", Rect::new(500, 0, 300, 200))
        .expect("launch terminal");
    let (master, slave) = system.kernel_mut().sys_openpty(xterm.pid).expect("openpty");
    let shell = system.kernel_mut().sys_fork(xterm.pid).expect("fork shell");
    system
        .kernel_mut()
        .sys_execve(shell, "/bin/bash")
        .expect("exec bash");
    // The shell has been idle long before the user types.
    system.advance(SimDuration::from_secs(10));
    system.settle();

    // The user clicks the terminal and types the command.
    system.click_window(xterm.window);
    system
        .kernel_mut()
        .sys_write(xterm.pid, master, format!("{exe}\n").as_bytes())
        .expect("terminal write");
    let _ = system.kernel_mut().sys_read(shell, slave, 128);
    let tool = system
        .kernel_mut()
        .sys_spawn(shell, exe)
        .expect("spawn CLI tool");
    system.advance(SimDuration::from_millis(50));
    attempt_resource(system, tool, xterm, resource)
}

#[cfg(test)]
mod tests {
    use super::*;
    use overhaul_core::System;

    fn spec_with(name: &str, accesses: Vec<Access>) -> AppSpec {
        AppSpec::new(name, Category::AvRecorder, accesses)
    }

    fn granted(resource: ResourceKind, trigger: Trigger) -> Access {
        Access {
            resource,
            trigger,
            expect: Expectation::Granted,
        }
    }

    #[test]
    fn on_click_access_is_granted_and_functional() {
        let mut system = System::protected();
        let spec = spec_with("rec", vec![granted(ResourceKind::Mic, Trigger::OnClick)]);
        let outcome = run_session(&mut system, &spec);
        assert!(outcome.functional(), "{outcome:?}");
        assert_eq!(outcome.false_positives(), 0);
        assert!(outcome.alerts >= 1, "device grants alert the user");
    }

    #[test]
    fn on_launch_access_is_blocked_as_expected() {
        let mut system = System::protected();
        let spec = spec_with(
            "autostart",
            vec![Access {
                resource: ResourceKind::Cam,
                trigger: Trigger::OnLaunch,
                expect: Expectation::Blocked,
            }],
        );
        let outcome = run_session(&mut system, &spec);
        assert!(outcome.functional());
        assert_eq!(outcome.expected_blocks(), 1);
        assert_eq!(outcome.protection_failures(), 0);
    }

    #[test]
    fn delayed_screenshot_beyond_delta_is_blocked() {
        let mut system = System::protected();
        let spec = spec_with(
            "delayed-shot",
            vec![Access {
                resource: ResourceKind::Screen,
                trigger: Trigger::DelayedAfterClick(SimDuration::from_secs(5)),
                expect: Expectation::Blocked,
            }],
        );
        let outcome = run_session(&mut system, &spec);
        assert_eq!(outcome.expected_blocks(), 1);
    }

    #[test]
    fn delayed_access_within_delta_is_granted() {
        let mut system = System::protected();
        let spec = spec_with(
            "slow-but-ok",
            vec![granted(
                ResourceKind::Screen,
                Trigger::DelayedAfterClick(SimDuration::from_millis(1500)),
            )],
        );
        let outcome = run_session(&mut system, &spec);
        assert!(outcome.functional(), "{outcome:?}");
    }

    #[test]
    fn child_process_pattern_works_via_p1() {
        let mut system = System::protected();
        let spec = spec_with(
            "launcher-tool",
            vec![granted(ResourceKind::Screen, Trigger::ViaChildProcess)],
        );
        let outcome = run_session(&mut system, &spec);
        assert!(outcome.functional(), "{outcome:?}");
    }

    #[test]
    fn every_ipc_kind_propagates_via_p2() {
        for kind in [
            IpcKind::Pipe,
            IpcKind::Socket,
            IpcKind::SharedMemory,
            IpcKind::MessageQueue,
        ] {
            let mut system = System::protected();
            let spec = spec_with(
                "browser",
                vec![granted(ResourceKind::Cam, Trigger::ViaIpc(kind))],
            );
            let outcome = run_session(&mut system, &spec);
            assert!(outcome.functional(), "{kind:?}: {outcome:?}");
        }
    }

    #[test]
    fn cli_pattern_works_via_pty_propagation() {
        let mut system = System::protected();
        let spec = spec_with(
            "scrot",
            vec![granted(ResourceKind::Screen, Trigger::ViaCli)],
        );
        let outcome = run_session(&mut system, &spec);
        assert!(outcome.functional(), "{outcome:?}");
    }

    #[test]
    fn clipboard_copy_paste_on_click_is_granted() {
        let mut system = System::protected();
        let spec = spec_with(
            "editor",
            vec![
                granted(ResourceKind::ClipboardCopy, Trigger::OnClick),
                granted(ResourceKind::ClipboardPaste, Trigger::OnClick),
            ],
        );
        let outcome = run_session(&mut system, &spec);
        assert!(outcome.functional(), "{outcome:?}");
    }

    #[test]
    fn baseline_session_shows_protection_failures_for_launch_probes() {
        let mut system = System::baseline();
        let spec = spec_with(
            "autostart",
            vec![Access {
                resource: ResourceKind::Cam,
                trigger: Trigger::OnLaunch,
                expect: Expectation::Blocked,
            }],
        );
        let outcome = run_session(&mut system, &spec);
        assert_eq!(
            outcome.protection_failures(),
            1,
            "baseline grants the probe"
        );
    }

    #[test]
    fn exe_paths_are_sanitized() {
        let spec = AppSpec::new("GNOME Screenshot (delayed)", Category::Screenshot, vec![]);
        assert!(!spec.exe.contains(' '));
        assert!(!spec.exe.contains('('));
    }
}
