//! Adversarial attack campaigns and the fleet-scale defense matrix.
//!
//! The §IV-A / §V-D evaluation tests single-shot attacks from one spyware
//! sample. The related literature names whole attack *classes* that a
//! one-shot function cannot express: hover/overlay input theft (Ulqinaku
//! et al.), cooperating-program delegation abuse (Petracca et al.,
//! EnTrust), and operation-binding confusion (Petracca et al., Aware). A
//! [`Campaign`] turns those into deterministic multi-stage scripts over
//! multiple processes: spawn/exec chains, overlay placement timed against
//! the visibility threshold, synthetic-input probes, delegation hops over
//! shared memory, and op-X-authorizes-op-Y confusion inside the validity
//! window δ.
//!
//! Every judged stage carries an [`Expectation`]: `Blocked`, `Granted`,
//! or `ExpectedBypass` with a paper-grounded rationale. `ExpectedBypass`
//! is load-bearing: it pins the places where Overhaul's temporal-proximity
//! model is *genuinely insufficient*, so an accidental semantics change in
//! either direction — a documented bypass silently blocked, or a blocked
//! path silently granted — is a [`StageVerdict::Regression`].
//!
//! Stages resolve to exactly one [`Event`] each (via [`CampaignDriver`]),
//! so campaigns record, replay, snapshot-restore, and bisect through the
//! ordinary event machinery with no special cases. Evaluation inspects
//! outcome verdicts, [`DecisionTrace`](overhaul_kernel::policy) rule
//! labels, audit categories, and the hash-chained ledger — not loot alone.

use std::collections::BTreeMap;

use overhaul_core::{ApplyOutcome, Event, Recorder, System};
use overhaul_kernel::ipc::shm::ShmId;
use overhaul_kernel::mm::VmaId;
use overhaul_kernel::monitor::ResourceOp;
use overhaul_sim::snapshot::{Dec, Enc, Pack, SnapshotError};
use overhaul_sim::{AuditCategory, Pid, SimDuration};
use overhaul_xserver::geometry::Rect;
use overhaul_xserver::protocol::{ClientId, InputPayload, Reply, Request, XEvent};
use overhaul_xserver::window::WindowId;

/// What a judged campaign stage expects the policy engine to do.
///
/// Unlike [`crate::behavior::Expectation`] (a binary grant/block used by
/// the applicability corpus), this taxonomy has a third state for attacks
/// the paper's model *cannot* stop — with the citation-grade reason why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expectation {
    /// The operation must be granted (a legitimate flow the campaign uses
    /// as a control).
    Granted,
    /// The defense must deny the operation.
    Blocked,
    /// The attack is expected to *succeed*: Overhaul's input-driven model
    /// is genuinely insufficient here, and the rationale documents why
    /// (grounded in the paper or the named related work). If this stage
    /// starts being blocked, semantics changed by accident.
    ExpectedBypass {
        /// Why the bypass is inherent to the model, not a bug.
        rationale: String,
    },
}

impl Expectation {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            Expectation::Granted => "granted",
            Expectation::Blocked => "blocked",
            Expectation::ExpectedBypass { .. } => "expected-bypass",
        }
    }

    /// Whether an observed grant/deny satisfies this expectation.
    pub fn satisfied_by(&self, granted: bool) -> bool {
        match self {
            Expectation::Granted | Expectation::ExpectedBypass { .. } => granted,
            Expectation::Blocked => !granted,
        }
    }
}

impl Pack for Expectation {
    fn pack(&self, enc: &mut Enc) {
        match self {
            Expectation::Granted => enc.put_u8(0),
            Expectation::Blocked => enc.put_u8(1),
            Expectation::ExpectedBypass { rationale } => {
                enc.put_u8(2);
                rationale.pack(enc);
            }
        }
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        Ok(match dec.take_u8()? {
            0 => Expectation::Granted,
            1 => Expectation::Blocked,
            2 => Expectation::ExpectedBypass {
                rationale: Pack::unpack(dec)?,
            },
            _ => return Err(SnapshotError::BadValue("expectation tag")),
        })
    }
}

/// The attack classes the campaign catalog covers (the defense matrix's
/// row dimension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AttackClass {
    /// Hover/overlay input theft (Ulqinaku et al.): a spy window placed
    /// over a victim intercepts real user clicks.
    HoverOverlay,
    /// Cooperating-program delegation abuse (EnTrust): app A with fresh
    /// user interaction proxies a sensor request for app B over IPC.
    DelegationAbuse,
    /// Operation-binding confusion (Aware): the user authorizes op X; the
    /// attacker performs op Y inside the same validity window.
    OperationBinding,
}

impl AttackClass {
    /// All classes, in reporting order.
    pub const ALL: [AttackClass; 3] = [
        AttackClass::HoverOverlay,
        AttackClass::DelegationAbuse,
        AttackClass::OperationBinding,
    ];

    /// Stable display label (also the bench-artifact key stem).
    pub fn label(self) -> &'static str {
        match self {
            AttackClass::HoverOverlay => "hover/overlay",
            AttackClass::DelegationAbuse => "delegation-abuse",
            AttackClass::OperationBinding => "operation-binding",
        }
    }

    /// The label with non-alphanumerics folded to `_` (artifact keys).
    pub fn key(self) -> &'static str {
        match self {
            AttackClass::HoverOverlay => "hover_overlay",
            AttackClass::DelegationAbuse => "delegation_abuse",
            AttackClass::OperationBinding => "operation_binding",
        }
    }
}

/// One campaign step, as a symbolic action over actor slots. Each action
/// resolves to exactly ONE [`Event`] against the live system (actor
/// handles — pids, clients, windows, mappings — only exist at run time),
/// which is what keeps campaigns replayable and bisectable through the
/// ordinary event machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum StageAction {
    /// Launch a GUI app into actor slot `actor`.
    Launch {
        /// Actor slot.
        actor: usize,
        /// Executable path.
        exe: &'static str,
        /// Main-window geometry.
        rect: Rect,
    },
    /// Spawn a background (non-GUI) process into slot `actor`.
    Spawn {
        /// Actor slot.
        actor: usize,
        /// Executable path.
        exe: &'static str,
    },
    /// Connect the actor's process to the X server.
    Connect {
        /// Actor slot.
        actor: usize,
    },
    /// Create an (unmapped) window for the actor.
    CreateWindow {
        /// Actor slot.
        actor: usize,
        /// Window geometry (the overlay placement).
        rect: Rect,
    },
    /// Map the actor's window (starts the visibility clock).
    MapWindow {
        /// Actor slot.
        actor: usize,
    },
    /// Raise the actor's window (restarts the visibility clock — the
    /// "re-placement" an overlay performs to chase the victim).
    RaiseWindow {
        /// Actor slot.
        actor: usize,
    },
    /// Advance virtual time by a fixed amount.
    Advance(SimDuration),
    /// Advance by exactly the configured visibility threshold plus
    /// `extra_ms` — the overlay "ripens" to the stability boundary.
    /// Resolved against the live config, so the same script is correct
    /// under any threshold.
    Ripen {
        /// Milliseconds past the exact threshold (0 = the boundary).
        extra_ms: u64,
    },
    /// Advance past the clickjacking threshold (`System::settle`).
    Settle,
    /// A real hardware click aimed at the actor's window center (an
    /// overlay covering that point intercepts it).
    ClickActor {
        /// Actor slot (the click *target*, not necessarily the receiver).
        actor: usize,
    },
    /// Forge a click at the actor's own window via `SendEvent`.
    SendEventClick {
        /// Actor slot.
        actor: usize,
    },
    /// Forge a click at the actor's own window via `XTestFakeInput`.
    XTestClick {
        /// Actor slot.
        actor: usize,
    },
    /// Open a device node as the actor (a judged probe).
    OpenDevice {
        /// Actor slot.
        actor: usize,
        /// Device path.
        path: &'static str,
    },
    /// Capture the screen as the actor (a judged probe).
    GetImage {
        /// Actor slot.
        actor: usize,
    },
    /// `fork(2)` the parent actor; the child pid lands in slot `child`.
    Fork {
        /// Parent actor slot.
        parent: usize,
        /// Child actor slot.
        child: usize,
    },
    /// `shmget(2)` a shared segment (stored as the campaign's segment).
    ShmGet {
        /// Actor slot.
        actor: usize,
        /// SysV key.
        key: i32,
        /// Segment size in pages.
        pages: usize,
    },
    /// `shmat(2)` the campaign segment into the actor.
    ShmAt {
        /// Actor slot.
        actor: usize,
    },
    /// Store into the actor's mapping (the delegation hop's send side:
    /// the writer's fresh interaction embeds into the segment).
    ShmWrite {
        /// Actor slot.
        actor: usize,
        /// Payload.
        data: &'static [u8],
    },
    /// Load from the actor's mapping (the receive side: the reader adopts
    /// the embedded interaction — the P2 propagation rule).
    ShmRead {
        /// Actor slot.
        actor: usize,
        /// Bytes to read.
        len: usize,
    },
}

impl StageAction {
    /// The resource-op class a judged probe decides, for
    /// [`overhaul_kernel::Kernel::explain_last`] lookups.
    pub fn resource_op(&self) -> Option<ResourceOp> {
        match self {
            StageAction::OpenDevice { path, .. } => Some(if path.contains("video") {
                ResourceOp::Cam
            } else if path.contains("snd") {
                ResourceOp::Mic
            } else {
                ResourceOp::Sensor
            }),
            StageAction::GetImage { .. } => Some(ResourceOp::Screen),
            _ => None,
        }
    }

    /// The actor slot a judged probe runs as.
    fn probe_actor(&self) -> Option<usize> {
        match self {
            StageAction::OpenDevice { actor, .. } | StageAction::GetImage { actor } => Some(*actor),
            _ => None,
        }
    }
}

/// The expectation attached to a judged stage, plus which defense
/// mechanism adjudicates it (the matrix's column dimension).
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// What the policy engine must do.
    pub expect: Expectation,
    /// The mechanism under test (e.g. "visibility threshold").
    pub mechanism: &'static str,
}

/// One campaign stage: a label, one action, and an optional check.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Human-readable stage name (stable; used in failure triples).
    pub label: &'static str,
    /// The single-event action.
    pub action: StageAction,
    /// Present on judged stages only.
    pub check: Option<Check>,
}

impl Stage {
    fn plain(label: &'static str, action: StageAction) -> Stage {
        Stage {
            label,
            action,
            check: None,
        }
    }

    fn judged(
        label: &'static str,
        action: StageAction,
        expect: Expectation,
        mechanism: &'static str,
    ) -> Stage {
        Stage {
            label,
            action,
            check: Some(Check { expect, mechanism }),
        }
    }
}

/// A deterministic multi-stage, multi-process attack script.
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    /// Stable campaign name.
    pub name: &'static str,
    /// The attack class it exercises.
    pub class: AttackClass,
    /// The script, in order.
    pub stages: Vec<Stage>,
}

/// Catalog identifiers, one campaign per attack class. The fleet's shard
/// plans store a kind (not a script), so plans stay recoverable from the
/// seed alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignKind {
    /// Patient hover/overlay click theft.
    HoverTheft,
    /// Shared-memory delegation hop between cooperating apps.
    DelegationAbuse,
    /// Op-X-authorizes-op-Y confusion inside δ.
    OperationBinding,
}

impl CampaignKind {
    /// All catalog entries, in reporting order.
    pub const ALL: [CampaignKind; 3] = [
        CampaignKind::HoverTheft,
        CampaignKind::DelegationAbuse,
        CampaignKind::OperationBinding,
    ];

    /// Builds the campaign script for this kind.
    pub fn build(self) -> Campaign {
        match self {
            CampaignKind::HoverTheft => hover_theft(),
            CampaignKind::DelegationAbuse => delegation_abuse(),
            CampaignKind::OperationBinding => operation_binding(),
        }
    }
}

/// The full campaign catalog.
pub fn catalog() -> Vec<Campaign> {
    CampaignKind::ALL.iter().map(|k| k.build()).collect()
}

/// Hover/overlay input theft (Ulqinaku et al.). A spy maps an overlay
/// over the victim's center. Clicks on a *fresh* overlay are suppressed
/// by the visibility threshold; synthetic-input probes are filtered; but
/// a *patient* overlay that stays mapped for exactly the threshold
/// becomes "stable" and harvests a real user click — the documented
/// bypass.
fn hover_theft() -> Campaign {
    const VICTIM: usize = 0;
    const SPY: usize = 1;
    Campaign {
        name: "hover-theft",
        class: AttackClass::HoverOverlay,
        stages: vec![
            Stage::plain(
                "launch victim",
                StageAction::Launch {
                    actor: VICTIM,
                    exe: "/usr/bin/bank",
                    rect: Rect::new(100, 100, 200, 150),
                },
            ),
            Stage::plain("settle victim", StageAction::Settle),
            Stage::plain(
                "spawn spy",
                StageAction::Spawn {
                    actor: SPY,
                    exe: "/usr/bin/.hoverspy",
                },
            ),
            Stage::plain("connect spy", StageAction::Connect { actor: SPY }),
            Stage::plain(
                "place overlay over victim center",
                StageAction::CreateWindow {
                    actor: SPY,
                    rect: Rect::new(150, 140, 120, 80),
                },
            ),
            Stage::plain("map overlay", StageAction::MapWindow { actor: SPY }),
            Stage::plain(
                "user clicks victim; fresh overlay intercepts",
                StageAction::ClickActor { actor: VICTIM },
            ),
            Stage::judged(
                "mic after suppressed click",
                StageAction::OpenDevice {
                    actor: SPY,
                    path: "/dev/snd/mic0",
                },
                Expectation::Blocked,
                "visibility threshold",
            ),
            Stage::plain(
                "forge click via SendEvent",
                StageAction::SendEventClick { actor: SPY },
            ),
            Stage::plain(
                "forge click via XTest",
                StageAction::XTestClick { actor: SPY },
            ),
            Stage::judged(
                "cam after forged input",
                StageAction::OpenDevice {
                    actor: SPY,
                    path: "/dev/video0",
                },
                Expectation::Blocked,
                "synthetic-input filter",
            ),
            Stage::plain(
                "overlay ripens to the exact threshold",
                StageAction::Ripen { extra_ms: 0 },
            ),
            Stage::plain(
                "user clicks victim; stable overlay harvests",
                StageAction::ClickActor { actor: VICTIM },
            ),
            Stage::judged(
                "mic within delta of the stolen click",
                StageAction::OpenDevice {
                    actor: SPY,
                    path: "/dev/snd/mic0",
                },
                Expectation::ExpectedBypass {
                    rationale: "the visibility threshold (§IV-A) enforces temporal stability, \
                                not legitimacy: a patient hover overlay (Ulqinaku et al.) that \
                                stays mapped past the threshold becomes stable and harvests \
                                real clicks aimed at the window underneath"
                        .into(),
                },
                "visibility threshold",
            ),
        ],
    }
}

/// Cooperating-program delegation abuse (EnTrust). App B, never
/// interacted with, is denied the camera. Then app A — freshly clicked —
/// writes into a shared segment B reads: P2 propagates A's interaction
/// to B, and B's camera open is granted. Overhaul cannot distinguish
/// user-intended delegation from abuse; a stale hop stays denied.
fn delegation_abuse() -> Campaign {
    const A: usize = 0;
    const B: usize = 1;
    Campaign {
        name: "delegation-abuse",
        class: AttackClass::DelegationAbuse,
        stages: vec![
            Stage::plain(
                "launch app A",
                StageAction::Launch {
                    actor: A,
                    exe: "/usr/bin/chat",
                    rect: Rect::new(0, 0, 200, 150),
                },
            ),
            Stage::plain(
                "launch app B",
                StageAction::Launch {
                    actor: B,
                    exe: "/usr/bin/helper",
                    rect: Rect::new(320, 0, 200, 150),
                },
            ),
            Stage::plain("settle", StageAction::Settle),
            Stage::judged(
                "cam before any hop",
                StageAction::OpenDevice {
                    actor: B,
                    path: "/dev/video0",
                },
                Expectation::Blocked,
                "temporal proximity (delta)",
            ),
            Stage::plain(
                "A creates shared segment",
                StageAction::ShmGet {
                    actor: A,
                    key: 0x5eed,
                    pages: 1,
                },
            ),
            Stage::plain("A maps segment", StageAction::ShmAt { actor: A }),
            Stage::plain("B maps segment", StageAction::ShmAt { actor: B }),
            Stage::plain("user clicks A", StageAction::ClickActor { actor: A }),
            Stage::plain(
                "A writes the proxy request (embeds fresh interaction)",
                StageAction::ShmWrite {
                    actor: A,
                    data: b"cam-please",
                },
            ),
            Stage::plain(
                "B reads the request (adopts the interaction)",
                StageAction::ShmRead { actor: B, len: 10 },
            ),
            Stage::judged(
                "cam via fresh delegation hop",
                StageAction::OpenDevice {
                    actor: B,
                    path: "/dev/video0",
                },
                Expectation::ExpectedBypass {
                    rationale: "P2 propagates fresh interaction across any IPC payload \
                                (§III-D): one click on app A authorizes cooperating app B's \
                                camera open, and Overhaul cannot tell user-intended delegation \
                                from abuse — EnTrust's per-delegation authorization graphs \
                                (Petracca et al.) would"
                        .into(),
                },
                "interaction propagation (P2)",
            ),
            Stage::plain(
                "interaction goes stale",
                StageAction::Advance(SimDuration::from_secs(30)),
            ),
            Stage::plain(
                "A writes again, now stale",
                StageAction::ShmWrite {
                    actor: A,
                    data: b"again",
                },
            ),
            Stage::plain("B reads again", StageAction::ShmRead { actor: B, len: 5 }),
            Stage::judged(
                "cam via stale hop",
                StageAction::OpenDevice {
                    actor: B,
                    path: "/dev/video0",
                },
                Expectation::Blocked,
                "interaction propagation (P2)",
            ),
        ],
    }
}

/// Operation-binding confusion (Aware). The user's click contextually
/// authorizes a mic recording; the same click also validates a camera
/// grab inside δ, because `evaluate()` is operation-agnostic. After δ
/// the window closes.
fn operation_binding() -> Campaign {
    const APP: usize = 0;
    Campaign {
        name: "operation-binding",
        class: AttackClass::OperationBinding,
        stages: vec![
            Stage::plain(
                "launch app",
                StageAction::Launch {
                    actor: APP,
                    exe: "/usr/bin/voicenotes",
                    rect: Rect::new(50, 50, 200, 150),
                },
            ),
            Stage::plain("settle", StageAction::Settle),
            Stage::plain(
                "user clicks (mic-record intent)",
                StageAction::ClickActor { actor: APP },
            ),
            Stage::judged(
                "mic within delta (the intended op)",
                StageAction::OpenDevice {
                    actor: APP,
                    path: "/dev/snd/mic0",
                },
                Expectation::Granted,
                "temporal proximity (delta)",
            ),
            Stage::judged(
                "cam within delta (the confused op)",
                StageAction::OpenDevice {
                    actor: APP,
                    path: "/dev/video0",
                },
                Expectation::ExpectedBypass {
                    rationale: "evaluate() is operation-agnostic: any interaction within δ \
                                authorizes every op class (§III-B), so a click meant to start \
                                a mic recording also validates a camera grab in the same \
                                window — Aware (Petracca et al.) binds authorization to the \
                                specific operation and widget; input-driven access control \
                                does not"
                        .into(),
                },
                "temporal proximity (delta)",
            ),
            Stage::plain(
                "validity window closes",
                StageAction::Advance(SimDuration::from_secs(30)),
            ),
            Stage::judged(
                "cam after delta",
                StageAction::OpenDevice {
                    actor: APP,
                    path: "/dev/video0",
                },
                Expectation::Blocked,
                "temporal proximity (delta)",
            ),
        ],
    }
}

/// Live handles for one actor slot.
#[derive(Debug, Clone, Copy, Default)]
struct Actor {
    pid: Option<Pid>,
    client: Option<ClientId>,
    window: Option<WindowId>,
    vma: Option<VmaId>,
}

/// Resolves symbolic stage actions into concrete [`Event`]s against the
/// live system and folds outcomes back into the actor handle table.
///
/// The driver itself is NOT needed for reproduction: only the resolved
/// events are recorded, so a campaign's log replays through the ordinary
/// machinery.
#[derive(Debug, Default)]
pub struct CampaignDriver {
    actors: Vec<Actor>,
    shm: Option<ShmId>,
}

impl CampaignDriver {
    /// A fresh driver with empty handle tables.
    pub fn new() -> Self {
        CampaignDriver::default()
    }

    fn actor(&self, slot: usize) -> Actor {
        self.actors.get(slot).copied().unwrap_or_default()
    }

    fn actor_mut(&mut self, slot: usize) -> &mut Actor {
        if self.actors.len() <= slot {
            self.actors.resize(slot + 1, Actor::default());
        }
        &mut self.actors[slot]
    }

    fn pid(&self, slot: usize) -> Pid {
        self.actor(slot).pid.expect("campaign actor has no pid yet")
    }

    fn client(&self, slot: usize) -> ClientId {
        self.actor(slot)
            .client
            .expect("campaign actor has no X client yet")
    }

    fn window(&self, slot: usize) -> WindowId {
        self.actor(slot)
            .window
            .expect("campaign actor has no window yet")
    }

    fn vma(&self, slot: usize) -> VmaId {
        self.actor(slot)
            .vma
            .expect("campaign actor has no shm mapping yet")
    }

    /// Resolves one action into the single event it records as.
    pub fn resolve(&self, system: &System, action: &StageAction) -> Event {
        match action {
            StageAction::Launch { exe, rect, .. } => Event::LaunchGuiApp {
                exe: (*exe).to_string(),
                rect: *rect,
            },
            StageAction::Spawn { exe, .. } => Event::SpawnProcess {
                parent: None,
                exe: (*exe).to_string(),
            },
            StageAction::Connect { actor } => Event::ConnectX {
                pid: self.pid(*actor),
            },
            StageAction::CreateWindow { actor, rect } => Event::XRequest {
                client: self.client(*actor),
                request: Request::CreateWindow { rect: *rect },
            },
            StageAction::MapWindow { actor } => Event::XRequest {
                client: self.client(*actor),
                request: Request::MapWindow {
                    window: self.window(*actor),
                },
            },
            StageAction::RaiseWindow { actor } => Event::XRequest {
                client: self.client(*actor),
                request: Request::RaiseWindow {
                    window: self.window(*actor),
                },
            },
            StageAction::Advance(d) => Event::Advance(*d),
            StageAction::Ripen { extra_ms } => Event::Advance(
                system.config().x.visibility_threshold + SimDuration::from_millis(*extra_ms),
            ),
            StageAction::Settle => Event::Settle,
            StageAction::ClickActor { actor } => Event::ClickWindow {
                window: self.window(*actor),
            },
            StageAction::SendEventClick { actor } => {
                let window = self.window(*actor);
                Event::XRequest {
                    client: self.client(*actor),
                    request: Request::SendEvent {
                        target: window,
                        event: Box::new(XEvent::Input {
                            window,
                            payload: InputPayload::Button { x: 1, y: 1 },
                            synthetic: false,
                        }),
                    },
                }
            }
            StageAction::XTestClick { actor } => Event::XRequest {
                client: self.client(*actor),
                request: Request::XTestFakeInput {
                    payload: InputPayload::Button { x: 1, y: 1 },
                    target: self.window(*actor),
                },
            },
            StageAction::OpenDevice { actor, path } => Event::OpenDevice {
                pid: self.pid(*actor),
                path: (*path).to_string(),
            },
            StageAction::GetImage { actor } => Event::XRequest {
                client: self.client(*actor),
                request: Request::GetImage { window: None },
            },
            StageAction::Fork { parent, .. } => Event::SysFork {
                pid: self.pid(*parent),
            },
            StageAction::ShmGet { actor, key, pages } => Event::SysShmGet {
                pid: self.pid(*actor),
                key: *key,
                pages: *pages,
            },
            StageAction::ShmAt { actor } => Event::SysShmAt {
                pid: self.pid(*actor),
                shm: self.shm.expect("campaign has no shm segment yet"),
            },
            StageAction::ShmWrite { actor, data } => Event::SysShmWrite {
                pid: self.pid(*actor),
                vma: self.vma(*actor),
                offset: 0,
                data: data.to_vec(),
            },
            StageAction::ShmRead { actor, len } => Event::SysShmRead {
                pid: self.pid(*actor),
                vma: self.vma(*actor),
                offset: 0,
                len: *len,
            },
        }
    }

    /// Folds an outcome back into the handle table. Replay determinism
    /// guarantees the same handles on record and on replay.
    pub fn absorb(&mut self, action: &StageAction, outcome: &ApplyOutcome) {
        match (action, outcome) {
            (StageAction::Launch { actor, .. }, ApplyOutcome::Gui(Ok(gui))) => {
                let a = self.actor_mut(*actor);
                a.pid = Some(gui.pid);
                a.client = Some(gui.client);
                a.window = Some(gui.window);
            }
            (StageAction::Spawn { actor, .. }, ApplyOutcome::Pid(Ok(pid)))
            | (StageAction::Fork { child: actor, .. }, ApplyOutcome::Pid(Ok(pid))) => {
                self.actor_mut(*actor).pid = Some(*pid);
            }
            (StageAction::Connect { actor }, ApplyOutcome::Client(client)) => {
                self.actor_mut(*actor).client = Some(*client);
            }
            (StageAction::CreateWindow { actor, .. }, ApplyOutcome::X(Ok(Reply::Window(w)))) => {
                self.actor_mut(*actor).window = Some(*w);
            }
            (StageAction::ShmGet { .. }, ApplyOutcome::Shm(Ok(shm))) => {
                self.shm = Some(*shm);
            }
            (StageAction::ShmAt { actor }, ApplyOutcome::Vma(Ok(vma))) => {
                self.actor_mut(*actor).vma = Some(*vma);
            }
            _ => {}
        }
    }

    /// The pid currently bound to an actor slot, if any.
    pub fn actor_pid(&self, slot: usize) -> Option<Pid> {
        self.actor(slot).pid
    }
}

/// Whether the event's outcome was a grant (`Some(true)`), a denial
/// (`Some(false)`), or not a judged probe shape (`None`). Shared by the
/// recorder-side runner and the fleet's expectation-aware oracle — and
/// by triple reproduction, which must re-judge identically.
pub fn outcome_granted(event: &Event, outcome: &ApplyOutcome) -> Option<bool> {
    match (event, outcome) {
        (Event::OpenDevice { .. } | Event::OpenDevicePrompted { .. }, ApplyOutcome::Fd(result)) => {
            Some(result.is_ok())
        }
        (Event::XRequest { .. }, ApplyOutcome::X(result)) => Some(result.is_ok()),
        _ => None,
    }
}

/// The verdict on one judged stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageVerdict {
    /// The outcome matched the expectation.
    Pass,
    /// The outcome was a deny where a grant was expected, under an active
    /// fault plan: fail-closed denies (dropped notifications, channel
    /// down, quarantine) are the *designed* response to faults, so this
    /// is excused rather than flagged. Grants are never excused.
    ExcusedFaultDeny,
    /// The defense regressed: expected-`Blocked` granted, or a documented
    /// bypass / expected grant denied on a fault-free machine.
    Regression(String),
}

impl StageVerdict {
    /// Whether this verdict is a regression.
    pub fn is_regression(&self) -> bool {
        matches!(self, StageVerdict::Regression(_))
    }
}

/// Judges one observed grant/deny against its expectation.
///
/// `fault_tolerant` is set by fleet shards running under a seeded fault
/// plan: there, a deny where a grant was expected may be the fail-closed
/// response to an injected fault (a dropped interaction notification, a
/// downed channel) and is [`StageVerdict::ExcusedFaultDeny`]. A *grant*
/// where `Blocked` was expected is a regression unconditionally — no
/// fault can explain a wrongful grant under fail-closed semantics.
pub fn judge(expect: &Expectation, granted: bool, fault_tolerant: bool) -> StageVerdict {
    if expect.satisfied_by(granted) {
        return StageVerdict::Pass;
    }
    match expect {
        Expectation::Blocked => StageVerdict::Regression(format!(
            "expected {} but the operation was granted",
            expect.label()
        )),
        Expectation::Granted => {
            if fault_tolerant {
                StageVerdict::ExcusedFaultDeny
            } else {
                StageVerdict::Regression("expected granted but the operation was denied".into())
            }
        }
        Expectation::ExpectedBypass { rationale } => {
            if fault_tolerant {
                StageVerdict::ExcusedFaultDeny
            } else {
                StageVerdict::Regression(format!(
                    "documented bypass is now blocked (semantics changed): {rationale}"
                ))
            }
        }
    }
}

/// What one stage did, as recorded by the runner.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Stage label.
    pub stage: &'static str,
    /// The check, when the stage was judged.
    pub check: Option<Check>,
    /// Observed grant/deny, when the stage was a probe.
    pub granted: Option<bool>,
    /// The [`overhaul_kernel::policy::DecisionTrace`] rule label behind a
    /// device probe's decision (`explain_last`), when available.
    pub rule: Option<&'static str>,
    /// The verdict, when the stage was judged.
    pub verdict: Option<StageVerdict>,
}

/// What one whole campaign did.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: &'static str,
    /// Attack class.
    pub class: AttackClass,
    /// Per-stage records, in script order.
    pub stages: Vec<StageReport>,
    /// Clickjacking suppressions the campaign added to the X audit log.
    pub clickjacking_suppressed: usize,
    /// Synthetic-input filters the campaign added to the X audit log.
    pub synthetic_filtered: usize,
    /// Whether the machine's hash-chained ledgers verified after the run.
    pub ledger_verified: bool,
}

impl CampaignReport {
    /// The regressions this campaign produced.
    pub fn regressions(&self) -> Vec<&StageReport> {
        self.stages
            .iter()
            .filter(|s| s.verdict.as_ref().is_some_and(StageVerdict::is_regression))
            .collect()
    }

    /// Stages whose documented bypass happened as expected.
    pub fn bypasses_documented(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| {
                matches!(
                    s.check,
                    Some(Check {
                        expect: Expectation::ExpectedBypass { .. },
                        ..
                    })
                ) && s.verdict == Some(StageVerdict::Pass)
            })
            .count()
    }
}

/// Runs one campaign over a [`Recorder`]: every stage resolves to one
/// recorded event, judged stages are checked against their expectations,
/// and the report carries the audit/ledger evidence alongside the
/// verdicts. `fault_tolerant` should be `false` on fault-free machines
/// (tests, bench) — see [`judge`].
pub fn run_campaign(
    rec: &mut Recorder,
    campaign: &Campaign,
    fault_tolerant: bool,
) -> CampaignReport {
    let mut driver = CampaignDriver::new();
    let suppressed_before = rec
        .system()
        .x_audit()
        .count(AuditCategory::ClickjackingSuppressed);
    let filtered_before = rec
        .system()
        .x_audit()
        .count(AuditCategory::SyntheticInputFiltered);

    let mut stages = Vec::with_capacity(campaign.stages.len());
    for stage in &campaign.stages {
        let event = driver.resolve(rec.system(), &stage.action);
        let outcome = rec.apply(event.clone());
        driver.absorb(&stage.action, &outcome);

        let granted = outcome_granted(&event, &outcome);
        let rule = stage.action.resource_op().and_then(|op| {
            let pid = stage
                .action
                .probe_actor()
                .and_then(|a| driver.actor_pid(a))?;
            rec.system()
                .kernel()
                .explain_last(pid, op)
                .map(|o| o.trace.kind_str())
        });
        let verdict = match (&stage.check, granted) {
            (Some(check), Some(g)) => Some(judge(&check.expect, g, fault_tolerant)),
            (Some(_), None) => Some(StageVerdict::Regression(
                "judged stage produced no grant/deny-shaped outcome".into(),
            )),
            (None, _) => None,
        };
        stages.push(StageReport {
            stage: stage.label,
            check: stage.check.clone(),
            granted,
            rule,
            verdict,
        });
    }

    CampaignReport {
        name: campaign.name,
        class: campaign.class,
        stages,
        clickjacking_suppressed: rec
            .system()
            .x_audit()
            .count(AuditCategory::ClickjackingSuppressed)
            .saturating_sub(suppressed_before),
        synthetic_filtered: rec
            .system()
            .x_audit()
            .count(AuditCategory::SyntheticInputFiltered)
            .saturating_sub(filtered_before),
        ledger_verified: rec.system().verify_ledgers().is_ok(),
    }
}

/// Outcome counts for one (attack class × mechanism) matrix cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellCounts {
    /// Stages blocked as expected.
    pub blocked: usize,
    /// Stages granted as expected (legitimate controls).
    pub granted: usize,
    /// Documented bypasses that happened as documented.
    pub bypasses: usize,
    /// Deny-side mismatches excused under an active fault plan.
    pub excused: usize,
    /// Defense regressions.
    pub regressions: usize,
}

/// The §IV-A-style aggregator: attack class × defense mechanism →
/// outcome counts, plus per-class block rates.
#[derive(Debug, Clone, Default)]
pub struct DefenseMatrix {
    cells: BTreeMap<(&'static str, &'static str), CellCounts>,
    /// Per-class (expected-blocked, actually-blocked) stage counts.
    class_blocks: BTreeMap<&'static str, (usize, usize)>,
}

impl DefenseMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        DefenseMatrix::default()
    }

    /// Folds one campaign report into the matrix.
    pub fn absorb(&mut self, report: &CampaignReport) {
        for stage in &report.stages {
            let Some(check) = &stage.check else { continue };
            let cell = self
                .cells
                .entry((report.class.label(), check.mechanism))
                .or_default();
            match stage.verdict.as_ref() {
                Some(StageVerdict::Pass) => match check.expect {
                    Expectation::Blocked => cell.blocked += 1,
                    Expectation::Granted => cell.granted += 1,
                    Expectation::ExpectedBypass { .. } => cell.bypasses += 1,
                },
                Some(StageVerdict::ExcusedFaultDeny) => cell.excused += 1,
                Some(StageVerdict::Regression(_)) => cell.regressions += 1,
                None => {}
            }
            if check.expect == Expectation::Blocked {
                let (expected, got) = self
                    .class_blocks
                    .entry(report.class.label())
                    .or_insert((0, 0));
                *expected += 1;
                if stage.granted == Some(false) {
                    *got += 1;
                }
            }
        }
    }

    /// Merges another matrix into this one (fleet aggregation).
    pub fn merge(&mut self, other: &DefenseMatrix) {
        for (key, counts) in &other.cells {
            let cell = self.cells.entry(*key).or_default();
            cell.blocked += counts.blocked;
            cell.granted += counts.granted;
            cell.bypasses += counts.bypasses;
            cell.excused += counts.excused;
            cell.regressions += counts.regressions;
        }
        for (class, (expected, got)) in &other.class_blocks {
            let (e, g) = self.class_blocks.entry(class).or_insert((0, 0));
            *e += expected;
            *g += got;
        }
    }

    /// The fraction (in percent) of expected-`Blocked` stages of `class`
    /// that were actually denied, or `None` if the class recorded none.
    pub fn block_rate_pct(&self, class: AttackClass) -> Option<f64> {
        self.class_blocks
            .get(class.label())
            .filter(|(expected, _)| *expected > 0)
            .map(|(expected, got)| 100.0 * *got as f64 / *expected as f64)
    }

    /// Total regressions across all cells.
    pub fn regressions(&self) -> usize {
        self.cells.values().map(|c| c.regressions).sum()
    }

    /// Total documented bypasses observed across all cells.
    pub fn bypasses(&self) -> usize {
        self.cells.values().map(|c| c.bypasses).sum()
    }

    /// Attack classes with at least one judged stage recorded.
    pub fn classes_covered(&self) -> usize {
        AttackClass::ALL
            .iter()
            .filter(|class| {
                self.cells.keys().any(|(c, _)| *c == class.label())
                    || self.class_blocks.contains_key(class.label())
            })
            .count()
    }

    /// Renders the §IV-A-style table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<20} {:<30} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
            "attack class", "mechanism", "blocked", "granted", "bypass", "excused", "REGRESS"
        );
        for ((class, mechanism), c) in &self.cells {
            out.push_str(&format!(
                "{:<20} {:<30} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
                class, mechanism, c.blocked, c.granted, c.bypasses, c.excused, c.regressions
            ));
        }
        for class in AttackClass::ALL {
            if let Some(rate) = self.block_rate_pct(class) {
                let (expected, got) = self.class_blocks[class.label()];
                out.push_str(&format!(
                    "block rate {:<20} {rate:>6.1}% ({got}/{expected})\n",
                    class.label()
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overhaul_core::OverhaulConfig;

    fn run_catalog(config: OverhaulConfig) -> (DefenseMatrix, Vec<CampaignReport>) {
        let mut matrix = DefenseMatrix::new();
        let mut reports = Vec::new();
        for campaign in catalog() {
            let mut rec = Recorder::new(config.clone());
            let report = run_campaign(&mut rec, &campaign, false);
            matrix.absorb(&report);
            reports.push(report);
        }
        (matrix, reports)
    }

    #[test]
    fn protected_machine_matches_every_expectation() {
        let (matrix, reports) = run_catalog(OverhaulConfig::protected());
        for report in &reports {
            assert!(
                report.regressions().is_empty(),
                "{}: {:?}",
                report.name,
                report.regressions()
            );
            assert!(report.ledger_verified, "{} ledger broke", report.name);
        }
        assert_eq!(matrix.regressions(), 0);
        assert_eq!(matrix.classes_covered(), 3, "all three classes report");
        assert!(
            matrix.bypasses() >= 3,
            "each class documents at least one bypass: {}",
            matrix.render()
        );
        for class in AttackClass::ALL {
            assert_eq!(
                matrix.block_rate_pct(class),
                Some(100.0),
                "{} block rate",
                class.label()
            );
        }
    }

    #[test]
    fn hover_theft_evidence_is_in_the_audit_log_not_just_loot() {
        let mut rec = Recorder::new(OverhaulConfig::protected());
        let report = run_campaign(&mut rec, &hover_theft(), false);
        assert!(
            report.clickjacking_suppressed >= 1,
            "the premature click must be suppressed on the record"
        );
        assert!(
            report.synthetic_filtered >= 2,
            "both forged clicks must be filtered on the record"
        );
        // The stolen-click bypass is granted via the ordinary
        // within-threshold rule — that is exactly the insufficiency.
        let bypass = report
            .stages
            .iter()
            .find(|s| s.stage == "mic within delta of the stolen click")
            .unwrap();
        assert_eq!(bypass.granted, Some(true));
        assert_eq!(bypass.rule, Some("within-threshold"));
        assert_eq!(bypass.verdict, Some(StageVerdict::Pass));
    }

    #[test]
    fn delegation_abuse_rides_p2_and_goes_stale() {
        let mut rec = Recorder::new(OverhaulConfig::protected());
        let report = run_campaign(&mut rec, &delegation_abuse(), false);
        let fresh = report
            .stages
            .iter()
            .find(|s| s.stage == "cam via fresh delegation hop")
            .unwrap();
        assert_eq!(fresh.granted, Some(true));
        assert_eq!(fresh.rule, Some("within-threshold"));
        let stale = report
            .stages
            .iter()
            .find(|s| s.stage == "cam via stale hop")
            .unwrap();
        assert_eq!(stale.granted, Some(false));
        assert!(
            report.regressions().is_empty(),
            "{:?}",
            report.regressions()
        );
    }

    #[test]
    fn grant_all_machine_turns_blocked_stages_into_regressions() {
        let (matrix, reports) = run_catalog(OverhaulConfig::grant_all());
        assert!(
            matrix.regressions() > 0,
            "grant-all must trip Blocked expectations:\n{}",
            matrix.render()
        );
        // Every regression is a wrongful GRANT (the unconditional
        // direction), never an excusable deny.
        for report in &reports {
            for stage in report.regressions() {
                assert_eq!(stage.granted, Some(true), "{:?}", stage);
            }
        }
    }

    #[test]
    fn fault_tolerant_judging_excuses_denies_but_never_grants() {
        let bypass = Expectation::ExpectedBypass {
            rationale: "doc".into(),
        };
        assert_eq!(judge(&bypass, false, true), StageVerdict::ExcusedFaultDeny);
        assert!(judge(&bypass, false, false).is_regression());
        assert_eq!(judge(&bypass, true, true), StageVerdict::Pass);
        assert!(judge(&Expectation::Blocked, true, true).is_regression());
        assert!(judge(&Expectation::Blocked, true, false).is_regression());
        assert_eq!(
            judge(&Expectation::Blocked, false, true),
            StageVerdict::Pass
        );
        assert_eq!(
            judge(&Expectation::Granted, false, true),
            StageVerdict::ExcusedFaultDeny
        );
    }

    #[test]
    fn expectation_packs_round_trip() {
        let all = vec![
            Expectation::Granted,
            Expectation::Blocked,
            Expectation::ExpectedBypass {
                rationale: "temporal proximity is op-agnostic".into(),
            },
        ];
        let mut enc = Enc::new();
        all.pack(&mut enc);
        let bytes = enc.into_bytes();
        let back = Vec::<Expectation>::unpack(&mut Dec::new(&bytes)).expect("unpack");
        assert_eq!(back, all);
    }

    #[test]
    fn campaigns_replay_byte_identically() {
        for campaign in catalog() {
            let mut rec = Recorder::new(OverhaulConfig::protected());
            run_campaign(&mut rec, &campaign, false);
            let (recorded, log) = rec.finish();
            let replayed = overhaul_core::replay(&log).expect("replay boots");
            assert_eq!(
                replayed.state_hash(),
                recorded.state_hash(),
                "{} diverged on replay",
                campaign.name
            );
            assert_eq!(replayed.ledger_head(), recorded.ledger_head());
        }
    }
}
