//! Long-horizon interactive workload generator (§V-D).
//!
//! The empirical experiment ran the spyware for 21 days on two actively
//! used machines — one protected, one not. [`run_empirical_experiment`] replays a
//! comparable usage pattern: working days of clicking between applications,
//! user-driven copy & paste (passwords from a password manager, phone
//! numbers, email excerpts), video calls, and screenshots, with the spyware
//! sampling the clipboard, screen, and microphone on a timer.

use overhaul_core::{Gui, System};
use overhaul_sim::{SimDuration, SimRng};
use overhaul_xserver::geometry::Rect;
use overhaul_xserver::protocol::{Atom, Request};
use serde::{Deserialize, Serialize};

use crate::malware::{answer_selection_requests, Spyware};

/// Parameters of the long-run experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of simulated days (paper: 21).
    pub days: u32,
    /// User actions per working day.
    pub actions_per_day: u32,
    /// Spyware sampling interval.
    pub spy_interval: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            days: 21,
            actions_per_day: 96, // one action every ~5 work-minutes
            spy_interval: SimDuration::from_secs(600),
            seed: 2016,
        }
    }
}

/// Outcome of one long-run experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EmpiricalReport {
    /// Days simulated.
    pub days: u32,
    /// Total spyware sampling cycles.
    pub spy_cycles: usize,
    /// Items the spyware captured (clipboard + screenshots + mic samples).
    pub items_stolen: usize,
    /// Clipboard payloads stolen (sensitive strings).
    pub clipboard_stolen: Vec<String>,
    /// Legitimate user-driven resource accesses that were granted.
    pub legit_granted: usize,
    /// Legitimate user-driven resource accesses that were denied
    /// (false positives — the paper observed zero in 21 days).
    pub legit_denied: usize,
}

/// The secrets the simulated user moves through the clipboard, mirroring
/// what the paper's investigation found stolen on the vulnerable machine.
pub const CLIPBOARD_SECRETS: [&str; 4] = [
    "correct-horse-battery-staple", // password-manager password
    "+1-617-555-0143",              // phone number
    "please find attached the quarterly report", // email excerpt
    "IBAN DE89 3704 0044 0532 0130 00", // e-banking detail
];

/// Runs the §V-D workload on `system`, returning the report.
pub fn run_empirical_experiment(system: &mut System, config: WorkloadConfig) -> EmpiricalReport {
    let mut rng = SimRng::seeded(config.seed);

    // The user's application mix.
    let password_manager = launch(system, "/usr/bin/keepassx", 0);
    let editor = launch(system, "/usr/bin/gedit", 1);
    let browser = launch(system, "/usr/bin/firefox", 2);
    let videoconf = launch(system, "/usr/bin/skype", 3);
    let screenshot_tool = launch(system, "/usr/bin/gnome-screenshot", 4);
    system.settle();

    let mut spyware = Spyware::install(system);
    let mut report = EmpiricalReport {
        days: config.days,
        spy_cycles: 0,
        items_stolen: 0,
        clipboard_stolen: Vec::new(),
        legit_granted: 0,
        legit_denied: 0,
    };

    // Track the live clipboard contents so the spyware's loot can be
    // attributed, and so selection requests get answered.
    let mut clipboard_now: Option<String> = None;
    let work_day_ms: u64 = 8 * 3600 * 1000;
    let action_gap = SimDuration::from_millis(work_day_ms / config.actions_per_day as u64);
    let mut since_spy = SimDuration::ZERO;

    for _day in 0..config.days {
        for _action in 0..config.actions_per_day {
            match rng.range(0, 100) {
                // Copy a secret from the password manager / other app,
                // paste it elsewhere.
                0..=29 => {
                    let secret = *rng.pick(&CLIPBOARD_SECRETS).expect("non-empty");
                    system.click_window(password_manager.window);
                    let copy = system.x_request(
                        password_manager.client,
                        Request::SetSelectionOwner {
                            selection: Atom::clipboard(),
                            window: password_manager.window,
                        },
                    );
                    record(&mut report, copy.is_ok());
                    if copy.is_ok() {
                        clipboard_now = Some(secret.to_string());
                    }
                    system.advance(SimDuration::from_millis(300));
                    system.click_window(editor.window);
                    let paste = system.x_request(
                        editor.client,
                        Request::ConvertSelection {
                            selection: Atom::clipboard(),
                            requestor: editor.window,
                            property: Atom::new("XSEL_DATA"),
                        },
                    );
                    record(&mut report, paste.is_ok());
                    if let Some(secret) = &clipboard_now {
                        answer_selection_requests(
                            system,
                            password_manager.client,
                            secret.as_bytes(),
                        );
                    }
                }
                // A video call: camera + microphone after a click.
                30..=44 => {
                    system.click_window(videoconf.window);
                    system.advance(SimDuration::from_millis(200));
                    let cam = system.open_device(videoconf.pid, "/dev/video0");
                    record(&mut report, cam.is_ok());
                    let mic = system.open_device(videoconf.pid, "/dev/snd/mic0");
                    record(&mut report, mic.is_ok());
                    for fd in [cam.ok(), mic.ok()].into_iter().flatten() {
                        let _ = system.kernel_mut().sys_close(videoconf.pid, fd);
                    }
                }
                // A deliberate screenshot.
                45..=54 => {
                    system.click_window(screenshot_tool.window);
                    system.advance(SimDuration::from_millis(150));
                    let shot = system
                        .x_request(screenshot_tool.client, Request::GetImage { window: None });
                    record(&mut report, shot.is_ok());
                }
                // Ordinary browsing/typing: interactions with no
                // protected-resource use.
                _ => {
                    system.click_window(browser.window);
                    system.key('x');
                }
            }

            system.advance(action_gap);
            since_spy = since_spy + action_gap;
            while since_spy >= config.spy_interval {
                since_spy = since_spy - config.spy_interval;
                report.spy_cycles += 1;
                let loot = spyware.run_cycle(system);
                report.items_stolen += loot.count();
                if loot.clipboard.is_some() {
                    if let Some(secret) = &clipboard_now {
                        report.clipboard_stolen.push(secret.clone());
                    }
                }
                // A responsive owner answers any relayed request the spy's
                // paste produced (only reachable on the baseline machine).
                if let Some(secret) = clipboard_now.clone() {
                    answer_selection_requests(system, password_manager.client, secret.as_bytes());
                }
            }
        }
        // 16 hours of idle (overnight).
        system.advance(SimDuration::from_secs(16 * 3600));
    }

    report
}

fn launch(system: &mut System, exe: &str, slot: i32) -> Gui {
    system
        .launch_gui_app(exe, Rect::new(slot * 250, 0, 240, 200))
        .expect("launch workload app")
}

fn record(report: &mut EmpiricalReport, granted: bool) {
    if granted {
        report.legit_granted += 1;
    } else {
        report.legit_denied += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overhaul_core::System;

    fn short_config() -> WorkloadConfig {
        WorkloadConfig {
            days: 2,
            actions_per_day: 24,
            spy_interval: SimDuration::from_secs(1800),
            seed: 7,
        }
    }

    #[test]
    fn protected_machine_leaks_nothing_and_breaks_nothing() {
        let mut system = System::protected();
        let report = run_empirical_experiment(&mut system, short_config());
        assert_eq!(report.items_stolen, 0, "Overhaul blocks all spying");
        assert_eq!(report.legit_denied, 0, "no false positives in the workload");
        assert!(report.legit_granted > 0, "the user actually did things");
        assert!(report.spy_cycles > 0, "the spyware actually ran");
    }

    #[test]
    fn baseline_machine_leaks_secrets() {
        let mut system = System::baseline();
        let report = run_empirical_experiment(&mut system, short_config());
        assert!(report.items_stolen > 0, "unprotected machine leaks");
        assert!(
            !report.clipboard_stolen.is_empty(),
            "clipboard secrets are among the loot"
        );
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let mut a = System::protected();
        let mut b = System::protected();
        let ra = run_empirical_experiment(&mut a, short_config());
        let rb = run_empirical_experiment(&mut b, short_config());
        assert_eq!(ra, rb);
    }
}
