//! The application corpus of the applicability study (§V-C).
//!
//! The paper built its pool from Ubuntu Software Center "Top Rated"
//! packages and Arch Linux repositories, ending up with **58** applications
//! that use the camera, microphone, or screen, plus an additional **50**
//! clipboard-using applications. This module reconstructs that pool: the
//! applications the paper names appear verbatim (with their documented
//! quirks — Skype's autostart camera probe, delayed screenshot tools);
//! the remainder are representative members of the same categories.

use overhaul_sim::SimDuration;

use crate::behavior::{Access, AppSpec, Category, Expectation, IpcKind, ResourceKind, Trigger};

fn on_click(resource: ResourceKind) -> Access {
    Access {
        resource,
        trigger: Trigger::OnClick,
        expect: Expectation::Granted,
    }
}

fn via_child(resource: ResourceKind) -> Access {
    Access {
        resource,
        trigger: Trigger::ViaChildProcess,
        expect: Expectation::Granted,
    }
}

fn via_ipc(kind: IpcKind, resource: ResourceKind) -> Access {
    Access {
        resource,
        trigger: Trigger::ViaIpc(kind),
        expect: Expectation::Granted,
    }
}

fn via_cli(resource: ResourceKind) -> Access {
    Access {
        resource,
        trigger: Trigger::ViaCli,
        expect: Expectation::Granted,
    }
}

/// The 58 device/screen applications.
pub fn device_corpus() -> Vec<AppSpec> {
    let mut pool = Vec::new();

    // --- Video conferencing (paper names Skype and Jitsi). -----------
    // Skype probes the camera at startup, before login — the study's one
    // "spurious" (but desirable) alert.
    pool.push(AppSpec::new(
        "Skype",
        Category::VideoConferencing,
        vec![
            Access {
                resource: ResourceKind::Cam,
                trigger: Trigger::OnLaunch,
                expect: Expectation::Blocked,
            },
            on_click(ResourceKind::Cam),
            on_click(ResourceKind::Mic),
        ],
    ));
    pool.push(AppSpec::new(
        "Jitsi",
        Category::VideoConferencing,
        vec![on_click(ResourceKind::Cam), on_click(ResourceKind::Mic)],
    ));
    for name in [
        "Ekiga",
        "Linphone",
        "Empathy",
        "Pidgin Video",
        "Google Talk Plugin",
        "Tox qTox",
        "Mumble",
        "TeamSpeak",
        "Jami",
        "Wire",
        "Riot",
    ] {
        pool.push(AppSpec::new(
            name,
            Category::VideoConferencing,
            vec![on_click(ResourceKind::Cam), on_click(ResourceKind::Mic)],
        ));
    }

    // --- Audio/video editors (paper names Audacity and Kwave). -------
    for name in [
        "Audacity", "Kwave", "Ardour", "LMMS", "Qtractor", "Sweep", "ReZound", "Jokosher",
    ] {
        pool.push(AppSpec::new(
            name,
            Category::AvEditor,
            vec![on_click(ResourceKind::Mic)],
        ));
    }

    // --- Audio/video recorders (paper names Cheese and ZArt). --------
    for name in [
        "Cheese",
        "ZArt",
        "guvcview",
        "Kamoso",
        "Webcamoid",
        "QtCAM",
        "Sound Recorder",
        "gnome-sound-recorder",
    ] {
        pool.push(AppSpec::new(
            name,
            Category::AvRecorder,
            vec![on_click(ResourceKind::Cam), on_click(ResourceKind::Mic)],
        ));
    }
    // CLI recorders exercise the pseudo-terminal propagation path.
    for name in ["arecord", "ffmpeg-capture", "sox-rec"] {
        pool.push(AppSpec::new(
            name,
            Category::AvRecorder,
            vec![via_cli(ResourceKind::Mic)],
        ));
    }

    // --- Screenshot utilities (paper names Shutter, GNOME Screenshot;
    //     documents the delayed-shot limitation). ----------------------
    pool.push(AppSpec::new(
        "Shutter",
        Category::Screenshot,
        vec![on_click(ResourceKind::Screen)],
    ));
    pool.push(AppSpec::new(
        "GNOME Screenshot",
        Category::Screenshot,
        vec![on_click(ResourceKind::Screen)],
    ));
    // Delayed shots (5 s > δ) are blocked by design — the paper's
    // documented limitation, not a malfunction.
    pool.push(AppSpec::new(
        "Shutter (delayed)",
        Category::Screenshot,
        vec![Access {
            resource: ResourceKind::Screen,
            trigger: Trigger::DelayedAfterClick(SimDuration::from_secs(5)),
            expect: Expectation::Blocked,
        }],
    ));
    pool.push(AppSpec::new(
        "xfce4-screenshooter (delayed)",
        Category::Screenshot,
        vec![Access {
            resource: ResourceKind::Screen,
            trigger: Trigger::DelayedAfterClick(SimDuration::from_secs(10)),
            expect: Expectation::Blocked,
        }],
    ));
    for name in [
        "KSnapshot",
        "Spectacle",
        "xfce4-screenshooter",
        "Lximage-screenshot",
        "Deepin Screenshot",
    ] {
        pool.push(AppSpec::new(
            name,
            Category::Screenshot,
            vec![on_click(ResourceKind::Screen)],
        ));
    }
    // CLI screenshot tools (scrot & friends) go through the terminal.
    for name in ["scrot", "maim", "import-im6"] {
        pool.push(AppSpec::new(
            name,
            Category::Screenshot,
            vec![via_cli(ResourceKind::Screen)],
        ));
    }
    // A launcher-driven tool exercises the Figure 3 spawn pattern.
    pool.push(AppSpec::new(
        "Shot (via launcher)",
        Category::Screenshot,
        vec![via_child(ResourceKind::Screen)],
    ));

    // --- Screencasting (paper names Istanbul and recordMyDesktop). ---
    for name in [
        "Istanbul",
        "recordMyDesktop",
        "SimpleScreenRecorder",
        "Kazam",
        "OBS Studio",
        "vokoscreen",
        "Byzanz",
        "Peek",
    ] {
        pool.push(AppSpec::new(
            name,
            Category::Screencast,
            vec![on_click(ResourceKind::Screen), on_click(ResourceKind::Mic)],
        ));
    }

    // --- Browsers running web video chat (paper names Firefox,
    //     Chrome); multi-process ones exercise the Figure 4 pattern. ---
    pool.push(AppSpec::new(
        "Chromium (web chat)",
        Category::Browser,
        vec![
            via_ipc(IpcKind::SharedMemory, ResourceKind::Cam),
            via_ipc(IpcKind::SharedMemory, ResourceKind::Mic),
        ],
    ));
    pool.push(AppSpec::new(
        "Chrome (web chat)",
        Category::Browser,
        vec![via_ipc(IpcKind::SharedMemory, ResourceKind::Cam)],
    ));
    pool.push(AppSpec::new(
        "Firefox (web chat)",
        Category::Browser,
        vec![
            via_ipc(IpcKind::Socket, ResourceKind::Cam),
            via_ipc(IpcKind::Socket, ResourceKind::Mic),
        ],
    ));
    pool.push(AppSpec::new(
        "Opera (web chat)",
        Category::Browser,
        vec![via_ipc(IpcKind::Pipe, ResourceKind::Cam)],
    ));
    pool.push(AppSpec::new(
        "Epiphany (web chat)",
        Category::Browser,
        vec![via_ipc(IpcKind::MessageQueue, ResourceKind::Mic)],
    ));

    debug_assert_eq!(pool.len(), 58, "paper pool size");
    pool
}

/// The 50 clipboard applications.
pub fn clipboard_corpus() -> Vec<AppSpec> {
    let mut pool = Vec::new();
    let copy_paste = || {
        vec![
            on_click(ResourceKind::ClipboardCopy),
            on_click(ResourceKind::ClipboardPaste),
        ]
    };

    // Office suites.
    for name in [
        "LibreOffice Writer",
        "LibreOffice Calc",
        "LibreOffice Impress",
        "Calligra Words",
        "AbiWord",
        "Gnumeric",
    ] {
        pool.push(AppSpec::new(name, Category::Productivity, copy_paste()));
    }
    // Text and code editors.
    for name in [
        "gedit",
        "Kate",
        "Mousepad",
        "Leafpad",
        "Geany",
        "Sublime Text",
        "Atom",
        "Emacs (GUI)",
        "gVim",
        "Bluefish",
        "Brackets",
        "Scribes",
    ] {
        pool.push(AppSpec::new(name, Category::Productivity, copy_paste()));
    }
    // Media editors.
    for name in ["GIMP", "Inkscape", "Krita", "Blender", "Darktable", "Pinta"] {
        pool.push(AppSpec::new(name, Category::Productivity, copy_paste()));
    }
    // Browsers.
    for name in [
        "Firefox",
        "Chromium",
        "Chrome",
        "Opera",
        "Konqueror",
        "Midori",
    ] {
        pool.push(AppSpec::new(name, Category::Productivity, copy_paste()));
    }
    // Mail clients.
    for name in [
        "Thunderbird",
        "Evolution",
        "KMail",
        "Claws Mail",
        "Geary",
        "Sylpheed",
    ] {
        pool.push(AppSpec::new(name, Category::Productivity, copy_paste()));
    }
    // Terminal emulators.
    for name in [
        "xterm",
        "GNOME Terminal",
        "Konsole",
        "urxvt",
        "Terminator",
        "Xfce Terminal",
        "LXTerminal",
        "st",
    ] {
        pool.push(AppSpec::new(name, Category::Productivity, copy_paste()));
    }
    // Office helpers / viewers.
    for name in [
        "Evince", "Okular", "FBReader", "Calibre", "Zathura", "qpdfview",
    ] {
        pool.push(AppSpec::new(name, Category::Productivity, copy_paste()));
    }

    debug_assert_eq!(pool.len(), 50, "paper pool size");
    pool
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_corpus_has_58_apps_like_the_paper() {
        assert_eq!(device_corpus().len(), 58);
    }

    #[test]
    fn clipboard_corpus_has_50_apps_like_the_paper() {
        assert_eq!(clipboard_corpus().len(), 50);
    }

    #[test]
    fn names_are_unique_within_each_pool() {
        // (Browsers legitimately appear in both pools with different
        // behavior specs.)
        for pool in [device_corpus(), clipboard_corpus()] {
            let names: Vec<String> = pool.iter().map(|a| a.name.clone()).collect();
            let mut deduped = names.clone();
            deduped.sort();
            deduped.dedup();
            assert_eq!(deduped.len(), names.len());
        }
    }

    #[test]
    fn skype_probes_camera_on_launch() {
        let skype = device_corpus()
            .into_iter()
            .find(|a| a.name == "Skype")
            .unwrap();
        assert!(skype
            .accesses
            .iter()
            .any(|a| matches!(a.trigger, Trigger::OnLaunch) && a.expect == Expectation::Blocked));
    }

    #[test]
    fn delayed_screenshot_tools_expect_blocks() {
        let delayed: Vec<AppSpec> = device_corpus()
            .into_iter()
            .filter(|a| a.name.contains("delayed"))
            .collect();
        assert_eq!(delayed.len(), 2);
        for app in delayed {
            assert!(app
                .accesses
                .iter()
                .all(|a| matches!(a.trigger, Trigger::DelayedAfterClick(_))
                    && a.expect == Expectation::Blocked));
        }
    }

    #[test]
    fn corpus_covers_every_trigger_pattern() {
        let pool = device_corpus();
        let has = |f: &dyn Fn(&Trigger) -> bool| {
            pool.iter()
                .any(|a| a.accesses.iter().any(|x| f(&x.trigger)))
        };
        assert!(has(&|t| matches!(t, Trigger::OnLaunch)));
        assert!(has(&|t| matches!(t, Trigger::OnClick)));
        assert!(has(&|t| matches!(t, Trigger::DelayedAfterClick(_))));
        assert!(has(&|t| matches!(t, Trigger::ViaChildProcess)));
        assert!(has(&|t| matches!(t, Trigger::ViaCli)));
        for kind in [
            IpcKind::Pipe,
            IpcKind::Socket,
            IpcKind::SharedMemory,
            IpcKind::MessageQueue,
        ] {
            assert!(
                has(&|t| matches!(t, Trigger::ViaIpc(k) if *k == kind)),
                "{kind:?}"
            );
        }
    }
}
