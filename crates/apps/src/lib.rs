//! Simulated application corpus, malware samples, and workload generators
//! for the Overhaul evaluation.
//!
//! * [`behavior`] — the application behavior model ([`behavior::AppSpec`])
//!   and the generic session driver used by the applicability study;
//! * [`corpus`] — the paper's §V-C pools: 58 device/screen applications and
//!   50 clipboard applications;
//! * [`malware`] — the §V-D information-stealing spyware and the active
//!   bypass attacks (input forgery, clipboard protocol bypass, ptrace
//!   injection);
//! * [`workload`] — the 21-day interactive usage generator driving the
//!   protected-vs-unprotected comparison;
//! * [`dbus`] — a message bus layered on kernel IPC, demonstrating that
//!   higher-level IPC "built on these OS primitives (are) automatically
//!   covered" (and its over-approximation through shared daemons);
//! * [`campaign`] — multi-stage, multi-process adversarial campaigns with
//!   per-stage expectations (including documented bypasses) and the
//!   attack-class × mechanism defense matrix.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod behavior;
pub mod campaign;
pub mod corpus;
pub mod dbus;
pub mod malware;
pub mod workload;

pub use behavior::{
    run_session, Access, AppSpec, Category, Expectation, IpcKind, ResourceKind, SessionOutcome,
    Trigger,
};
pub use campaign::{
    catalog, outcome_granted, run_campaign, AttackClass, Campaign, CampaignDriver, CampaignKind,
    CampaignReport, DefenseMatrix, Stage, StageAction, StageVerdict,
};
pub use malware::{CycleLoot, Spyware};
pub use workload::{run_empirical_experiment, EmpiricalReport, WorkloadConfig, CLIPBOARD_SECRETS};
