//! A minimal D-Bus-style message bus built on kernel IPC primitives.
//!
//! §IV-B: "Higher-level IPC mechanisms that are built on these OS
//! primitives (e.g., D-Bus) are also automatically covered." This module
//! verifies that claim constructively: a bus daemon routes method calls
//! between clients over POSIX message queues, and interaction timestamps
//! flow *through the daemon* to the method handler with no bus-specific
//! support in Overhaul.
//!
//! It also documents the flip side (tested below): because the daemon
//! adopts every sender's timestamp and embeds its own on every route, a
//! busy bus *over-approximates* — a recently-used daemon can hand a fresh
//! timestamp to an unrelated recipient. This is inherent to the paper's
//! black-box design (§III-E discusses the coarser guarantees) and is the
//! kind of gray-box refinement its future work proposes.

use std::collections::BTreeMap;

use overhaul_core::System;
use overhaul_kernel::error::{Errno, SysResult};
use overhaul_kernel::ipc::msgqueue::MsgqId;
use overhaul_sim::Pid;

/// A well-known bus name ("org.freedesktop.PowerManagement").
pub type BusName = String;

struct Registration {
    pid: Pid,
    /// Daemon → client queue.
    inbox: MsgqId,
}

/// The bus daemon and its routing table.
pub struct MessageBus {
    daemon: Pid,
    /// Client → daemon queue.
    daemon_inbox: MsgqId,
    registrations: BTreeMap<BusName, Registration>,
}

impl std::fmt::Debug for MessageBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MessageBus")
            .field("daemon", &self.daemon)
            .field("names", &self.registrations.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl MessageBus {
    /// Starts the bus daemon process and its inbound queue.
    ///
    /// # Errors
    ///
    /// Kernel spawn errors.
    pub fn start(system: &mut System) -> SysResult<Self> {
        let daemon = system.spawn_process(None, "/usr/bin/dbus-daemon")?;
        let daemon_inbox = {
            let kernel = system.kernel_mut();
            let q = kernel.sys_mq_open(daemon, "/dbus-daemon-inbox")?;
            match kernel.tasks().get(daemon)?.fd(q) {
                Some(overhaul_kernel::task::FileDescription::MessageQueue { queue }) => queue,
                _ => return Err(Errno::Einval),
            }
        };
        Ok(MessageBus {
            daemon,
            daemon_inbox,
            registrations: BTreeMap::new(),
        })
    }

    /// The daemon's pid.
    pub fn daemon(&self) -> Pid {
        self.daemon
    }

    /// Registers `pid` under a well-known bus name.
    ///
    /// # Errors
    ///
    /// [`Errno::Eexist`] if the name is taken; kernel errors otherwise.
    pub fn register(&mut self, system: &mut System, name: &str, pid: Pid) -> SysResult<()> {
        if self.registrations.contains_key(name) {
            return Err(Errno::Eexist);
        }
        let kernel = system.kernel_mut();
        let fd = kernel.sys_mq_open(pid, &format!("/dbus-{name}"))?;
        let inbox = match kernel.tasks().get(pid)?.fd(fd) {
            Some(overhaul_kernel::task::FileDescription::MessageQueue { queue }) => queue,
            _ => return Err(Errno::Einval),
        };
        self.registrations
            .insert(name.to_string(), Registration { pid, inbox });
        Ok(())
    }

    /// One method call: `from` sends `payload` addressed to `to_name`; the
    /// daemon reads, looks up the destination, and forwards; the
    /// destination reads it. Returns the destination pid.
    ///
    /// Timestamp flow (all standard P2, no bus-specific code):
    /// sender → daemon inbox (embed), daemon (adopt) → destination inbox
    /// (embed), destination (adopt).
    ///
    /// # Errors
    ///
    /// [`Errno::Enoent`] for unknown destinations; kernel errors otherwise.
    pub fn call(
        &mut self,
        system: &mut System,
        from: Pid,
        to_name: &str,
        payload: &[u8],
    ) -> SysResult<Pid> {
        let destination = self
            .registrations
            .get(to_name)
            .map(|r| (r.pid, r.inbox))
            .ok_or(Errno::Enoent)?;
        let kernel = system.kernel_mut();
        // Wire format: "name\0payload" — the daemon parses the header.
        let mut frame = to_name.as_bytes().to_vec();
        frame.push(0);
        frame.extend_from_slice(payload);
        kernel.sys_msgsnd(from, self.daemon_inbox, 1, &frame)?;
        // Daemon routes.
        let routed = kernel.sys_msgrcv(self.daemon, self.daemon_inbox, 1)?;
        let separator = routed
            .data
            .iter()
            .position(|b| *b == 0)
            .ok_or(Errno::Einval)?;
        let body = routed.data[separator + 1..].to_vec();
        kernel.sys_msgsnd(self.daemon, destination.1, 1, &body)?;
        // Destination receives.
        kernel.sys_msgrcv(destination.0, destination.1, 1)?;
        Ok(destination.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overhaul_core::Gui;
    use overhaul_sim::SimDuration;
    use overhaul_xserver::geometry::Rect;

    fn gui(system: &mut System, exe: &str, x: i32) -> Gui {
        let gui = system
            .launch_gui_app(exe, Rect::new(x, 0, 100, 100))
            .unwrap();
        system.settle();
        gui
    }

    #[test]
    fn method_call_carries_interaction_through_the_daemon() {
        let mut system = System::protected();
        let mut bus = MessageBus::start(&mut system).unwrap();
        let ui = gui(&mut system, "/usr/bin/settings-ui", 0);
        let media = system
            .spawn_process(None, "/usr/bin/media-service")
            .unwrap();
        bus.register(&mut system, "org.example.Media", media)
            .unwrap();
        // The media service idles; on its own it has no camera access.
        system.advance(SimDuration::from_secs(30));
        assert!(system.open_device(media, "/dev/video0").is_err());
        // The user clicks the UI, which calls StartRecording over the bus.
        system.click_window(ui.window);
        bus.call(&mut system, ui.pid, "org.example.Media", b"StartRecording")
            .unwrap();
        assert!(
            system.open_device(media, "/dev/video0").is_ok(),
            "two queue hops through the daemon still propagate (P2 is transitive)"
        );
    }

    #[test]
    fn call_without_interaction_grants_nothing() {
        let mut system = System::protected();
        let mut bus = MessageBus::start(&mut system).unwrap();
        let caller = system.spawn_process(None, "/usr/bin/cron-job").unwrap();
        let media = system
            .spawn_process(None, "/usr/bin/media-service")
            .unwrap();
        bus.register(&mut system, "org.example.Media", media)
            .unwrap();
        bus.call(&mut system, caller, "org.example.Media", b"StartRecording")
            .unwrap();
        assert!(system.open_device(media, "/dev/video0").is_err());
    }

    #[test]
    fn unknown_destination_is_enoent() {
        let mut system = System::protected();
        let mut bus = MessageBus::start(&mut system).unwrap();
        let caller = system.spawn_process(None, "/usr/bin/app").unwrap();
        assert_eq!(
            bus.call(&mut system, caller, "org.example.Ghost", b"x")
                .err(),
            Some(Errno::Enoent)
        );
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut system = System::protected();
        let mut bus = MessageBus::start(&mut system).unwrap();
        let a = system.spawn_process(None, "/usr/bin/a").unwrap();
        let b = system.spawn_process(None, "/usr/bin/b").unwrap();
        bus.register(&mut system, "org.example.Svc", a).unwrap();
        assert_eq!(
            bus.register(&mut system, "org.example.Svc", b).err(),
            Some(Errno::Eexist)
        );
    }

    /// The documented over-approximation: the daemon's adopted timestamp
    /// leaks into *every* subsequent route, so an unrelated recipient can
    /// be armed by someone else's interaction. Black-box P2 is transitive
    /// and cannot distinguish bus payloads (§III-E's weaker guarantee).
    #[test]
    fn bus_daemon_overapproximates_across_clients() {
        let mut system = System::protected();
        let mut bus = MessageBus::start(&mut system).unwrap();
        let ui = gui(&mut system, "/usr/bin/settings-ui", 0);
        let media = system
            .spawn_process(None, "/usr/bin/media-service")
            .unwrap();
        let logger = system
            .spawn_process(None, "/usr/bin/logger-service")
            .unwrap();
        let idle = system.spawn_process(None, "/usr/bin/idle-caller").unwrap();
        bus.register(&mut system, "org.example.Media", media)
            .unwrap();
        bus.register(&mut system, "org.example.Logger", logger)
            .unwrap();
        // Interactive call arms the daemon...
        system.click_window(ui.window);
        bus.call(&mut system, ui.pid, "org.example.Media", b"StartRecording")
            .unwrap();
        // ...and an immediate unrelated route hands the timestamp onward.
        bus.call(&mut system, idle, "org.example.Logger", b"Rotate")
            .unwrap();
        assert!(
            system.open_device(logger, "/dev/snd/mic0").is_ok(),
            "transitive over-approximation through the shared daemon"
        );
    }
}
