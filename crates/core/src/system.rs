//! The assembled Overhaul machine: kernel + display manager + wiring.
//!
//! [`System`] owns one simulated kernel and one simulated X server sharing
//! a virtual clock, connects them over the authenticated netlink channel,
//! and exposes the operations experiment harnesses need: launching
//! processes and GUI apps, injecting hardware input, issuing X requests,
//! opening devices, and pumping kernel alert pushes onto the overlay.

use std::fmt;

use overhaul_kernel::error::{Errno, SysResult};
use overhaul_kernel::netlink::{ChannelState, ConnId, KernelPush, NetlinkError};
use overhaul_kernel::syscall::OpenMode;
use overhaul_kernel::{Kernel, XORG_PATH};
use overhaul_sim::snapshot::{fnv1a64, Dec, Enc, Pack, Snapshot, SnapshotError};
use overhaul_sim::{
    AuditCategory, AuditLog, Clock, ControlPlane, FaultPlan, Fd, Ledger, LedgerError, Mechanism,
    Pid, SimDuration, SketchBook, Sketches, Timestamp, Tracer,
};
use overhaul_xserver::geometry::{Point, Rect};
use overhaul_xserver::overlay::Alert;
use overhaul_xserver::protocol::{ClientId, Reply, Request, XError};
use overhaul_xserver::window::WindowId;
use overhaul_xserver::XServer;

use crate::config::OverhaulConfig;
use crate::integrated::DirectMonitorLink;
use crate::link::NetlinkMonitorLink;

/// Handles to a launched GUI application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gui {
    /// Kernel process.
    pub pid: Pid,
    /// X client connection.
    pub client: ClientId,
    /// The app's (mapped) main window.
    pub window: WindowId,
}

/// Why a machine failed to boot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BootError {
    /// Spawning the display-manager process failed.
    Spawn(Errno),
    /// The netlink channel could not authenticate, even after bounded
    /// retries of transient failures.
    ChannelAuth(NetlinkError),
}

impl fmt::Display for BootError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BootError::Spawn(errno) => {
                write!(f, "spawning the display manager failed: {errno}")
            }
            BootError::ChannelAuth(err) => {
                write!(f, "netlink channel authentication failed: {err}")
            }
        }
    }
}

impl std::error::Error for BootError {}

/// A complete simulated machine.
#[derive(Debug)]
pub struct System {
    clock: Clock,
    kernel: Kernel,
    x: XServer,
    x_pid: Pid,
    x_conn: Option<ConnId>,
    config: OverhaulConfig,
    fault: Option<FaultPlan>,
    /// Shared span tracer. Disabled unless `config.tracing`; clones of this
    /// handle live inside the kernel and the display manager, all writing
    /// into one buffer so `trace_dump` shows the interleaved span tree.
    tracer: Tracer,
    /// Shared latency-sketch book (the observability plane). Always
    /// recording — the deterministic plane is a pure function of the event
    /// sequence, and the wall plane is head-sampled on the hot path. A
    /// clone lives inside the kernel; the book rides in the snapshot's aux
    /// section like the tracer buffer (restored verbatim, never hashed).
    sketches: Sketches,
}

impl System {
    /// How many times boot (and restart) retries a transiently failing
    /// channel authentication before giving up.
    const BOOT_AUTH_ATTEMPTS: u32 = 4;

    /// Boots a machine with `config`: kernel, devices, X server process,
    /// and — when Overhaul is active — the authenticated netlink channel.
    ///
    /// # Panics
    ///
    /// Panics if boot fails; use [`System::try_new`] to handle
    /// [`BootError`] instead.
    pub fn new(config: OverhaulConfig) -> Self {
        System::try_new(config).unwrap_or_else(|err| panic!("boot failed: {err}"))
    }

    /// Boots a machine with `config`, reporting failures instead of
    /// panicking: a dead init, or a channel that cannot authenticate even
    /// after bounded retries (e.g. under an injected VFS fault plan).
    ///
    /// # Errors
    ///
    /// [`BootError::Spawn`] when the display-manager process cannot be
    /// created; [`BootError::ChannelAuth`] when channel authentication
    /// keeps failing.
    pub fn try_new(config: OverhaulConfig) -> Result<Self, BootError> {
        let clock = Clock::new();
        let tracer = if config.tracing {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        };
        let mut kernel = Kernel::new(clock.clone(), config.kernel.clone());
        kernel.install_tracer(tracer.clone());
        let sketches = Sketches::new();
        kernel.install_sketches(sketches.clone());
        let fault = config.fault.clone().map(FaultPlan::new);
        if let Some(plan) = &fault {
            kernel.install_fault_plan(plan.clone());
        }
        for device in &config.devices {
            kernel.attach_device(device.class, &device.label, &device.path);
        }
        let x_pid = kernel
            .sys_spawn(Pid::INIT, XORG_PATH)
            .map_err(BootError::Spawn)?;
        // An integrated display manager is kernel code: no channel exists.
        let wants_channel =
            !config.integrated_dm && (config.kernel.overhaul_enabled || config.x.overhaul_enabled);
        let x_conn = if wants_channel {
            // With a channel-wired display manager the monitor must fail
            // closed whenever that channel is down.
            kernel.set_channel_required(true);
            Some(Self::connect_channel(&clock, &mut kernel, x_pid)?)
        } else {
            None
        };
        let mut x = XServer::new(clock.clone(), config.x.clone());
        x.install_tracer(tracer.clone());
        Ok(System {
            clock,
            kernel,
            x,
            x_pid,
            x_conn,
            config,
            fault,
            tracer,
            sketches,
        })
    }

    /// Authenticates the display manager's netlink connection, retrying
    /// transient failures a bounded number of times with exponential
    /// virtual-time backoff.
    fn connect_channel(
        clock: &Clock,
        kernel: &mut Kernel,
        x_pid: Pid,
    ) -> Result<ConnId, BootError> {
        let backoff = kernel.config().channel_retry_backoff;
        let mut attempt = 0u32;
        loop {
            match kernel.netlink_connect(x_pid) {
                Ok(conn) => return Ok(conn),
                Err(NetlinkError::AuthTransient) if attempt + 1 < Self::BOOT_AUTH_ATTEMPTS => {
                    attempt += 1;
                    clock.advance(SimDuration::from_millis(
                        backoff.as_millis() << (attempt - 1),
                    ));
                }
                Err(err) => return Err(BootError::ChannelAuth(err)),
            }
        }
    }

    /// Boots the paper's protected configuration.
    pub fn protected() -> Self {
        System::new(OverhaulConfig::protected())
    }

    /// Boots an unmodified (baseline) machine.
    pub fn baseline() -> Self {
        System::new(OverhaulConfig::baseline())
    }

    /// Boots the Table I grant-all measurement configuration.
    pub fn grant_all() -> Self {
        System::new(OverhaulConfig::grant_all())
    }

    /// Boots a protected machine with a kernel-integrated display manager
    /// (the §III design variant: no netlink channel).
    pub fn integrated() -> Self {
        System::new(OverhaulConfig::integrated())
    }

    /// Runs `f` with the display manager and the wiring-appropriate
    /// monitor link (netlink, in-process, or grant-all for baselines).
    fn with_link<R>(
        &mut self,
        f: impl FnOnce(&mut XServer, &mut dyn overhaul_xserver::protocol::MonitorLink) -> R,
    ) -> R {
        if self.config.integrated_dm {
            let mut link = DirectMonitorLink::new(&mut self.kernel);
            f(&mut self.x, &mut link)
        } else if let Some(conn) = self.x_conn {
            let mut link = NetlinkMonitorLink::new(&mut self.kernel, conn);
            f(&mut self.x, &mut link)
        } else if self.config.overhaul_enabled() {
            // Overhaul is on but the channel is gone (display-manager
            // crash): losing the channel must never widen access.
            let mut link = overhaul_xserver::protocol::DenyAllLink;
            f(&mut self.x, &mut link)
        } else {
            let mut link = overhaul_xserver::protocol::GrantAllLink;
            f(&mut self.x, &mut link)
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &OverhaulConfig {
        &self.config
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Current virtual time.
    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// Advances virtual time and runs kernel housekeeping (the shm wait
    /// list re-arm). If an installed fault plan scheduled a display-manager
    /// crash before `now`, the crash fires here.
    pub fn advance(&mut self, d: SimDuration) -> Timestamp {
        let now = self.clock.advance(d);
        let crash_due = self
            .fault
            .as_ref()
            .is_some_and(|plan| plan.x_crash_due(now));
        if crash_due && self.x_alive() {
            self.crash_x();
        }
        self.kernel.tick();
        now
    }

    /// The kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Mutable kernel access (syscalls).
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// The display manager.
    pub fn xserver(&self) -> &XServer {
        &self.x
    }

    /// Mutable display-manager access.
    pub fn xserver_mut(&mut self) -> &mut XServer {
        &mut self.x
    }

    /// The X server's kernel process.
    pub fn x_pid(&self) -> Pid {
        self.x_pid
    }

    /// The display manager's netlink connection, if one is up.
    pub fn x_conn(&self) -> Option<ConnId> {
        self.x_conn
    }

    /// Whether the display-manager process is currently running.
    pub fn x_alive(&self) -> bool {
        self.kernel.tasks().is_running(self.x_pid)
    }

    /// Health of the kernel↔display-manager channel.
    pub fn channel_state(&self) -> ChannelState {
        self.kernel.channel_state()
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// The kernel-side audit log.
    pub fn kernel_audit(&self) -> &AuditLog {
        self.kernel.audit()
    }

    /// The shared span tracer. Disabled (a no-op handle) unless the
    /// machine was booted with [`OverhaulConfig::with_tracing`].
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The shared latency-sketch handle (always recording; see the
    /// [`overhaul_sim::sketch`] module docs for the two-plane split).
    pub fn sketches(&self) -> &Sketches {
        &self.sketches
    }

    /// A point-in-time copy of the machine's sketch book.
    pub fn sketch_book(&self) -> SketchBook {
        self.sketches.book()
    }

    /// Stamps the machine's identity (its shard seed) into every exemplar
    /// it records from now on. Fleet harnesses call this right after boot.
    pub fn set_sketch_seed(&self, seed: u64) {
        self.sketches.set_seed(seed);
    }

    /// Installs an exemplar-confirmation watch: while the applied-event
    /// cursor equals `event_idx`, observations of any mechanism in `mechs`
    /// have their `(span id, ledger seq)` captured.
    pub fn sketch_watch(&self, mechs: Vec<Mechanism>, event_idx: u64) {
        self.sketches.set_watch(mechs, event_idx);
    }

    /// The coordinates captured by the current sketch watch.
    pub fn sketch_watched(&self) -> Vec<(u64, u64)> {
        self.sketches.watched()
    }

    /// Renders every span recorded so far as a deterministic JSON tree:
    /// the same configuration, seed, and workload produce byte-identical
    /// output. With tracing disabled this is the empty tree (`[]`).
    pub fn trace_dump(&self) -> String {
        self.tracer.render_json()
    }

    /// The unified metrics page, exactly as a process would read it from
    /// `/proc/overhaul/metrics`.
    pub fn metrics(&self) -> String {
        self.kernel.render_metrics()
    }

    /// The unified metrics as a structured registry (the same data behind
    /// [`System::metrics`]). Fleet harnesses merge these across shards
    /// instead of re-parsing rendered pages.
    pub fn metrics_registry(&self) -> overhaul_sim::MetricsRegistry {
        self.kernel.metrics_registry()
    }

    /// The display-manager audit log.
    pub fn x_audit(&self) -> &AuditLog {
        self.x.audit()
    }

    // ---------------------------------------------------------------
    // Authoritative ledger
    // ---------------------------------------------------------------

    /// The kernel's hash-chained ledger (the authoritative history the
    /// kernel audit log is projected from).
    pub fn kernel_ledger(&self) -> &Ledger {
        self.kernel.ledger()
    }

    /// The display manager's hash-chained ledger.
    pub fn x_ledger(&self) -> &Ledger {
        self.x.ledger()
    }

    /// A compact digest of the kernel's ledger (chain anchors, effect
    /// histogram, reduced control plane) — what a shard ships to the
    /// fleet's ledger aggregation/diff view.
    pub fn ledger_summary(&self) -> overhaul_sim::LedgerSummary {
        overhaul_sim::LedgerSummary::of(self.kernel.ledger())
    }

    /// The machine's sealed chain head: FNV-1a over the kernel and
    /// display-manager chain heads. Two machines with equal ledger heads
    /// recorded byte-identical histories.
    pub fn ledger_head(&self) -> u64 {
        let mut enc = Enc::new();
        self.kernel.ledger().head().pack(&mut enc);
        self.x.ledger().head().pack(&mut enc);
        fnv1a64(enc.bytes())
    }

    /// Chain-verifies both component ledgers.
    ///
    /// # Errors
    ///
    /// The first [`LedgerError`] found in either chain.
    pub fn verify_ledgers(&self) -> Result<(), LedgerError> {
        self.kernel.ledger().verify_chain()?;
        self.x.ledger().verify_chain()
    }

    /// The kernel's live control-plane state (policy switches, channel
    /// health, device map, quarantine set) — the reduction target the
    /// ledger must re-derive.
    pub fn control_plane(&self) -> ControlPlane {
        self.kernel.control_plane()
    }

    /// Re-derives the control-plane state by folding the kernel ledger's
    /// effects over the boot state. On an uncorrupted machine this is
    /// byte-identical (same [`ControlPlane::state_hash`]) to
    /// [`System::control_plane`]: control-plane state is verifiably a
    /// deterministic reduction of the ledger.
    pub fn reduce(&self) -> ControlPlane {
        self.kernel.ledger().reduce(ControlPlane::default())
    }

    // ---------------------------------------------------------------
    // Process / app lifecycle
    // ---------------------------------------------------------------

    /// Spawns a process running `exe` as a child of `parent`
    /// (init if `None`).
    ///
    /// # Errors
    ///
    /// Propagates kernel spawn errors.
    pub fn spawn_process(&mut self, parent: Option<Pid>, exe: &str) -> SysResult<Pid> {
        self.kernel.sys_spawn(parent.unwrap_or(Pid::INIT), exe)
    }

    /// Connects a process to the X server (the server learns the pid from
    /// kernel socket introspection, modeled here by the core doing the
    /// lookup).
    pub fn connect_x(&mut self, pid: Pid) -> ClientId {
        self.x.connect_client(pid)
    }

    /// Launches a GUI application: spawns the process, connects it to X,
    /// and creates + maps its main window. The window is *not* yet "stable"
    /// for the clickjacking gate; call [`System::settle`] before clicking.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors; X errors cannot occur for a fresh client.
    pub fn launch_gui_app(&mut self, exe: &str, rect: Rect) -> SysResult<Gui> {
        let pid = self.spawn_process(None, exe)?;
        let client = self.connect_x(pid);
        let window = match self.x_request(client, Request::CreateWindow { rect }) {
            Ok(Reply::Window(w)) => w,
            _ => unreachable!("CreateWindow on a fresh client cannot fail"),
        };
        let _ = self.x_request(client, Request::MapWindow { window });
        Ok(Gui {
            pid,
            client,
            window,
        })
    }

    /// Advances past the clickjacking visibility threshold so freshly
    /// mapped windows accept trusted input.
    pub fn settle(&mut self) {
        let threshold = self.config.x.visibility_threshold;
        self.advance(threshold + SimDuration::from_millis(1));
    }

    // ---------------------------------------------------------------
    // User input
    // ---------------------------------------------------------------

    /// A hardware click at screen coordinates.
    pub fn click_at(&mut self, p: Point) -> Option<WindowId> {
        let hit = self.with_link(|x, link| x.hardware_click(p, link));
        self.pump_alerts();
        hit
    }

    /// A hardware click on the center of `window`. Returns `false` if the
    /// click actually landed on another window (occlusion).
    pub fn click_window(&mut self, window: WindowId) -> bool {
        let Ok(rect) = self.x.windows().get(window).map(|w| w.rect()) else {
            return false;
        };
        let center = Point::new(
            rect.x + rect.width as i32 / 2,
            rect.y + rect.height as i32 / 2,
        );
        self.click_at(center) == Some(window)
    }

    /// A hardware key press (goes to the focus window).
    pub fn key(&mut self, ch: char) -> Option<WindowId> {
        let hit = self.with_link(|x, link| x.hardware_key(ch, link));
        self.pump_alerts();
        hit
    }

    // ---------------------------------------------------------------
    // Requests & devices
    // ---------------------------------------------------------------

    /// Issues an X request on behalf of `client`, with the kernel monitor
    /// wired in, then pumps any resulting alert pushes onto the overlay.
    ///
    /// # Errors
    ///
    /// The X server's protocol errors, including `BadAccess` for Overhaul
    /// denials.
    pub fn x_request(&mut self, client: ClientId, request: Request) -> Result<Reply, XError> {
        let result = self.with_link(|x, link| x.request(client, request, link));
        self.pump_alerts();
        result
    }

    /// Opens a device node on behalf of `pid` (read-only), pumping alerts.
    ///
    /// # Errors
    ///
    /// `EACCES` when Overhaul blocks the access, plus ordinary path errors.
    pub fn open_device(&mut self, pid: Pid, path: &str) -> SysResult<Fd> {
        let result = self.kernel.sys_open(pid, path, OpenMode::ReadOnly);
        self.pump_alerts();
        result
    }

    /// Opens a device under the §IV-A *prompt-based* policy variant: if
    /// the temporal-proximity check denies, an unforgeable prompt is shown
    /// on the trusted output path and `user_approves` models the user's
    /// hardware answer on the trusted input path. An approval is itself an
    /// authentic interaction, so the retried open succeeds.
    ///
    /// # Errors
    ///
    /// `EACCES` when the user denies the prompt (or a prompt was already
    /// pending); ordinary path errors otherwise.
    pub fn open_device_prompted(
        &mut self,
        pid: Pid,
        path: &str,
        user_approves: bool,
    ) -> SysResult<Fd> {
        match self.open_device(pid, path) {
            Ok(fd) => Ok(fd),
            Err(overhaul_kernel::error::Errno::Eacces) => {
                let process = self
                    .kernel
                    .tasks()
                    .get(pid)
                    .map(|t| t.name().to_string())
                    .unwrap_or_else(|_| "<unknown>".into());
                let op = if path.contains("video") { "cam" } else { "mic" };
                if self.x.ask_prompt(&process, op).is_none() {
                    return Err(overhaul_kernel::error::Errno::Eacces);
                }
                let answered = self.x.hardware_prompt_answer(user_approves);
                debug_assert!(answered.is_some());
                if !user_approves {
                    return Err(overhaul_kernel::error::Errno::Eacces);
                }
                // The hardware-verified approval is an authentic
                // interaction with (on behalf of) the requesting process.
                if let Some(conn) = self.x_conn {
                    let now = self.clock.now();
                    let _ = self.kernel.netlink_send(
                        conn,
                        overhaul_kernel::netlink::NetlinkMessage::InteractionNotification {
                            pid,
                            at: now,
                        },
                    );
                }
                self.open_device(pid, path)
            }
            Err(other) => Err(other),
        }
    }

    /// Feeds a batched mixed stream of interaction notifications and
    /// permission requests to the kernel ([`Kernel::ingest_batch`]), then
    /// pumps any alert pushes. Effects are byte-identical to issuing the
    /// same events one call at a time in the same order; the returned
    /// vector is aligned with the input (`Some` per request, `None` per
    /// interaction).
    pub fn ingest_batch(
        &mut self,
        events: &[overhaul_kernel::policy::IngestEvent],
    ) -> Vec<Option<overhaul_kernel::policy::DecisionOutcome>> {
        let outcomes = self.kernel.ingest_batch(events);
        self.pump_alerts();
        outcomes
    }

    /// Forwards pending kernel alert requests (`V_{A,op}`) to the display
    /// manager's overlay. Called automatically by the input/request/device
    /// helpers.
    pub fn pump_alerts(&mut self) {
        if self.config.integrated_dm {
            // Integrated display managers read the monitor queue directly.
            for alert in self.kernel.take_alerts_direct() {
                self.x.show_alert_detailed(
                    &alert.process_name,
                    &alert.op.to_string(),
                    alert.granted,
                    alert.reason.as_deref(),
                );
            }
            return;
        }
        let Some(conn) = self.x_conn else { return };
        let Ok(pushes) = self.kernel.netlink_take_pushes(conn) else {
            return;
        };
        for push in pushes {
            match push {
                KernelPush::DisplayAlert(alert) => {
                    self.x.show_alert_detailed(
                        &alert.process_name,
                        &alert.op.to_string(),
                        alert.granted,
                        alert.reason.as_deref(),
                    );
                }
            }
        }
    }

    // ---------------------------------------------------------------
    // Display-manager crash & recovery
    // ---------------------------------------------------------------

    /// Kills the display manager mid-run. The exit path eagerly invalidates
    /// its netlink connections (the channel transitions to *down*), and
    /// until [`System::restart_x`] succeeds every channel-dependent
    /// decision fails closed. Pending kernel alert pushes stay buffered
    /// kernel-side for replay. No-op if the display manager is already
    /// dead.
    pub fn crash_x(&mut self) {
        if !self.x_alive() {
            return;
        }
        // 139 = 128 + SIGSEGV, the classic display-server crash exit.
        let _ = self.kernel.sys_exit(self.x_pid, 139);
        self.x_conn = None;
        self.kernel.record_event(
            AuditCategory::ChannelEvent,
            Some(self.x_pid),
            "display manager crashed; channel severed",
        );
    }

    /// Restarts a crashed display manager: respawns the X server process,
    /// re-authenticates the netlink channel via VM-map introspection (with
    /// bounded retries of transient failures), and replays kernel-buffered
    /// alert pushes onto the overlay exactly once, marked as delayed.
    /// Returns the number of replayed alerts.
    ///
    /// # Errors
    ///
    /// [`BootError`] when the respawn or the re-authentication fails; the
    /// channel then stays down and the monitor keeps failing closed.
    pub fn restart_x(&mut self) -> Result<usize, BootError> {
        let x_pid = self
            .kernel
            .sys_spawn(Pid::INIT, XORG_PATH)
            .map_err(BootError::Spawn)?;
        self.x_pid = x_pid;
        let wants_channel = !self.config.integrated_dm && self.config.overhaul_enabled();
        if !wants_channel {
            self.x_conn = None;
            return Ok(0);
        }
        let conn = Self::connect_channel(&self.clock, &mut self.kernel, x_pid)?;
        self.x_conn = Some(conn);
        // Replay decisions made while the display manager was down. The
        // kernel's sequence-number dedup plus its push buffer guarantee
        // each alert reaches the overlay exactly once.
        let pushes = self.kernel.netlink_take_pushes(conn).unwrap_or_default();
        let mut replayed = 0;
        for push in pushes {
            match push {
                KernelPush::DisplayAlert(alert) => {
                    self.x.show_alert_replayed_detailed(
                        &alert.process_name,
                        &alert.op.to_string(),
                        alert.granted,
                        alert.reason.as_deref(),
                    );
                    replayed += 1;
                }
            }
        }
        Ok(replayed)
    }

    /// Alerts currently visible on the overlay.
    pub fn active_alerts(&self) -> Vec<&Alert> {
        self.x.alerts().active(self.clock.now())
    }

    /// Every alert shown so far.
    pub fn alert_history(&self) -> &[Alert] {
        self.x.alerts().history()
    }

    // ---------------------------------------------------------------
    // Checkpoint / restore
    // ---------------------------------------------------------------

    /// Serializes the machine's primary state (the hashed section of a
    /// snapshot): virtual time, configuration, display-manager identity,
    /// the fault-plan schedule and RNG position, and the full kernel and
    /// X-server state. Derived caches are excluded — restore rebuilds them.
    fn export_state(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        self.clock.now().pack(&mut enc);
        self.config.pack(&mut enc);
        self.x_pid.pack(&mut enc);
        self.x_conn.pack(&mut enc);
        match &self.fault {
            None => false.pack(&mut enc),
            Some(plan) => {
                true.pack(&mut enc);
                plan.export(&mut enc);
            }
        }
        self.kernel.export_snapshot(&mut enc);
        self.x.export_snapshot(&mut enc);
        enc.into_bytes()
    }

    /// Serializes the aux section: observability state that restores
    /// verbatim but is deliberately excluded from [`System::state_hash`]
    /// (the tracer's span buffer and the kernel metrics registry).
    fn export_aux(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        self.tracer.export(&mut enc);
        self.kernel.export_metrics_snapshot(&mut enc);
        self.sketches.export(&mut enc);
        enc.into_bytes()
    }

    /// Canonical hash of the machine's primary state: FNV-1a over the
    /// serialized state section. Two machines with equal hashes decide,
    /// trace, and evolve identically from here on.
    pub fn state_hash(&self) -> u64 {
        fnv1a64(&self.export_state())
    }

    /// Checkpoints the machine into a versioned [`Snapshot`]. The exported
    /// byte count is credited to the kernel's snapshot counters (aux state,
    /// so taking a checkpoint never perturbs [`System::state_hash`]).
    pub fn snapshot(&mut self) -> Snapshot {
        let t0 = std::time::Instant::now();
        let state = self.export_state();
        let aux = self.export_aux();
        self.kernel.note_snapshot_bytes(state.len() as u64);
        let snapshot = Snapshot::new(state, aux);
        // Recorded after the export so the observation is not baked into
        // the snapshot it measures (the aux book stays a prefix of the
        // live one).
        self.sketches.record(
            Mechanism::SnapshotExport,
            0,
            t0.elapsed().as_nanos() as u64,
            0,
            self.kernel.ledger().next_seq().saturating_sub(1),
        );
        snapshot
    }

    /// Rebuilds a machine from a snapshot.
    ///
    /// Derived caches (the kernel's verdict cache, `explain_last`, and the
    /// channel's duplicate-suppression sets) are rebuilt empty rather than
    /// restored — a restore therefore doubles as a cache-coherence check:
    /// any divergence a cold cache could cause shows up as a
    /// [`System::state_hash`] or [`System::trace_dump`] mismatch in the
    /// replay-determinism suite.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] from a truncated or corrupt snapshot.
    pub fn from_snapshot(snapshot: &Snapshot) -> Result<System, SnapshotError> {
        // Aux first: the shared tracer handle feeds the kernel and X
        // imports so all three write into one restored span buffer.
        let mut aux = Dec::new(snapshot.aux());
        let tracer = Tracer::import(&mut aux)?;
        let mut dec = Dec::new(snapshot.state());
        let now = Timestamp::unpack(&mut dec)?;
        let config = OverhaulConfig::unpack(&mut dec)?;
        let x_pid = Pid::unpack(&mut dec)?;
        let x_conn = Option::<ConnId>::unpack(&mut dec)?;
        let fault = if bool::unpack(&mut dec)? {
            Some(FaultPlan::import(&mut dec)?)
        } else {
            None
        };
        let clock = Clock::starting_at(now);
        let mut kernel =
            Kernel::import_snapshot(&mut dec, clock.clone(), tracer.clone(), fault.clone())?;
        let x = XServer::import_snapshot(&mut dec, clock.clone(), tracer.clone())?;
        dec.finish()?;
        kernel.import_metrics_snapshot(&mut aux)?;
        let sketches = Sketches::import(&mut aux)?;
        kernel.install_sketches(sketches.clone());
        aux.finish()?;
        Ok(System {
            clock,
            kernel,
            x,
            x_pid,
            x_conn,
            config,
            fault,
            tracer,
            sketches,
        })
    }

    /// Restores this machine in place from a snapshot (rollback). The
    /// instance-lifetime snapshot counters survive the restore and keep
    /// accumulating.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] from a truncated or corrupt snapshot; on
    /// error the machine is left unchanged.
    pub fn restore(&mut self, snapshot: &Snapshot) -> Result<(), SnapshotError> {
        let t0 = std::time::Instant::now();
        let prior = self.kernel.snapshot_stats();
        let mut restored = System::from_snapshot(snapshot)?;
        restored.kernel.absorb_snapshot_stats(prior);
        *self = restored;
        // Into the restored book: the rollback's cost is an observation of
        // the machine that lives on, not of the discarded instance.
        self.sketches.record(
            Mechanism::SnapshotRestore,
            0,
            t0.elapsed().as_nanos() as u64,
            0,
            self.kernel.ledger().next_seq().saturating_sub(1),
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overhaul_kernel::error::Errno;
    use overhaul_sim::AuditCategory;

    fn gui(system: &mut System, exe: &str, x: i32) -> Gui {
        let gui = system
            .launch_gui_app(exe, Rect::new(x, 0, 100, 100))
            .expect("launch");
        system.settle();
        gui
    }

    #[test]
    fn figure1_end_to_end_mic_access() {
        let mut system = System::protected();
        let app = gui(&mut system, "/usr/bin/recorder", 0);
        // (1) user clicks the app; (2) notification; (3) event delivered.
        assert!(system.click_window(app.window));
        // (4–5) app opens the mic within δ: granted.
        system.advance(SimDuration::from_millis(200));
        let fd = system
            .open_device(app.pid, "/dev/snd/mic0")
            .expect("granted");
        // (6) the user sees an alert on the trusted overlay.
        assert_eq!(system.alert_history().len(), 1);
        assert!(system.alert_history()[0].granted);
        assert_eq!(system.alert_history()[0].op, "mic");
        // The device works.
        let sample = system.kernel_mut().sys_read(app.pid, fd, 64).unwrap();
        assert!(sample.starts_with(b"pcm:"));
    }

    #[test]
    fn background_process_is_blocked_with_alert() {
        let mut system = System::protected();
        let spy = system.spawn_process(None, "/usr/bin/spy").unwrap();
        assert_eq!(system.open_device(spy, "/dev/video0"), Err(Errno::Eacces));
        assert_eq!(system.alert_history().len(), 1);
        assert!(!system.alert_history()[0].granted);
        assert!(system.alert_history()[0]
            .render()
            .contains("was blocked from"));
    }

    #[test]
    fn expired_interaction_denies_device() {
        let mut system = System::protected();
        let app = gui(&mut system, "/usr/bin/recorder", 0);
        system.click_window(app.window);
        system.advance(SimDuration::from_secs(3));
        assert_eq!(
            system.open_device(app.pid, "/dev/snd/mic0"),
            Err(Errno::Eacces)
        );
    }

    #[test]
    fn baseline_system_has_no_mediation_or_alerts() {
        let mut system = System::baseline();
        let spy = system.spawn_process(None, "/usr/bin/spy").unwrap();
        assert!(system.open_device(spy, "/dev/video0").is_ok());
        assert!(system.alert_history().is_empty());
    }

    #[test]
    fn key_events_route_through_focus_and_notify() {
        let mut system = System::protected();
        let app = gui(&mut system, "/usr/bin/editor", 0);
        system
            .x_request(app.client, Request::SetInputFocus { window: app.window })
            .unwrap();
        assert_eq!(system.key('v'), Some(app.window));
        assert_eq!(
            system
                .x_audit()
                .count(AuditCategory::InteractionNotification),
            1
        );
        // The keystroke correlates a subsequent device open.
        assert!(system.open_device(app.pid, "/dev/snd/mic0").is_ok());
    }

    #[test]
    fn overlapping_apps_click_lands_on_top() {
        let mut system = System::protected();
        let below = gui(&mut system, "/usr/bin/below", 0);
        let above = gui(&mut system, "/usr/bin/above", 0); // same rect, later map → on top
        assert!(
            !system.click_window(below.window),
            "occluded window cannot be clicked"
        );
        assert!(system.click_window(above.window));
        // Only the top app gained interaction credit.
        assert!(system.open_device(above.pid, "/dev/snd/mic0").is_ok());
        assert_eq!(
            system.open_device(below.pid, "/dev/video0"),
            Err(Errno::Eacces)
        );
    }

    #[test]
    fn advance_ticks_kernel_housekeeping() {
        let mut system = System::protected();
        let a = system.spawn_process(None, "/usr/bin/a").unwrap();
        let shm = system.kernel_mut().sys_shm_open(a, "/seg", 1).unwrap();
        let vma = system.kernel_mut().sys_shmat(a, shm).unwrap();
        system.kernel_mut().sys_shm_write(a, vma, 0, b"x").unwrap();
        let faults_before = system.kernel().mm_stats().faults;
        system.advance(SimDuration::from_millis(600));
        system.kernel_mut().sys_shm_write(a, vma, 0, b"y").unwrap();
        assert_eq!(
            system.kernel().mm_stats().faults,
            faults_before + 1,
            "re-armed after wait"
        );
    }

    #[test]
    fn prompt_mode_approval_grants_access() {
        let mut system = System::protected();
        let app = gui(&mut system, "/usr/bin/recorder", 0);
        // No click: the plain open would be denied, but the user approves
        // the unforgeable prompt.
        let fd = system
            .open_device_prompted(app.pid, "/dev/snd/mic0", true)
            .expect("approved prompt grants");
        assert!(system.kernel_mut().sys_read(app.pid, fd, 8).is_ok());
        assert_eq!(system.xserver().prompts().history().len(), 1);
        assert!(system.xserver().prompts().history()[0]
            .render()
            .starts_with("[cat.png]"));
    }

    #[test]
    fn prompt_mode_denial_blocks_access() {
        let mut system = System::protected();
        let app = gui(&mut system, "/usr/bin/recorder", 0);
        assert_eq!(
            system.open_device_prompted(app.pid, "/dev/video0", false),
            Err(Errno::Eacces)
        );
        assert_eq!(system.xserver().prompts().history().len(), 1);
    }

    #[test]
    fn prompt_skipped_when_proximity_already_grants() {
        let mut system = System::protected();
        let app = gui(&mut system, "/usr/bin/recorder", 0);
        system.click_window(app.window);
        system.advance(SimDuration::from_millis(100));
        system
            .open_device_prompted(app.pid, "/dev/snd/mic0", false)
            .expect("no prompt needed");
        assert_eq!(
            system.xserver().prompts().asked_count(),
            0,
            "transparent when input-driven"
        );
    }

    #[test]
    fn prompt_approval_is_per_process() {
        let mut system = System::protected();
        let app = gui(&mut system, "/usr/bin/recorder", 0);
        let other = system.spawn_process(None, "/usr/bin/other").unwrap();
        system
            .open_device_prompted(app.pid, "/dev/snd/mic0", true)
            .unwrap();
        assert_eq!(
            system.open_device(other, "/dev/snd/mic0"),
            Err(Errno::Eacces),
            "an approval must not leak to other processes"
        );
    }

    #[test]
    fn integrated_dm_enforces_the_same_policy() {
        for mut system in [System::protected(), System::integrated()] {
            let app = gui(&mut system, "/usr/bin/recorder", 0);
            assert_eq!(
                system.open_device(app.pid, "/dev/snd/mic0"),
                Err(Errno::Eacces),
                "deny by default in both wirings"
            );
            system.click_window(app.window);
            system.advance(SimDuration::from_millis(100));
            assert!(system.open_device(app.pid, "/dev/snd/mic0").is_ok());
            system.advance(SimDuration::from_secs(3));
            assert_eq!(
                system.open_device(app.pid, "/dev/snd/mic0"),
                Err(Errno::Eacces)
            );
        }
    }

    #[test]
    fn integrated_dm_has_no_netlink_channel_but_alerts_work() {
        let mut system = System::integrated();
        assert!(
            system.x_conn.is_none(),
            "integrated DM must not open a channel"
        );
        let spy = system.spawn_process(None, "/usr/bin/.spy").unwrap();
        assert_eq!(system.open_device(spy, "/dev/video0"), Err(Errno::Eacces));
        assert_eq!(
            system.alert_history().len(),
            1,
            "alerts flow without netlink"
        );
        assert!(!system.alert_history()[0].granted);
    }

    #[test]
    fn x_process_exists_in_kernel() {
        let system = System::protected();
        let task = system.kernel().tasks().get(system.x_pid()).unwrap();
        assert_eq!(task.exe_path(), XORG_PATH);
    }

    #[test]
    fn crash_fails_closed_even_with_fresh_credit() {
        let mut system = System::protected();
        let app = gui(&mut system, "/usr/bin/recorder", 0);
        system.click_window(app.window);
        system.crash_x();
        assert!(!system.x_alive());
        assert_eq!(system.channel_state(), ChannelState::Down);
        system.advance(SimDuration::from_millis(10));
        // The click was within δ, but the channel is down: fail closed.
        assert_eq!(
            system.open_device(app.pid, "/dev/snd/mic0"),
            Err(Errno::Eacces)
        );
        assert!(system.kernel().monitor_stats().fail_closed_denies >= 1);
        assert!(
            system.kernel_audit().matching("channel down").count() >= 1,
            "fail-closed denial must be audited"
        );
    }

    #[test]
    fn crash_x_twice_is_a_noop() {
        let mut system = System::protected();
        system.crash_x();
        let events = system.kernel_audit().len();
        system.crash_x();
        assert_eq!(system.kernel_audit().len(), events);
    }

    #[test]
    fn restart_reconnects_and_replays_buffered_alerts_once() {
        let mut system = System::protected();
        let app = gui(&mut system, "/usr/bin/recorder", 0);
        system.crash_x();
        // A denied open while down queues an alert nobody can display.
        assert_eq!(
            system.open_device(app.pid, "/dev/snd/mic0"),
            Err(Errno::Eacces)
        );
        assert_eq!(system.alert_history().len(), 0, "no overlay while down");
        assert_eq!(system.kernel().pending_push_count(), 1);

        let replayed = system.restart_x().expect("restart succeeds");
        assert_eq!(replayed, 1);
        assert_eq!(system.channel_state(), ChannelState::Up);
        assert_eq!(system.kernel().monitor_stats().channel_reconnects, 1);
        assert_eq!(system.alert_history().len(), 1);
        assert!(system.alert_history()[0].replayed);
        assert!(system.alert_history()[0].render().ends_with("(delayed)"));

        // Pumping again must not duplicate the replayed alert.
        system.pump_alerts();
        assert_eq!(system.alert_history().len(), 1);
        assert_eq!(system.kernel().pending_push_count(), 0);
    }

    #[test]
    fn input_during_crash_grants_no_credit() {
        let mut system = System::protected();
        let app = gui(&mut system, "/usr/bin/recorder", 0);
        system.crash_x();
        // The (dying) display manager still sees the click, but with no
        // channel the deny-all link drops the notification.
        system.click_window(app.window);
        system.restart_x().expect("restart succeeds");
        system.advance(SimDuration::from_millis(10));
        assert_eq!(
            system.open_device(app.pid, "/dev/snd/mic0"),
            Err(Errno::Eacces),
            "a notification lost to the crash must not turn into credit"
        );
    }

    #[test]
    fn scheduled_crash_fires_during_advance() {
        let config = OverhaulConfig::protected().with_fault(
            overhaul_sim::FaultSpec::quiet(2).with_x_crashes(vec![Timestamp::from_millis(500)]),
        );
        let mut system = System::new(config);
        assert!(system.x_alive());
        system.advance(SimDuration::from_millis(600));
        assert!(!system.x_alive(), "scheduled crash fired");
        assert_eq!(system.channel_state(), ChannelState::Down);
        let replayed = system.restart_x().expect("restart succeeds");
        assert_eq!(replayed, 0);
        assert_eq!(system.channel_state(), ChannelState::Up);
    }

    #[test]
    fn boot_fails_cleanly_under_persistent_auth_fault() {
        let config = OverhaulConfig::protected()
            .with_fault(overhaul_sim::FaultSpec::quiet(1).with_vfs_stat_fail_p(1.0));
        let err = System::try_new(config).expect_err("boot must fail");
        assert_eq!(err, BootError::ChannelAuth(NetlinkError::AuthTransient));
        assert!(err.to_string().contains("authentication"));
    }

    #[test]
    fn baseline_restart_needs_no_channel() {
        let mut system = System::baseline();
        system.crash_x();
        let replayed = system.restart_x().expect("restart succeeds");
        assert_eq!(replayed, 0);
        assert!(system.x_alive());
        assert!(system.x_conn().is_none());
    }

    #[test]
    fn snapshot_restore_rolls_back_to_identical_state() {
        let mut system = System::protected();
        let app = gui(&mut system, "/usr/bin/recorder", 0);
        system.click_window(app.window);
        let _ = system.open_device(app.pid, "/dev/snd/mic0");
        let hash = system.state_hash();
        let snap = system.snapshot();
        assert_eq!(snap.state_hash(), hash, "snapshot hashes the same state");

        // Diverge, then roll back.
        system.advance(SimDuration::from_secs(9));
        system.click_window(app.window);
        assert_ne!(system.state_hash(), hash);
        system.restore(&snap).expect("restore");
        assert_eq!(system.state_hash(), hash);

        // Counters survive the in-place restore and record the rebuilds.
        let stats = system.kernel().snapshot_stats();
        assert_eq!(stats.snapshot_bytes, snap.state().len() as u64);
        assert_eq!(stats.restore_rebuild_verdict_cache, 1);
        assert!(stats.restore_rebuild_dup_suppress >= 1);
    }

    #[test]
    fn control_plane_is_a_reduction_of_the_ledger() {
        let mut system = System::protected();
        assert_eq!(
            system.reduce().state_hash(),
            system.control_plane().state_hash(),
            "boot state must already be derivable from the ledger"
        );
        let app = gui(&mut system, "/usr/bin/recorder", 0);
        system.click_window(app.window);
        let _ = system.open_device(app.pid, "/dev/snd/mic0");
        system.kernel_mut().attach_device(
            overhaul_kernel::device::DeviceClass::Camera,
            "usbcam",
            "/dev/video9",
        );
        system
            .kernel_mut()
            .udev_rename_device("/dev/video9", "/dev/video10")
            .expect("rename");
        system.crash_x();
        system.restart_x().expect("restart");
        system.verify_ledgers().expect("chain verifies");
        assert_eq!(
            system.reduce().state_hash(),
            system.control_plane().state_hash(),
            "folding ledger effects must re-derive the live control plane"
        );
    }

    #[test]
    fn reduction_survives_a_mid_run_snapshot_restore() {
        let mut system = System::protected();
        let app = gui(&mut system, "/usr/bin/recorder", 0);
        system.click_window(app.window);
        let _ = system.open_device(app.pid, "/dev/snd/mic0");
        let snap = system.snapshot();
        let head = system.ledger_head();

        let restored = System::from_snapshot(&snap).expect("restore");
        assert_eq!(restored.ledger_head(), head, "snapshot carries the chain");
        restored.verify_ledgers().expect("restored chain verifies");
        assert_eq!(
            restored.reduce().state_hash(),
            restored.control_plane().state_hash(),
            "reduction must hold from a mid-run snapshot"
        );
    }

    #[test]
    fn from_snapshot_round_trips_through_bytes() {
        let mut system = System::protected();
        let app = gui(&mut system, "/usr/bin/recorder", 0);
        system.click_window(app.window);
        let snap = system.snapshot();
        let decoded =
            overhaul_sim::snapshot::Snapshot::from_bytes(&snap.to_bytes()).expect("decode");
        let restored = System::from_snapshot(&decoded).expect("restore");
        assert_eq!(restored.state_hash(), system.state_hash());

        // Both machines must evolve identically from here.
        let mut a = system;
        let mut b = restored;
        a.advance(SimDuration::from_secs(3));
        b.advance(SimDuration::from_secs(3));
        a.click_window(app.window);
        b.click_window(app.window);
        assert_eq!(
            a.open_device(app.pid, "/dev/snd/mic0"),
            b.open_device(app.pid, "/dev/snd/mic0")
        );
        assert_eq!(a.state_hash(), b.state_hash());
    }
}
