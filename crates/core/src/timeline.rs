//! Unified audit timeline.
//!
//! Both halves of the system keep their own audit logs (the kernel's
//! permission monitor and the display manager's trusted paths). The §V-C
//! and §V-D analyses work by "inspecting the logs produced by our system";
//! [`merge`] interleaves the two logs into one chronological view so a
//! single pass answers questions like *which interaction led to this
//! grant* or *which component blocked this attack*.

use std::borrow::Cow;
use std::fmt;

use overhaul_sim::{AuditCategory, Pid, Timestamp};

use crate::system::System;

/// Which component recorded an entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Source {
    /// The kernel (permission monitor, propagation, ptrace).
    Kernel,
    /// The display manager (trusted input/output, display mediation).
    DisplayManager,
}

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Source::Kernel => "kernel",
            Source::DisplayManager => "xserver",
        })
    }
}

/// One entry in the merged timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEntry {
    /// Virtual time of the event.
    pub at: Timestamp,
    /// Recording component.
    pub source: Source,
    /// Event category.
    pub category: AuditCategory,
    /// Process concerned, if identified.
    pub pid: Option<Pid>,
    /// Detail text.
    pub detail: Cow<'static, str>,
}

impl fmt::Display for TimelineEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {:>7} {}", self.at, self.source, self.category)?;
        if let Some(pid) = self.pid {
            write!(f, " {pid}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Merges both audit logs into one chronological timeline. Entries with
/// equal timestamps keep kernel-before-display order (notifications reach
/// the monitor before the decision they enable).
pub fn merge(system: &System) -> Vec<TimelineEntry> {
    let mut entries: Vec<TimelineEntry> =
        Vec::with_capacity(system.kernel_audit().len() + system.x_audit().len());
    for event in system.kernel_audit().events() {
        entries.push(TimelineEntry {
            at: event.at,
            source: Source::Kernel,
            category: event.category,
            pid: event.pid,
            detail: event.detail.clone(),
        });
    }
    for event in system.x_audit().events() {
        entries.push(TimelineEntry {
            at: event.at,
            source: Source::DisplayManager,
            category: event.category,
            pid: event.pid,
            detail: event.detail.clone(),
        });
    }
    entries.sort_by_key(|e| (e.at, matches!(e.source, Source::DisplayManager)));
    entries
}

/// Renders a timeline, optionally filtered to one pid.
pub fn render(entries: &[TimelineEntry], only_pid: Option<Pid>) -> String {
    entries
        .iter()
        .filter(|e| only_pid.is_none() || e.pid == only_pid)
        .map(|e| e.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use overhaul_sim::SimDuration;
    use overhaul_xserver::geometry::Rect;

    #[test]
    fn merge_is_chronological_and_complete() {
        let mut system = System::protected();
        let app = system
            .launch_gui_app("/usr/bin/recorder", Rect::new(0, 0, 100, 100))
            .unwrap();
        system.settle();
        system.click_window(app.window);
        system.advance(SimDuration::from_millis(100));
        let _ = system.open_device(app.pid, "/dev/snd/mic0");

        let timeline = merge(&system);
        assert_eq!(
            timeline.len(),
            system.kernel_audit().len() + system.x_audit().len()
        );
        for pair in timeline.windows(2) {
            assert!(pair[0].at <= pair[1].at, "out of order: {pair:?}");
        }
        // The story reads in causal order: notification before grant
        // before alert.
        let interaction = timeline
            .iter()
            .position(|e| e.category == AuditCategory::InteractionNotification)
            .expect("interaction present");
        let grant = timeline
            .iter()
            .position(|e| e.category == AuditCategory::PermissionGranted)
            .expect("grant present");
        let alert = timeline
            .iter()
            .position(|e| e.category == AuditCategory::AlertDisplayed)
            .expect("alert present");
        assert!(interaction < grant, "notification precedes the grant");
        assert!(grant < alert, "grant precedes the alert");
    }

    #[test]
    fn render_filters_by_pid() {
        let mut system = System::protected();
        let spy = system.spawn_process(None, "/usr/bin/.spy").unwrap();
        let other = system.spawn_process(None, "/usr/bin/other").unwrap();
        let _ = system.open_device(spy, "/dev/video0");
        let _ = system.open_device(other, "/dev/snd/mic0");
        let timeline = merge(&system);
        let spy_only = render(&timeline, Some(spy));
        assert!(spy_only.contains(&spy.to_string()));
        assert!(!spy_only.contains(&other.to_string()));
    }

    #[test]
    fn sources_are_labeled() {
        let mut system = System::protected();
        let spy = system.spawn_process(None, "/usr/bin/.spy").unwrap();
        let _ = system.open_device(spy, "/dev/video0");
        let rendered = render(&merge(&system), None);
        assert!(rendered.contains("kernel"));
        assert!(rendered.contains("xserver"));
    }
}
