//! Kernel-integrated display-manager wiring (§III).
//!
//! The paper's design assumes a userspace display manager and therefore
//! needs the authenticated netlink channel; it notes that "different OS
//! designs can allow display managers integrated into the kernel, which
//! would alleviate the need for some of the components we describe below,
//! such as a separate trusted communication channel ... Our design can be
//! applied to that case in a straightforward manner."
//!
//! [`DirectMonitorLink`] is that application: the same generic
//! [`crate::link::MonitorClient`] as the netlink wiring,
//! instantiated over [`DirectTransport`] — the display manager calls the
//! policy engine in-process, no netlink, no peer authentication, no
//! context-switch cost. The security semantics are identical (verified by
//! tests that run the same scenarios under both wirings); the
//! channel-related attack surface and the per-query RTT simply disappear.

use overhaul_kernel::monitor::ResourceOp;
use overhaul_kernel::netlink::{NetlinkError, NetlinkMessage, NetlinkReply};
use overhaul_kernel::Kernel;
use overhaul_xserver::protocol::DisplayOp;

use crate::link::{MonitorClient, MonitorTransport};

/// Transport for kernel-integrated display managers: every message becomes
/// a direct call into the kernel, never a channel crossing, so it cannot
/// fail with a channel error.
#[derive(Debug)]
pub struct DirectTransport<'a> {
    kernel: &'a mut Kernel,
}

impl MonitorTransport for DirectTransport<'_> {
    fn transmit(&mut self, msg: NetlinkMessage) -> Result<NetlinkReply, NetlinkError> {
        match msg {
            NetlinkMessage::InteractionNotification { pid, at } => {
                // A dead pid is not a transport error; the kernel audits it.
                let _ = self.kernel.record_interaction_direct(pid, at);
                Ok(NetlinkReply::Ack)
            }
            NetlinkMessage::PermissionQuery { pid, op, at } => Ok(NetlinkReply::QueryResponse(
                self.kernel.decide_direct(pid, at, op),
            )),
            NetlinkMessage::DeviceMapUpdate { old_path, new_path } => {
                self.kernel.apply_device_map_update(&old_path, &new_path);
                Ok(NetlinkReply::Ack)
            }
        }
    }
}

/// A monitor link for kernel-integrated display managers: calls the
/// policy engine directly instead of crossing a channel.
pub type DirectMonitorLink<'a> = MonitorClient<DirectTransport<'a>>;

impl<'a> DirectMonitorLink<'a> {
    /// Wraps the kernel for in-process monitor access.
    pub fn new(kernel: &'a mut Kernel) -> Self {
        MonitorClient::from_transport(DirectTransport { kernel })
    }
}

/// Maps a display op for the integrated path (re-exported for symmetry
/// with [`crate::link`]).
pub fn resource_op(op: DisplayOp) -> ResourceOp {
    crate::link::resource_op(op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use overhaul_kernel::KernelConfig;
    use overhaul_sim::{Clock, Pid, Timestamp};
    use overhaul_xserver::protocol::MonitorLink;

    #[test]
    fn direct_link_matches_netlink_semantics() {
        let mut kernel = Kernel::new(Clock::new(), KernelConfig::default());
        let app = kernel.sys_spawn(Pid::INIT, "/usr/bin/app").unwrap();
        let mut link = DirectMonitorLink::new(&mut kernel);
        assert!(!link.query(app, DisplayOp::Paste, Timestamp::from_millis(10)));
        link.notify_interaction(app, Timestamp::from_millis(100));
        assert!(link.query(app, DisplayOp::Paste, Timestamp::from_millis(500)));
        assert!(!link.query(app, DisplayOp::Paste, Timestamp::from_millis(9_000)));
    }

    #[test]
    fn direct_link_needs_no_trusted_peer() {
        // There is no channel to authenticate: the display manager *is*
        // kernel code in this design.
        let mut kernel = Kernel::new(Clock::new(), KernelConfig::default());
        let app = kernel.sys_spawn(Pid::INIT, "/usr/bin/app").unwrap();
        let mut link = DirectMonitorLink::new(&mut kernel);
        link.notify_interaction(app, Timestamp::from_millis(5));
        assert_eq!(
            kernel.tasks().get(app).unwrap().interaction(),
            Some(Timestamp::from_millis(5))
        );
    }
}
