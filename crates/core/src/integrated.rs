//! Kernel-integrated display-manager wiring (§III).
//!
//! The paper's design assumes a userspace display manager and therefore
//! needs the authenticated netlink channel; it notes that "different OS
//! designs can allow display managers integrated into the kernel, which
//! would alleviate the need for some of the components we describe below,
//! such as a separate trusted communication channel ... Our design can be
//! applied to that case in a straightforward manner."
//!
//! [`DirectMonitorLink`] is that application: the display manager calls
//! the permission monitor in-process — no netlink, no peer
//! authentication, no context-switch cost. The security semantics are
//! identical (verified by tests that run the same scenarios under both
//! wirings); the channel-related attack surface and the per-query RTT
//! simply disappear.

use overhaul_kernel::monitor::ResourceOp;
use overhaul_kernel::Kernel;
use overhaul_sim::{Pid, Timestamp};
use overhaul_xserver::protocol::{DisplayOp, MonitorLink};

/// A monitor link for kernel-integrated display managers: calls the
/// permission monitor directly instead of crossing a channel.
#[derive(Debug)]
pub struct DirectMonitorLink<'a> {
    kernel: &'a mut Kernel,
}

impl<'a> DirectMonitorLink<'a> {
    /// Wraps the kernel for in-process monitor access.
    pub fn new(kernel: &'a mut Kernel) -> Self {
        DirectMonitorLink { kernel }
    }
}

impl MonitorLink for DirectMonitorLink<'_> {
    fn notify_interaction(&mut self, pid: Pid, at: Timestamp) {
        let _ = self.kernel.record_interaction_direct(pid, at);
    }

    fn query(&mut self, pid: Pid, op: DisplayOp, at: Timestamp) -> bool {
        self.kernel
            .decide_direct(pid, at, crate::link::resource_op(op))
            .verdict
            .is_grant()
    }
}

/// Maps a display op for the integrated path (re-exported for symmetry
/// with [`crate::link`]).
pub fn resource_op(op: DisplayOp) -> ResourceOp {
    crate::link::resource_op(op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use overhaul_kernel::KernelConfig;
    use overhaul_sim::Clock;

    #[test]
    fn direct_link_matches_netlink_semantics() {
        let mut kernel = Kernel::new(Clock::new(), KernelConfig::default());
        let app = kernel.sys_spawn(Pid::INIT, "/usr/bin/app").unwrap();
        let mut link = DirectMonitorLink::new(&mut kernel);
        assert!(!link.query(app, DisplayOp::Paste, Timestamp::from_millis(10)));
        link.notify_interaction(app, Timestamp::from_millis(100));
        assert!(link.query(app, DisplayOp::Paste, Timestamp::from_millis(500)));
        assert!(!link.query(app, DisplayOp::Paste, Timestamp::from_millis(9_000)));
    }

    #[test]
    fn direct_link_needs_no_trusted_peer() {
        // There is no channel to authenticate: the display manager *is*
        // kernel code in this design.
        let mut kernel = Kernel::new(Clock::new(), KernelConfig::default());
        let app = kernel.sys_spawn(Pid::INIT, "/usr/bin/app").unwrap();
        let mut link = DirectMonitorLink::new(&mut kernel);
        link.notify_interaction(app, Timestamp::from_millis(5));
        assert_eq!(
            kernel.tasks().get(app).unwrap().interaction(),
            Some(Timestamp::from_millis(5))
        );
    }
}
