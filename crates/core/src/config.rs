//! System-wide Overhaul configuration.

use overhaul_kernel::device::DeviceClass;
use overhaul_kernel::KernelConfig;
use overhaul_sim::{FaultSpec, SimDuration};
use overhaul_xserver::XConfig;

/// A sensitive device to attach at boot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceSpec {
    /// Device class.
    pub class: DeviceClass,
    /// Human-readable label.
    pub label: String,
    /// Filesystem node path.
    pub path: String,
}

impl DeviceSpec {
    /// Creates a spec.
    pub fn new(class: DeviceClass, label: impl Into<String>, path: impl Into<String>) -> Self {
        DeviceSpec {
            class,
            label: label.into(),
            path: path.into(),
        }
    }
}

/// Configuration of a whole Overhaul-enhanced machine.
#[derive(Debug, Clone, PartialEq)]
pub struct OverhaulConfig {
    /// Kernel-side settings (δ, shm wait window, ptrace hardening, ...).
    pub kernel: KernelConfig,
    /// Display-manager settings (clickjack threshold, alerts, ...).
    pub x: XConfig,
    /// Devices attached at boot.
    pub devices: Vec<DeviceSpec>,
    /// Kernel-integrated display manager (§III): the display manager calls
    /// the permission monitor in-process; no netlink channel exists.
    pub integrated_dm: bool,
    /// Optional deterministic fault plan injected at boot: seeded message
    /// drops/delays/duplicates/reorders on the netlink channel, scheduled
    /// display-manager crashes, and VFS stat failures during channel
    /// authentication. `None` means a fault-free run.
    pub fault: Option<FaultSpec>,
    /// Enables virtual-time span tracing: a shared [`overhaul_sim::Tracer`]
    /// is installed into the kernel and the display manager at boot, and
    /// [`crate::System::trace_dump`] renders the collected span tree. Off
    /// by default — a disabled tracer keeps the mediation hot paths free of
    /// bookkeeping.
    pub tracing: bool,
}

impl Default for OverhaulConfig {
    fn default() -> Self {
        OverhaulConfig {
            kernel: KernelConfig::default(),
            x: XConfig::default(),
            devices: vec![
                DeviceSpec::new(DeviceClass::Microphone, "built-in mic", "/dev/snd/mic0"),
                DeviceSpec::new(DeviceClass::Camera, "webcam", "/dev/video0"),
            ],
            integrated_dm: false,
            fault: None,
            tracing: false,
        }
    }
}

impl OverhaulConfig {
    /// A fully protected machine (the paper's configuration: δ = 2 s,
    /// shm wait 500 ms, ptrace hardening on).
    pub fn protected() -> Self {
        OverhaulConfig::default()
    }

    /// An unmodified machine (kernel and X server both stock) — the
    /// Table I baseline and the vulnerable computer of §V-D.
    pub fn baseline() -> Self {
        OverhaulConfig {
            kernel: KernelConfig::baseline(),
            x: XConfig::baseline(),
            ..OverhaulConfig::default()
        }
    }

    /// A protected machine with a kernel-integrated display manager: same
    /// policy, no netlink channel (the §III variant).
    pub fn integrated() -> Self {
        OverhaulConfig {
            integrated_dm: true,
            ..OverhaulConfig::protected()
        }
    }

    /// The Table I measurement configuration: all mediation code runs but
    /// the monitor grants everything, "to exercise the entire execution
    /// path" without needing scripted user input.
    pub fn grant_all() -> Self {
        let mut config = OverhaulConfig::protected();
        config.kernel.monitor.grant_all = true;
        config
    }

    /// Sets the temporal-proximity threshold δ (builder style).
    pub fn with_delta(mut self, delta: SimDuration) -> Self {
        self.kernel.monitor.delta = delta;
        self
    }

    /// Sets the shared-memory wait window (builder style).
    pub fn with_shm_wait(mut self, wait: SimDuration) -> Self {
        self.kernel.shm_wait = wait;
        self
    }

    /// Sets the clickjacking visibility threshold (builder style).
    pub fn with_visibility_threshold(mut self, threshold: SimDuration) -> Self {
        self.x.visibility_threshold = threshold;
        self
    }

    /// Replaces the boot device list (builder style).
    pub fn with_devices(mut self, devices: Vec<DeviceSpec>) -> Self {
        self.devices = devices;
        self
    }

    /// Installs a deterministic fault plan (builder style). The plan is
    /// armed at boot and drives channel faults, scheduled display-manager
    /// crashes, and VFS stat failures for the whole run.
    pub fn with_fault(mut self, spec: FaultSpec) -> Self {
        self.fault = Some(spec);
        self
    }

    /// Enables virtual-time span tracing and metrics histograms (builder
    /// style). Traces are deterministic: the same seed and workload produce
    /// a byte-identical [`crate::System::trace_dump`].
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Tunes the channel retry policy (builder style): how many resends the
    /// kernel attempts before declaring the channel down, and the base
    /// virtual-time backoff doubled on each attempt.
    pub fn with_channel_retry(mut self, max_retries: u32, backoff: SimDuration) -> Self {
        self.kernel.channel_max_retries = max_retries;
        self.kernel.channel_retry_backoff = backoff;
        self
    }

    /// Whether this configuration has Overhaul active anywhere.
    pub fn overhaul_enabled(&self) -> bool {
        self.kernel.overhaul_enabled || self.x.overhaul_enabled
    }
}

mod pack {
    //! Snapshot codec for the machine configuration.

    use overhaul_sim::impl_pack;

    use super::{DeviceSpec, OverhaulConfig};

    impl_pack!(DeviceSpec { class, label, path });
    impl_pack!(OverhaulConfig {
        kernel,
        x,
        devices,
        integrated_dm,
        fault,
        tracing
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protected_defaults_match_paper() {
        let c = OverhaulConfig::protected();
        assert_eq!(c.kernel.monitor.delta, SimDuration::from_secs(2));
        assert_eq!(c.kernel.shm_wait, SimDuration::from_millis(500));
        assert!(c.kernel.ptrace_hardening);
        assert!(c.overhaul_enabled());
    }

    #[test]
    fn baseline_disables_both_sides() {
        let c = OverhaulConfig::baseline();
        assert!(!c.kernel.overhaul_enabled);
        assert!(!c.x.overhaul_enabled);
        assert!(!c.overhaul_enabled());
    }

    #[test]
    fn grant_all_keeps_checks_running() {
        let c = OverhaulConfig::grant_all();
        assert!(c.kernel.overhaul_enabled);
        assert!(c.kernel.monitor.grant_all);
        assert!(c.x.overhaul_enabled);
    }

    #[test]
    fn builder_setters_apply() {
        let c = OverhaulConfig::protected()
            .with_delta(SimDuration::from_millis(750))
            .with_shm_wait(SimDuration::from_millis(100))
            .with_visibility_threshold(SimDuration::from_millis(50));
        assert_eq!(c.kernel.monitor.delta, SimDuration::from_millis(750));
        assert_eq!(c.kernel.shm_wait, SimDuration::from_millis(100));
        assert_eq!(c.x.visibility_threshold, SimDuration::from_millis(50));
    }

    #[test]
    fn fault_and_retry_builders_apply() {
        let c = OverhaulConfig::protected()
            .with_fault(FaultSpec::quiet(7).with_drop_p(0.25))
            .with_channel_retry(5, SimDuration::from_millis(20));
        assert!(c.fault.is_some());
        assert_eq!(c.kernel.channel_max_retries, 5);
        assert_eq!(c.kernel.channel_retry_backoff, SimDuration::from_millis(20));
    }

    #[test]
    fn tracing_defaults_off_and_builder_enables() {
        assert!(!OverhaulConfig::default().tracing);
        assert!(OverhaulConfig::protected().with_tracing().tracing);
    }

    #[test]
    fn default_has_no_fault_plan() {
        assert!(OverhaulConfig::default().fault.is_none());
    }

    #[test]
    fn default_devices_are_mic_and_cam() {
        let c = OverhaulConfig::default();
        assert_eq!(c.devices.len(), 2);
        assert!(c.devices.iter().any(|d| d.class == DeviceClass::Microphone));
        assert!(c.devices.iter().any(|d| d.class == DeviceClass::Camera));
    }
}
