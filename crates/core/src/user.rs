//! The simulated user: attention model and interaction behavior.
//!
//! The usability study (§V-B) measured how participants react to Overhaul
//! alerts while busy with another task: of 46 participants, 24 interrupted
//! their task immediately, 16 noticed but continued, and 6 missed the alert
//! entirely. [`AttentionProfile::paper_calibrated`] encodes those observed
//! frequencies so the study harness can re-run the experiment procedure at
//! scale; other profiles support sensitivity analysis.

use overhaul_sim::SimRng;
use serde::{Deserialize, Serialize};

/// How a participant reacted to an on-screen alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NoticeOutcome {
    /// Interrupted the task immediately and reported the alert.
    InterruptedTask,
    /// Noticed the alert, finished the task, reported when prompted.
    NoticedAndContinued,
    /// Did not notice anything unusual.
    Missed,
}

/// Probabilities governing alert noticing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttentionProfile {
    /// Probability of interrupting the task immediately.
    pub interrupt: f64,
    /// Probability of noticing but continuing the task.
    pub notice: f64,
    // Remainder: missed.
}

impl AttentionProfile {
    /// The profile observed in the paper's 46-participant study
    /// (24 interrupted / 16 noticed / 6 missed).
    pub fn paper_calibrated() -> Self {
        AttentionProfile {
            interrupt: 24.0 / 46.0,
            notice: 16.0 / 46.0,
        }
    }

    /// A fully attentive user (upper bound).
    pub fn always_notices() -> Self {
        AttentionProfile {
            interrupt: 1.0,
            notice: 0.0,
        }
    }

    /// A user who never notices alerts (lower bound).
    pub fn oblivious() -> Self {
        AttentionProfile {
            interrupt: 0.0,
            notice: 0.0,
        }
    }
}

/// One simulated study participant.
#[derive(Debug, Clone)]
pub struct SimulatedUser {
    profile: AttentionProfile,
    rng: SimRng,
}

impl SimulatedUser {
    /// Creates a participant with the given attention profile and RNG seed.
    pub fn new(profile: AttentionProfile, seed: u64) -> Self {
        SimulatedUser {
            profile,
            rng: SimRng::seeded(seed),
        }
    }

    /// The participant's reaction to an alert appearing while they are
    /// occupied with another task.
    pub fn react_to_alert(&mut self) -> NoticeOutcome {
        let draw = self.rng.unit();
        if draw < self.profile.interrupt {
            NoticeOutcome::InterruptedTask
        } else if draw < self.profile.interrupt + self.profile.notice {
            NoticeOutcome::NoticedAndContinued
        } else {
            NoticeOutcome::Missed
        }
    }

    /// Whether the participant perceives any friction from a transparent
    /// security layer. Overhaul adds no prompts and no workflow changes, so
    /// this is always the minimum difficulty score — the study's task-1
    /// result (all 46 participants rated the Skype call "identical", i.e.
    /// 1 on the 5-point Likert scale).
    pub fn rate_task_difficulty(&mut self, workflow_changed: bool, prompts_shown: usize) -> u8 {
        if !workflow_changed && prompts_shown == 0 {
            1
        } else {
            // Prompt-based systems degrade with interruption count.
            (2 + prompts_shown.min(3)) as u8
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_profile_reproduces_paper_split() {
        let profile = AttentionProfile::paper_calibrated();
        let mut counts = [0usize; 3];
        for seed in 0..46_000 {
            let mut user = SimulatedUser::new(profile, seed);
            match user.react_to_alert() {
                NoticeOutcome::InterruptedTask => counts[0] += 1,
                NoticeOutcome::NoticedAndContinued => counts[1] += 1,
                NoticeOutcome::Missed => counts[2] += 1,
            }
        }
        // Expected ≈ 24000 / 16000 / 6000 with generous tolerance.
        assert!((counts[0] as f64 - 24_000.0).abs() < 1_500.0, "{counts:?}");
        assert!((counts[1] as f64 - 16_000.0).abs() < 1_500.0, "{counts:?}");
        assert!((counts[2] as f64 - 6_000.0).abs() < 1_000.0, "{counts:?}");
    }

    #[test]
    fn bounds_profiles() {
        let mut eager = SimulatedUser::new(AttentionProfile::always_notices(), 1);
        assert_eq!(eager.react_to_alert(), NoticeOutcome::InterruptedTask);
        let mut blind = SimulatedUser::new(AttentionProfile::oblivious(), 1);
        assert_eq!(blind.react_to_alert(), NoticeOutcome::Missed);
    }

    #[test]
    fn transparent_system_scores_identical() {
        let mut user = SimulatedUser::new(AttentionProfile::paper_calibrated(), 7);
        assert_eq!(user.rate_task_difficulty(false, 0), 1);
    }

    #[test]
    fn prompting_system_scores_worse() {
        let mut user = SimulatedUser::new(AttentionProfile::paper_calibrated(), 7);
        assert!(user.rate_task_difficulty(false, 2) > 1);
        assert!(user.rate_task_difficulty(true, 0) > 1);
    }

    #[test]
    fn same_seed_same_reaction() {
        let profile = AttentionProfile::paper_calibrated();
        let mut a = SimulatedUser::new(profile, 42);
        let mut b = SimulatedUser::new(profile, 42);
        assert_eq!(a.react_to_alert(), b.react_to_alert());
    }
}
