//! Record/replay: deterministic capture of every external input crossing
//! the [`System`] boundary.
//!
//! The simulation is a deterministic state machine: given a configuration
//! (which fixes the fault-plan seed) and the sequence of external inputs —
//! virtual-time advances, hardware input, X requests, syscalls issued by
//! scripted applications — the entire run is reproducible. [`Recorder`]
//! applies each [`Event`] to a live machine while appending it to an
//! [`EventLog`]; [`replay`] re-runs the log against a freshly booted
//! machine and [`replay_from`] re-runs a suffix against a restored
//! checkpoint. Both must reproduce the recorded final
//! [`System::state_hash`] byte-for-byte (and, with tracing enabled, the
//! same [`System::trace_dump`]); a mismatch is counted on the kernel's
//! `overhaul_replay_divergence_total` gauge.
//!
//! The replay boundary contract: everything *outside* the log (wall-clock
//! time, host randomness, thread scheduling) must never influence
//! simulation state. Everything *inside* the machine (kernel, display
//! manager, fault plan, virtual clock) is either serialized state or a
//! pure function of it.

use overhaul_kernel::device::DeviceClass;
use overhaul_kernel::error::SysResult;
use overhaul_kernel::ipc::shm::ShmId;
use overhaul_kernel::mm::VmaId;
use overhaul_kernel::policy::{DecisionOutcome, IngestEvent};
use overhaul_sim::snapshot::{Dec, Enc, Pack, Snapshot, SnapshotError};
use overhaul_sim::{Fd, Pid, SimDuration, Timestamp};
use overhaul_xserver::geometry::{Point, Rect};
use overhaul_xserver::protocol::{ClientId, Reply, Request, XError, XEvent};
use overhaul_xserver::window::WindowId;

use crate::config::OverhaulConfig;
use crate::system::{BootError, Gui, System};

/// One external input crossing the [`System`] boundary.
///
/// The set covers everything the experiment harnesses and examples drive:
/// system-level operations (time, input, X requests, device opens, crash
/// and restart of the display manager) plus the scripted-application
/// syscalls issued through [`System::kernel_mut`].
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Advance virtual time ([`System::advance`]).
    Advance(SimDuration),
    /// Advance past the clickjacking threshold ([`System::settle`]).
    Settle,
    /// Spawn a process ([`System::spawn_process`]).
    SpawnProcess {
        /// Parent, or init.
        parent: Option<Pid>,
        /// Executable path.
        exe: String,
    },
    /// Connect a process to the X server ([`System::connect_x`]).
    ConnectX {
        /// The process.
        pid: Pid,
    },
    /// Launch a GUI app ([`System::launch_gui_app`]).
    LaunchGuiApp {
        /// Executable path.
        exe: String,
        /// Main-window geometry.
        rect: Rect,
    },
    /// Hardware click at screen coordinates ([`System::click_at`]).
    ClickAt {
        /// Screen location.
        p: Point,
    },
    /// Hardware click on a window's center ([`System::click_window`]).
    ClickWindow {
        /// Target window.
        window: WindowId,
    },
    /// Hardware key press ([`System::key`]).
    Key {
        /// The key.
        ch: char,
    },
    /// An X request ([`System::x_request`]).
    XRequest {
        /// Requesting client.
        client: ClientId,
        /// The request.
        request: Request,
    },
    /// A client consuming its event queue
    /// ([`overhaul_xserver::XServer::drain_events`]). Draining empties the
    /// queue — part of the machine's hashed state — so an application's
    /// act of reading its events is itself a recorded input.
    DrainEvents {
        /// The consuming client.
        client: ClientId,
    },
    /// Open a device node ([`System::open_device`]).
    OpenDevice {
        /// Caller.
        pid: Pid,
        /// Device path.
        path: String,
    },
    /// Open a device under the prompt policy
    /// ([`System::open_device_prompted`]).
    OpenDevicePrompted {
        /// Caller.
        pid: Pid,
        /// Device path.
        path: String,
        /// The user's scripted hardware answer.
        approve: bool,
    },
    /// Kill the display manager ([`System::crash_x`]).
    CrashX,
    /// Restart the display manager ([`System::restart_x`]).
    RestartX,
    /// Hot-plug a device ([`overhaul_kernel::Kernel::attach_device`]).
    AttachDevice {
        /// Device class.
        class: DeviceClass,
        /// Label.
        label: String,
        /// Node path.
        path: String,
    },
    /// udev rename ([`overhaul_kernel::Kernel::udev_rename_device`]).
    UdevRename {
        /// Old node path.
        old: String,
        /// New node path.
        new: String,
    },
    /// `spawn` issued by a scripted app.
    SysSpawn {
        /// Parent process.
        parent: Pid,
        /// Executable path.
        exe: String,
    },
    /// `fork(2)`.
    SysFork {
        /// Caller.
        pid: Pid,
    },
    /// `execve(2)`.
    SysExecve {
        /// Caller.
        pid: Pid,
        /// New executable path.
        exe: String,
    },
    /// `read(2)`.
    SysRead {
        /// Caller.
        pid: Pid,
        /// Descriptor.
        fd: Fd,
        /// Max bytes.
        max: usize,
    },
    /// `write(2)`.
    SysWrite {
        /// Caller.
        pid: Pid,
        /// Descriptor.
        fd: Fd,
        /// Payload.
        data: Vec<u8>,
    },
    /// `close(2)`.
    SysClose {
        /// Caller.
        pid: Pid,
        /// Descriptor.
        fd: Fd,
    },
    /// `openpty(3)`.
    SysOpenPty {
        /// Caller.
        pid: Pid,
    },
    /// `shmget(2)`.
    SysShmGet {
        /// Caller.
        pid: Pid,
        /// SysV key.
        key: i32,
        /// Segment size in pages.
        pages: usize,
    },
    /// `shm_open(3)`.
    SysShmOpen {
        /// Caller.
        pid: Pid,
        /// POSIX name.
        name: String,
        /// Segment size in pages.
        pages: usize,
    },
    /// `shmat(2)`.
    SysShmAt {
        /// Caller.
        pid: Pid,
        /// Segment to map.
        shm: ShmId,
    },
    /// A store into a mapped segment.
    SysShmWrite {
        /// Caller.
        pid: Pid,
        /// Mapping.
        vma: VmaId,
        /// Byte offset.
        offset: usize,
        /// Payload.
        data: Vec<u8>,
    },
    /// A load from a mapped segment.
    SysShmRead {
        /// Caller.
        pid: Pid,
        /// Mapping.
        vma: VmaId,
        /// Byte offset.
        offset: usize,
        /// Bytes to read.
        len: usize,
    },
    /// A batched mixed stream of interaction notifications and permission
    /// requests ([`System::ingest_batch`]). One recorded event covers the
    /// whole batch, so high-rate harnesses log (and replay, and bisect)
    /// thousands of decisions as a single input.
    IngestBatch {
        /// The batch, in ingestion order.
        events: Vec<IngestEvent>,
    },
}

/// What applying an [`Event`] produced. Replayed runs are deterministic,
/// so a recorded workload can rely on outcomes (pids, fds, window ids)
/// being identical on replay.
#[derive(Debug)]
pub enum ApplyOutcome {
    /// Events with no interesting result (`Settle`, `CrashX`, ...).
    None,
    /// The new virtual time after an `Advance`.
    Time(Timestamp),
    /// A spawned/forked process.
    Pid(SysResult<Pid>),
    /// A launched GUI app.
    Gui(SysResult<Gui>),
    /// A connected X client.
    Client(ClientId),
    /// An opened descriptor.
    Fd(SysResult<Fd>),
    /// A pty master/slave pair.
    Fds(SysResult<(Fd, Fd)>),
    /// Bytes read.
    Bytes(SysResult<Vec<u8>>),
    /// Bytes written.
    Written(SysResult<usize>),
    /// Unit-result syscalls (`close`, `execve`, shm stores, renames).
    Unit(SysResult<()>),
    /// A shared-memory segment.
    Shm(SysResult<ShmId>),
    /// A shared-memory mapping.
    Vma(SysResult<VmaId>),
    /// The window a click landed on.
    Hit(Option<WindowId>),
    /// Whether a `ClickWindow` hit its target.
    Clicked(bool),
    /// An X reply.
    X(Result<Reply, XError>),
    /// A drained event queue.
    XEvents(Result<Vec<XEvent>, XError>),
    /// Display-manager restart result (replayed alert count).
    Restarted(Result<usize, BootError>),
    /// Batched ingestion outcomes, aligned with the input events
    /// (`Some` per request, `None` per interaction).
    Ingested(Vec<Option<DecisionOutcome>>),
}

impl ApplyOutcome {
    /// The launched GUI app; panics on any other outcome.
    pub fn gui(self) -> SysResult<Gui> {
        match self {
            ApplyOutcome::Gui(gui) => gui,
            other => panic!("expected a GUI outcome, got {other:?}"),
        }
    }

    /// The process id; panics on any other outcome.
    pub fn pid(self) -> SysResult<Pid> {
        match self {
            ApplyOutcome::Pid(pid) => pid,
            other => panic!("expected a pid outcome, got {other:?}"),
        }
    }

    /// The descriptor; panics on any other outcome.
    pub fn fd(self) -> SysResult<Fd> {
        match self {
            ApplyOutcome::Fd(fd) => fd,
            other => panic!("expected an fd outcome, got {other:?}"),
        }
    }

    /// The X reply; panics on any other outcome.
    pub fn x(self) -> Result<Reply, XError> {
        match self {
            ApplyOutcome::X(reply) => reply,
            other => panic!("expected an X outcome, got {other:?}"),
        }
    }

    /// The connected client; panics on any other outcome.
    pub fn client(self) -> ClientId {
        match self {
            ApplyOutcome::Client(client) => client,
            other => panic!("expected a client outcome, got {other:?}"),
        }
    }

    /// The pty pair; panics on any other outcome.
    pub fn fds(self) -> SysResult<(Fd, Fd)> {
        match self {
            ApplyOutcome::Fds(fds) => fds,
            other => panic!("expected a pty-pair outcome, got {other:?}"),
        }
    }

    /// The shm segment; panics on any other outcome.
    pub fn shm(self) -> SysResult<ShmId> {
        match self {
            ApplyOutcome::Shm(shm) => shm,
            other => panic!("expected an shm outcome, got {other:?}"),
        }
    }

    /// The shm mapping; panics on any other outcome.
    pub fn vma(self) -> SysResult<VmaId> {
        match self {
            ApplyOutcome::Vma(vma) => vma,
            other => panic!("expected a vma outcome, got {other:?}"),
        }
    }

    /// The drained events; panics on any other outcome.
    pub fn events(self) -> Result<Vec<XEvent>, XError> {
        match self {
            ApplyOutcome::XEvents(events) => events,
            other => panic!("expected a drained-queue outcome, got {other:?}"),
        }
    }

    /// The batched ingestion outcomes; panics on any other outcome.
    pub fn ingested(self) -> Vec<Option<DecisionOutcome>> {
        match self {
            ApplyOutcome::Ingested(outcomes) => outcomes,
            other => panic!("expected an ingestion outcome, got {other:?}"),
        }
    }
}

/// Applies one event to a live machine, returning its outcome.
///
/// This is the single choke point every driver goes through — live shards,
/// the [`Recorder`], [`replay`], and [`replay_from`] — so it also advances
/// the sketch book's applied-event cursor: every latency observation made
/// while `events[k]` executes is stamped with exemplar `event_idx == k+1`,
/// and a replay from any starting point reproduces the same coordinates
/// (the cursor rides in the snapshot aux).
pub fn apply_event(system: &mut System, event: &Event) -> ApplyOutcome {
    system.sketches().note_event();
    match event {
        Event::Advance(d) => ApplyOutcome::Time(system.advance(*d)),
        Event::Settle => {
            system.settle();
            ApplyOutcome::None
        }
        Event::SpawnProcess { parent, exe } => {
            ApplyOutcome::Pid(system.spawn_process(*parent, exe))
        }
        Event::ConnectX { pid } => ApplyOutcome::Client(system.connect_x(*pid)),
        Event::LaunchGuiApp { exe, rect } => ApplyOutcome::Gui(system.launch_gui_app(exe, *rect)),
        Event::ClickAt { p } => ApplyOutcome::Hit(system.click_at(*p)),
        Event::ClickWindow { window } => ApplyOutcome::Clicked(system.click_window(*window)),
        Event::Key { ch } => ApplyOutcome::Hit(system.key(*ch)),
        Event::XRequest { client, request } => {
            ApplyOutcome::X(system.x_request(*client, request.clone()))
        }
        Event::DrainEvents { client } => {
            ApplyOutcome::XEvents(system.xserver_mut().drain_events(*client))
        }
        Event::OpenDevice { pid, path } => ApplyOutcome::Fd(system.open_device(*pid, path)),
        Event::OpenDevicePrompted { pid, path, approve } => {
            ApplyOutcome::Fd(system.open_device_prompted(*pid, path, *approve))
        }
        Event::CrashX => {
            system.crash_x();
            ApplyOutcome::None
        }
        Event::RestartX => ApplyOutcome::Restarted(system.restart_x()),
        Event::AttachDevice { class, label, path } => {
            system.kernel_mut().attach_device(*class, label, path);
            ApplyOutcome::None
        }
        Event::UdevRename { old, new } => {
            ApplyOutcome::Unit(system.kernel_mut().udev_rename_device(old, new))
        }
        Event::SysSpawn { parent, exe } => {
            ApplyOutcome::Pid(system.kernel_mut().sys_spawn(*parent, exe))
        }
        Event::SysFork { pid } => ApplyOutcome::Pid(system.kernel_mut().sys_fork(*pid)),
        Event::SysExecve { pid, exe } => {
            ApplyOutcome::Unit(system.kernel_mut().sys_execve(*pid, exe))
        }
        Event::SysRead { pid, fd, max } => {
            ApplyOutcome::Bytes(system.kernel_mut().sys_read(*pid, *fd, *max))
        }
        Event::SysWrite { pid, fd, data } => {
            ApplyOutcome::Written(system.kernel_mut().sys_write(*pid, *fd, data))
        }
        Event::SysClose { pid, fd } => ApplyOutcome::Unit(system.kernel_mut().sys_close(*pid, *fd)),
        Event::SysOpenPty { pid } => ApplyOutcome::Fds(system.kernel_mut().sys_openpty(*pid)),
        Event::SysShmGet { pid, key, pages } => {
            ApplyOutcome::Shm(system.kernel_mut().sys_shmget(*pid, *key, *pages))
        }
        Event::SysShmOpen { pid, name, pages } => {
            ApplyOutcome::Shm(system.kernel_mut().sys_shm_open(*pid, name, *pages))
        }
        Event::SysShmAt { pid, shm } => {
            ApplyOutcome::Vma(system.kernel_mut().sys_shmat(*pid, *shm))
        }
        Event::SysShmWrite {
            pid,
            vma,
            offset,
            data,
        } => ApplyOutcome::Unit(system.kernel_mut().sys_shm_write(*pid, *vma, *offset, data)),
        Event::SysShmRead {
            pid,
            vma,
            offset,
            len,
        } => ApplyOutcome::Bytes(system.kernel_mut().sys_shm_read(*pid, *vma, *offset, *len)),
        Event::IngestBatch { events } => ApplyOutcome::Ingested(system.ingest_batch(events)),
    }
}

/// A recorded run: the boot configuration, every external input in order,
/// and the final state hash the replay must reproduce.
#[derive(Debug, Clone)]
pub struct EventLog {
    /// The configuration the machine booted with (fixes the fault seed).
    pub config: OverhaulConfig,
    /// Every external input, in order.
    pub events: Vec<Event>,
    /// The recorded final [`System::state_hash`], once sealed.
    pub final_state_hash: Option<u64>,
    /// The recorded final [`System::ledger_head`], once sealed: a replayed
    /// run must re-land on the identical sealed chain hash, so history
    /// divergence is caught even when two states coincide.
    pub final_ledger_head: Option<u64>,
}

impl EventLog {
    /// The events from index `k` on (the suffix fed to [`replay_from`]
    /// alongside a snapshot taken after event `k`).
    pub fn suffix(&self, k: usize) -> &[Event] {
        &self.events[k..]
    }

    /// Serializes the log (versioned, same container as snapshots).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        self.config.pack(&mut enc);
        self.events.pack(&mut enc);
        self.final_state_hash.pack(&mut enc);
        self.final_ledger_head.pack(&mut enc);
        Snapshot::new(enc.into_bytes(), Vec::new()).to_bytes()
    }

    /// Parses a log serialized by [`EventLog::to_bytes`].
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] from a truncated or corrupt input.
    pub fn from_bytes(bytes: &[u8]) -> Result<EventLog, SnapshotError> {
        let container = Snapshot::from_bytes(bytes)?;
        let mut dec = Dec::new(container.state());
        let log = EventLog {
            config: Pack::unpack(&mut dec)?,
            events: Pack::unpack(&mut dec)?,
            final_state_hash: Pack::unpack(&mut dec)?,
            final_ledger_head: Pack::unpack(&mut dec)?,
        };
        dec.finish()?;
        Ok(log)
    }
}

/// Records a run: boots a machine and applies events while logging them.
#[derive(Debug)]
pub struct Recorder {
    system: System,
    log: EventLog,
}

impl Recorder {
    /// Boots a machine with `config` and starts recording.
    ///
    /// # Panics
    ///
    /// Panics if boot fails (same contract as [`System::new`]).
    pub fn new(config: OverhaulConfig) -> Self {
        let system = System::new(config.clone());
        Recorder {
            system,
            log: EventLog {
                config,
                events: Vec::new(),
                final_state_hash: None,
                final_ledger_head: None,
            },
        }
    }

    /// The live machine (for assertions mid-recording; reads only —
    /// mutating it outside [`Recorder::apply`] would break replay).
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Events recorded so far.
    pub fn events_recorded(&self) -> usize {
        self.log.events.len()
    }

    /// Checkpoints the live machine mid-recording (pairs the snapshot with
    /// [`EventLog::suffix`] at the current event count).
    pub fn snapshot(&mut self) -> Snapshot {
        self.system.snapshot()
    }

    /// Applies `event` to the machine and appends it to the log.
    pub fn apply(&mut self, event: Event) -> ApplyOutcome {
        let outcome = apply_event(&mut self.system, &event);
        self.log.events.push(event);
        outcome
    }

    /// Seals the recording: stamps the final state hash into the log and
    /// returns the machine alongside it.
    pub fn finish(mut self) -> (System, EventLog) {
        self.log.final_state_hash = Some(self.system.state_hash());
        self.log.final_ledger_head = Some(self.system.ledger_head());
        (self.system, self.log)
    }
}

/// Checks a replayed machine against the log's recorded state hash and
/// sealed ledger head, counting a divergence on either mismatch.
fn check_divergence(
    system: &mut System,
    expected: Option<u64>,
    expected_ledger_head: Option<u64>,
) -> bool {
    let state_diverged = matches!(expected, Some(hash) if system.state_hash() != hash);
    let history_diverged =
        matches!(expected_ledger_head, Some(head) if system.ledger_head() != head);
    if state_diverged || history_diverged {
        system.kernel_mut().note_replay_divergence();
        return true;
    }
    false
}

/// Replays a recorded run from boot: boots a fresh machine with the log's
/// configuration and re-applies every event. The result must satisfy
/// `system.state_hash() == log.final_state_hash`; a mismatch increments
/// the kernel's `overhaul_replay_divergence_total` gauge.
///
/// # Errors
///
/// [`BootError`] when the machine cannot boot (which a recorded log
/// implies it can, absent corruption).
pub fn replay(log: &EventLog) -> Result<System, BootError> {
    let mut system = System::try_new(log.config.clone())?;
    for event in &log.events {
        apply_event(&mut system, event);
    }
    check_divergence(&mut system, log.final_state_hash, log.final_ledger_head);
    Ok(system)
}

/// Replays a log suffix from a mid-run checkpoint: restores the snapshot
/// and re-applies `suffix` (obtained from [`EventLog::suffix`] at the
/// event count where the snapshot was taken). `expected` is the recorded
/// final hash; a mismatch increments the divergence gauge.
///
/// # Errors
///
/// Any [`SnapshotError`] from a truncated or corrupt snapshot.
pub fn replay_from(
    snapshot: &Snapshot,
    suffix: &[Event],
    expected: Option<u64>,
) -> Result<System, SnapshotError> {
    let mut system = System::from_snapshot(snapshot)?;
    for event in suffix {
        apply_event(&mut system, event);
    }
    check_divergence(&mut system, expected, None);
    Ok(system)
}

#[cfg(test)]
mod tests {
    use super::*;
    use overhaul_sim::SimDuration;

    fn scripted_workload(rec: &mut Recorder) {
        let gui = rec
            .apply(Event::LaunchGuiApp {
                exe: "/usr/bin/recorder".into(),
                rect: Rect::new(0, 0, 640, 480),
            })
            .gui()
            .expect("launch");
        rec.apply(Event::Settle);
        rec.apply(Event::ClickWindow { window: gui.window });
        rec.apply(Event::OpenDevice {
            pid: gui.pid,
            path: "/dev/snd/mic0".into(),
        });
        rec.apply(Event::Advance(SimDuration::from_secs(5)));
        rec.apply(Event::OpenDevice {
            pid: gui.pid,
            path: "/dev/snd/mic0".into(),
        });
    }

    #[test]
    fn event_log_round_trips_through_bytes() {
        let mut rec = Recorder::new(OverhaulConfig::protected());
        scripted_workload(&mut rec);
        let (_, log) = rec.finish();
        assert!(log.final_state_hash.is_some());
        let decoded = EventLog::from_bytes(&log.to_bytes()).expect("decode");
        assert_eq!(decoded.events, log.events);
        assert_eq!(decoded.final_state_hash, log.final_state_hash);
        assert_eq!(decoded.config, log.config);
    }

    #[test]
    fn replay_reproduces_recorded_state_hash() {
        let mut rec = Recorder::new(OverhaulConfig::protected());
        scripted_workload(&mut rec);
        let (recorded, log) = rec.finish();
        let replayed = replay(&log).expect("replay boots");
        assert_eq!(replayed.state_hash(), recorded.state_hash());
        assert_eq!(
            replayed.kernel().snapshot_stats().replay_divergence,
            0,
            "a faithful replay must not count a divergence"
        );
    }

    #[test]
    fn replay_from_snapshot_matches_full_run() {
        let mut rec = Recorder::new(OverhaulConfig::protected());
        scripted_workload(&mut rec);
        let snapshot = rec.snapshot();
        let k = rec.events_recorded();
        rec.apply(Event::Advance(SimDuration::from_millis(100)));
        rec.apply(Event::Key { ch: 'q' });
        let (recorded, log) = rec.finish();
        let resumed = replay_from(&snapshot, log.suffix(k), log.final_state_hash).expect("restore");
        assert_eq!(resumed.state_hash(), recorded.state_hash());
        assert_eq!(resumed.kernel().snapshot_stats().replay_divergence, 0);
    }

    #[test]
    fn replay_with_tracing_reproduces_trace_dump() {
        let config = OverhaulConfig::protected().with_tracing();
        let mut rec = Recorder::new(config);
        scripted_workload(&mut rec);
        let (recorded, log) = rec.finish();
        let replayed = replay(&log).expect("replay boots");
        assert_eq!(replayed.state_hash(), recorded.state_hash());
        assert_eq!(replayed.trace_dump(), recorded.trace_dump());
    }

    #[test]
    fn replay_relands_on_the_sealed_ledger_head() {
        let mut rec = Recorder::new(OverhaulConfig::protected());
        scripted_workload(&mut rec);
        let (recorded, log) = rec.finish();
        assert_eq!(log.final_ledger_head, Some(recorded.ledger_head()));
        let replayed = replay(&log).expect("replay boots");
        assert_eq!(replayed.ledger_head(), recorded.ledger_head());
        assert_eq!(replayed.kernel().snapshot_stats().replay_divergence, 0);
        replayed.verify_ledgers().expect("replayed chain verifies");
    }

    #[test]
    fn divergence_is_counted_on_ledger_head_mismatch() {
        let mut rec = Recorder::new(OverhaulConfig::protected());
        scripted_workload(&mut rec);
        let (_, mut log) = rec.finish();
        log.final_ledger_head = Some(log.final_ledger_head.unwrap() ^ 1);
        let replayed = replay(&log).expect("replay boots");
        assert_eq!(replayed.kernel().snapshot_stats().replay_divergence, 1);
    }

    #[test]
    fn divergence_is_counted_on_hash_mismatch() {
        let mut rec = Recorder::new(OverhaulConfig::protected());
        scripted_workload(&mut rec);
        let (_, mut log) = rec.finish();
        log.final_state_hash = Some(log.final_state_hash.unwrap() ^ 1);
        let replayed = replay(&log).expect("replay boots");
        assert_eq!(replayed.kernel().snapshot_stats().replay_divergence, 1);
    }
}

mod pack {
    //! Event-log codec.

    use overhaul_sim::snapshot::{Dec, Enc, Pack, SnapshotError};

    use super::Event;

    impl Pack for Event {
        fn pack(&self, enc: &mut Enc) {
            match self {
                Event::Advance(d) => {
                    enc.put_u8(0);
                    d.pack(enc);
                }
                Event::Settle => enc.put_u8(1),
                Event::SpawnProcess { parent, exe } => {
                    enc.put_u8(2);
                    parent.pack(enc);
                    exe.pack(enc);
                }
                Event::ConnectX { pid } => {
                    enc.put_u8(3);
                    pid.pack(enc);
                }
                Event::LaunchGuiApp { exe, rect } => {
                    enc.put_u8(4);
                    exe.pack(enc);
                    rect.pack(enc);
                }
                Event::ClickAt { p } => {
                    enc.put_u8(5);
                    p.pack(enc);
                }
                Event::ClickWindow { window } => {
                    enc.put_u8(6);
                    window.pack(enc);
                }
                Event::Key { ch } => {
                    enc.put_u8(7);
                    ch.pack(enc);
                }
                Event::XRequest { client, request } => {
                    enc.put_u8(8);
                    client.pack(enc);
                    request.pack(enc);
                }
                Event::DrainEvents { client } => {
                    enc.put_u8(27);
                    client.pack(enc);
                }
                Event::OpenDevice { pid, path } => {
                    enc.put_u8(9);
                    pid.pack(enc);
                    path.pack(enc);
                }
                Event::OpenDevicePrompted { pid, path, approve } => {
                    enc.put_u8(10);
                    pid.pack(enc);
                    path.pack(enc);
                    approve.pack(enc);
                }
                Event::CrashX => enc.put_u8(11),
                Event::RestartX => enc.put_u8(12),
                Event::AttachDevice { class, label, path } => {
                    enc.put_u8(13);
                    class.pack(enc);
                    label.pack(enc);
                    path.pack(enc);
                }
                Event::UdevRename { old, new } => {
                    enc.put_u8(14);
                    old.pack(enc);
                    new.pack(enc);
                }
                Event::SysSpawn { parent, exe } => {
                    enc.put_u8(15);
                    parent.pack(enc);
                    exe.pack(enc);
                }
                Event::SysFork { pid } => {
                    enc.put_u8(16);
                    pid.pack(enc);
                }
                Event::SysExecve { pid, exe } => {
                    enc.put_u8(17);
                    pid.pack(enc);
                    exe.pack(enc);
                }
                Event::SysRead { pid, fd, max } => {
                    enc.put_u8(18);
                    pid.pack(enc);
                    fd.pack(enc);
                    max.pack(enc);
                }
                Event::SysWrite { pid, fd, data } => {
                    enc.put_u8(19);
                    pid.pack(enc);
                    fd.pack(enc);
                    data.pack(enc);
                }
                Event::SysClose { pid, fd } => {
                    enc.put_u8(20);
                    pid.pack(enc);
                    fd.pack(enc);
                }
                Event::SysOpenPty { pid } => {
                    enc.put_u8(21);
                    pid.pack(enc);
                }
                Event::SysShmGet { pid, key, pages } => {
                    enc.put_u8(22);
                    pid.pack(enc);
                    key.pack(enc);
                    pages.pack(enc);
                }
                Event::SysShmOpen { pid, name, pages } => {
                    enc.put_u8(23);
                    pid.pack(enc);
                    name.pack(enc);
                    pages.pack(enc);
                }
                Event::SysShmAt { pid, shm } => {
                    enc.put_u8(24);
                    pid.pack(enc);
                    shm.pack(enc);
                }
                Event::SysShmWrite {
                    pid,
                    vma,
                    offset,
                    data,
                } => {
                    enc.put_u8(25);
                    pid.pack(enc);
                    vma.pack(enc);
                    offset.pack(enc);
                    data.pack(enc);
                }
                Event::SysShmRead {
                    pid,
                    vma,
                    offset,
                    len,
                } => {
                    enc.put_u8(26);
                    pid.pack(enc);
                    vma.pack(enc);
                    offset.pack(enc);
                    len.pack(enc);
                }
                Event::IngestBatch { events } => {
                    enc.put_u8(28);
                    events.pack(enc);
                }
            }
        }
        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            Ok(match dec.take_u8()? {
                0 => Event::Advance(Pack::unpack(dec)?),
                1 => Event::Settle,
                2 => Event::SpawnProcess {
                    parent: Pack::unpack(dec)?,
                    exe: Pack::unpack(dec)?,
                },
                3 => Event::ConnectX {
                    pid: Pack::unpack(dec)?,
                },
                4 => Event::LaunchGuiApp {
                    exe: Pack::unpack(dec)?,
                    rect: Pack::unpack(dec)?,
                },
                5 => Event::ClickAt {
                    p: Pack::unpack(dec)?,
                },
                6 => Event::ClickWindow {
                    window: Pack::unpack(dec)?,
                },
                7 => Event::Key {
                    ch: Pack::unpack(dec)?,
                },
                8 => Event::XRequest {
                    client: Pack::unpack(dec)?,
                    request: Pack::unpack(dec)?,
                },
                9 => Event::OpenDevice {
                    pid: Pack::unpack(dec)?,
                    path: Pack::unpack(dec)?,
                },
                10 => Event::OpenDevicePrompted {
                    pid: Pack::unpack(dec)?,
                    path: Pack::unpack(dec)?,
                    approve: Pack::unpack(dec)?,
                },
                11 => Event::CrashX,
                12 => Event::RestartX,
                13 => Event::AttachDevice {
                    class: Pack::unpack(dec)?,
                    label: Pack::unpack(dec)?,
                    path: Pack::unpack(dec)?,
                },
                14 => Event::UdevRename {
                    old: Pack::unpack(dec)?,
                    new: Pack::unpack(dec)?,
                },
                15 => Event::SysSpawn {
                    parent: Pack::unpack(dec)?,
                    exe: Pack::unpack(dec)?,
                },
                16 => Event::SysFork {
                    pid: Pack::unpack(dec)?,
                },
                17 => Event::SysExecve {
                    pid: Pack::unpack(dec)?,
                    exe: Pack::unpack(dec)?,
                },
                18 => Event::SysRead {
                    pid: Pack::unpack(dec)?,
                    fd: Pack::unpack(dec)?,
                    max: Pack::unpack(dec)?,
                },
                19 => Event::SysWrite {
                    pid: Pack::unpack(dec)?,
                    fd: Pack::unpack(dec)?,
                    data: Pack::unpack(dec)?,
                },
                20 => Event::SysClose {
                    pid: Pack::unpack(dec)?,
                    fd: Pack::unpack(dec)?,
                },
                21 => Event::SysOpenPty {
                    pid: Pack::unpack(dec)?,
                },
                22 => Event::SysShmGet {
                    pid: Pack::unpack(dec)?,
                    key: Pack::unpack(dec)?,
                    pages: Pack::unpack(dec)?,
                },
                23 => Event::SysShmOpen {
                    pid: Pack::unpack(dec)?,
                    name: Pack::unpack(dec)?,
                    pages: Pack::unpack(dec)?,
                },
                24 => Event::SysShmAt {
                    pid: Pack::unpack(dec)?,
                    shm: Pack::unpack(dec)?,
                },
                25 => Event::SysShmWrite {
                    pid: Pack::unpack(dec)?,
                    vma: Pack::unpack(dec)?,
                    offset: Pack::unpack(dec)?,
                    data: Pack::unpack(dec)?,
                },
                26 => Event::SysShmRead {
                    pid: Pack::unpack(dec)?,
                    vma: Pack::unpack(dec)?,
                    offset: Pack::unpack(dec)?,
                    len: Pack::unpack(dec)?,
                },
                27 => Event::DrainEvents {
                    client: Pack::unpack(dec)?,
                },
                28 => Event::IngestBatch {
                    events: Pack::unpack(dec)?,
                },
                _ => return Err(SnapshotError::BadValue("event")),
            })
        }
    }
}
