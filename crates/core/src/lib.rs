//! **Overhaul** — input-driven access control for traditional operating
//! systems (reproduction of Onarlioglu et al., DSN 2016).
//!
//! Overhaul grants an application access to privacy-sensitive resources —
//! microphone, camera, clipboard, screen contents — only when the request
//! follows an *authentic hardware user interaction* with that application
//! within a temporal-proximity threshold δ (2 s by default). It does so
//! transparently: applications see ordinary `EACCES`/`BadAccess` errors,
//! users see non-intrusive overlay alerts, and nothing needs recompiling.
//!
//! This crate assembles the two substrates into a whole machine:
//!
//! * [`overhaul_kernel`] — kernel simulator: the permission monitor inside
//!   `task_struct`, device-open mediation, the netlink channel, and
//!   interaction-timestamp propagation across `fork` and every IPC family;
//! * [`overhaul_xserver`] — display-manager simulator: the trusted input
//!   path (synthetic-event filtering, clickjacking gate), the trusted
//!   output path (overlay alerts with a visual shared secret), and
//!   clipboard/screen mediation.
//!
//! The entry point is [`System`]:
//!
//! ```
//! use overhaul_core::System;
//! use overhaul_xserver::geometry::Rect;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut machine = System::protected();
//! let app = machine.launch_gui_app("/usr/bin/recorder", Rect::new(0, 0, 640, 480))?;
//! machine.settle();
//!
//! // Without interaction the mic is off-limits...
//! assert!(machine.open_device(app.pid, "/dev/snd/mic0").is_err());
//!
//! // ...but right after a real click it opens, and the user is alerted.
//! machine.click_window(app.window);
//! assert!(machine.open_device(app.pid, "/dev/snd/mic0").is_ok());
//! assert_eq!(machine.alert_history().len(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod integrated;
pub mod link;
pub mod replay;
pub mod system;
pub mod timeline;
pub mod user;

pub use config::{DeviceSpec, OverhaulConfig};
pub use integrated::DirectMonitorLink;
pub use link::NetlinkMonitorLink;
pub use replay::{apply_event, replay, replay_from, ApplyOutcome, Event, EventLog, Recorder};
pub use system::{BootError, Gui, System};
pub use user::{AttentionProfile, NoticeOutcome, SimulatedUser};

/// Compile-time `Send` audit: `assert_send::<T>()` only type-checks if `T`
/// can move across threads. The fleet harness runs whole [`System`]s on
/// worker threads, so `System` being `Send` is a load-bearing API
/// guarantee, asserted below (and re-asserted in `overhaul-fleet`) so a
/// refactor that smuggles in an `Rc`/`RefCell` fails at compile time, not
/// in a soak run.
pub const fn assert_send<T: Send>() {}

const _: () = {
    assert_send::<System>();
    assert_send::<EventLog>();
    assert_send::<OverhaulConfig>();
};
