//! The display manager's monitor link, backed by the kernel netlink
//! channel.
//!
//! [`NetlinkMonitorLink`] adapts [`overhaul_xserver::protocol::MonitorLink`]
//! — the trait the X server calls for interaction notifications and
//! permission queries — onto the authenticated netlink connection the
//! kernel handed the X server at startup.

use overhaul_kernel::monitor::ResourceOp;
use overhaul_kernel::netlink::{ConnId, NetlinkMessage, NetlinkReply};
use overhaul_kernel::Kernel;
use overhaul_sim::{Pid, Timestamp};
use overhaul_xserver::protocol::{DisplayOp, MonitorLink};

/// Maps a display-resource operation onto the kernel's operation alphabet.
pub fn resource_op(op: DisplayOp) -> ResourceOp {
    match op {
        DisplayOp::Copy => ResourceOp::Copy,
        DisplayOp::Paste => ResourceOp::Paste,
        DisplayOp::Screen => ResourceOp::Screen,
    }
}

/// A borrowed view of the kernel acting as the X server's monitor link.
#[derive(Debug)]
pub struct NetlinkMonitorLink<'a> {
    kernel: &'a mut Kernel,
    conn: ConnId,
}

impl<'a> NetlinkMonitorLink<'a> {
    /// Wraps an established netlink connection.
    pub fn new(kernel: &'a mut Kernel, conn: ConnId) -> Self {
        NetlinkMonitorLink { kernel, conn }
    }
}

impl MonitorLink for NetlinkMonitorLink<'_> {
    fn notify_interaction(&mut self, pid: Pid, at: Timestamp) {
        // A dropped notification (dead process, torn-down channel) is not
        // an X-server error; the kernel audits it.
        let _ = self.kernel.netlink_send(
            self.conn,
            NetlinkMessage::InteractionNotification { pid, at },
        );
    }

    fn query(&mut self, pid: Pid, op: DisplayOp, at: Timestamp) -> bool {
        match self.kernel.netlink_send(
            self.conn,
            NetlinkMessage::PermissionQuery {
                pid,
                op: resource_op(op),
                at,
            },
        ) {
            Ok(NetlinkReply::QueryResponse(decision)) => decision.verdict.is_grant(),
            // Channel failure or unexpected reply: fail closed.
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overhaul_kernel::{KernelConfig, XORG_PATH};
    use overhaul_sim::Clock;

    fn kernel_with_x() -> (Kernel, ConnId, Pid) {
        let mut kernel = Kernel::new(Clock::new(), KernelConfig::default());
        let x = kernel.sys_spawn(Pid::INIT, XORG_PATH).unwrap();
        let conn = kernel.netlink_connect(x).unwrap();
        let app = kernel.sys_spawn(Pid::INIT, "/usr/bin/app").unwrap();
        (kernel, conn, app)
    }

    #[test]
    fn notification_then_query_grants() {
        let (mut kernel, conn, app) = kernel_with_x();
        let mut link = NetlinkMonitorLink::new(&mut kernel, conn);
        link.notify_interaction(app, Timestamp::from_millis(100));
        assert!(link.query(app, DisplayOp::Paste, Timestamp::from_millis(500)));
        assert!(!link.query(app, DisplayOp::Paste, Timestamp::from_millis(5000)));
    }

    #[test]
    fn query_without_interaction_denies() {
        let (mut kernel, conn, app) = kernel_with_x();
        let mut link = NetlinkMonitorLink::new(&mut kernel, conn);
        assert!(!link.query(app, DisplayOp::Screen, Timestamp::from_millis(10)));
    }

    #[test]
    fn dead_process_notification_is_harmless() {
        let (mut kernel, conn, _) = kernel_with_x();
        let mut link = NetlinkMonitorLink::new(&mut kernel, conn);
        link.notify_interaction(Pid::from_raw(12345), Timestamp::ZERO);
        assert!(!link.query(Pid::from_raw(12345), DisplayOp::Copy, Timestamp::ZERO));
    }

    #[test]
    fn op_mapping_matches_paper_alphabet() {
        assert_eq!(resource_op(DisplayOp::Copy), ResourceOp::Copy);
        assert_eq!(resource_op(DisplayOp::Paste), ResourceOp::Paste);
        assert_eq!(resource_op(DisplayOp::Screen), ResourceOp::Screen);
    }
}
