//! The display manager's monitor link and the shared transport layer
//! beneath it.
//!
//! Both wirings of the display manager — the paper's userspace design
//! ([`NetlinkMonitorLink`]) and the kernel-integrated variant
//! ([`crate::integrated::DirectMonitorLink`]) — speak the exact same
//! protocol to the kernel's unified policy engine; only the hop differs.
//! [`MonitorClient`] implements [`overhaul_xserver::protocol::MonitorLink`]
//! once, generically, over a [`MonitorTransport`]; the two links are thin
//! type aliases over their transports, so there is a single place where
//! fail-closed query semantics live.

use overhaul_kernel::monitor::ResourceOp;
use overhaul_kernel::netlink::{ConnId, NetlinkError, NetlinkMessage, NetlinkReply};
use overhaul_kernel::Kernel;
use overhaul_sim::{Pid, Timestamp};
use overhaul_xserver::protocol::{DisplayOp, MonitorLink};

/// Maps a display-resource operation onto the kernel's operation alphabet.
pub fn resource_op(op: DisplayOp) -> ResourceOp {
    match op {
        DisplayOp::Copy => ResourceOp::Copy,
        DisplayOp::Paste => ResourceOp::Paste,
        DisplayOp::Screen => ResourceOp::Screen,
    }
}

/// One hop between the display manager and the kernel's policy engine:
/// delivers a [`NetlinkMessage`] and returns the kernel's reply. The
/// netlink transport crosses the authenticated channel; the integrated
/// transport is a direct call.
pub trait MonitorTransport {
    /// Delivers `msg` to the kernel, returning its reply or a channel
    /// error (which the client treats as a denial — fail closed).
    fn transmit(&mut self, msg: NetlinkMessage) -> Result<NetlinkReply, NetlinkError>;
}

/// The [`MonitorLink`] implementation shared by every transport: protocol
/// semantics (notification fire-and-forget, query fail-closed) live here,
/// exactly once.
#[derive(Debug)]
pub struct MonitorClient<T> {
    transport: T,
}

impl<T: MonitorTransport> MonitorClient<T> {
    /// Wraps a transport.
    pub fn from_transport(transport: T) -> Self {
        MonitorClient { transport }
    }
}

impl<T: MonitorTransport> MonitorLink for MonitorClient<T> {
    fn notify_interaction(&mut self, pid: Pid, at: Timestamp) {
        // A dropped notification (dead process, torn-down channel) is not
        // an X-server error; the kernel audits it.
        let _ = self
            .transport
            .transmit(NetlinkMessage::InteractionNotification { pid, at });
    }

    fn query(&mut self, pid: Pid, op: DisplayOp, at: Timestamp) -> bool {
        match self.transport.transmit(NetlinkMessage::PermissionQuery {
            pid,
            op: resource_op(op),
            at,
        }) {
            Ok(NetlinkReply::QueryResponse(decision)) => decision.verdict.is_grant(),
            // Channel failure or unexpected reply: fail closed.
            _ => false,
        }
    }
}

/// Transport that crosses the authenticated kernel↔display-manager netlink
/// channel (the paper's userspace design).
#[derive(Debug)]
pub struct NetlinkTransport<'a> {
    kernel: &'a mut Kernel,
    conn: ConnId,
}

impl MonitorTransport for NetlinkTransport<'_> {
    fn transmit(&mut self, msg: NetlinkMessage) -> Result<NetlinkReply, NetlinkError> {
        self.kernel.netlink_send(self.conn, msg)
    }
}

/// A borrowed view of the kernel acting as the X server's monitor link.
pub type NetlinkMonitorLink<'a> = MonitorClient<NetlinkTransport<'a>>;

impl<'a> NetlinkMonitorLink<'a> {
    /// Wraps an established netlink connection.
    pub fn new(kernel: &'a mut Kernel, conn: ConnId) -> Self {
        MonitorClient::from_transport(NetlinkTransport { kernel, conn })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overhaul_kernel::{KernelConfig, XORG_PATH};
    use overhaul_sim::Clock;

    fn kernel_with_x() -> (Kernel, ConnId, Pid) {
        let mut kernel = Kernel::new(Clock::new(), KernelConfig::default());
        let x = kernel.sys_spawn(Pid::INIT, XORG_PATH).unwrap();
        let conn = kernel.netlink_connect(x).unwrap();
        let app = kernel.sys_spawn(Pid::INIT, "/usr/bin/app").unwrap();
        (kernel, conn, app)
    }

    #[test]
    fn notification_then_query_grants() {
        let (mut kernel, conn, app) = kernel_with_x();
        let mut link = NetlinkMonitorLink::new(&mut kernel, conn);
        link.notify_interaction(app, Timestamp::from_millis(100));
        assert!(link.query(app, DisplayOp::Paste, Timestamp::from_millis(500)));
        assert!(!link.query(app, DisplayOp::Paste, Timestamp::from_millis(5000)));
    }

    #[test]
    fn query_without_interaction_denies() {
        let (mut kernel, conn, app) = kernel_with_x();
        let mut link = NetlinkMonitorLink::new(&mut kernel, conn);
        assert!(!link.query(app, DisplayOp::Screen, Timestamp::from_millis(10)));
    }

    #[test]
    fn dead_process_notification_is_harmless() {
        let (mut kernel, conn, _) = kernel_with_x();
        let mut link = NetlinkMonitorLink::new(&mut kernel, conn);
        link.notify_interaction(Pid::from_raw(12345), Timestamp::ZERO);
        assert!(!link.query(Pid::from_raw(12345), DisplayOp::Copy, Timestamp::ZERO));
    }

    #[test]
    fn op_mapping_matches_paper_alphabet() {
        assert_eq!(resource_op(DisplayOp::Copy), ResourceOp::Copy);
        assert_eq!(resource_op(DisplayOp::Paste), ResourceOp::Paste);
        assert_eq!(resource_op(DisplayOp::Screen), ResourceOp::Screen);
    }
}
