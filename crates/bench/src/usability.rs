//! §V-B: the two-task usability study, re-run with simulated participants.
//!
//! **Task 1** — each participant performs a Skype call on an
//! Overhaul-protected machine; afterwards they rate how the experience
//! compared to stock Skype on a 5-point Likert scale (1 = identical). The
//! paper: all 46 rated it identical, because Overhaul's checks are
//! invisible when they grant.
//!
//! **Task 2** — while the participant performs a web search, a hidden
//! background process probes the camera; Overhaul blocks it and raises an
//! alert. The paper's split: 24 interrupted the task, 16 noticed and
//! continued, 6 missed the alert.

use overhaul_core::{AttentionProfile, NoticeOutcome, SimulatedUser, System};
use overhaul_kernel::error::Errno;
use overhaul_sim::SimDuration;
use overhaul_xserver::geometry::Rect;
use serde::{Deserialize, Serialize};

/// Study configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Number of participants (paper: 46).
    pub participants: u32,
    /// Attention model.
    pub profile: AttentionProfile,
    /// Base RNG seed; participant `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            participants: 46,
            profile: AttentionProfile::paper_calibrated(),
            seed: 1,
        }
    }
}

/// Study results.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StudyReport {
    /// Task 1: Likert histogram (index 0 = score 1 ... index 4 = score 5).
    pub likert: [u32; 5],
    /// Task 2: participants who interrupted the task at the alert.
    pub interrupted: u32,
    /// Task 2: participants who noticed but continued.
    pub noticed: u32,
    /// Task 2: participants who missed the alert.
    pub missed: u32,
    /// Sanity: every hidden camera probe was blocked.
    pub probes_blocked: u32,
    /// Sanity: every Skype call obtained mic + camera.
    pub calls_succeeded: u32,
}

/// Runs one participant's task 1: a Skype call on a protected machine.
/// Returns `(call_succeeded, prompts_shown)`.
pub fn run_skype_call(system: &mut System) -> (bool, usize) {
    let skype = system
        .launch_gui_app("/usr/bin/skype", Rect::new(0, 0, 640, 480))
        .expect("launch skype");
    system.settle();
    // The participant clicks the call button.
    system.click_window(skype.window);
    system.advance(SimDuration::from_millis(250));
    let cam = system.open_device(skype.pid, "/dev/video0");
    let mic = system.open_device(skype.pid, "/dev/snd/mic0");
    let ok = cam.is_ok() && mic.is_ok();
    for fd in [cam.ok(), mic.ok()].into_iter().flatten() {
        let _ = system.kernel_mut().sys_close(skype.pid, fd);
    }
    // Overhaul shows passive alerts but never a prompt that needs
    // answering; prompts_shown is structurally zero.
    (ok, 0)
}

/// Runs one participant's task 2: a web search during which a hidden
/// process probes the camera. Returns whether the probe was blocked and
/// whether an alert appeared.
pub fn run_camera_probe(system: &mut System) -> (bool, bool) {
    let browser = system
        .launch_gui_app("/usr/bin/firefox", Rect::new(0, 0, 800, 600))
        .expect("launch browser");
    system.settle();
    // The participant is busy searching...
    for ch in "weather boston".chars() {
        system
            .x_request(
                browser.client,
                overhaul_xserver::protocol::Request::SetInputFocus {
                    window: browser.window,
                },
            )
            .expect("focus");
        system.key(ch);
        system.advance(SimDuration::from_millis(120));
    }
    let alerts_before = system.alert_history().len();
    // ...when the hidden process fires.
    let spy = system
        .spawn_process(None, "/usr/bin/.probe")
        .expect("spawn probe");
    let blocked = matches!(system.open_device(spy, "/dev/video0"), Err(Errno::Eacces));
    let alerted = system.alert_history().len() > alerts_before;
    (blocked, alerted)
}

/// Runs the full study.
pub fn run_study(config: StudyConfig) -> StudyReport {
    let mut report = StudyReport {
        likert: [0; 5],
        interrupted: 0,
        noticed: 0,
        missed: 0,
        probes_blocked: 0,
        calls_succeeded: 0,
    };
    for participant in 0..config.participants {
        let mut user = SimulatedUser::new(config.profile, config.seed + participant as u64);

        // Task 1 on a fresh machine.
        let mut machine = System::protected();
        let (call_ok, prompts) = run_skype_call(&mut machine);
        if call_ok {
            report.calls_succeeded += 1;
        }
        let score = user.rate_task_difficulty(false, prompts);
        report.likert[(score as usize - 1).min(4)] += 1;

        // Task 2 on a fresh machine.
        let mut machine = System::protected();
        let (blocked, alerted) = run_camera_probe(&mut machine);
        if blocked {
            report.probes_blocked += 1;
        }
        let outcome = if alerted {
            user.react_to_alert()
        } else {
            NoticeOutcome::Missed
        };
        match outcome {
            NoticeOutcome::InterruptedTask => report.interrupted += 1,
            NoticeOutcome::NoticedAndContinued => report.noticed += 1,
            NoticeOutcome::Missed => report.missed += 1,
        }
    }
    report
}

/// Formats the report next to the paper's observed numbers.
pub fn format_report(report: &StudyReport) -> String {
    format!(
        "Task 1 (Skype call, N={total}):\n\
         \x20 calls completed        {calls}/{total}\n\
         \x20 Likert 'identical' (1) {l1}/{total}   (paper: 46/46)\n\
         \x20 Likert >1              {rest}/{total} (paper: 0/46)\n\
         Task 2 (hidden camera probe, N={total}):\n\
         \x20 probes blocked         {blocked}/{total}\n\
         \x20 interrupted task       {i}   (paper: 24)\n\
         \x20 noticed, continued     {n}   (paper: 16)\n\
         \x20 missed alert           {m}   (paper: 6)",
        total = report.likert.iter().sum::<u32>(),
        calls = report.calls_succeeded,
        l1 = report.likert[0],
        rest = report.likert[1..].iter().sum::<u32>(),
        blocked = report.probes_blocked,
        i = report.interrupted,
        n = report.noticed,
        m = report.missed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_study_runs_clean() {
        let report = run_study(StudyConfig {
            participants: 6,
            ..StudyConfig::default()
        });
        assert_eq!(
            report.calls_succeeded, 6,
            "Overhaul is transparent to Skype"
        );
        assert_eq!(report.probes_blocked, 6, "every probe blocked");
        assert_eq!(report.likert[0], 6, "all rate the experience identical");
        assert_eq!(report.interrupted + report.noticed + report.missed, 6);
    }

    #[test]
    fn full_study_split_close_to_paper() {
        let report = run_study(StudyConfig::default());
        assert_eq!(report.probes_blocked, 46);
        assert_eq!(report.likert[0], 46);
        // The notice split is stochastic; with 46 draws it should land in
        // a loose band around 24/16/6.
        assert!((15..=33).contains(&report.interrupted), "{report:?}");
        assert!((8..=24).contains(&report.noticed), "{report:?}");
        assert!(report.missed <= 14, "{report:?}");
    }

    #[test]
    fn attentive_profile_always_interrupts() {
        let report = run_study(StudyConfig {
            participants: 5,
            profile: AttentionProfile::always_notices(),
            seed: 3,
        });
        assert_eq!(report.interrupted, 5);
    }

    #[test]
    fn report_formatting_mentions_paper_numbers() {
        let report = run_study(StudyConfig {
            participants: 4,
            ..StudyConfig::default()
        });
        let text = format_report(&report);
        assert!(text.contains("paper: 24"));
        assert!(text.contains("paper: 46/46"));
    }
}
