//! Table I: performance overhead micro-benchmarks.
//!
//! The paper stresses each mediated operation under an artificial workload
//! and compares a stock stack against Overhaul with the permission monitor
//! "temporarily modified ... to grant access to resources even when there
//! is no user interaction, in order to exercise the entire execution path".
//!
//! | Benchmark      | Paper workload                          | Paper overhead |
//! |----------------|------------------------------------------|----------------|
//! | Device Access  | open the mic node 10 M times             | 2.17 %         |
//! | Clipboard      | 100 k paste operations                   | 2.96 %         |
//! | Screen Capture | 1 000 root-window captures               | 2.34 %         |
//! | Shared Memory  | 10 B writes, 1–10 000 pages              | 0.63 %         |
//! | Bonnie++       | create/stat/delete 102 400 files         | 0.11 %         |
//!
//! Iteration counts here are scaled down (the simulator is not the
//! authors' testbed; the *relative* overhead is the reproduction target).
//! Alert rendering is excluded from the measured path — on the real system
//! the display manager renders asynchronously — by disabling device alerts
//! in the measurement configuration.

use std::time::{Duration, Instant};

use overhaul_core::{OverhaulConfig, System};
use overhaul_kernel::syscall::OpenMode;
use overhaul_sim::{Pid, SimDuration};
use overhaul_xserver::geometry::Rect;
use overhaul_xserver::protocol::{Atom, ClientId, Reply, Request, XEvent};
use overhaul_xserver::window::WindowId;

/// Clear audit logs every this many operations so unbounded log growth
/// does not distort long measurement loops.
const AUDIT_CLEAR_INTERVAL: u64 = 8192;

/// One row of Table I.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Operations measured.
    pub ops: u64,
    /// Total baseline runtime.
    pub baseline: Duration,
    /// Total Overhaul runtime.
    pub overhaul: Duration,
    /// The overhead the paper reports, for comparison.
    pub paper_overhead_pct: f64,
}

impl Row {
    /// Measured relative overhead in percent.
    pub fn overhead_pct(&self) -> f64 {
        if self.baseline.as_nanos() == 0 {
            return 0.0;
        }
        (self.overhaul.as_nanos() as f64 / self.baseline.as_nanos() as f64 - 1.0) * 100.0
    }
}

/// Iteration counts for the five benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Device-node opens.
    pub device_opens: u64,
    /// Clipboard pastes.
    pub pastes: u64,
    /// Root-window captures.
    pub captures: u64,
    /// Shared-memory writes.
    pub shm_writes: u64,
    /// File create/stat/delete cycles.
    pub files: u64,
}

impl Scale {
    /// The default scaled-down workload (fast enough for CI).
    pub fn quick() -> Self {
        Scale {
            device_opens: 20_000,
            pastes: 500,
            captures: 15,
            shm_writes: 500_000,
            files: 5_000,
        }
    }

    /// A heavier workload for the standalone binary.
    pub fn full() -> Self {
        Scale {
            device_opens: 200_000,
            pastes: 5_000,
            captures: 100,
            shm_writes: 5_000_000,
            files: 51_200,
        }
    }
}

fn measurement_config(protected: bool) -> OverhaulConfig {
    let mut config = if protected {
        OverhaulConfig::grant_all()
    } else {
        OverhaulConfig::baseline()
    };
    // Device-grant alerts are rendered asynchronously on the real system
    // and are excluded from the open(2) path the paper times.
    config.kernel.device_alerts = false;
    config
}

// ------------------------------------------------------------------
// Device access
// ------------------------------------------------------------------

/// State for the device-access benchmark.
#[derive(Debug)]
pub struct DeviceBench {
    /// The machine under test.
    pub system: System,
    pid: Pid,
    ops: u64,
}

/// Prepares the device-access benchmark.
pub fn device_setup(protected: bool) -> DeviceBench {
    let mut system = System::new(measurement_config(protected));
    let pid = system.spawn_process(None, "/usr/bin/bench").expect("spawn");
    DeviceBench {
        system,
        pid,
        ops: 0,
    }
}

/// One iteration: open the microphone node and close it again.
pub fn device_iter(bench: &mut DeviceBench) {
    let kernel = bench.system.kernel_mut();
    let fd = kernel
        .sys_open(bench.pid, "/dev/snd/mic0", OpenMode::ReadOnly)
        .expect("grant-all open");
    kernel.sys_close(bench.pid, fd).expect("close");
    bench.ops += 1;
    if bench.ops.is_multiple_of(AUDIT_CLEAR_INTERVAL) {
        kernel.clear_history();
    }
}

// ------------------------------------------------------------------
// Clipboard (paste, the worst case)
// ------------------------------------------------------------------

/// State for the clipboard benchmark.
#[derive(Debug)]
pub struct ClipboardBench {
    /// The machine under test.
    pub system: System,
    source: ClientId,
    target: ClientId,
    target_window: WindowId,
    ops: u64,
}

/// Prepares the clipboard benchmark: a source client already owning the
/// CLIPBOARD selection and a target client that will paste repeatedly.
pub fn clipboard_setup(protected: bool) -> ClipboardBench {
    let mut system = System::new(measurement_config(protected));
    let source = system
        .launch_gui_app("/usr/bin/source", Rect::new(0, 0, 50, 50))
        .expect("launch source");
    let target = system
        .launch_gui_app("/usr/bin/target", Rect::new(60, 0, 50, 50))
        .expect("launch target");
    system.settle();
    system.click_window(source.window);
    system
        .x_request(
            source.client,
            Request::SetSelectionOwner {
                selection: Atom::clipboard(),
                window: source.window,
            },
        )
        .expect("copy");
    // Drain setup-time events (the click) so iterations see only the
    // selection protocol.
    let _ = system.xserver_mut().drain_events(source.client);
    let _ = system.xserver_mut().drain_events(target.client);
    ClipboardBench {
        system,
        source: source.client,
        target: target.client,
        target_window: target.window,
        ops: 0,
    }
}

/// One iteration: a full ICCCM paste (steps 6–13 of Figure 6).
pub fn clipboard_iter(bench: &mut ClipboardBench) {
    // Grant-all mode answers the paste query positively even without
    // clicks, exercising the whole path.
    let property = Atom::new("XSEL_DATA");
    bench
        .system
        .x_request(
            bench.target,
            Request::ConvertSelection {
                selection: Atom::clipboard(),
                requestor: bench.target_window,
                property: property.clone(),
            },
        )
        .expect("paste allowed");
    // Source answers the relayed request.
    let event = bench
        .system
        .xserver_mut()
        .next_event(bench.source)
        .expect("source alive")
        .expect("selection request relayed");
    if let XEvent::SelectionRequest {
        selection,
        requestor,
        property,
    } = event
    {
        bench
            .system
            .x_request(
                bench.source,
                Request::ChangeProperty {
                    window: requestor,
                    property: property.clone(),
                    data: b"payload".to_vec(),
                },
            )
            .expect("store data");
        bench
            .system
            .x_request(
                bench.source,
                Request::SendEvent {
                    target: requestor,
                    event: Box::new(XEvent::SelectionNotify {
                        selection,
                        property,
                    }),
                },
            )
            .expect("notify");
    }
    let _ = bench.system.xserver_mut().next_event(bench.target);
    match bench
        .system
        .x_request(
            bench.target,
            Request::GetProperty {
                window: bench.target_window,
                property,
                delete: true,
            },
        )
        .expect("retrieve")
    {
        Reply::Property(Some(_)) => {}
        other => panic!("paste lost its data: {other:?}"),
    }
    bench.ops += 1;
    if bench.ops.is_multiple_of(AUDIT_CLEAR_INTERVAL) {
        bench.system.kernel_mut().clear_history();
        bench.system.xserver_mut().clear_history();
    }
}

// ------------------------------------------------------------------
// Screen capture
// ------------------------------------------------------------------

/// State for the screen-capture benchmark.
#[derive(Debug)]
pub struct ScreenBench {
    /// The machine under test.
    pub system: System,
    client: ClientId,
}

/// Prepares the screen-capture benchmark (one client, one mapped window).
pub fn screen_setup(protected: bool) -> ScreenBench {
    let mut system = System::new(measurement_config(protected));
    let gui = system
        .launch_gui_app("/usr/bin/imlib2-grab", Rect::new(0, 0, 100, 100))
        .expect("launch");
    system.settle();
    ScreenBench {
        system,
        client: gui.client,
    }
}

/// One iteration: capture the root window (`GetImage`).
pub fn screen_iter(bench: &mut ScreenBench) {
    match bench
        .system
        .x_request(bench.client, Request::GetImage { window: None })
        .expect("grant-all capture")
    {
        Reply::Image(pixels) => assert!(!pixels.is_empty()),
        other => panic!("unexpected reply {other:?}"),
    }
}

// ------------------------------------------------------------------
// Shared memory
// ------------------------------------------------------------------

/// State for the shared-memory benchmark.
#[derive(Debug)]
pub struct ShmBench {
    /// The machine under test.
    pub system: System,
    pid: Pid,
    vma: overhaul_kernel::mm::VmaId,
    segment_bytes: usize,
    cursor: usize,
    ops: u64,
}

/// Prepares the shared-memory benchmark with a segment of `pages` pages.
pub fn shm_setup(protected: bool, pages: usize) -> ShmBench {
    let mut system = System::new(measurement_config(protected));
    let pid = system
        .spawn_process(None, "/usr/bin/shm-bench")
        .expect("spawn");
    let shm = system
        .kernel_mut()
        .sys_shmget(pid, 0x5eed, pages)
        .expect("shmget");
    let vma = system.kernel_mut().sys_shmat(pid, shm).expect("shmat");
    ShmBench {
        system,
        pid,
        vma,
        segment_bytes: pages * overhaul_kernel::ipc::shm::PAGE_SIZE,
        cursor: 0,
        ops: 0,
    }
}

/// One iteration: an 8-byte write at a rotating offset. Every 4 096 writes
/// virtual time advances past the wait window so the fault machinery
/// re-arms, as it would under a real clock.
pub fn shm_iter(bench: &mut ShmBench) {
    let offset = bench.cursor % (bench.segment_bytes - 8);
    bench.cursor = bench.cursor.wrapping_add(4097);
    bench
        .system
        .kernel_mut()
        .sys_shm_write(bench.pid, bench.vma, offset, b"01234567")
        .expect("write");
    bench.ops += 1;
    if bench.ops.is_multiple_of(4096) {
        bench.system.advance(SimDuration::from_millis(600));
    }
}

// ------------------------------------------------------------------
// Filesystem (Bonnie++-style)
// ------------------------------------------------------------------

/// State for the filesystem benchmark.
#[derive(Debug)]
pub struct FsBench {
    /// The machine under test.
    pub system: System,
    pid: Pid,
    counter: u64,
}

/// Prepares the filesystem benchmark.
pub fn fs_setup(protected: bool) -> FsBench {
    let mut system = System::new(measurement_config(protected));
    let pid = system
        .spawn_process(None, "/usr/bin/bonnie")
        .expect("spawn");
    system
        .kernel_mut()
        .sys_mkdir(pid, "/tmp/bonnie", 0o755)
        .expect("mkdir");
    FsBench {
        system,
        pid,
        counter: 0,
    }
}

/// One iteration: create, stat, and delete one empty file.
pub fn fs_iter(bench: &mut FsBench) {
    let path = format!("/tmp/bonnie/f{}", bench.counter);
    bench.counter += 1;
    let kernel = bench.system.kernel_mut();
    let fd = kernel.sys_creat(bench.pid, &path, 0o644).expect("creat");
    kernel.sys_close(bench.pid, fd).expect("close");
    kernel.sys_stat(bench.pid, &path).expect("stat");
    kernel.sys_unlink(bench.pid, &path).expect("unlink");
}

// ------------------------------------------------------------------
// Runners
// ------------------------------------------------------------------

/// Times baseline and Overhaul states in alternating chunks so slow
/// drift (CPU frequency, thermal state) affects both sides equally.
const INTERLEAVE_CHUNKS: u64 = 16;

fn time_interleaved<B, O>(
    mut baseline_state: B,
    mut baseline_iter: impl FnMut(&mut B),
    mut overhaul_state: O,
    mut overhaul_iter: impl FnMut(&mut O),
    ops: u64,
) -> (Duration, Duration) {
    let chunk = (ops / INTERLEAVE_CHUNKS).max(1);
    let mut baseline_total = Duration::ZERO;
    let mut overhaul_total = Duration::ZERO;
    let mut done = 0;
    while done < ops {
        let n = chunk.min(ops - done);
        let start = Instant::now();
        for _ in 0..n {
            baseline_iter(&mut baseline_state);
        }
        baseline_total += start.elapsed();
        let start = Instant::now();
        for _ in 0..n {
            overhaul_iter(&mut overhaul_state);
        }
        overhaul_total += start.elapsed();
        done += n;
    }
    (baseline_total, overhaul_total)
}

/// Runs all five benchmarks at the given scale, returning Table I.
pub fn run_all(scale: Scale) -> Vec<Row> {
    let (device_base, device_ovh) = time_interleaved(
        device_setup(false),
        device_iter,
        device_setup(true),
        device_iter,
        scale.device_opens,
    );
    let (clip_base, clip_ovh) = time_interleaved(
        clipboard_setup(false),
        clipboard_iter,
        clipboard_setup(true),
        clipboard_iter,
        scale.pastes,
    );
    let (screen_base, screen_ovh) = time_interleaved(
        screen_setup(false),
        screen_iter,
        screen_setup(true),
        screen_iter,
        scale.captures,
    );
    let (shm_base, shm_ovh) = time_interleaved(
        shm_setup(false, 64),
        shm_iter,
        shm_setup(true, 64),
        shm_iter,
        scale.shm_writes,
    );
    let (fs_base, fs_ovh) = time_interleaved(
        fs_setup(false),
        fs_iter,
        fs_setup(true),
        fs_iter,
        scale.files,
    );
    vec![
        Row {
            name: "Device Access",
            ops: scale.device_opens,
            baseline: device_base,
            overhaul: device_ovh,
            paper_overhead_pct: 2.17,
        },
        Row {
            name: "Clipboard",
            ops: scale.pastes,
            baseline: clip_base,
            overhaul: clip_ovh,
            paper_overhead_pct: 2.96,
        },
        Row {
            name: "Screen Capture",
            ops: scale.captures,
            baseline: screen_base,
            overhaul: screen_ovh,
            paper_overhead_pct: 2.34,
        },
        Row {
            name: "Shared Memory",
            ops: scale.shm_writes,
            baseline: shm_base,
            overhaul: shm_ovh,
            paper_overhead_pct: 0.63,
        },
        Row {
            name: "Bonnie++",
            ops: scale.files,
            baseline: fs_base,
            overhaul: fs_ovh,
            paper_overhead_pct: 0.11,
        },
    ]
}

/// Formats rows like the paper's Table I.
pub fn format_table(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>12} {:>12} {:>10} {:>10}\n",
        "Benchmarks", "Baseline", "OVERHAUL", "Overhead", "Paper"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<16} {:>10.2}ms {:>10.2}ms {:>9.2}% {:>9.2}%\n",
            row.name,
            row.baseline.as_secs_f64() * 1000.0,
            row.overhaul.as_secs_f64() * 1000.0,
            row.overhead_pct(),
            row.paper_overhead_pct,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            device_opens: 200,
            pastes: 20,
            captures: 3,
            shm_writes: 2_000,
            files: 100,
        }
    }

    #[test]
    fn all_benchmarks_run_to_completion() {
        let rows = run_all(tiny());
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(
                row.baseline.as_nanos() > 0,
                "{} baseline measured",
                row.name
            );
            assert!(
                row.overhaul.as_nanos() > 0,
                "{} overhaul measured",
                row.name
            );
        }
    }

    #[test]
    fn device_iterations_grant_in_grant_all_mode() {
        let mut bench = device_setup(true);
        for _ in 0..100 {
            device_iter(&mut bench);
        }
        assert!(bench.system.kernel().monitor_stats().grants >= 100);
    }

    #[test]
    fn baseline_device_iterations_skip_the_monitor() {
        let mut bench = device_setup(false);
        for _ in 0..100 {
            device_iter(&mut bench);
        }
        assert_eq!(bench.system.kernel().monitor_stats().grants, 0);
    }

    #[test]
    fn clipboard_iterations_round_trip_data() {
        let mut bench = clipboard_setup(true);
        for _ in 0..20 {
            clipboard_iter(&mut bench);
        }
    }

    #[test]
    fn shm_bench_faults_only_under_overhaul() {
        let mut protected = shm_setup(true, 4);
        let mut baseline = shm_setup(false, 4);
        for _ in 0..10_000 {
            shm_iter(&mut protected);
            shm_iter(&mut baseline);
        }
        assert!(protected.system.kernel().mm_stats().faults > 0);
        assert_eq!(baseline.system.kernel().mm_stats().faults, 0);
    }

    #[test]
    fn table_formatting_includes_all_rows() {
        let rows = run_all(tiny());
        let table = format_table(&rows);
        for name in [
            "Device Access",
            "Clipboard",
            "Screen Capture",
            "Shared Memory",
            "Bonnie++",
        ] {
            assert!(table.contains(name));
        }
    }
}
