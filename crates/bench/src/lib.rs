//! Experiment harnesses regenerating every table and study in the
//! Overhaul paper (DSN 2016).
//!
//! * [`table1`] — the five performance micro-benchmarks of Table I
//!   (device access, clipboard, screen capture, shared memory, Bonnie++),
//!   each timed on an unmodified baseline stack and on the grant-all
//!   Overhaul stack, reporting the relative overhead.
//! * [`usability`] — the §V-B two-task user study with simulated
//!   participants.
//! * [`applicability`] — the §V-C functionality / false-positive study
//!   over the 58-app device corpus and 50-app clipboard corpus.
//! * [`ablation`] — sweeps over the design parameters DESIGN.md calls out
//!   (δ, the shm wait window, the clickjacking visibility threshold, and
//!   IPC propagation on/off).
//!
//! Binaries under `src/bin/` print the corresponding tables; Criterion
//! benches under `benches/` measure the same operations statistically.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablation;
pub mod applicability;
pub mod attacks;
pub mod table1;
pub mod usability;

/// Renders a list of (label, value) pairs as an aligned two-column block.
pub fn format_kv(rows: &[(String, String)]) -> String {
    let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    rows.iter()
        .map(|(k, v)| format!("  {k:<width$}  {v}"))
        .collect::<Vec<_>>()
        .join("\n")
}
