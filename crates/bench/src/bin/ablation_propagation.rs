//! IPC-propagation (P2) ablation.
//!
//! ```text
//! cargo run --release -p overhaul-bench --bin ablation_propagation
//! ```
//!
//! §III-D argues interposing on every IPC mechanism is *necessary* for
//! real applications; this ablation disables P2 and counts how many
//! IPC/CLI-dependent corpus applications break.

use overhaul_bench::ablation::sweep_propagation;

fn main() {
    println!("P2 (IPC propagation) ablation over the IPC/CLI-dependent corpus apps\n");
    let report = sweep_propagation();
    println!("  dependent apps          {}", report.dependent_apps);
    println!("  functional with P2      {}", report.functional_with_p2);
    println!("  functional without P2   {}", report.functional_without_p2);
    println!(
        "\nwithout IPC propagation, {} of {} multi-process/CLI apps lose access\n\
         to their devices — the paper's motivation for interposing on every\n\
         IPC mechanism (§III-D).",
        report.dependent_apps - report.functional_without_p2,
        report.dependent_apps
    );
}
