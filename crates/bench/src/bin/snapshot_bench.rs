//! Snapshot microbenchmark: what checkpoint, restore, and replay cost on
//! a populated machine.
//!
//! ```text
//! cargo run --release -p overhaul-bench --bin snapshot_bench [-- --quick]
//! ```
//!
//! Rows:
//!
//! - `state_hash`  — one canonical hash of the machine (serialize the
//!   state section + FNV-1a), the per-step cost of divergence checking.
//! - `checkpoint`  — a full [`System::snapshot`] (state + aux sections).
//! - `restore`     — [`System::from_snapshot`]: decode everything and
//!   rebuild the derived caches cold.
//! - `serialize`   — [`Snapshot::to_bytes`] container framing.
//! - `parse`       — [`Snapshot::from_bytes`] (validation included).
//!
//! Plus a replay row: re-running the recorded event log from boot,
//! reported as events/second.
//!
//! `--quick` runs a reduced iteration count and asserts the subsystem's
//! correctness contract instead of a timing bound (host-load-proof):
//! the restored machine and the replayed machine must both land on the
//! recorded `state_hash()`. CI runs this mode.

use std::hint::black_box;
use std::time::{Duration, Instant};

use overhaul_core::{replay, Event, EventLog, OverhaulConfig, Recorder, System};
use overhaul_sim::snapshot::Snapshot;
use overhaul_sim::{SimDuration, SimRng};
use overhaul_xserver::geometry::Rect;
use overhaul_xserver::protocol::{Atom, Request};

/// GUI apps on the benchmark machine.
const APPS: usize = 8;

/// Records a deterministic mixed workload (clicks, device opens,
/// clipboard traffic, idle gaps) and returns the populated machine with
/// its sealed event log.
fn build_recording(steps: usize) -> (System, EventLog) {
    let mut rec = Recorder::new(OverhaulConfig::protected());
    let mut rng = SimRng::seeded(0x5eed);
    let apps = (0..APPS)
        .map(|i| {
            rec.apply(Event::LaunchGuiApp {
                exe: format!("/usr/bin/app{i}"),
                rect: Rect::new(i as i32 * 120, 0, 110, 110),
            })
            .gui()
            .expect("launch")
        })
        .collect::<Vec<_>>();
    rec.apply(Event::Settle);
    for _ in 0..steps {
        let app = apps[rng.range(0, APPS as u64) as usize];
        match rng.range(0, 4) {
            0 => {
                let _ = rec.apply(Event::XRequest {
                    client: app.client,
                    request: Request::RaiseWindow { window: app.window },
                });
                rec.apply(Event::Settle);
                rec.apply(Event::ClickWindow { window: app.window });
                if let Ok(fd) = rec
                    .apply(Event::OpenDevice {
                        pid: app.pid,
                        path: "/dev/snd/mic0".into(),
                    })
                    .fd()
                {
                    rec.apply(Event::SysClose { pid: app.pid, fd });
                }
            }
            1 => {
                rec.apply(Event::ClickWindow { window: app.window });
                let _ = rec.apply(Event::XRequest {
                    client: app.client,
                    request: Request::SetSelectionOwner {
                        selection: Atom::clipboard(),
                        window: app.window,
                    },
                });
            }
            2 => {
                let _ = rec.apply(Event::OpenDevice {
                    pid: app.pid,
                    path: "/dev/video0".into(),
                });
            }
            _ => {
                rec.apply(Event::Advance(SimDuration::from_millis(
                    rng.range(50, 4_000),
                )));
            }
        }
    }
    let (system, log) = rec.finish();
    (system, log)
}

/// Best per-op time (nanoseconds) over `rounds` runs of `run`.
fn best_per_op(iters: u64, rounds: u32, mut run: impl FnMut(u64) -> Duration) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        best = best.min(run(iters).as_nanos() as f64 / iters as f64);
    }
    best
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (steps, iters, replays) = if quick {
        (300, 50, 3)
    } else {
        (1_200, 400, 20)
    };
    let mode = if quick { "quick" } else { "full" };

    let (mut system, log) = build_recording(steps);
    let recorded_hash = system.state_hash();
    let snap = system.snapshot();
    println!(
        "snapshot microbenchmark ({mode}, best of 3, {APPS} apps, {} events)\n",
        log.events.len()
    );
    println!(
        "snapshot size: {} bytes state + {} bytes aux = {} total",
        snap.state().len(),
        snap.aux().len(),
        snap.total_bytes()
    );

    let hash = best_per_op(iters, 3, |n| {
        let start = Instant::now();
        for _ in 0..n {
            black_box(system.state_hash());
        }
        start.elapsed()
    });
    let checkpoint = best_per_op(iters, 3, |n| {
        let start = Instant::now();
        for _ in 0..n {
            black_box(system.snapshot());
        }
        start.elapsed()
    });
    let restore = best_per_op(iters, 3, |n| {
        let start = Instant::now();
        for _ in 0..n {
            black_box(System::from_snapshot(&snap).expect("restore"));
        }
        start.elapsed()
    });
    let serialize = best_per_op(iters, 3, |n| {
        let start = Instant::now();
        for _ in 0..n {
            black_box(snap.to_bytes());
        }
        start.elapsed()
    });
    let bytes = snap.to_bytes();
    let parse = best_per_op(iters, 3, |n| {
        let start = Instant::now();
        for _ in 0..n {
            black_box(Snapshot::from_bytes(&bytes).expect("parse"));
        }
        start.elapsed()
    });

    println!("\n{:>12} {:>14}", "op", "per-op");
    for (label, ns) in [
        ("state_hash", hash),
        ("checkpoint", checkpoint),
        ("restore", restore),
        ("serialize", serialize),
        ("parse", parse),
    ] {
        println!("{:>12} {:>12.1}us", label, ns / 1_000.0);
    }

    let mut replay_best = f64::INFINITY;
    let mut replayed_hash = 0;
    for _ in 0..replays {
        let start = Instant::now();
        let machine = replay(&log).expect("replay boots");
        let secs = start.elapsed().as_secs_f64();
        replay_best = replay_best.min(secs);
        replayed_hash = machine.state_hash();
    }
    println!(
        "\nreplay from boot: {} events in {:.1}ms ({:.0} events/s)",
        log.events.len(),
        replay_best * 1_000.0,
        log.events.len() as f64 / replay_best
    );

    let artifact = overhaul_sim::BenchArtifact::new("snapshot")
        .text("mode", mode)
        .int("events", log.events.len() as u64)
        .int("state_bytes", snap.state().len() as u64)
        .int("aux_bytes", snap.aux().len() as u64)
        .num("state_hash_ns", hash)
        .num("checkpoint_ns", checkpoint)
        .num("restore_ns", restore)
        .num("serialize_ns", serialize)
        .num("parse_ns", parse)
        .num("replay_ms", replay_best * 1_000.0)
        .num(
            "replay_events_per_sec",
            log.events.len() as f64 / replay_best,
        );
    match artifact.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write bench artifact: {e}"),
    }

    if quick {
        let restored_hash = System::from_snapshot(&snap).expect("restore").state_hash();
        assert_eq!(
            restored_hash, recorded_hash,
            "regression: restore did not reproduce the recorded state hash"
        );
        assert_eq!(
            replayed_hash, recorded_hash,
            "regression: replay did not reproduce the recorded state hash"
        );
        println!("OK: restore reproduces the recorded state hash");
        println!("OK: replay reproduces the recorded state hash");
    }
}
