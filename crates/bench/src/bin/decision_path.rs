//! Decision-path microbenchmark: what one permission decision costs along
//! each route through the unified policy engine.
//!
//! ```text
//! cargo run --release -p overhaul-bench --bin decision_path [-- --quick]
//! ```
//!
//! Rows:
//!
//! - `engine eval`  — pure [`PolicyEngine`] evaluation of a prebuilt
//!   snapshot: the decision core with every state read amortized away
//!   (the `decide_batch` regime).
//! - `traced miss`  — the full in-kernel traced path with the verdict
//!   cache invalidated before every query (a policy-epoch bump), i.e. the
//!   cost every mediation paid before verdicts were cached.
//! - `traced hit`   — the full in-kernel traced path served from the
//!   epoch-keyed verdict cache (stats, audit, and `explain_last` still
//!   run on every query).
//! - `wire query`   — the legacy decision route for display-mediated
//!   operations: one netlink `PermissionQuery` round-trip per op, paying
//!   the modeled user/kernel boundary RTT.
//! - `hit+tracing`  — the cached path again, with an enabled span tracer
//!   installed: what always-on observability costs on the hottest route.
//!
//! `--quick` runs a reduced iteration count and asserts two claims,
//! panicking on regression: a cached in-kernel decision is at least 5×
//! faster than the uncached wire query, and enabling tracing costs at
//! most 10% on the cached path. CI runs this mode.

use std::hint::black_box;
use std::time::{Duration, Instant};

use overhaul_kernel::monitor::ResourceOp;
use overhaul_kernel::netlink::{ConnId, NetlinkMessage, NetlinkReply};
use overhaul_kernel::policy::{OpRequest, PolicyEngine};
use overhaul_kernel::{Kernel, KernelConfig, XORG_PATH};
use overhaul_sim::{Clock, Pid, Timestamp, Tracer};

/// Processes in the benchmark kernel (mixed spawns and fork chains).
const TASKS: usize = 1024;

/// A booted kernel with an authenticated display channel and `TASKS`
/// processes, each holding a fresh interaction so every query below is a
/// within-δ grant.
struct Fixture {
    kernel: Kernel,
    conn: ConnId,
    pids: Vec<Pid>,
    at: Timestamp,
}

fn fixture() -> Fixture {
    let clock = Clock::new();
    let mut kernel = Kernel::new(clock.clone(), KernelConfig::default());
    let x = kernel
        .sys_spawn(Pid::INIT, XORG_PATH)
        .expect("spawn display manager");
    let conn = kernel.netlink_connect(x).expect("authenticate channel");
    kernel.set_channel_required(true);
    let mut pids = Vec::with_capacity(TASKS);
    for i in 0..TASKS {
        // Every eighth process is a fresh spawn; the rest fork off the
        // previous one, giving the process table realistic depth.
        let pid = match pids.last() {
            Some(&prev) if i % 8 != 0 => kernel.sys_fork(prev).expect("fork"),
            _ => kernel
                .sys_spawn(Pid::INIT, &format!("/usr/bin/app{i}"))
                .expect("spawn"),
        };
        pids.push(pid);
    }
    let t = Timestamp::from_millis(1_000);
    for &pid in &pids {
        kernel
            .record_interaction_direct(pid, t)
            .expect("record interaction");
    }
    // Within δ of every interaction, so cached grants stay valid.
    let at = Timestamp::from_millis(1_500);
    Fixture {
        kernel,
        conn,
        pids,
        at,
    }
}

/// Pure engine evaluation against one prebuilt snapshot.
fn bench_engine_eval(f: &mut Fixture, iters: u64) -> Duration {
    let pid = f.pids[0];
    let snapshot = f.kernel.policy_snapshot(pid, false);
    let request = OpRequest {
        pid,
        op: ResourceOp::Mic,
        at: f.at,
    };
    let start = Instant::now();
    for _ in 0..iters {
        black_box(PolicyEngine::decide(black_box(&snapshot), &request));
    }
    start.elapsed()
}

/// Busy-spins the pure engine loop until `budget` has elapsed, so the
/// CPU frequency governor ramps up *before* the measured rounds. On an
/// idle host the first process to run otherwise measures its early
/// rounds at a low clock — a 15–25% spike that best-of rounds inside
/// the same ramp cannot discard. Mutates no kernel state.
fn warm_cpu(f: &mut Fixture, budget: Duration) {
    let start = Instant::now();
    while start.elapsed() < budget {
        black_box(bench_engine_eval(f, 100_000));
    }
}

/// Full traced path. With `force_miss` the policy epoch is bumped before
/// every query (re-applying the unchanged monitor config), so the cache
/// can never answer; without it every query after the warmup is a hit.
fn bench_traced(f: &mut Fixture, iters: u64, force_miss: bool) -> Duration {
    let monitor = f.kernel.config().monitor;
    for &pid in &f.pids {
        f.kernel.decide_direct(pid, f.at, ResourceOp::Mic);
    }
    let mut i = 0usize;
    let start = Instant::now();
    for _ in 0..iters {
        if force_miss {
            f.kernel.set_monitor_config(monitor);
        }
        let pid = f.pids[i];
        i = (i + 1) % f.pids.len();
        black_box(f.kernel.decide_direct(pid, f.at, ResourceOp::Mic));
    }
    start.elapsed()
}

/// The cached decide path with an enabled span tracer: queries are
/// head-sampled 1-in-N into `kernel.decide` spans (the sampling is
/// cache-temperature-blind so restored runs trace identically). The
/// buffer is cleared per round so the recorded samples stay in the
/// recording regime rather than the cheaper span-limit drop path.
fn bench_hit_with_tracing(f: &mut Fixture, iters: u64) -> Duration {
    f.kernel.tracer().clear();
    bench_traced(f, iters, false)
}

/// Rounds per side of the paired hit / hit+tracing measurement.
const PAIRED_ROUNDS: u32 = 15;

/// The cached path with and without an enabled tracer, measured as
/// interleaved rounds. A separate best-of pass per side lets host-load
/// drift between the passes swamp the few-percent overhead the quick
/// mode asserts on; alternating rounds exposes both sides to the same
/// load. Returns each side's best round for the table, plus the *median
/// of the per-pair ratios* — the overhead statistic the quick mode
/// asserts on. Each pair's two rounds run back to back, so slow load
/// drift cancels inside the ratio, and the median discards the pairs a
/// preemption landed in (which skew either direction).
fn paired_hit_and_traced(f: &mut Fixture, iters: u64) -> (f64, f64, f64) {
    let mut hit = f64::INFINITY;
    let mut traced = f64::INFINITY;
    let mut ratios = Vec::with_capacity(PAIRED_ROUNDS as usize);
    for _ in 0..PAIRED_ROUNDS {
        f.kernel.install_tracer(Tracer::disabled());
        let bare = bench_traced(f, iters, false).as_nanos() as f64 / iters as f64;
        f.kernel.install_tracer(Tracer::enabled());
        let spanned = bench_hit_with_tracing(f, iters).as_nanos() as f64 / iters as f64;
        hit = hit.min(bare);
        traced = traced.min(spanned);
        ratios.push(spanned / bare);
    }
    f.kernel.install_tracer(Tracer::disabled());
    ratios.sort_by(f64::total_cmp);
    (hit, traced, ratios[ratios.len() / 2])
}

/// The legacy wire route: one netlink `PermissionQuery` round-trip per
/// operation.
fn bench_wire_query(f: &mut Fixture, iters: u64) -> Duration {
    let mut i = 0usize;
    let start = Instant::now();
    for _ in 0..iters {
        let pid = f.pids[i];
        i = (i + 1) % f.pids.len();
        let reply = f
            .kernel
            .netlink_send(
                f.conn,
                NetlinkMessage::PermissionQuery {
                    pid,
                    op: ResourceOp::Mic,
                    at: f.at,
                },
            )
            .expect("channel up");
        black_box(matches!(
            reply,
            NetlinkReply::QueryResponse(d) if d.verdict.is_grant()
        ));
    }
    start.elapsed()
}

/// Best per-op time (nanoseconds) over `rounds` runs of `run`.
fn best_per_op(
    f: &mut Fixture,
    iters: u64,
    rounds: u32,
    mut run: impl FnMut(&mut Fixture, u64) -> Duration,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let per_op = run(f, iters).as_nanos() as f64 / iters as f64;
        best = best.min(per_op);
    }
    best
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (engine_iters, kernel_iters, wire_iters) = if quick {
        (200_000, 20_000, 500)
    } else {
        (2_000_000, 100_000, 2_000)
    };
    let mode = if quick { "quick" } else { "full" };
    println!(
        "decision-path microbenchmark ({mode}, best of 3, \
         hit/tracing paired best of {PAIRED_ROUNDS}, {TASKS} tasks)\n"
    );

    let mut f = fixture();
    warm_cpu(&mut f, Duration::from_millis(400));
    let eval = best_per_op(&mut f, engine_iters, 3, bench_engine_eval);
    let miss = best_per_op(&mut f, kernel_iters, 3, |f, n| bench_traced(f, n, true));
    let (hit, hit_traced, tracing_ratio) = paired_hit_and_traced(&mut f, kernel_iters);
    let wire = best_per_op(&mut f, wire_iters, 3, bench_wire_query);

    println!("{:>14} {:>14} {:>10}", "path", "per-op", "vs hit");
    for (label, ns) in [
        ("engine eval", eval),
        ("traced miss", miss),
        ("traced hit", hit),
        ("wire query", wire),
        ("hit+tracing", hit_traced),
    ] {
        println!("{:>14} {:>12.1}ns {:>9.1}x", label, ns, ns / hit);
    }

    let ratio = wire / hit;
    let overhead = (tracing_ratio - 1.0) * 100.0;

    let artifact = overhaul_sim::BenchArtifact::new("decision_path")
        .text("mode", mode)
        .int("tasks", TASKS as u64)
        .num("engine_eval_ns", eval)
        .num("traced_miss_ns", miss)
        .num("traced_hit_ns", hit)
        .num("wire_query_ns", wire)
        .num("hit_tracing_ns", hit_traced)
        .num("wire_vs_hit_ratio", ratio)
        .num("tracing_overhead_pct", overhead);
    match artifact.write() {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nwarning: could not write bench artifact: {e}"),
    }

    println!("\ncached in-kernel decision vs uncached wire query: {ratio:.1}x");
    println!("span-tracing overhead on the cached path (median of paired rounds): {overhead:.1}%");
    if quick {
        assert!(
            ratio >= 5.0,
            "regression: cached decision only {ratio:.1}x faster than the wire query (need >= 5x)"
        );
        assert!(
            overhead <= 10.0,
            "regression: tracing costs {overhead:.1}% on the cached path (budget: 10%)"
        );
        println!("OK: cached decision is >= 5x faster than the uncached wire query");
        println!("OK: tracing overhead on the cached path is within the 10% budget");
    }
}
